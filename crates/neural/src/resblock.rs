//! The residual block of the ResNet-TSC architecture (Wang et al. 2016):
//! three `Conv1d → BatchNorm1d → ReLU` stages plus a (possibly projected)
//! shortcut, added before the final ReLU. All convolutions in a block share
//! one kernel size — the knob the paper's ensemble members vary.

use crate::activations::ReLU;
use crate::batchnorm::BatchNorm1d;
use crate::conv::Conv1d;
use crate::tensor::Tensor;
use crate::VisitParams;
use serde::{Deserialize, Serialize};

/// One `Conv → BN` stage (ReLU applied by the block where appropriate).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConvBn {
    conv: Conv1d,
    bn: BatchNorm1d,
}

impl ConvBn {
    fn new(in_ch: usize, out_ch: usize, kernel: usize, seed: u64) -> ConvBn {
        ConvBn {
            conv: Conv1d::new(in_ch, out_ch, kernel, seed),
            bn: BatchNorm1d::new(out_ch),
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.conv.forward(x, train);
        self.bn.forward(&y, train)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let g = self.bn.backward(grad);
        self.conv.backward(&g)
    }
}

/// A full residual block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResidualBlock {
    stage1: ConvBn,
    stage2: ConvBn,
    stage3: ConvBn,
    shortcut: Option<ConvBn>,
    #[serde(skip)]
    relu1: ReLU,
    #[serde(skip)]
    relu2: ReLU,
    #[serde(skip)]
    relu_out: ReLU,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
}

impl ResidualBlock {
    /// Create a block; a 1×1 projection shortcut is added when channel
    /// counts differ (as in the reference architecture).
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> ResidualBlock {
        let shortcut = (in_channels != out_channels)
            .then(|| ConvBn::new(in_channels, out_channels, 1, seed.wrapping_add(3)));
        ResidualBlock {
            stage1: ConvBn::new(in_channels, out_channels, kernel, seed),
            stage2: ConvBn::new(out_channels, out_channels, kernel, seed.wrapping_add(1)),
            stage3: ConvBn::new(out_channels, out_channels, kernel, seed.wrapping_add(2)),
            shortcut,
            relu1: ReLU::new(),
            relu2: ReLU::new(),
            relu_out: ReLU::new(),
            in_channels,
            out_channels,
        }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let h = self.stage1.forward(x, train);
        let h = self.relu1.forward(&h, train);
        let h = self.stage2.forward(&h, train);
        let h = self.relu2.forward(&h, train);
        let mut h = self.stage3.forward(&h, train);
        let residual = match self.shortcut.as_mut() {
            Some(sc) => sc.forward(x, train),
            None => x.clone(),
        };
        h.add_assign(&residual);
        self.relu_out.forward(&h, train)
    }

    /// Pure inference forward (`&self`).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let h = self.stage1.bn.infer(&self.stage1.conv.infer(x));
        let h = crate::activations::relu_infer(&h);
        let h = self.stage2.bn.infer(&self.stage2.conv.infer(&h));
        let h = crate::activations::relu_infer(&h);
        let mut h = self.stage3.bn.infer(&self.stage3.conv.infer(&h));
        let residual = match self.shortcut.as_ref() {
            Some(sc) => sc.bn.infer(&sc.conv.infer(x)),
            None => x.clone(),
        };
        h.add_assign(&residual);
        crate::activations::relu_infer(&h)
    }

    /// The `(conv, bn)` pair of main-branch stage `i ∈ {0, 1, 2}`, for the
    /// frozen-plan builder (which folds each pair into one fused conv).
    pub(crate) fn stage_parts(&self, i: usize) -> (&Conv1d, &BatchNorm1d) {
        let s = match i {
            0 => &self.stage1,
            1 => &self.stage2,
            2 => &self.stage3,
            _ => panic!("residual block has stages 0..3, got {i}"),
        };
        (&s.conv, &s.bn)
    }

    /// The projection shortcut's `(conv, bn)` pair, when present.
    pub(crate) fn shortcut_parts(&self) -> Option<(&Conv1d, &BatchNorm1d)> {
        self.shortcut.as_ref().map(|sc| (&sc.conv, &sc.bn))
    }

    /// Backward pass, returning the gradient with respect to the input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_sum = self.relu_out.backward(grad_out);
        // Main branch.
        let g = self.stage3.backward(&g_sum);
        let g = self.relu2.backward(&g);
        let g = self.stage2.backward(&g);
        let g = self.relu1.backward(&g);
        let mut grad_in = self.stage1.backward(&g);
        // Shortcut branch.
        match self.shortcut.as_mut() {
            Some(sc) => {
                let g_sc = sc.backward(&g_sum);
                grad_in.add_assign(&g_sc);
            }
            None => grad_in.add_assign(&g_sum),
        }
        grad_in
    }
}

impl VisitParams for ResidualBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.stage1.conv.visit_params(f);
        self.stage1.bn.visit_params(f);
        self.stage2.conv.visit_params(f);
        self.stage2.bn.visit_params(f);
        self.stage3.conv.visit_params(f);
        self.stage3.bn.visit_params(f);
        if let Some(sc) = self.shortcut.as_mut() {
            sc.conv.visit_params(f);
            sc.bn.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input(b: usize, c: usize, l: usize) -> Tensor {
        let data: Vec<f32> = (0..b * c * l)
            .map(|i| ((i * 29 % 19) as f32 - 9.0) / 5.0)
            .collect();
        Tensor::from_data(b, c, l, data)
    }

    #[test]
    fn output_shape_and_projection() {
        let mut block = ResidualBlock::new(1, 8, 5, 7);
        assert!(block.shortcut.is_some());
        let x = sample_input(2, 1, 30);
        let y = block.forward(&x, false);
        assert_eq!(y.shape(), (2, 8, 30));
        let mut same = ResidualBlock::new(8, 8, 5, 7);
        assert!(same.shortcut.is_none());
        let y2 = same.forward(&y, false);
        assert_eq!(y2.shape(), (2, 8, 30));
    }

    #[test]
    fn output_is_nonnegative_after_final_relu() {
        let mut block = ResidualBlock::new(2, 4, 3, 5);
        let x = sample_input(1, 2, 16);
        let y = block.forward(&x, false);
        assert!(y.data.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn gradient_check_through_block() {
        let mut block = ResidualBlock::new(2, 3, 3, 11);
        let x = sample_input(2, 2, 8);
        let y = block.forward(&x, true);
        let grad_in = block.backward(&y); // loss = sum(y^2)/2
        let eps = 1.5e-2f32;
        let loss = |block: &mut ResidualBlock, x: &Tensor| -> f32 {
            block
                .forward(x, true)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum()
        };
        for xi in [0usize, 5, 13, x.data.len() - 1] {
            let mut x2 = x.clone();
            x2.data[xi] += eps;
            let lp = loss(&mut block, &x2);
            x2.data[xi] -= 2.0 * eps;
            let lm = loss(&mut block, &x2);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.data[xi];
            // BN batch statistics couple everything; allow a loose but
            // directionally strict tolerance.
            assert!(
                (numeric - analytic).abs() < 0.15 * numeric.abs().max(1.0),
                "x[{xi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn param_visit_covers_shortcut() {
        use crate::VisitParams;
        let mut with_proj = ResidualBlock::new(1, 4, 3, 0);
        let mut without = ResidualBlock::new(4, 4, 3, 0);
        let a = with_proj.param_count();
        let b = without.param_count();
        // Projection adds a 1x1 conv (4 weights + 4 bias) + BN (8).
        assert_eq!(a, {
            let convs = 4 * 3 + 4 + 4 * 4 * 3 + 4 + 4 * 4 * 3 + 4;
            let bns = 3 * 8;
            let sc = 4 + 4 + 8;
            convs + bns + sc
        });
        assert!(b > 0 && b != a);
    }

    #[test]
    fn training_reduces_toy_loss() {
        use crate::optim::Adam;
        let mut block = ResidualBlock::new(1, 4, 3, 3);
        let x = sample_input(4, 1, 12);
        let initial: f32 = block
            .forward(&x, true)
            .data
            .iter()
            .map(|v| v * v / 2.0)
            .sum();
        let mut opt = Adam::new(0.01);
        let mut last = initial;
        for _ in 0..30 {
            block.zero_grad();
            let y = block.forward(&x, true);
            last = y.data.iter().map(|v| v * v / 2.0).sum();
            let _ = block.backward(&y);
            opt.step(&mut block);
        }
        assert!(last < initial, "loss did not decrease: {initial} -> {last}");
    }
}
