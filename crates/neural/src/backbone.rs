//! The backbone zoo: one tagged type per detector lifecycle stage.
//!
//! DeviceScope exposes several detector architectures (ConvNet, ResNet,
//! Inception, TransAppS); this reproduction covers the three that matter
//! for the CamAL pipeline — [`ResNet`] (the paper's default), the
//! InceptionTime-style [`InceptionNet`] and the TransAppS-style
//! [`TransAppNet`]. All three share the GAP-classifier CAM surface, so
//! the localizer and the streaming machinery are backbone-agnostic.
//!
//! The vendored serde derive has no generics, so heterogeneity is modeled
//! with concrete enums instead of trait objects:
//!
//! - [`Backbone`]: the tag — selection knob, checkpoint field, plan-cache
//!   key component.
//! - [`DetectorNet`]: a trainable member of any backbone. Its externally
//!   tagged serde form (`{"ResNet": {...}}`) doubles as the per-member
//!   backbone tag of v2 checkpoints.
//! - [`FrozenDetector`] / [`QuantizedDetector`]: the compiled serving
//!   forms at f32 / int8, all honoring the frozen-plan contract (probs
//!   within 1e-4 of the mutable path, CAMs within 1e-3, zero decision
//!   flips, zero steady-state allocations against a warm
//!   [`InferenceArena`]).
//!
//! ds-core's `Detector` trait is implemented over these enums; the
//! dynamic dispatch lives there, the concrete folding lives here.

use crate::frozen::FrozenResNet;
use crate::inception::{FrozenInception, InceptionConfig, InceptionNet};
use crate::plan::InferenceArena;
use crate::quant::QuantizedResNet;
use crate::resnet::{ResNet, ResNetConfig};
use crate::tensor::{Matrix, Tensor};
use crate::train::NeuralNet;
use crate::transapp::{FrozenTransApp, TransAppConfig, TransAppNet};
use crate::VisitParams;
use serde::{Deserialize, Serialize};

/// Detector architecture tag. `Ord` so it can key plan caches
/// (freeze cache, serving registry, streaming sessions) — entries of
/// different backbones must never alias.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Backbone {
    /// Residual conv net of Wang et al. — the paper's default detector.
    #[default]
    ResNet,
    /// InceptionTime-style multi-scale conv blocks.
    Inception,
    /// TransAppS-style transformer with conv embedding.
    TransApp,
}

impl Backbone {
    /// Every supported backbone, in presentation order.
    pub const ALL: [Backbone; 3] = [Backbone::ResNet, Backbone::Inception, Backbone::TransApp];

    /// Stable lowercase name (CLI arguments, API fields, bench case names).
    pub fn label(self) -> &'static str {
        match self {
            Backbone::ResNet => "resnet",
            Backbone::Inception => "inception",
            Backbone::TransApp => "transapp",
        }
    }

    /// Parse a [`Backbone::label`]-style name, case-insensitively.
    pub fn parse(s: &str) -> Option<Backbone> {
        match s.to_ascii_lowercase().as_str() {
            "resnet" => Some(Backbone::ResNet),
            "inception" => Some(Backbone::Inception),
            "transapp" | "transapps" => Some(Backbone::TransApp),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backbone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Round `c` up to the next multiple of 4 (inception blocks concatenate
/// four equal-width branches).
fn ceil4(c: usize) -> usize {
    c.div_ceil(4) * 4
}

/// A trainable detector member of any backbone. The serde form is
/// externally tagged, so a serialized member carries its backbone.
// Variant sizes legitimately differ (a transformer carries attention
// state a conv net doesn't); members live in small per-ensemble Vecs
// and boxing would put a pointer chase on every dispatch.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DetectorNet {
    /// See [`Backbone::ResNet`].
    ResNet(ResNet),
    /// See [`Backbone::Inception`].
    Inception(InceptionNet),
    /// See [`Backbone::TransApp`].
    TransApp(TransAppNet),
}

impl DetectorNet {
    /// Build a freshly initialized member. The shared knobs map onto each
    /// architecture: `channels` are the per-stage widths for the conv
    /// backbones (inception rounds them up to multiples of 4), and the
    /// first width doubles as the transformer's model dimension; `kernel`
    /// is the member's receptive-field knob (branch spread for inception,
    /// embedding kernel for the transformer).
    pub fn for_backbone(
        backbone: Backbone,
        in_channels: usize,
        channels: &[usize],
        kernel: usize,
        num_classes: usize,
        seed: u64,
    ) -> DetectorNet {
        assert!(!channels.is_empty(), "detector needs at least one stage");
        match backbone {
            Backbone::ResNet => DetectorNet::ResNet(ResNet::new(ResNetConfig {
                in_channels,
                channels: channels.to_vec(),
                kernel,
                num_classes,
                seed,
            })),
            Backbone::Inception => DetectorNet::Inception(InceptionNet::new(InceptionConfig {
                in_channels,
                channels: channels.iter().map(|&c| ceil4(c)).collect(),
                kernel,
                num_classes,
                seed,
            })),
            Backbone::TransApp => DetectorNet::TransApp(TransAppNet::new(TransAppConfig {
                in_channels,
                d_model: channels[0],
                blocks: 1,
                kernel,
                num_classes,
                seed,
            })),
        }
    }

    /// Borrow the inner [`ResNet`] mutably, if this member is one — the
    /// determinism suite drives the reference trainer (ResNet-typed by
    /// design) against the same weights the ensemble trains.
    pub fn as_resnet_mut(&mut self) -> Option<&mut ResNet> {
        match self {
            DetectorNet::ResNet(n) => Some(n),
            _ => None,
        }
    }

    /// This member's architecture tag.
    pub fn backbone(&self) -> Backbone {
        match self {
            DetectorNet::ResNet(_) => Backbone::ResNet,
            DetectorNet::Inception(_) => Backbone::Inception,
            DetectorNet::TransApp(_) => Backbone::TransApp,
        }
    }

    /// The member's kernel-size diversity knob.
    pub fn kernel(&self) -> usize {
        match self {
            DetectorNet::ResNet(n) => n.kernel(),
            DetectorNet::Inception(n) => n.kernel(),
            DetectorNet::TransApp(n) => n.kernel(),
        }
    }

    /// Pure inference: positive-class probability and class-1 CAM per row.
    pub fn infer_with_cam(&self, x: &Tensor) -> (Vec<f32>, Vec<Vec<f32>>) {
        match self {
            DetectorNet::ResNet(n) => n.infer_with_cam(x),
            DetectorNet::Inception(n) => n.infer_with_cam(x),
            DetectorNet::TransApp(n) => n.infer_with_cam(x),
        }
    }

    /// Compile into the frozen f32 serving form.
    pub fn freeze(&self) -> FrozenDetector {
        match self {
            DetectorNet::ResNet(n) => FrozenDetector::ResNet(FrozenResNet::freeze(n)),
            DetectorNet::Inception(n) => FrozenDetector::Inception(FrozenInception::freeze(n)),
            DetectorNet::TransApp(n) => FrozenDetector::TransApp(FrozenTransApp::freeze(n)),
        }
    }

    /// Compile into the int8 serving form, calibrating activation scales
    /// on `calib`.
    pub fn freeze_quantized(&self, calib: &Tensor) -> QuantizedDetector {
        match self.freeze() {
            FrozenDetector::ResNet(f) => {
                QuantizedDetector::ResNet(QuantizedResNet::quantize(&f, calib))
            }
            FrozenDetector::Inception(f) => QuantizedDetector::Inception(f.quantize(calib)),
            FrozenDetector::TransApp(f) => QuantizedDetector::TransApp(f.quantize(calib)),
        }
    }
}

impl VisitParams for DetectorNet {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        match self {
            DetectorNet::ResNet(n) => n.visit_params(f),
            DetectorNet::Inception(n) => n.visit_params(f),
            DetectorNet::TransApp(n) => n.visit_params(f),
        }
    }
}

impl NeuralNet for DetectorNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Matrix {
        match self {
            DetectorNet::ResNet(n) => n.forward(x, train),
            DetectorNet::Inception(n) => n.forward(x, train),
            DetectorNet::TransApp(n) => n.forward(x, train),
        }
    }

    fn backward(&mut self, grad_logits: &Matrix) {
        match self {
            DetectorNet::ResNet(n) => NeuralNet::backward(n, grad_logits),
            DetectorNet::Inception(n) => n.backward(grad_logits),
            DetectorNet::TransApp(n) => n.backward(grad_logits),
        }
    }

    fn predict_positive_proba(&mut self, x: &Tensor) -> Vec<f32> {
        match self {
            DetectorNet::ResNet(n) => n.predict_positive_proba(x),
            DetectorNet::Inception(n) => NeuralNet::predict_positive_proba(n, x),
            DetectorNet::TransApp(n) => NeuralNet::predict_positive_proba(n, x),
        }
    }
}

/// A frozen f32 serving plan of any backbone.
#[derive(Debug, Clone)]
pub enum FrozenDetector {
    /// See [`Backbone::ResNet`].
    ResNet(FrozenResNet),
    /// See [`Backbone::Inception`].
    Inception(FrozenInception),
    /// See [`Backbone::TransApp`].
    TransApp(FrozenTransApp),
}

impl FrozenDetector {
    /// This plan's architecture tag.
    pub fn backbone(&self) -> Backbone {
        match self {
            FrozenDetector::ResNet(_) => Backbone::ResNet,
            FrozenDetector::Inception(_) => Backbone::Inception,
            FrozenDetector::TransApp(_) => Backbone::TransApp,
        }
    }

    /// Kernel size of the source member.
    pub fn kernel(&self) -> usize {
        match self {
            FrozenDetector::ResNet(p) => p.kernel(),
            FrozenDetector::Inception(p) => p.kernel(),
            FrozenDetector::TransApp(p) => p.kernel(),
        }
    }

    /// Full forward pass into `arena` — zero steady-state allocations.
    pub fn predict_into(&self, x: &Tensor, arena: &mut InferenceArena) {
        match self {
            FrozenDetector::ResNet(p) => p.predict_into(x, arena),
            FrozenDetector::Inception(p) => p.predict_into(x, arena),
            FrozenDetector::TransApp(p) => p.predict_into(x, arena),
        }
    }

    /// Raw parameter bits in a fixed traversal order.
    pub fn param_bits(&self) -> Vec<u32> {
        match self {
            FrozenDetector::ResNet(p) => p.param_bits(),
            FrozenDetector::Inception(p) => p.param_bits(),
            FrozenDetector::TransApp(p) => p.param_bits(),
        }
    }
}

/// An int8-quantized serving plan of any backbone.
#[derive(Debug, Clone)]
pub enum QuantizedDetector {
    /// See [`Backbone::ResNet`].
    ResNet(QuantizedResNet),
    /// See [`Backbone::Inception`]; carries int8 convs internally.
    Inception(FrozenInception),
    /// See [`Backbone::TransApp`]; carries int8 convs internally.
    TransApp(FrozenTransApp),
}

impl QuantizedDetector {
    /// This plan's architecture tag.
    pub fn backbone(&self) -> Backbone {
        match self {
            QuantizedDetector::ResNet(_) => Backbone::ResNet,
            QuantizedDetector::Inception(_) => Backbone::Inception,
            QuantizedDetector::TransApp(_) => Backbone::TransApp,
        }
    }

    /// Kernel size of the source member.
    pub fn kernel(&self) -> usize {
        match self {
            QuantizedDetector::ResNet(p) => p.kernel(),
            QuantizedDetector::Inception(p) => p.kernel(),
            QuantizedDetector::TransApp(p) => p.kernel(),
        }
    }

    /// Full forward pass into `arena` — zero steady-state allocations.
    pub fn predict_into(&self, x: &Tensor, arena: &mut InferenceArena) {
        match self {
            QuantizedDetector::ResNet(p) => p.predict_into(x, arena),
            QuantizedDetector::Inception(p) => p.predict_into(x, arena),
            QuantizedDetector::TransApp(p) => p.predict_into(x, arena),
        }
    }

    /// Raw parameter bits in a fixed traversal order.
    pub fn param_bits(&self) -> Vec<u32> {
        match self {
            QuantizedDetector::ResNet(p) => p.param_bits(),
            QuantizedDetector::Inception(p) => p.param_bits(),
            QuantizedDetector::TransApp(p) => p.param_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for b in Backbone::ALL {
            assert_eq!(Backbone::parse(b.label()), Some(b));
            assert_eq!(Backbone::parse(&b.label().to_uppercase()), Some(b));
        }
        assert_eq!(Backbone::parse("transapps"), Some(Backbone::TransApp));
        assert_eq!(Backbone::parse("convnet"), None);
        assert_eq!(Backbone::default(), Backbone::ResNet);
    }

    #[test]
    fn backbone_serde_is_a_plain_tag() {
        let json = serde_json::to_string(&Backbone::Inception).unwrap();
        assert_eq!(json, "\"Inception\"");
        let back: Backbone = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Backbone::Inception);
    }

    #[test]
    fn members_report_their_backbone_and_kernel() {
        for b in Backbone::ALL {
            let net = DetectorNet::for_backbone(b, 1, &[4, 8], 5, 2, 1);
            assert_eq!(net.backbone(), b);
            assert_eq!(net.kernel(), 5);
        }
    }

    #[test]
    fn detector_serde_round_trip_preserves_tag_and_behavior() {
        let x = Tensor::from_data(2, 1, 16, (0..32).map(|i| (i % 7) as f32 * 0.1).collect());
        for b in Backbone::ALL {
            let mut net = DetectorNet::for_backbone(b, 1, &[4], 3, 2, 42);
            // Settle BN running stats so inference is non-trivial.
            for _ in 0..3 {
                let _ = net.forward(&x, true);
            }
            let json = serde_json::to_string(&net).unwrap();
            assert!(json.contains(&format!("\"{:?}\"", b)) || json.starts_with("{"));
            let back: DetectorNet = serde_json::from_str(&json).unwrap();
            assert_eq!(back.backbone(), b);
            let (p0, c0) = net.infer_with_cam(&x);
            let (p1, c1) = back.infer_with_cam(&x);
            assert_eq!(p0, p1, "{b} probs changed over serde");
            assert_eq!(c0, c1, "{b} cams changed over serde");
        }
    }

    #[test]
    fn freeze_dispatch_matches_mutable_decisions_for_all_backbones() {
        let x = Tensor::from_data(
            3,
            1,
            20,
            (0..60).map(|i| ((i % 11) as f32 - 5.0) / 5.0).collect(),
        );
        for b in Backbone::ALL {
            let mut net = DetectorNet::for_backbone(b, 1, &[4], 3, 2, 9);
            for _ in 0..4 {
                let _ = net.forward(&x, true);
            }
            let frozen = net.freeze();
            assert_eq!(frozen.backbone(), b);
            let quant = net.freeze_quantized(&x);
            assert_eq!(quant.backbone(), b);
            let (probs, _) = net.infer_with_cam(&x);
            let mut arena = InferenceArena::new();
            frozen.predict_into(&x, &mut arena);
            for (bi, &p) in probs.iter().enumerate().take(3) {
                assert!((arena.probs()[bi] - p).abs() < 1e-4, "{b}");
                assert_eq!(arena.probs()[bi] > 0.5, p > 0.5, "{b} flip");
            }
            let mut qarena = InferenceArena::new();
            quant.predict_into(&x, &mut qarena);
            for (bi, &p) in probs.iter().enumerate().take(3) {
                assert!((qarena.probs()[bi] - p).abs() < 0.05, "{b} int8");
            }
            assert!(!frozen.param_bits().is_empty());
            assert!(!quant.param_bits().is_empty());
        }
    }

    #[test]
    fn trainable_via_neural_net_trait() {
        use crate::train::{train_classifier, TrainConfig};
        let windows: Vec<Vec<f32>> = (0..8)
            .map(|i| {
                (0..24)
                    .map(|j| {
                        if i % 2 == 1 && j > 8 && j < 16 {
                            1.0
                        } else {
                            0.1
                        }
                    })
                    .collect()
            })
            .collect();
        let labels: Vec<u8> = (0..8).map(|i| (i % 2) as u8).collect();
        for b in Backbone::ALL {
            let mut net = DetectorNet::for_backbone(b, 1, &[4], 3, 2, 3);
            let report = train_classifier(&mut net, &windows, &labels, &TrainConfig::fast());
            assert!(
                report.epoch_losses.iter().all(|l| l.is_finite()),
                "{b} training diverged"
            );
        }
    }
}
