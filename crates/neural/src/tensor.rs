//! Dense tensors with explicit `[batch, channels, length]` layout.
//!
//! The substrate intentionally avoids a general N-dimensional tensor: 1D
//! convnets only ever need rank-3 activations ([`Tensor`]) and rank-2
//! classifier inputs/outputs ([`Matrix`]). Fixing the ranks keeps indexing
//! branch-free and lets hot loops borrow contiguous channel rows as slices.

use serde::{Deserialize, Serialize};

/// A `[batch, channels, length]` activation tensor, row-major
/// (`data[b*C*L + c*L + l]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Batch size B.
    pub batch: usize,
    /// Channel count C.
    pub channels: usize,
    /// Sequence length L.
    pub len: usize,
    /// Row-major storage of size `B * C * L`.
    pub data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor of the given shape.
    pub fn zeros(batch: usize, channels: usize, len: usize) -> Tensor {
        Tensor {
            batch,
            channels,
            len,
            data: vec![0.0; batch * channels * len],
        }
    }

    /// Build from raw data.
    ///
    /// # Panics
    /// Panics if `data.len() != batch * channels * len`.
    pub fn from_data(batch: usize, channels: usize, len: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(
            data.len(),
            batch * channels * len,
            "tensor data length does not match shape"
        );
        Tensor {
            batch,
            channels,
            len,
            data,
        }
    }

    /// Wrap a batch of equal-length univariate windows as a
    /// `[B, 1, L]` tensor (the standard model input in this repo).
    pub fn from_windows(windows: &[Vec<f32>]) -> Tensor {
        assert!(!windows.is_empty(), "cannot build a tensor from no windows");
        let len = windows[0].len();
        assert!(
            windows.iter().all(|w| w.len() == len),
            "all windows must share a length"
        );
        let mut data = Vec::with_capacity(windows.len() * len);
        for w in windows {
            data.extend_from_slice(w);
        }
        Tensor::from_data(windows.len(), 1, len, data)
    }

    /// Shape as a tuple.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.batch, self.channels, self.len)
    }

    /// Flat index of `(b, c, l)`.
    #[inline]
    pub fn idx(&self, b: usize, c: usize, l: usize) -> usize {
        (b * self.channels + c) * self.len + l
    }

    /// Value at `(b, c, l)`.
    #[inline]
    pub fn get(&self, b: usize, c: usize, l: usize) -> f32 {
        self.data[self.idx(b, c, l)]
    }

    /// Mutable value at `(b, c, l)`.
    #[inline]
    pub fn get_mut(&mut self, b: usize, c: usize, l: usize) -> &mut f32 {
        let i = self.idx(b, c, l);
        &mut self.data[i]
    }

    /// Borrow the contiguous `(b, c)` channel row.
    #[inline]
    pub fn row(&self, b: usize, c: usize) -> &[f32] {
        let start = (b * self.channels + c) * self.len;
        &self.data[start..start + self.len]
    }

    /// Mutably borrow the contiguous `(b, c)` channel row.
    #[inline]
    pub fn row_mut(&mut self, b: usize, c: usize) -> &mut [f32] {
        let start = (b * self.channels + c) * self.len;
        &mut self.data[start..start + self.len]
    }

    /// A same-shape zero tensor (gradient buffer).
    pub fn zeros_like(&self) -> Tensor {
        Tensor::zeros(self.batch, self.channels, self.len)
    }

    /// Element-wise add `other` into `self`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "tensor shape mismatch in add");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Largest absolute element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

/// A `[rows, cols]` matrix (classifier logits, GAP outputs), row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Row count (usually the batch size).
    pub rows: usize,
    /// Column count (features or classes).
    pub cols: usize,
    /// Row-major storage of size `rows * cols`.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from raw data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Value at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable value at `(r, c)`.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_indexing_is_row_major() {
        let mut t = Tensor::zeros(2, 3, 4);
        *t.get_mut(1, 2, 3) = 7.0;
        assert_eq!(t.data[3 * 4 + 2 * 4 + 3], 7.0);
        assert_eq!(t.get(1, 2, 3), 7.0);
        assert_eq!(t.shape(), (2, 3, 4));
        assert_eq!(t.row(1, 2)[3], 7.0);
        t.row_mut(0, 0)[0] = 1.0;
        assert_eq!(t.get(0, 0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn tensor_shape_mismatch_panics() {
        let _ = Tensor::from_data(2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    fn from_windows_packs_batch() {
        let t = Tensor::from_windows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.shape(), (2, 1, 2));
        assert_eq!(t.get(0, 0, 1), 2.0);
        assert_eq!(t.get(1, 0, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn from_windows_rejects_ragged() {
        let _ = Tensor::from_windows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn add_assign_and_max_abs() {
        let mut a = Tensor::from_data(1, 1, 3, vec![1.0, -5.0, 2.0]);
        let b = Tensor::from_data(1, 1, 3, vec![1.0, 1.0, 1.0]);
        a.add_assign(&b);
        assert_eq!(a.data, vec![2.0, -4.0, 3.0]);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.zeros_like().max_abs(), 0.0);
    }

    #[test]
    fn matrix_rows() {
        let mut m = Matrix::zeros(2, 3);
        *m.get_mut(1, 2) = 9.0;
        assert_eq!(m.get(1, 2), 9.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 9.0]);
        m.row_mut(0)[1] = 4.0;
        assert_eq!(m.get(0, 1), 4.0);
        let m2 = Matrix::from_data(1, 2, vec![5.0, 6.0]);
        assert_eq!(m2.row(0), &[5.0, 6.0]);
    }
}
