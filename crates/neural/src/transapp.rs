//! The TransAppS-style detector backbone (ADF & TransApp, arXiv
//! 2401.05381; DeviceScope's `transapps` model): a convolutional
//! embedding followed by small self-attention blocks and the same
//! GAP-classifier head the other backbones use — so the class-activation
//! surface is identical and the CamAL localizer needs no changes.
//!
//! The scaled-down shape here keeps the paper's structure — conv
//! embedding, pre-norm-free residual attention, conv feed-forward,
//! BatchNorm between stages — at ensemble-member size. Every learned
//! projection (Q/K/V/O, both FFN stages) is a **1×1 convolution**, which
//! at inference is exactly a per-position linear map: the frozen form
//! therefore rides the existing SIMD conv kernels and the int8 quantized
//! path without any new kernel code. Only the attention softmax itself is
//! bespoke, and the frozen path calls the very same [`softmax_inplace`]
//! the mutable path uses, so the two associate floating-point operations
//! identically — the parity suite holds them to the frozen-plan contract
//! (probs ≤ 1e-4, CAMs ≤ 1e-3, zero decision flips).
//!
//! Frozen-plan buffer choreography per block (input in `buf_a`): Q, K, V
//! land in three aux regions, attention scores use one `[L, L]` aux
//! region row-by-row, the attended values go to `buf_b`, the output
//! projection to `buf_c`, residual-add back onto `buf_a`, and both
//! BatchNorms apply as folded per-channel affines in place — zero heap
//! allocations at steady state, like every other frozen plan.

use crate::activations::{relu_infer, ReLU};
use crate::batchnorm::BatchNorm1d;
use crate::cam::cam_from_features;
use crate::conv::Conv1d;
use crate::frozen::{finish_forward, FrozenConv};
use crate::linear::Linear;
use crate::loss::softmax_row;
use crate::plan::InferenceArena;
use crate::pool::GlobalAvgPool;
use crate::tensor::{Matrix, Tensor};
use crate::VisitParams;
use serde::{Deserialize, Serialize};

pub(crate) use crate::inception::PlanConv;

/// Architecture hyper-parameters of a [`TransAppNet`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransAppConfig {
    /// Input channels (1 for univariate consumption series).
    pub in_channels: usize,
    /// Embedding width / attention model dimension.
    pub d_model: usize,
    /// Number of attention blocks.
    pub blocks: usize,
    /// Kernel size of the convolutional embedding.
    pub kernel: usize,
    /// Number of classes of the head (2 for appliance detection).
    pub num_classes: usize,
    /// Seed controlling weight initialization.
    pub seed: u64,
}

/// In-place numerically-stable softmax over one score row. Shared by the
/// mutable and frozen attention paths so both associate the exponentials
/// and the normalizing sum identically.
pub(crate) fn softmax_inplace(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// One attention block: single-head self-attention (1×1-conv Q/K/V/O) with
/// a residual connection and BatchNorm, then a 1×1-conv feed-forward
/// (d → 2d → d, ReLU) with its own residual and BatchNorm.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TransBlock {
    q: Conv1d,
    k: Conv1d,
    v: Conv1d,
    o: Conv1d,
    bn1: BatchNorm1d,
    ffn1: Conv1d,
    ffn2: Conv1d,
    bn2: BatchNorm1d,
    #[serde(skip)]
    relu_ffn: ReLU,
    /// Attention forward caches for backward: (Q, K, V, attn rows).
    #[serde(skip)]
    cache: Option<AttnCache>,
    d: usize,
}

#[derive(Debug, Clone)]
struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Row-major `[B, L, L]` attention weights: `attn[b][i*l + j]` is the
    /// weight of source position `j` for output position `i`.
    attn: Vec<Vec<f32>>,
}

/// `out[c, i] = Σ_j attn[i*l + j] · v[c, j]` for one batch row.
fn apply_attention(attn: &[f32], v: &Tensor, bi: usize, out: &mut Tensor) {
    let (_, d, l) = v.shape();
    for c in 0..d {
        let vr = v.row(bi, c);
        let or = out.row_mut(bi, c);
        for i in 0..l {
            let a = &attn[i * l..(i + 1) * l];
            let mut acc = 0.0f32;
            for j in 0..l {
                acc += a[j] * vr[j];
            }
            or[i] = acc;
        }
    }
}

/// Raw attention scores `S[i, j] = (Σ_c q[c, i]·k[c, j]) / √d` for one
/// batch row, one output position `i` at a time, into `row`.
fn score_row(q: &Tensor, k: &Tensor, bi: usize, i: usize, inv_sqrt_d: f32, row: &mut [f32]) {
    let (_, d, l) = q.shape();
    row[..l].fill(0.0);
    for c in 0..d {
        let qv = q.row(bi, c)[i];
        if qv == 0.0 {
            continue;
        }
        let kr = k.row(bi, c);
        for j in 0..l {
            row[j] += qv * kr[j];
        }
    }
    for s in row[..l].iter_mut() {
        *s *= inv_sqrt_d;
    }
}

impl TransBlock {
    fn new(d: usize, seed: u64) -> TransBlock {
        TransBlock {
            q: Conv1d::new(d, d, 1, seed),
            k: Conv1d::new(d, d, 1, seed.wrapping_add(1)),
            v: Conv1d::new(d, d, 1, seed.wrapping_add(2)),
            o: Conv1d::new(d, d, 1, seed.wrapping_add(3)),
            bn1: BatchNorm1d::new(d),
            ffn1: Conv1d::new(d, 2 * d, 1, seed.wrapping_add(4)),
            ffn2: Conv1d::new(2 * d, d, 1, seed.wrapping_add(5)),
            bn2: BatchNorm1d::new(d),
            relu_ffn: ReLU::new(),
            cache: None,
            d,
        }
    }

    /// Self-attention on `[B, d, L]`: returns the attended values (before
    /// the output projection), caching Q/K/V/attn when `train`.
    fn attention(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (b, _, l) = x.shape();
        let q = self.q.forward(x, train);
        let k = self.k.forward(x, train);
        let v = self.v.forward(x, train);
        let inv_sqrt_d = 1.0 / (self.d as f32).sqrt();
        let mut out = x.zeros_like();
        let mut attn: Vec<Vec<f32>> = Vec::with_capacity(if train { b } else { 0 });
        let mut row = vec![0.0f32; l];
        for bi in 0..b {
            let mut rows = vec![0.0f32; l * l];
            for i in 0..l {
                score_row(&q, &k, bi, i, inv_sqrt_d, &mut row);
                softmax_inplace(&mut row[..l]);
                rows[i * l..(i + 1) * l].copy_from_slice(&row[..l]);
            }
            apply_attention(&rows, &v, bi, &mut out);
            if train {
                attn.push(rows);
            }
        }
        if train {
            self.cache = Some(AttnCache { q, k, v, attn });
        }
        out
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let attended = self.attention(x, train);
        let mut h = self.o.forward(&attended, train);
        h.add_assign(x);
        let h = self.bn1.forward(&h, train);
        let f = self.ffn1.forward(&h, train);
        let f = self.relu_ffn.forward(&f, train);
        let mut f = self.ffn2.forward(&f, train);
        f.add_assign(&h);
        self.bn2.forward(&f, train)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        let (b, _, l) = x.shape();
        let q = self.q.infer(x);
        let k = self.k.infer(x);
        let v = self.v.infer(x);
        let inv_sqrt_d = 1.0 / (self.d as f32).sqrt();
        let mut attended = x.zeros_like();
        let mut rows = vec![0.0f32; l * l];
        let mut row = vec![0.0f32; l];
        for bi in 0..b {
            for i in 0..l {
                score_row(&q, &k, bi, i, inv_sqrt_d, &mut row);
                softmax_inplace(&mut row[..l]);
                rows[i * l..(i + 1) * l].copy_from_slice(&row[..l]);
            }
            apply_attention(&rows, &v, bi, &mut attended);
        }
        let mut h = self.o.infer(&attended);
        h.add_assign(x);
        let h = self.bn1.infer(&h);
        let f = relu_infer(&self.ffn1.infer(&h));
        let mut f = self.ffn2.infer(&f);
        f.add_assign(&h);
        self.bn2.infer(&f)
    }

    /// Backward through the whole block. Attention backward, per batch row:
    /// `dV[c,j] = Σ_i A[i,j]·dO[c,i]`, `dA[i,j] = Σ_c dO[c,i]·V[c,j]`,
    /// softmax backward `dS = A ⊙ (dA − rowdot(dA, A))`, then
    /// `dQ[c,i] = Σ_j dS[i,j]·K[c,j]·inv√d` and
    /// `dK[c,j] = Σ_i dS[i,j]·Q[c,i]·inv√d`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.bn2.backward(grad_out);
        // FFN residual: g flows both through the FFN and directly to h.
        let gf = self.ffn2.backward(&g);
        let gf = self.relu_ffn.backward(&gf);
        let mut gh = self.ffn1.backward(&gf);
        gh.add_assign(&g);
        let gh = self.bn1.backward(&gh);
        // Attention residual: gh flows through o-projection and directly to x.
        let g_att = self.o.backward(&gh);
        let cache = self
            .cache
            .take()
            .expect("TransBlock::backward requires forward(train=true) first");
        let (b, d, l) = cache.q.shape();
        let inv_sqrt_d = 1.0 / (self.d as f32).sqrt();
        let mut dq = cache.q.zeros_like();
        let mut dk = cache.k.zeros_like();
        let mut dv = cache.v.zeros_like();
        let mut da = vec![0.0f32; l * l];
        let mut ds = vec![0.0f32; l * l];
        for bi in 0..b {
            let attn = &cache.attn[bi];
            // dV and dA.
            da.fill(0.0);
            for c in 0..d {
                let go = g_att.row(bi, c);
                let vr = cache.v.row(bi, c);
                let dvr = dv.row_mut(bi, c);
                for i in 0..l {
                    let g = go[i];
                    if g == 0.0 {
                        continue;
                    }
                    let ar = &attn[i * l..(i + 1) * l];
                    let dar = &mut da[i * l..(i + 1) * l];
                    for j in 0..l {
                        dvr[j] += ar[j] * g;
                        dar[j] += g * vr[j];
                    }
                }
            }
            // Softmax backward per output row.
            for i in 0..l {
                let ar = &attn[i * l..(i + 1) * l];
                let dar = &da[i * l..(i + 1) * l];
                let dot: f32 = ar.iter().zip(dar).map(|(a, g)| a * g).sum();
                let dsr = &mut ds[i * l..(i + 1) * l];
                for j in 0..l {
                    dsr[j] = ar[j] * (dar[j] - dot);
                }
            }
            // dQ and dK through the scaled dot product.
            for c in 0..d {
                let qr = cache.q.row(bi, c);
                let kr = cache.k.row(bi, c);
                let dqr = dq.row_mut(bi, c);
                for i in 0..l {
                    let dsr = &ds[i * l..(i + 1) * l];
                    let mut acc = 0.0f32;
                    for j in 0..l {
                        acc += dsr[j] * kr[j];
                    }
                    dqr[i] = acc * inv_sqrt_d;
                }
                let dkr = dk.row_mut(bi, c);
                for j in 0..l {
                    let mut acc = 0.0f32;
                    for i in 0..l {
                        acc += ds[i * l + j] * qr[i];
                    }
                    dkr[j] = acc * inv_sqrt_d;
                }
            }
        }
        let mut grad_in = self.q.backward(&dq);
        grad_in.add_assign(&self.k.backward(&dk));
        grad_in.add_assign(&self.v.backward(&dv));
        grad_in.add_assign(&gh); // residual branch
        grad_in
    }
}

impl VisitParams for TransBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.q.visit_params(f);
        self.k.visit_params(f);
        self.v.visit_params(f);
        self.o.visit_params(f);
        self.bn1.visit_params(f);
        self.ffn1.visit_params(f);
        self.ffn2.visit_params(f);
        self.bn2.visit_params(f);
    }
}

/// The TransAppS-style detector: conv embedding (conv + BN + ReLU) →
/// attention blocks → GAP → linear head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransAppNet {
    config: TransAppConfig,
    embed: Conv1d,
    embed_bn: BatchNorm1d,
    #[serde(skip)]
    embed_relu: ReLU,
    blocks: Vec<TransBlock>,
    gap: GlobalAvgPool,
    head: Linear,
    #[serde(skip)]
    last_features: Option<Tensor>,
}

impl TransAppNet {
    /// Build a freshly initialized network.
    pub fn new(config: TransAppConfig) -> TransAppNet {
        assert!(config.blocks > 0, "at least one attention block");
        assert!(config.d_model > 0, "d_model must be positive");
        let embed = Conv1d::new(
            config.in_channels,
            config.d_model,
            config.kernel,
            config.seed,
        );
        let blocks = (0..config.blocks)
            .map(|i| {
                TransBlock::new(
                    config.d_model,
                    config.seed.wrapping_add(1000 * (i as u64 + 1)),
                )
            })
            .collect();
        let head = Linear::new(
            config.d_model,
            config.num_classes,
            config.seed.wrapping_add(9999),
        );
        TransAppNet {
            embed,
            embed_bn: BatchNorm1d::new(config.d_model),
            embed_relu: ReLU::new(),
            blocks,
            gap: GlobalAvgPool::new(),
            head,
            last_features: None,
            config,
        }
    }

    /// The architecture parameters.
    pub fn config(&self) -> &TransAppConfig {
        &self.config
    }

    /// Kernel size of the convolutional embedding.
    pub fn kernel(&self) -> usize {
        self.config.kernel
    }

    /// Forward pass to logits `[B, num_classes]`; caches the last-block
    /// feature maps for CAM extraction.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Matrix {
        let h = self.embed.forward(x, train);
        let h = self.embed_bn.forward(&h, train);
        let mut h = self.embed_relu.forward(&h, train);
        for block in &mut self.blocks {
            h = block.forward(&h, train);
        }
        let pooled = self.gap.forward(&h, train);
        self.last_features = Some(h);
        self.head.forward(&pooled, train)
    }

    /// Pure inference: `(logits, last-block features)`.
    pub fn infer(&self, x: &Tensor) -> (Matrix, Tensor) {
        let mut h = relu_infer(&self.embed_bn.infer(&self.embed.infer(x)));
        for block in &self.blocks {
            h = block.infer(&h);
        }
        let pooled = self.gap.infer(&h);
        let logits = self.head.infer(&pooled);
        (logits, h)
    }

    /// Pure inference: positive-class probability and class-1 CAM per row.
    pub fn infer_with_cam(&self, x: &Tensor) -> (Vec<f32>, Vec<Vec<f32>>) {
        let (logits, features) = self.infer(x);
        let mut probs = Vec::with_capacity(logits.rows);
        let mut row = vec![0.0f32; logits.cols];
        for r in 0..logits.rows {
            softmax_row(logits.row(r), &mut row);
            probs.push(row[1]);
        }
        let cams = cam_from_features(&features, self.head.weight_row(1));
        (probs, cams)
    }

    /// Backward from logit gradients (after a training-mode forward).
    pub fn backward(&mut self, grad_logits: &Matrix) {
        let g = self.head.backward(grad_logits);
        let mut g = self.gap.backward(&g);
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g);
        }
        let g = self.embed_relu.backward(&g);
        let g = self.embed_bn.backward(&g);
        let _ = self.embed.backward(&g);
    }
}

impl VisitParams for TransAppNet {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.embed.visit_params(f);
        self.embed_bn.visit_params(f);
        for block in &mut self.blocks {
            block.visit_params(f);
        }
        self.head.visit_params(f);
    }
}

// ---------------------------------------------------------------------------
// Frozen plan
// ---------------------------------------------------------------------------

/// Calibration record of one frozen block's conv inputs.
#[derive(Debug, Clone, Copy, Default)]
struct TransRanges {
    /// Block input (feeds Q/K/V).
    input: f32,
    /// Attended values (feed the output projection).
    attn_out: f32,
    /// Post-BN1 activation (feeds ffn1).
    bn1_out: f32,
    /// FFN hidden activation (feeds ffn2).
    ffn_hidden: f32,
}

#[derive(Debug, Clone)]
struct FrozenTransBlock {
    q: PlanConv,
    k: PlanConv,
    v: PlanConv,
    o: PlanConv,
    bn1_scale: Vec<f32>,
    bn1_shift: Vec<f32>,
    ffn1: PlanConv,
    ffn2: PlanConv,
    bn2_scale: Vec<f32>,
    bn2_shift: Vec<f32>,
    d: usize,
}

impl FrozenTransBlock {
    /// Run the block in place over `buf_a` (input and output), using
    /// `buf_b`/`buf_c` as `[B, 2d, L]`-capable scratch and `aux` for
    /// Q/K/V (`3·B·d·L`) plus one `[L, L]` score matrix.
    #[allow(clippy::too_many_arguments)]
    fn infer_into(
        &self,
        buf_a: &mut [f32],
        buf_b: &mut [f32],
        buf_c: &mut [f32],
        aux: &mut [f32],
        qbuf: &mut [i8],
        batch: usize,
        l: usize,
        mut ranges: Option<&mut TransRanges>,
    ) {
        let d = self.d;
        let n = batch * d * l;
        let x = &buf_a[..n];
        if let Some(r) = ranges.as_deref_mut() {
            r.input = r.input.max(maxabs(x));
        }
        let (q_buf, rest) = aux.split_at_mut(n);
        let (k_buf, rest) = rest.split_at_mut(n);
        let (v_buf, rest) = rest.split_at_mut(n);
        let scores = &mut rest[..l * l];
        self.q.infer_into(x, batch, l, q_buf, false, qbuf);
        self.k.infer_into(x, batch, l, k_buf, false, qbuf);
        self.v.infer_into(x, batch, l, v_buf, false, qbuf);
        // Attention: scores row-by-row, softmax, attended values → buf_b.
        let inv_sqrt_d = 1.0 / (d as f32).sqrt();
        for bi in 0..batch {
            let base = bi * d * l;
            for i in 0..l {
                let row = &mut scores[i * l..(i + 1) * l];
                row.fill(0.0);
                for c in 0..d {
                    let qv = q_buf[base + c * l + i];
                    if qv == 0.0 {
                        continue;
                    }
                    let kr = &k_buf[base + c * l..base + (c + 1) * l];
                    for j in 0..l {
                        row[j] += qv * kr[j];
                    }
                }
                for s in row.iter_mut() {
                    *s *= inv_sqrt_d;
                }
                softmax_inplace(row);
            }
            for c in 0..d {
                let vr = &v_buf[base + c * l..base + (c + 1) * l];
                let or = &mut buf_b[base + c * l..base + (c + 1) * l];
                for i in 0..l {
                    let a = &scores[i * l..(i + 1) * l];
                    let mut acc = 0.0f32;
                    for j in 0..l {
                        acc += a[j] * vr[j];
                    }
                    or[i] = acc;
                }
            }
        }
        if let Some(r) = ranges.as_deref_mut() {
            r.attn_out = r.attn_out.max(maxabs(&buf_b[..n]));
        }
        // Output projection → buf_c, residual add onto x, BN1 affine.
        self.o.infer_into(&buf_b[..n], batch, l, buf_c, false, qbuf);
        for bi in 0..batch {
            for c in 0..d {
                let base = (bi * d + c) * l;
                let (s, t) = (self.bn1_scale[c], self.bn1_shift[c]);
                for i in 0..l {
                    let h = buf_c[base + i] + buf_a[base + i];
                    buf_a[base + i] = h * s + t;
                }
            }
        }
        if let Some(r) = ranges.as_deref_mut() {
            r.bn1_out = r.bn1_out.max(maxabs(&buf_a[..n]));
        }
        // FFN: d → 2d (ReLU) → d, residual, BN2 affine.
        self.ffn1
            .infer_into(&buf_a[..n], batch, l, buf_b, true, qbuf);
        if let Some(r) = ranges {
            r.ffn_hidden = r.ffn_hidden.max(maxabs(&buf_b[..batch * 2 * d * l]));
        }
        self.ffn2
            .infer_into(&buf_b[..batch * 2 * d * l], batch, l, buf_c, false, qbuf);
        for bi in 0..batch {
            for c in 0..d {
                let base = (bi * d + c) * l;
                let (s, t) = (self.bn2_scale[c], self.bn2_shift[c]);
                for i in 0..l {
                    let f = buf_c[base + i] + buf_a[base + i];
                    buf_a[base + i] = f * s + t;
                }
            }
        }
    }

    fn push_bits(&self, bits: &mut Vec<u32>) {
        for conv in [&self.q, &self.k, &self.v, &self.o, &self.ffn1, &self.ffn2] {
            conv.push_bits(bits);
        }
        for affine in [
            &self.bn1_scale,
            &self.bn1_shift,
            &self.bn2_scale,
            &self.bn2_shift,
        ] {
            bits.extend(affine.iter().map(|v| v.to_bits()));
        }
    }
}

fn maxabs(s: &[f32]) -> f32 {
    s.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// The frozen serving form of a [`TransAppNet`], at either precision —
/// embedding BN folded into the embedding conv (ReLU fused), block
/// BatchNorms applied as per-channel affines, attention run inside the
/// arena's aux scratch with zero steady-state allocations.
#[derive(Debug, Clone)]
pub struct FrozenTransApp {
    embed: PlanConv,
    blocks: Vec<FrozenTransBlock>,
    head_weight: Vec<f32>,
    head_bias: Vec<f32>,
    in_channels: usize,
    d: usize,
    num_classes: usize,
    kernel: usize,
}

impl FrozenTransApp {
    /// Compile `net` into a frozen f32 plan. `net` is read, not consumed.
    pub fn freeze(net: &TransAppNet) -> FrozenTransApp {
        assert!(
            net.head.out_features >= 2,
            "frozen plan needs a binary (or wider) head for class-1 CAM"
        );
        let blocks = net
            .blocks
            .iter()
            .map(|b| {
                let (bn1_scale, bn1_shift) = b.bn1.inference_affine();
                let (bn2_scale, bn2_shift) = b.bn2.inference_affine();
                FrozenTransBlock {
                    q: PlanConv::F32(FrozenConv::from_conv(&b.q)),
                    k: PlanConv::F32(FrozenConv::from_conv(&b.k)),
                    v: PlanConv::F32(FrozenConv::from_conv(&b.v)),
                    o: PlanConv::F32(FrozenConv::from_conv(&b.o)),
                    bn1_scale,
                    bn1_shift,
                    ffn1: PlanConv::F32(FrozenConv::from_conv(&b.ffn1)),
                    ffn2: PlanConv::F32(FrozenConv::from_conv(&b.ffn2)),
                    bn2_scale,
                    bn2_shift,
                    d: b.d,
                }
            })
            .collect();
        FrozenTransApp {
            embed: PlanConv::F32(FrozenConv::fold(&net.embed, &net.embed_bn)),
            blocks,
            head_weight: net.head.weight.clone(),
            head_bias: net.head.bias.clone(),
            in_channels: net.config.in_channels,
            d: net.config.d_model,
            num_classes: net.head.out_features,
            kernel: net.config.kernel,
        }
    }

    /// Quantize this f32 plan into an int8 plan, calibrating every conv's
    /// input activation scale by replaying `calib` through the f32 path.
    /// Attention math, residual adds and the BN affines stay f32.
    pub fn quantize(&self, calib: &Tensor) -> FrozenTransApp {
        let (embed_range, ranges) = self.calibrate(calib);
        let blocks = self
            .blocks
            .iter()
            .zip(&ranges)
            .map(|(b, r)| FrozenTransBlock {
                q: b.q.quantize(r.input),
                k: b.k.quantize(r.input),
                v: b.v.quantize(r.input),
                o: b.o.quantize(r.attn_out),
                ffn1: b.ffn1.quantize(r.bn1_out),
                ffn2: b.ffn2.quantize(r.ffn_hidden),
                ..b.clone()
            })
            .collect();
        FrozenTransApp {
            embed: self.embed.quantize(embed_range),
            blocks,
            head_weight: self.head_weight.clone(),
            head_bias: self.head_bias.clone(),
            ..*self
        }
    }

    /// Replay `calib` through the f32 plan, recording each conv's input
    /// activation range. One-time pass at quantize time — allocates freely.
    fn calibrate(&self, calib: &Tensor) -> (f32, Vec<TransRanges>) {
        let (b, c, l) = calib.shape();
        assert_eq!(c, self.in_channels, "calibration channel mismatch");
        assert!(b > 0 && l > 0, "calibration needs a non-empty batch");
        let wide = b * self.max_channels() * l;
        let mut buf_a = vec![0.0f32; wide];
        let mut buf_b = vec![0.0f32; wide];
        let mut buf_c = vec![0.0f32; wide];
        let mut aux = vec![0.0f32; self.aux_len(b, l)];
        let embed_range = calib.max_abs();
        self.embed
            .infer_into(&calib.data[..b * c * l], b, l, &mut buf_a, true, &mut []);
        let mut ranges = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let mut r = TransRanges::default();
            block.infer_into(
                &mut buf_a,
                &mut buf_b,
                &mut buf_c,
                &mut aux,
                &mut [],
                b,
                l,
                Some(&mut r),
            );
            ranges.push(r);
        }
        (embed_range, ranges)
    }

    fn aux_len(&self, batch: usize, l: usize) -> usize {
        3 * batch * self.d * l + l * l
    }

    /// Whether this plan was built by [`FrozenTransApp::quantize`].
    pub fn is_int8(&self) -> bool {
        self.embed.is_int8()
    }

    /// Kernel size of the convolutional embedding.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Channel count of the final feature maps (= `d_model`).
    pub fn features(&self) -> usize {
        self.d
    }

    /// Widest channel count of any activation tensor (the FFN hidden).
    pub fn max_channels(&self) -> usize {
        (2 * self.d).max(self.in_channels)
    }

    /// Number of classes of the head.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Full forward pass into `arena` — same outputs and contract as
    /// [`crate::frozen::FrozenResNet::predict_into`]: zero heap
    /// allocations once the arena has seen the shape.
    pub fn predict_into(&self, x: &Tensor, arena: &mut InferenceArena) {
        let _span = ds_obs::span!(if self.is_int8() {
            "frozen.forward.int8"
        } else {
            "frozen.forward"
        });
        let (b, c, l) = x.shape();
        assert_eq!(c, self.in_channels, "frozen input channel mismatch");
        assert!(b > 0 && l > 0, "frozen forward needs a non-empty batch");
        let mc = self.max_channels();
        if self.is_int8() {
            arena.ensure_quant(b, l, mc, self.d, self.num_classes);
        } else {
            arena.ensure(b, l, mc, self.d, self.num_classes);
        }
        arena.ensure_aux(self.aux_len(b, l));
        let (buf_a, buf_b, buf_c, qbuf, aux, pooled, logits, softmax, probs, cams) = arena.parts();
        self.embed
            .infer_into(&x.data[..b * c * l], b, l, buf_b, true, qbuf);
        buf_a[..b * self.d * l].copy_from_slice(&buf_b[..b * self.d * l]);
        for block in &self.blocks {
            block.infer_into(buf_a, buf_b, buf_c, aux, qbuf, b, l, None);
        }
        let feats = &buf_a[..b * self.d * l];
        finish_forward(
            feats,
            &self.head_weight,
            &self.head_bias,
            self.d,
            self.num_classes,
            b,
            l,
            pooled,
            logits,
            softmax,
            probs,
            cams,
        );
    }

    /// Raw parameter bits in a fixed traversal order, for persistence
    /// round-trip equality checks.
    pub fn param_bits(&self) -> Vec<u32> {
        let mut bits = Vec::new();
        self.embed.push_bits(&mut bits);
        for block in &self.blocks {
            block.push_bits(&mut bits);
        }
        bits.extend(self.head_weight.iter().map(|v| v.to_bits()));
        bits.extend(self.head_bias.iter().map(|v| v.to_bits()));
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input(b: usize, c: usize, l: usize, seed: usize) -> Tensor {
        let data: Vec<f32> = (0..b * c * l)
            .map(|i| (((i + seed) * 29 % 13) as f32 - 6.0) / 3.0)
            .collect();
        Tensor::from_data(b, c, l, data)
    }

    fn tiny_config(kernel: usize, seed: u64) -> TransAppConfig {
        TransAppConfig {
            in_channels: 1,
            d_model: 4,
            blocks: 1,
            kernel,
            num_classes: 2,
            seed,
        }
    }

    fn warm_bn(net: &mut TransAppNet, l: usize) {
        let x = sample_input(6, net.config.in_channels, l, 3);
        for _ in 0..4 {
            let _ = net.forward(&x, true);
        }
    }

    #[test]
    fn forward_shapes() {
        let mut net = TransAppNet::new(tiny_config(5, 1));
        let x = sample_input(3, 1, 20, 0);
        let logits = net.forward(&x, false);
        assert_eq!((logits.rows, logits.cols), (3, 2));
        assert_eq!(net.last_features.as_ref().unwrap().shape(), (3, 4, 20));
        assert_eq!(net.kernel(), 5);
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let mut row = vec![0.3f32, -1.0, 2.5, 0.0];
        softmax_inplace(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn infer_matches_eval_forward() {
        let mut net = TransAppNet::new(tiny_config(5, 8));
        warm_bn(&mut net, 16);
        let x = sample_input(3, 1, 16, 5);
        let logits_mut = net.forward(&x, false);
        let (logits_pure, _) = net.infer(&x);
        for (a, b) in logits_mut.data.iter().zip(&logits_pure.data) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn gradient_check_through_attention() {
        // Finite-difference spot check with loss sum(logits^2)/2 —
        // validates the attention backward (softmax Jacobian, dQ/dK/dV)
        // and the double residual wiring.
        let mut net = TransAppNet::new(tiny_config(3, 11));
        let x = sample_input(2, 1, 8, 1);
        net.zero_grad();
        let logits = net.forward(&x, true);
        net.backward(&logits);
        let mut grads: Vec<f32> = Vec::new();
        net.visit_params(&mut |p, g| {
            for i in [0usize, p.len() / 2, p.len() - 1] {
                let _ = &p[i];
                grads.push(g[i]);
            }
        });
        let loss = |net: &mut TransAppNet, x: &Tensor| -> f32 {
            net.forward(x, true).data.iter().map(|v| v * v / 2.0).sum()
        };
        let eps = 1e-3f32;
        let total = grads.len();
        for (s, &analytic) in grads.iter().enumerate() {
            let mut orig = 0.0f32;
            let probe = |net: &mut TransAppNet, delta: f32, store: &mut f32| {
                let mut vs = 0usize;
                net.visit_params(&mut |p, _| {
                    for ii in [0usize, p.len() / 2, p.len() - 1] {
                        if vs == s {
                            if delta == 0.0 {
                                *store = p[ii];
                            } else {
                                p[ii] += delta;
                            }
                        }
                        vs += 1;
                    }
                });
            };
            probe(&mut net, 0.0, &mut orig);
            probe(&mut net, eps, &mut orig);
            let lp = loss(&mut net, &x);
            probe(&mut net, -2.0 * eps, &mut orig);
            let lm = loss(&mut net, &x);
            probe(&mut net, eps, &mut orig);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 5e-2 * numeric.abs().max(1.0),
                "param sample {s}: numeric {numeric} vs analytic {analytic}"
            );
        }
        assert!(total > 10, "sampled too few parameters");
    }

    #[test]
    fn frozen_matches_reference_within_tolerance() {
        let mut net = TransAppNet::new(tiny_config(5, 77));
        warm_bn(&mut net, 24);
        let frozen = FrozenTransApp::freeze(&net);
        let x = sample_input(4, 1, 24, 0);
        let (probs, cams) = net.infer_with_cam(&x);
        let mut arena = InferenceArena::new();
        frozen.predict_into(&x, &mut arena);
        for bi in 0..4 {
            assert!(
                (arena.probs()[bi] - probs[bi]).abs() < 1e-4,
                "prob {} vs {}",
                arena.probs()[bi],
                probs[bi]
            );
            assert_eq!(arena.probs()[bi] > 0.5, probs[bi] > 0.5, "decision flip");
            for (a, r) in arena.cam(bi).iter().zip(&cams[bi]) {
                assert!((a - r).abs() < 1e-3, "cam {a} vs {r}");
            }
        }
    }

    #[test]
    fn quantized_plan_matches_frozen_decisions() {
        let mut net = TransAppNet::new(tiny_config(5, 9));
        warm_bn(&mut net, 24);
        let frozen = FrozenTransApp::freeze(&net);
        assert!(!frozen.is_int8());
        let quant = frozen.quantize(&sample_input(8, 1, 24, 11));
        assert!(quant.is_int8());
        let x = sample_input(4, 1, 24, 2);
        let mut fa = InferenceArena::new();
        let mut qa = InferenceArena::new();
        frozen.predict_into(&x, &mut fa);
        quant.predict_into(&x, &mut qa);
        for bi in 0..4 {
            let (fp, qp) = (fa.probs()[bi], qa.probs()[bi]);
            assert!((fp - qp).abs() < 0.05, "prob drift {fp} vs {qp}");
            if (fp - 0.5).abs() > 0.05 {
                assert_eq!(fp > 0.5, qp > 0.5, "decision flip");
            }
        }
    }

    #[test]
    fn steady_state_predict_allocates_nothing() {
        let mut net = TransAppNet::new(tiny_config(5, 13));
        warm_bn(&mut net, 20);
        for plan in [
            FrozenTransApp::freeze(&net),
            FrozenTransApp::freeze(&net).quantize(&sample_input(4, 1, 20, 1)),
        ] {
            let x = sample_input(3, 1, 20, 2);
            let mut arena = InferenceArena::new();
            plan.predict_into(&x, &mut arena); // warmup sizes the arena
            let before = ds_obs::alloc_count();
            for _ in 0..8 {
                plan.predict_into(&x, &mut arena);
            }
            assert_eq!(
                ds_obs::alloc_count(),
                before,
                "steady-state frozen transapp forward must not allocate"
            );
        }
    }

    #[test]
    fn refreeze_is_bit_identical() {
        let mut net = TransAppNet::new(tiny_config(3, 5));
        warm_bn(&mut net, 16);
        assert_eq!(
            FrozenTransApp::freeze(&net).param_bits(),
            FrozenTransApp::freeze(&net).param_bits()
        );
    }
}
