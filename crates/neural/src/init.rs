//! Weight initialization (seeded, reproducible).

use crate::randutil_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// He/Kaiming-normal initialization for a weight buffer feeding ReLU units:
/// `std = sqrt(2 / fan_in)`.
pub fn he_normal(seed: u64, fan_in: usize, out: &mut [f32]) {
    let mut rng = StdRng::seed_from_u64(seed);
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    for w in out {
        *w = randutil_normal(&mut rng, 0.0, std);
    }
}

/// Xavier/Glorot-normal initialization: `std = sqrt(2 / (fan_in + fan_out))`.
pub fn xavier_normal(seed: u64, fan_in: usize, fan_out: usize, out: &mut [f32]) {
    let mut rng = StdRng::seed_from_u64(seed);
    let std = (2.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    for w in out {
        *w = randutil_normal(&mut rng, 0.0, std);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_normal_variance_scales_with_fan_in() {
        let mut small = vec![0.0f32; 10_000];
        let mut large = vec![0.0f32; 10_000];
        he_normal(1, 4, &mut small);
        he_normal(1, 64, &mut large);
        let var = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32;
        assert!((var(&small) - 0.5).abs() < 0.05, "var {}", var(&small));
        assert!((var(&large) - 2.0 / 64.0).abs() < 0.01);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = vec![0.0f32; 16];
        let mut b = vec![0.0f32; 16];
        he_normal(7, 8, &mut a);
        he_normal(7, 8, &mut b);
        assert_eq!(a, b);
        xavier_normal(7, 8, 4, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_variance() {
        let mut buf = vec![0.0f32; 20_000];
        xavier_normal(3, 10, 10, &mut buf);
        let var = buf.iter().map(|x| x * x).sum::<f32>() / buf.len() as f32;
        assert!((var - 0.1).abs() < 0.01, "var {var}");
    }
}
