//! Losses: softmax cross-entropy for window classification (detection) and
//! per-timestep binary cross-entropy for the seq2seq baselines.

use crate::activations::sigmoid;
use crate::tensor::{Matrix, Tensor};

/// Softmax probabilities of a logit row (numerically stable).
pub fn softmax_row(logits: &[f32], out: &mut [f32]) {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &l) in out.iter_mut().zip(logits) {
        let e = (l - max).exp();
        *o = e;
        sum += e;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// Softmax cross-entropy with integer class labels and optional per-class
/// weights (class imbalance is the norm in appliance detection).
///
/// Returns `(mean_loss, grad_logits)`, where the gradient is already divided
/// by the batch size.
pub fn softmax_cross_entropy(
    logits: &Matrix,
    labels: &[u8],
    class_weights: Option<&[f32]>,
) -> (f32, Matrix) {
    assert_eq!(logits.rows, labels.len(), "label count mismatch");
    let classes = logits.cols;
    let mut grad = Matrix::zeros(logits.rows, classes);
    let mut total = 0.0f64;
    let mut weight_sum = 0.0f64;
    let mut probs = vec![0.0f32; classes];
    for (r, &raw_label) in labels.iter().enumerate().take(logits.rows) {
        let label = raw_label as usize;
        assert!(label < classes, "label {label} out of range");
        let w = class_weights.map_or(1.0, |cw| cw[label]);
        softmax_row(logits.row(r), &mut probs);
        let p = probs[label].max(1e-12);
        total += (-(p.ln()) * w) as f64;
        weight_sum += w as f64;
        let g = grad.row_mut(r);
        for (c, gv) in g.iter_mut().enumerate() {
            let indicator = if c == label { 1.0 } else { 0.0 };
            *gv = w * (probs[c] - indicator);
        }
    }
    let norm = weight_sum.max(1e-12) as f32;
    for g in grad.data.iter_mut() {
        *g /= norm;
    }
    ((total / weight_sum.max(1e-12)) as f32, grad)
}

/// Per-timestep binary cross-entropy with logits over a `[B, 1, L]` tensor
/// against 0/1 targets; returns `(mean_loss, grad_logits)` with the gradient
/// divided by `B * L`.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    let n = logits.data.len().max(1) as f32;
    let mut grad = logits.zeros_like();
    let mut total = 0.0f64;
    for i in 0..logits.data.len() {
        let z = logits.data[i];
        let t = targets.data[i];
        // loss = max(z,0) - z*t + ln(1 + e^{-|z|})  (stable form)
        let loss = z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        total += loss as f64;
        grad.data[i] = (sigmoid(z) - t) / n;
    }
    ((total / n as f64) as f32, grad)
}

/// [`bce_with_logits`] with a positive-class weight: ON timesteps are rare
/// in appliance status targets, so seq2seq training up-weights them.
/// `pos_weight = 1.0` reduces to the unweighted loss.
pub fn bce_with_logits_pos_weight(
    logits: &Tensor,
    targets: &Tensor,
    pos_weight: f32,
) -> (f32, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    let mut grad = logits.zeros_like();
    let mut total = 0.0f64;
    let mut weight_sum = 0.0f64;
    for i in 0..logits.data.len() {
        let z = logits.data[i];
        let t = targets.data[i];
        let w = if t > 0.5 { pos_weight } else { 1.0 };
        let loss = z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        total += (w * loss) as f64;
        weight_sum += w as f64;
        grad.data[i] = w * (sigmoid(z) - t);
    }
    let norm = weight_sum.max(1e-12) as f32;
    for g in grad.data.iter_mut() {
        *g /= norm;
    }
    ((total / weight_sum.max(1e-12)) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_row_sums_to_one() {
        let mut out = vec![0.0; 3];
        softmax_row(&[1.0, 2.0, 3.0], &mut out);
        assert!((out.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(out[2] > out[1] && out[1] > out[0]);
        // Stability with huge logits.
        softmax_row(&[1000.0, 0.0], &mut out[..2]);
        assert!((out[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_low() {
        let logits = Matrix::from_data(1, 2, vec![-10.0, 10.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[1], None);
        assert!(loss < 1e-3);
        assert!(grad.data.iter().all(|g| g.abs() < 1e-3));
    }

    #[test]
    fn cross_entropy_uniform_prediction() {
        let logits = Matrix::from_data(1, 2, vec![0.0, 0.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0], None);
        assert!((loss - (2.0f32).ln()).abs() < 1e-5);
        assert!((grad.get(0, 0) - (-0.5)).abs() < 1e-5);
        assert!((grad.get(0, 1) - 0.5).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let logits = Matrix::from_data(2, 2, vec![0.3, -0.7, 1.2, 0.1]);
        let labels = [1u8, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels, None);
        let eps = 1e-3f32;
        for i in 0..logits.data.len() {
            let mut lp = logits.clone();
            lp.data[i] += eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &labels, None);
            let mut lm = logits.clone();
            lm.data[i] -= eps;
            let (loss_m, _) = softmax_cross_entropy(&lm, &labels, None);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!((numeric - grad.data[i]).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    fn class_weights_rebalance() {
        let logits = Matrix::from_data(2, 2, vec![0.0, 0.0, 0.0, 0.0]);
        let labels = [0u8, 1];
        let (_, grad_unweighted) = softmax_cross_entropy(&logits, &labels, None);
        let (_, grad_weighted) = softmax_cross_entropy(&logits, &labels, Some(&[1.0, 3.0]));
        // Row 1 (label 1, weight 3) contributes relatively more after
        // weighting than row 0.
        let r0u = grad_unweighted.get(0, 0).abs();
        let r1u = grad_unweighted.get(1, 0).abs();
        let r0w = grad_weighted.get(0, 0).abs();
        let r1w = grad_weighted.get(1, 0).abs();
        assert!((r0u - r1u).abs() < 1e-6);
        assert!(r1w > 2.9 * r0w, "weighted ratio {}", r1w / r0w);
    }

    #[test]
    fn bce_matches_manual_values() {
        let logits = Tensor::from_data(1, 1, 2, vec![0.0, 0.0]);
        let targets = Tensor::from_data(1, 1, 2, vec![0.0, 1.0]);
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!((loss - (2.0f32).ln()).abs() < 1e-5);
        assert!((grad.data[0] - 0.25).abs() < 1e-5); // (0.5 - 0)/2
        assert!((grad.data[1] + 0.25).abs() < 1e-5);
    }

    #[test]
    fn bce_gradient_check() {
        let logits = Tensor::from_data(1, 1, 4, vec![0.5, -1.5, 2.0, 0.0]);
        let targets = Tensor::from_data(1, 1, 4, vec![1.0, 0.0, 1.0, 0.0]);
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.data[i] += eps;
            let (loss_p, _) = bce_with_logits(&lp, &targets);
            let mut lm = logits.clone();
            lm.data[i] -= eps;
            let (loss_m, _) = bce_with_logits(&lm, &targets);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!((numeric - grad.data[i]).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    fn pos_weight_one_matches_unweighted() {
        let logits = Tensor::from_data(1, 1, 3, vec![0.4, -0.9, 1.7]);
        let targets = Tensor::from_data(1, 1, 3, vec![1.0, 0.0, 1.0]);
        let (l1, g1) = bce_with_logits(&logits, &targets);
        let (l2, g2) = bce_with_logits_pos_weight(&logits, &targets, 1.0);
        assert!((l1 - l2).abs() < 1e-6);
        for (a, b) in g1.data.iter().zip(g2.data.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn pos_weight_gradient_check() {
        let logits = Tensor::from_data(1, 1, 4, vec![0.5, -1.5, 2.0, 0.0]);
        let targets = Tensor::from_data(1, 1, 4, vec![1.0, 0.0, 1.0, 0.0]);
        let (_, grad) = bce_with_logits_pos_weight(&logits, &targets, 3.0);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.data[i] += eps;
            let (loss_p, _) = bce_with_logits_pos_weight(&lp, &targets, 3.0);
            let mut lm = logits.clone();
            lm.data[i] -= eps;
            let (loss_m, _) = bce_with_logits_pos_weight(&lm, &targets, 3.0);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!((numeric - grad.data[i]).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    fn bce_stable_at_extremes() {
        let logits = Tensor::from_data(1, 1, 2, vec![60.0, -60.0]);
        let targets = Tensor::from_data(1, 1, 2, vec![1.0, 0.0]);
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!(loss.is_finite());
        assert!(loss < 1e-3);
        assert!(grad.data.iter().all(|g| g.is_finite()));
    }
}
