//! The ResNet for time-series classification (Wang et al. 2016) that the
//! paper's ensemble is built from: stacked residual blocks → global average
//! pooling → linear head. The kernel size is uniform across a network and
//! is the ensemble's diversity knob (`k ∈ {5, 7, 9, 15}` in the paper).

use crate::linear::Linear;
use crate::loss::softmax_row;
use crate::pool::GlobalAvgPool;
use crate::resblock::ResidualBlock;
use crate::tensor::{Matrix, Tensor};
use crate::VisitParams;
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of a [`ResNet`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResNetConfig {
    /// Input channels (1 for univariate consumption series).
    pub in_channels: usize,
    /// Output channels of each residual block, in order.
    pub channels: Vec<usize>,
    /// Kernel size shared by every convolution in every block.
    pub kernel: usize,
    /// Number of classes of the head (2 for appliance detection).
    pub num_classes: usize,
    /// Seed controlling weight initialization.
    pub seed: u64,
}

impl ResNetConfig {
    /// The configuration used throughout this reproduction: two residual
    /// blocks (16 → 32 channels), binary head. The paper's ensemble members
    /// use this with `kernel ∈ {5, 7, 9, 15}`.
    pub fn detection(kernel: usize, seed: u64) -> ResNetConfig {
        ResNetConfig {
            in_channels: 1,
            channels: vec![16, 32],
            kernel,
            num_classes: 2,
            seed,
        }
    }

    /// A deliberately tiny network for unit tests.
    pub fn tiny(kernel: usize, seed: u64) -> ResNetConfig {
        ResNetConfig {
            in_channels: 1,
            channels: vec![4, 8],
            kernel,
            num_classes: 2,
            seed,
        }
    }
}

/// The ResNet-TSC model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResNet {
    config: ResNetConfig,
    blocks: Vec<ResidualBlock>,
    gap: GlobalAvgPool,
    head: Linear,
    /// Feature maps of the last block from the most recent forward pass —
    /// the `f_k(t)` of the CAM formula.
    #[serde(skip)]
    last_features: Option<Tensor>,
}

impl ResNet {
    /// Build a freshly initialized network.
    pub fn new(config: ResNetConfig) -> ResNet {
        assert!(!config.channels.is_empty(), "at least one residual block");
        let mut blocks = Vec::with_capacity(config.channels.len());
        let mut in_ch = config.in_channels;
        for (i, &out_ch) in config.channels.iter().enumerate() {
            blocks.push(ResidualBlock::new(
                in_ch,
                out_ch,
                config.kernel,
                config.seed.wrapping_add(1000 * i as u64),
            ));
            in_ch = out_ch;
        }
        let head = Linear::new(in_ch, config.num_classes, config.seed.wrapping_add(9999));
        ResNet {
            config,
            blocks,
            gap: GlobalAvgPool::new(),
            head,
            last_features: None,
        }
    }

    /// The architecture parameters.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// Kernel size of this member (the ensemble diversity knob).
    pub fn kernel(&self) -> usize {
        self.config.kernel
    }

    /// Forward pass to logits `[B, num_classes]`. Always caches the
    /// last-block feature maps for subsequent CAM extraction.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Matrix {
        let mut h = x.clone();
        for block in &mut self.blocks {
            h = block.forward(&h, train);
        }
        let pooled = self.gap.forward(&h, train);
        self.last_features = Some(h);
        self.head.forward(&pooled, train)
    }

    /// Pure inference (`&self`): returns `(logits, last-block features)`
    /// without mutating any cache. This is the path ensembles use at
    /// prediction time so a trained model can be shared immutably.
    pub fn infer(&self, x: &Tensor) -> (Matrix, Tensor) {
        let mut h = x.clone();
        for block in &self.blocks {
            h = block.infer(&h);
        }
        let pooled = self.gap.infer(&h);
        let logits = self.head.infer(&pooled);
        (logits, h)
    }

    /// Pure inference: positive-class probability and class-1 CAM per row.
    pub fn infer_with_cam(&self, x: &Tensor) -> (Vec<f32>, Vec<Vec<f32>>) {
        let (logits, features) = self.infer(x);
        let mut probs = Vec::with_capacity(logits.rows);
        let mut row = vec![0.0f32; logits.cols];
        for r in 0..logits.rows {
            softmax_row(logits.row(r), &mut row);
            probs.push(row[1]);
        }
        let cams = crate::cam::cam_from_features(&features, self.class_weights(1));
        (probs, cams)
    }

    /// The residual blocks, in order — for the frozen-plan builder.
    pub(crate) fn blocks(&self) -> &[ResidualBlock] {
        &self.blocks
    }

    /// The classifier head — for the frozen-plan builder.
    pub(crate) fn head(&self) -> &Linear {
        &self.head
    }

    /// Backward from logit gradients (after a training-mode forward).
    pub fn backward(&mut self, grad_logits: &Matrix) {
        let g = self.head.backward(grad_logits);
        let mut g = self.gap.backward(&g);
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g);
        }
    }

    /// Feature maps `f_k(t)` of the last block from the most recent forward.
    pub fn last_features(&self) -> Option<&Tensor> {
        self.last_features.as_ref()
    }

    /// Classifier-head weight row for `class` (the `w_k^c`).
    pub fn class_weights(&self, class: usize) -> &[f32] {
        self.head.weight_row(class)
    }

    /// Inference: probability of each class per batch row.
    pub fn predict_proba(&mut self, x: &Tensor) -> Matrix {
        let logits = self.forward(x, false);
        let mut probs = Matrix::zeros(logits.rows, logits.cols);
        for r in 0..logits.rows {
            let mut row = vec![0.0; logits.cols];
            softmax_row(logits.row(r), &mut row);
            probs.row_mut(r).copy_from_slice(&row);
        }
        probs
    }

    /// Inference: probability of the positive class (class 1) per row.
    pub fn predict_positive_proba(&mut self, x: &Tensor) -> Vec<f32> {
        let probs = self.predict_proba(x);
        (0..probs.rows).map(|r| probs.get(r, 1)).collect()
    }
}

impl VisitParams for ResNet {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for block in &mut self.blocks {
            block.visit_params(f);
        }
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::Adam;

    fn toy_batch() -> (Tensor, Vec<u8>) {
        // Class 1 windows contain a strong plateau; class 0 are flat noise.
        let mut windows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            let mut w = vec![0.1f32; 32];
            if i % 2 == 1 {
                for v in &mut w[10..20] {
                    *v = 1.0;
                }
            }
            // Small deterministic jitter to avoid degenerate BN variance.
            for (j, v) in w.iter_mut().enumerate() {
                *v += ((i * 13 + j * 7) % 5) as f32 * 0.01;
            }
            windows.push(w);
            labels.push((i % 2) as u8);
        }
        (Tensor::from_windows(&windows), labels)
    }

    #[test]
    fn forward_shapes() {
        let mut net = ResNet::new(ResNetConfig::tiny(5, 1));
        let (x, _) = toy_batch();
        let logits = net.forward(&x, false);
        assert_eq!(logits.rows, 8);
        assert_eq!(logits.cols, 2);
        let f = net.last_features().unwrap();
        assert_eq!(f.shape(), (8, 8, 32));
        assert_eq!(net.class_weights(1).len(), 8);
        assert_eq!(net.kernel(), 5);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut net = ResNet::new(ResNetConfig::tiny(7, 2));
        let (x, _) = toy_batch();
        let probs = net.predict_proba(&x);
        for r in 0..probs.rows {
            let s: f32 = probs.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        let pos = net.predict_positive_proba(&x);
        assert_eq!(pos.len(), 8);
        for (r, p) in pos.iter().enumerate() {
            assert!((p - probs.get(r, 1)).abs() < 1e-6);
        }
    }

    #[test]
    fn training_separates_toy_classes() {
        let mut net = ResNet::new(ResNetConfig::tiny(5, 3));
        let (x, labels) = toy_batch();
        let mut opt = Adam::new(0.01);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..60 {
            net.zero_grad();
            let logits = net.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels, None);
            first_loss.get_or_insert(loss);
            last_loss = loss;
            net.backward(&grad);
            opt.step(&mut net);
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.5,
            "loss {} -> {last_loss}",
            first_loss.unwrap()
        );
        // Inference should now rank positive windows above negative ones.
        let probs = net.predict_positive_proba(&x);
        let pos_mean: f32 = probs.iter().skip(1).step_by(2).sum::<f32>() / 4.0;
        let neg_mean: f32 = probs.iter().step_by(2).sum::<f32>() / 4.0;
        assert!(
            pos_mean > neg_mean + 0.2,
            "pos {pos_mean} vs neg {neg_mean}"
        );
    }

    #[test]
    fn deterministic_initialization() {
        let mut a = ResNet::new(ResNetConfig::tiny(5, 42));
        let mut b = ResNet::new(ResNetConfig::tiny(5, 42));
        let (x, _) = toy_batch();
        assert_eq!(a.forward(&x, false).data, b.forward(&x, false).data);
        let mut c = ResNet::new(ResNetConfig::tiny(5, 43));
        assert_ne!(a.forward(&x, false).data, c.forward(&x, false).data);
    }

    #[test]
    fn infer_matches_eval_forward() {
        let mut net = ResNet::new(ResNetConfig::tiny(5, 8));
        let (x, _) = toy_batch();
        let logits_mut = net.forward(&x, false);
        let feats_mut = net.last_features().unwrap().clone();
        let (logits_pure, feats_pure) = net.infer(&x);
        assert_eq!(logits_mut.data, logits_pure.data);
        assert_eq!(feats_mut.data, feats_pure.data);
        // And the combined CAM helper agrees with the mutable path.
        let (probs, cams) = net.infer_with_cam(&x);
        assert_eq!(probs, net.predict_positive_proba(&x));
        let cams_mut = crate::cam::class_activation_maps(&net, 1);
        assert_eq!(cams, cams_mut);
    }

    #[test]
    fn param_count_is_stable() {
        let mut net = ResNet::new(ResNetConfig::tiny(3, 0));
        let n1 = net.param_count();
        let (x, _) = toy_batch();
        let _ = net.forward(&x, true);
        assert_eq!(net.param_count(), n1);
        assert!(n1 > 100);
    }
}
