//! The InceptionTime-style detector backbone (Fawaz et al., DMKD 2020;
//! DeviceScope's `inception` model): residual blocks whose core is a
//! **multi-scale convolution** — a 1×1 bottleneck feeding three parallel
//! convolutions with widening kernels, plus a max-pool → 1×1 branch, all
//! concatenated and batch-normalized. Varying receptive fields live
//! *inside* each block here, where the ResNet ensemble varies them across
//! members.
//!
//! The member's nominal kernel `k` spreads into branch widths
//! `{k, 2k+1, 4k+3}` (for the paper-style `k ∈ {5, 7, 9, 15}` this spans
//! the 10/20/40-tap spread of the original InceptionTime). Kernel widths
//! outside the SIMD kernels' const-dispatched set fall back to the
//! dynamic-width scalar path automatically, so any `k` is correct.
//!
//! The frozen form reuses the whole frozen-plan machinery: the post-concat
//! BatchNorm folds **per branch** into each branch convolution's weights
//! (each branch owns a contiguous slice of the normalized channels), the
//! bottleneck and pool convs freeze as-is, and execution runs inside the
//! shared [`InferenceArena`] (branch staging lives in the arena's aux
//! scratch) with zero steady-state allocations. [`FrozenInception`] serves
//! both precisions: [`FrozenInception::quantize`] rebuilds every conv as a
//! calibrated int8 [`QuantConv`] while pooling, concat and the residual
//! adds stay f32.

use crate::activations::{relu_infer, ReLU};
use crate::batchnorm::BatchNorm1d;
use crate::cam::cam_from_features;
use crate::conv::Conv1d;
use crate::frozen::{finish_forward, FrozenConv};
use crate::linear::Linear;
use crate::loss::softmax_row;
use crate::plan::InferenceArena;
use crate::pool::GlobalAvgPool;
use crate::quant::QuantConv;
use crate::tensor::{Matrix, Tensor};
use crate::VisitParams;
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of an [`InceptionNet`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InceptionConfig {
    /// Input channels (1 for univariate consumption series).
    pub in_channels: usize,
    /// Output channels of each inception block, in order. Every entry must
    /// be divisible by 4 (four equal-width branches are concatenated).
    pub channels: Vec<usize>,
    /// Nominal kernel size; branches use `{k, 2k+1, 4k+3}`.
    pub kernel: usize,
    /// Number of classes of the head (2 for appliance detection).
    pub num_classes: usize,
    /// Seed controlling weight initialization.
    pub seed: u64,
}

/// Width-3, stride-1, same-length max pooling — the Inception block's
/// pool branch. Caches per-element argmax indices for the backward
/// scatter.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MaxPool3 {
    #[serde(skip)]
    cache: Option<(Vec<usize>, (usize, usize, usize))>,
}

/// `y[t] = max(x[t-1], x[t], x[t+1])` with edges clamped; ties resolve to
/// the leftmost position (deterministic scatter targets).
fn maxpool3_row(x: &[f32], y: &mut [f32], argmax: Option<&mut [usize]>) {
    let l = x.len();
    let mut arg_store = argmax;
    for t in 0..l {
        let lo = t.saturating_sub(1);
        let hi = (t + 2).min(l);
        let mut best = lo;
        for j in lo + 1..hi {
            if x[j] > x[best] {
                best = j;
            }
        }
        y[t] = x[best];
        if let Some(arg) = arg_store.as_deref_mut() {
            arg[t] = best;
        }
    }
}

impl MaxPool3 {
    /// Forward pass; `train` caches argmax indices for [`MaxPool3::backward`].
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (b, c, l) = x.shape();
        let mut y = x.zeros_like();
        if train {
            let mut argmax = vec![0usize; b * c * l];
            for bi in 0..b {
                for ci in 0..c {
                    let base = (bi * c + ci) * l;
                    maxpool3_row(
                        x.row(bi, ci),
                        y.row_mut(bi, ci),
                        Some(&mut argmax[base..base + l]),
                    );
                }
            }
            self.cache = Some((argmax, (b, c, l)));
        } else {
            for bi in 0..b {
                for ci in 0..c {
                    maxpool3_row(x.row(bi, ci), y.row_mut(bi, ci), None);
                }
            }
        }
        y
    }

    /// Pure inference forward (`&self`).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let (b, c, _) = x.shape();
        let mut y = x.zeros_like();
        for bi in 0..b {
            for ci in 0..c {
                maxpool3_row(x.row(bi, ci), y.row_mut(bi, ci), None);
            }
        }
        y
    }

    /// Backward: each output's gradient scatters to the argmax position of
    /// its window.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (argmax, (b, c, l)) = self
            .cache
            .take()
            .expect("MaxPool3::backward requires forward(train=true) first");
        assert_eq!(grad_out.shape(), (b, c, l));
        let mut g = Tensor::zeros(b, c, l);
        for bi in 0..b {
            for ci in 0..c {
                let base = (bi * c + ci) * l;
                let go = grad_out.row(bi, ci);
                let gi = g.row_mut(bi, ci);
                for (t, &gv) in go.iter().enumerate() {
                    gi[argmax[base + t]] += gv;
                }
            }
        }
        g
    }
}

/// Projection shortcut: 1×1 conv + BN (the Inception analogue of the
/// ResNet block's projection path).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShortcutBn {
    conv: Conv1d,
    bn: BatchNorm1d,
}

impl ShortcutBn {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let h = self.conv.forward(x, train);
        self.bn.forward(&h, train)
    }

    fn infer(&self, x: &Tensor) -> Tensor {
        self.bn.infer(&self.conv.infer(x))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.bn.backward(grad_out);
        self.conv.backward(&g)
    }
}

/// One inception block: bottleneck → {three multi-scale convs} ∥
/// {maxpool3 → 1×1 conv} → concat → BN → +residual → ReLU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InceptionBlock {
    bottleneck: Conv1d,
    branch1: Conv1d,
    branch2: Conv1d,
    branch3: Conv1d,
    pool_conv: Conv1d,
    bn: BatchNorm1d,
    shortcut: Option<ShortcutBn>,
    #[serde(skip)]
    pool: MaxPool3,
    #[serde(skip)]
    relu_out: ReLU,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (4 × branch width).
    pub out_channels: usize,
}

/// Concatenate four equal-shape `[B, W, L]` tensors along channels.
fn concat4(parts: [&Tensor; 4]) -> Tensor {
    let (b, w, l) = parts[0].shape();
    let mut out = Tensor::zeros(b, 4 * w, l);
    for bi in 0..b {
        for (pi, p) in parts.iter().enumerate() {
            debug_assert_eq!(p.shape(), (b, w, l));
            for ci in 0..w {
                out.row_mut(bi, pi * w + ci).copy_from_slice(p.row(bi, ci));
            }
        }
    }
    out
}

/// Split a `[B, 4W, L]` tensor into four `[B, W, L]` channel groups.
fn split4(x: &Tensor) -> [Tensor; 4] {
    let (b, c, l) = x.shape();
    let w = c / 4;
    let mut out = [
        Tensor::zeros(b, w, l),
        Tensor::zeros(b, w, l),
        Tensor::zeros(b, w, l),
        Tensor::zeros(b, w, l),
    ];
    for bi in 0..b {
        for (pi, p) in out.iter_mut().enumerate() {
            for ci in 0..w {
                p.row_mut(bi, ci).copy_from_slice(x.row(bi, pi * w + ci));
            }
        }
    }
    out
}

impl InceptionBlock {
    /// Branch kernel widths for a nominal kernel `k`.
    pub fn branch_kernels(kernel: usize) -> [usize; 3] {
        [kernel, 2 * kernel + 1, 4 * kernel + 3]
    }

    fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> InceptionBlock {
        assert!(
            out_channels.is_multiple_of(4) && out_channels >= 4,
            "inception block output channels must be a positive multiple of 4"
        );
        let w = out_channels / 4;
        let [k1, k2, k3] = InceptionBlock::branch_kernels(kernel);
        let shortcut = (in_channels != out_channels).then(|| ShortcutBn {
            conv: Conv1d::new(in_channels, out_channels, 1, seed.wrapping_add(5)),
            bn: BatchNorm1d::new(out_channels),
        });
        InceptionBlock {
            bottleneck: Conv1d::new(in_channels, w, 1, seed),
            branch1: Conv1d::new(w, w, k1, seed.wrapping_add(1)),
            branch2: Conv1d::new(w, w, k2, seed.wrapping_add(2)),
            branch3: Conv1d::new(w, w, k3, seed.wrapping_add(3)),
            pool_conv: Conv1d::new(in_channels, w, 1, seed.wrapping_add(4)),
            bn: BatchNorm1d::new(out_channels),
            shortcut,
            pool: MaxPool3::default(),
            relu_out: ReLU::new(),
            in_channels,
            out_channels,
        }
    }

    /// Forward pass (training caches every intermediate for backward).
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let bott = self.bottleneck.forward(x, train);
        let c1 = self.branch1.forward(&bott, train);
        let c2 = self.branch2.forward(&bott, train);
        let c3 = self.branch3.forward(&bott, train);
        let pooled = self.pool.forward(x, train);
        let c4 = self.pool_conv.forward(&pooled, train);
        let concat = concat4([&c1, &c2, &c3, &c4]);
        let mut h = self.bn.forward(&concat, train);
        match &mut self.shortcut {
            Some(sc) => h.add_assign(&sc.forward(x, train)),
            None => h.add_assign(x),
        }
        self.relu_out.forward(&h, train)
    }

    /// Pure inference forward (`&self`).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let bott = self.bottleneck.infer(x);
        let c1 = self.branch1.infer(&bott);
        let c2 = self.branch2.infer(&bott);
        let c3 = self.branch3.infer(&bott);
        let c4 = self.pool_conv.infer(&self.pool.infer(x));
        let mut h = self.bn.infer(&concat4([&c1, &c2, &c3, &c4]));
        match &self.shortcut {
            Some(sc) => h.add_assign(&sc.infer(x)),
            None => h.add_assign(x),
        }
        relu_infer(&h)
    }

    /// Backward from the block-output gradient, returning the input
    /// gradient. The channel-concat splits the BN gradient into the four
    /// branch gradients; the three multi-scale branches sum into the
    /// bottleneck's output gradient.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_sum = self.relu_out.backward(grad_out);
        let mut grad_in = match &mut self.shortcut {
            Some(sc) => sc.backward(&g_sum),
            None => g_sum.clone(),
        };
        let g_bn = self.bn.backward(&g_sum);
        let [g1, g2, g3, g4] = split4(&g_bn);
        let mut g_bott = self.branch1.backward(&g1);
        g_bott.add_assign(&self.branch2.backward(&g2));
        g_bott.add_assign(&self.branch3.backward(&g3));
        grad_in.add_assign(&self.bottleneck.backward(&g_bott));
        let g_pool = self.pool_conv.backward(&g4);
        grad_in.add_assign(&self.pool.backward(&g_pool));
        grad_in
    }
}

impl VisitParams for InceptionBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.bottleneck.visit_params(f);
        self.branch1.visit_params(f);
        self.branch2.visit_params(f);
        self.branch3.visit_params(f);
        self.pool_conv.visit_params(f);
        self.bn.visit_params(f);
        if let Some(sc) = &mut self.shortcut {
            sc.conv.visit_params(f);
            sc.bn.visit_params(f);
        }
    }
}

/// The InceptionTime-style detector: stacked inception blocks → GAP →
/// linear head. Same CAM surface as the ResNet (GAP classifier).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InceptionNet {
    config: InceptionConfig,
    blocks: Vec<InceptionBlock>,
    gap: GlobalAvgPool,
    head: Linear,
    #[serde(skip)]
    last_features: Option<Tensor>,
}

impl InceptionNet {
    /// Build a freshly initialized network.
    pub fn new(config: InceptionConfig) -> InceptionNet {
        assert!(!config.channels.is_empty(), "at least one inception block");
        let mut blocks = Vec::with_capacity(config.channels.len());
        let mut in_ch = config.in_channels;
        for (i, &out_ch) in config.channels.iter().enumerate() {
            blocks.push(InceptionBlock::new(
                in_ch,
                out_ch,
                config.kernel,
                config.seed.wrapping_add(1000 * i as u64),
            ));
            in_ch = out_ch;
        }
        let head = Linear::new(in_ch, config.num_classes, config.seed.wrapping_add(9999));
        InceptionNet {
            config,
            blocks,
            gap: GlobalAvgPool::new(),
            head,
            last_features: None,
        }
    }

    /// The architecture parameters.
    pub fn config(&self) -> &InceptionConfig {
        &self.config
    }

    /// Nominal kernel size of this member.
    pub fn kernel(&self) -> usize {
        self.config.kernel
    }

    /// Forward pass to logits `[B, num_classes]`; caches the last-block
    /// feature maps for CAM extraction.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Matrix {
        let mut h = x.clone();
        for block in &mut self.blocks {
            h = block.forward(&h, train);
        }
        let pooled = self.gap.forward(&h, train);
        self.last_features = Some(h);
        self.head.forward(&pooled, train)
    }

    /// Pure inference: `(logits, last-block features)`.
    pub fn infer(&self, x: &Tensor) -> (Matrix, Tensor) {
        let mut h = x.clone();
        for block in &self.blocks {
            h = block.infer(&h);
        }
        let pooled = self.gap.infer(&h);
        let logits = self.head.infer(&pooled);
        (logits, h)
    }

    /// Pure inference: positive-class probability and class-1 CAM per row.
    pub fn infer_with_cam(&self, x: &Tensor) -> (Vec<f32>, Vec<Vec<f32>>) {
        let (logits, features) = self.infer(x);
        let mut probs = Vec::with_capacity(logits.rows);
        let mut row = vec![0.0f32; logits.cols];
        for r in 0..logits.rows {
            softmax_row(logits.row(r), &mut row);
            probs.push(row[1]);
        }
        let cams = cam_from_features(&features, self.head.weight_row(1));
        (probs, cams)
    }

    /// Backward from logit gradients (after a training-mode forward).
    pub fn backward(&mut self, grad_logits: &Matrix) {
        let g = self.head.backward(grad_logits);
        let mut g = self.gap.backward(&g);
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g);
        }
    }
}

impl VisitParams for InceptionNet {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for block in &mut self.blocks {
            block.visit_params(f);
        }
        self.head.visit_params(f);
    }
}

// ---------------------------------------------------------------------------
// Frozen plan
// ---------------------------------------------------------------------------

/// One conv of a frozen plan at either precision (shared by the Inception
/// and TransApp frozen forms; ResNet keeps its dedicated types).
#[derive(Debug, Clone)]
pub(crate) enum PlanConv {
    F32(FrozenConv),
    Int8(QuantConv),
}

impl PlanConv {
    pub(crate) fn infer_into(
        &self,
        x: &[f32],
        batch: usize,
        l: usize,
        y: &mut [f32],
        relu: bool,
        qbuf: &mut [i8],
    ) {
        match self {
            PlanConv::F32(c) => c.infer_into(x, batch, l, y, relu),
            PlanConv::Int8(c) => c.infer_into(x, batch, l, y, relu, qbuf),
        }
    }

    pub(crate) fn quantize(&self, input_maxabs: f32) -> PlanConv {
        match self {
            PlanConv::F32(c) => PlanConv::Int8(QuantConv::quantize(c, input_maxabs)),
            PlanConv::Int8(_) => panic!("plan is already quantized"),
        }
    }

    pub(crate) fn push_bits(&self, bits: &mut Vec<u32>) {
        match self {
            PlanConv::F32(c) => c.push_bits(bits),
            PlanConv::Int8(c) => c.push_bits(bits),
        }
    }

    pub(crate) fn is_int8(&self) -> bool {
        matches!(self, PlanConv::Int8(_))
    }
}

/// Calibration record of one frozen inception block: max-abs of the block
/// input (feeds bottleneck, pool and shortcut) and of the bottleneck and
/// pooled activations (feed the branch convs).
#[derive(Debug, Clone, Copy, Default)]
struct IncRanges {
    input: f32,
    bott: f32,
    pool: f32,
}

#[derive(Debug, Clone)]
struct FrozenIncBlock {
    bottleneck: PlanConv,
    branch1: PlanConv,
    branch2: PlanConv,
    branch3: PlanConv,
    pool_conv: PlanConv,
    shortcut: Option<PlanConv>,
    in_channels: usize,
    /// Branch width (`out_channels / 4`).
    width: usize,
    out_channels: usize,
}

fn maxabs(s: &[f32]) -> f32 {
    s.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

impl FrozenIncBlock {
    /// Aux scratch elements this block needs per `(batch, len)` pass:
    /// bottleneck output + branch staging + pooled input.
    fn aux_channels(&self) -> usize {
        2 * self.width + self.in_channels
    }

    /// Run the block: read `x`, leave the result in `out`, clobber `tmp`
    /// and `aux`. `ranges` records activation max-abs when calibrating.
    #[allow(clippy::too_many_arguments)]
    fn infer_into(
        &self,
        x: &[f32],
        out: &mut [f32],
        tmp: &mut [f32],
        aux: &mut [f32],
        qbuf: &mut [i8],
        batch: usize,
        l: usize,
        mut ranges: Option<&mut IncRanges>,
    ) {
        let (w, n_in) = (self.width, batch * self.in_channels * l);
        let n_out = batch * self.out_channels * l;
        let (bott_buf, rest) = aux.split_at_mut(batch * w * l);
        let (branch_buf, rest) = rest.split_at_mut(batch * w * l);
        let pool_buf = &mut rest[..n_in];
        if let Some(r) = ranges.as_deref_mut() {
            r.input = r.input.max(maxabs(&x[..n_in]));
        }
        self.bottleneck
            .infer_into(x, batch, l, bott_buf, false, qbuf);
        if let Some(r) = ranges.as_deref_mut() {
            r.bott = r.bott.max(maxabs(bott_buf));
        }
        // Pool branch input: width-3 same-length max over each channel row.
        for (y_row, x_row) in pool_buf.chunks_mut(l).zip(x[..n_in].chunks(l)) {
            maxpool3_row(x_row, y_row, None);
        }
        if let Some(r) = ranges {
            r.pool = r.pool.max(maxabs(pool_buf));
        }
        let branches = [&self.branch1, &self.branch2, &self.branch3, &self.pool_conv];
        for (pi, conv) in branches.into_iter().enumerate() {
            let src: &[f32] = if pi == 3 { pool_buf } else { bott_buf };
            conv.infer_into(src, batch, l, branch_buf, false, qbuf);
            // Scatter the branch's rows into its channel slice of `out`.
            for bi in 0..batch {
                for ci in 0..w {
                    let dst = (bi * self.out_channels + pi * w + ci) * l;
                    let s = (bi * w + ci) * l;
                    out[dst..dst + l].copy_from_slice(&branch_buf[s..s + l]);
                }
            }
        }
        match &self.shortcut {
            Some(sc) => {
                sc.infer_into(x, batch, l, tmp, false, qbuf);
                for (o, &r) in out[..n_out].iter_mut().zip(&tmp[..n_out]) {
                    *o = (*o + r).max(0.0);
                }
            }
            None => {
                for (o, &r) in out[..n_out].iter_mut().zip(&x[..n_out]) {
                    *o = (*o + r).max(0.0);
                }
            }
        }
    }

    fn push_bits(&self, bits: &mut Vec<u32>) {
        self.bottleneck.push_bits(bits);
        self.branch1.push_bits(bits);
        self.branch2.push_bits(bits);
        self.branch3.push_bits(bits);
        self.pool_conv.push_bits(bits);
        if let Some(sc) = &self.shortcut {
            sc.push_bits(bits);
        }
    }
}

/// The frozen serving form of an [`InceptionNet`], at either precision —
/// post-concat BN folded per branch, ReLU fused into the residual add,
/// arena-driven with zero steady-state allocations.
#[derive(Debug, Clone)]
pub struct FrozenInception {
    blocks: Vec<FrozenIncBlock>,
    head_weight: Vec<f32>,
    head_bias: Vec<f32>,
    in_channels: usize,
    features: usize,
    num_classes: usize,
    kernel: usize,
    max_channels: usize,
}

impl FrozenInception {
    /// Compile `net` into a frozen f32 plan. `net` is read, not consumed.
    pub fn freeze(net: &InceptionNet) -> FrozenInception {
        assert!(
            net.head.out_features >= 2,
            "frozen plan needs a binary (or wider) head for class-1 CAM"
        );
        let blocks: Vec<FrozenIncBlock> = net
            .blocks
            .iter()
            .map(|b| {
                let w = b.out_channels / 4;
                let (scale, shift) = b.bn.inference_affine();
                let fold = |conv: &Conv1d, pi: usize| {
                    PlanConv::F32(FrozenConv::fold_affine(
                        conv,
                        &scale[pi * w..(pi + 1) * w],
                        &shift[pi * w..(pi + 1) * w],
                    ))
                };
                FrozenIncBlock {
                    bottleneck: PlanConv::F32(FrozenConv::from_conv(&b.bottleneck)),
                    branch1: fold(&b.branch1, 0),
                    branch2: fold(&b.branch2, 1),
                    branch3: fold(&b.branch3, 2),
                    pool_conv: fold(&b.pool_conv, 3),
                    shortcut: b
                        .shortcut
                        .as_ref()
                        .map(|sc| PlanConv::F32(FrozenConv::fold(&sc.conv, &sc.bn))),
                    in_channels: b.in_channels,
                    width: w,
                    out_channels: b.out_channels,
                }
            })
            .collect();
        let in_channels = net.config.in_channels;
        let features = blocks.last().expect("at least one block").out_channels;
        let max_channels = blocks
            .iter()
            .map(|b| b.out_channels)
            .max()
            .unwrap()
            .max(in_channels);
        FrozenInception {
            head_weight: net.head.weight.clone(),
            head_bias: net.head.bias.clone(),
            in_channels,
            features,
            num_classes: net.head.out_features,
            kernel: net.config.kernel,
            blocks,
            max_channels,
        }
    }

    /// Quantize this f32 plan into an int8 plan, calibrating every conv's
    /// input activation scale by replaying `calib` through the f32 path.
    /// Pooling, concat, the residual adds and the head stay f32.
    pub fn quantize(&self, calib: &Tensor) -> FrozenInception {
        let ranges = self.calibrate(calib);
        let blocks = self
            .blocks
            .iter()
            .zip(&ranges)
            .map(|(b, r)| FrozenIncBlock {
                bottleneck: b.bottleneck.quantize(r.input),
                branch1: b.branch1.quantize(r.bott),
                branch2: b.branch2.quantize(r.bott),
                branch3: b.branch3.quantize(r.bott),
                pool_conv: b.pool_conv.quantize(r.pool),
                shortcut: b.shortcut.as_ref().map(|sc| sc.quantize(r.input)),
                ..b.clone()
            })
            .collect();
        FrozenInception {
            blocks,
            head_weight: self.head_weight.clone(),
            head_bias: self.head_bias.clone(),
            ..*self
        }
    }

    /// Replay `calib` through the f32 plan, recording each conv's input
    /// activation range. One-time pass at quantize time — allocates freely.
    fn calibrate(&self, calib: &Tensor) -> Vec<IncRanges> {
        let (b, c, l) = calib.shape();
        assert_eq!(c, self.in_channels, "calibration channel mismatch");
        assert!(b > 0 && l > 0, "calibration needs a non-empty batch");
        let act = b * self.max_channels * l;
        let mut cur = vec![0.0f32; act];
        let mut out = vec![0.0f32; act];
        let mut tmp = vec![0.0f32; act];
        let mut aux = vec![0.0f32; self.aux_len(b, l)];
        cur[..b * c * l].copy_from_slice(&calib.data[..b * c * l]);
        let mut ranges = Vec::with_capacity(self.blocks.len());
        let mut c_in = self.in_channels;
        for block in &self.blocks {
            let mut r = IncRanges::default();
            block.infer_into(
                &cur[..b * c_in * l],
                &mut out,
                &mut tmp,
                &mut aux,
                &mut [],
                b,
                l,
                Some(&mut r),
            );
            let n_out = b * block.out_channels * l;
            cur[..n_out].copy_from_slice(&out[..n_out]);
            c_in = block.out_channels;
            ranges.push(r);
        }
        ranges
    }

    fn aux_len(&self, batch: usize, l: usize) -> usize {
        self.blocks
            .iter()
            .map(|b| b.aux_channels())
            .max()
            .unwrap_or(0)
            * batch
            * l
    }

    /// Whether this plan was built by [`FrozenInception::quantize`].
    pub fn is_int8(&self) -> bool {
        self.blocks[0].bottleneck.is_int8()
    }

    /// Nominal kernel size of the source member.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Channel count of the last block's feature maps.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Widest channel count of any activation tensor (arena sizing).
    pub fn max_channels(&self) -> usize {
        self.max_channels
    }

    /// Number of classes of the head.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Full forward pass into `arena` — same outputs and contract as
    /// [`crate::frozen::FrozenResNet::predict_into`]: zero heap
    /// allocations once the arena has seen the shape.
    pub fn predict_into(&self, x: &Tensor, arena: &mut InferenceArena) {
        let _span = ds_obs::span!(if self.is_int8() {
            "frozen.forward.int8"
        } else {
            "frozen.forward"
        });
        let (b, c, l) = x.shape();
        assert_eq!(c, self.in_channels, "frozen input channel mismatch");
        assert!(b > 0 && l > 0, "frozen forward needs a non-empty batch");
        if self.is_int8() {
            arena.ensure_quant(b, l, self.max_channels, self.features, self.num_classes);
        } else {
            arena.ensure(b, l, self.max_channels, self.features, self.num_classes);
        }
        arena.ensure_aux(self.aux_len(b, l));
        let (buf_a, buf_b, buf_c, qbuf, aux, pooled, logits, softmax, probs, cams) = arena.parts();
        buf_a[..b * c * l].copy_from_slice(&x.data[..b * c * l]);
        let mut c_in = self.in_channels;
        for block in &self.blocks {
            block.infer_into(&buf_a[..b * c_in * l], buf_b, buf_c, aux, qbuf, b, l, None);
            std::mem::swap(buf_a, buf_b);
            c_in = block.out_channels;
        }
        let feats = &buf_a[..b * self.features * l];
        finish_forward(
            feats,
            &self.head_weight,
            &self.head_bias,
            self.features,
            self.num_classes,
            b,
            l,
            pooled,
            logits,
            softmax,
            probs,
            cams,
        );
    }

    /// Raw parameter bits in a fixed traversal order, for persistence
    /// round-trip equality checks.
    pub fn param_bits(&self) -> Vec<u32> {
        let mut bits = Vec::new();
        for block in &self.blocks {
            block.push_bits(&mut bits);
        }
        bits.extend(self.head_weight.iter().map(|v| v.to_bits()));
        bits.extend(self.head_bias.iter().map(|v| v.to_bits()));
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input(b: usize, c: usize, l: usize, seed: usize) -> Tensor {
        let data: Vec<f32> = (0..b * c * l)
            .map(|i| (((i + seed) * 31 % 17) as f32 - 8.0) / 4.0)
            .collect();
        Tensor::from_data(b, c, l, data)
    }

    fn tiny_config(kernel: usize, seed: u64) -> InceptionConfig {
        InceptionConfig {
            in_channels: 1,
            channels: vec![4, 8],
            kernel,
            num_classes: 2,
            seed,
        }
    }

    fn warm_bn(net: &mut InceptionNet, l: usize) {
        let x = sample_input(6, net.config.in_channels, l, 3);
        for _ in 0..4 {
            let _ = net.forward(&x, true);
        }
    }

    #[test]
    fn forward_shapes_and_branch_kernels() {
        let mut net = InceptionNet::new(tiny_config(3, 1));
        let x = sample_input(5, 1, 32, 0);
        let logits = net.forward(&x, false);
        assert_eq!((logits.rows, logits.cols), (5, 2));
        assert_eq!(net.last_features.as_ref().unwrap().shape(), (5, 8, 32));
        assert_eq!(InceptionBlock::branch_kernels(3), [3, 7, 15]);
        assert_eq!(net.kernel(), 3);
    }

    #[test]
    fn maxpool3_values_and_gradient_scatter() {
        let x = Tensor::from_data(1, 1, 5, vec![1.0, 3.0, 2.0, -1.0, 0.5]);
        let mut pool = MaxPool3::default();
        let y = pool.forward(&x, true);
        assert_eq!(y.data, vec![3.0, 3.0, 3.0, 2.0, 0.5]);
        let g = Tensor::from_data(1, 1, 5, vec![1.0, 1.0, 1.0, 1.0, 1.0]);
        let gi = pool.backward(&g);
        // Positions 0..2 all route to x[1]; position 3 to x[2]; 4 to x[4].
        assert_eq!(gi.data, vec![0.0, 3.0, 1.0, 0.0, 1.0]);
        assert_eq!(pool.infer(&x).data, vec![3.0, 3.0, 3.0, 2.0, 0.5]);
    }

    #[test]
    fn infer_matches_eval_forward() {
        let mut net = InceptionNet::new(tiny_config(3, 8));
        warm_bn(&mut net, 24);
        let x = sample_input(3, 1, 24, 5);
        let logits_mut = net.forward(&x, false);
        let (logits_pure, _) = net.infer(&x);
        assert_eq!(logits_mut.data, logits_pure.data);
    }

    #[test]
    fn gradient_check_through_blocks() {
        // Finite-difference spot check through the whole net with loss
        // sum(logits^2)/2 — validates the concat split, the pool scatter
        // and the bottleneck gradient sum.
        let mut net = InceptionNet::new(InceptionConfig {
            in_channels: 1,
            channels: vec![4],
            kernel: 3,
            num_classes: 2,
            seed: 11,
        });
        let x = sample_input(2, 1, 12, 1);
        net.zero_grad();
        let logits = net.forward(&x, true);
        net.backward(&logits);
        // Collect analytic grads + param locations.
        let mut params: Vec<(usize, f32)> = Vec::new();
        let mut grads: Vec<f32> = Vec::new();
        net.visit_params(&mut |p, g| {
            for i in [0usize, p.len() / 2, p.len() - 1] {
                params.push((i, p[i]));
                grads.push(g[i]);
            }
        });
        let loss = |net: &mut InceptionNet, x: &Tensor| -> f32 {
            net.forward(x, true).data.iter().map(|v| v * v / 2.0).sum()
        };
        let eps = 1e-3f32;
        let mut slot = 0usize;
        let total = params.len();
        for s in 0..total {
            let (i, orig) = params[s];
            // Perturb the s-th sampled parameter via visit_params.
            let set = |net: &mut InceptionNet, v: f32| {
                let mut vs = 0usize;
                net.visit_params(&mut |p, _| {
                    for ii in [0usize, p.len() / 2, p.len() - 1] {
                        if vs == s {
                            p[ii] = v;
                        }
                        vs += 1;
                    }
                });
            };
            set(&mut net, orig + eps);
            let lp = loss(&mut net, &x);
            set(&mut net, orig - eps);
            let lm = loss(&mut net, &x);
            set(&mut net, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grads[s]).abs() < 5e-2 * numeric.abs().max(1.0),
                "param sample {s} (idx {i}): numeric {numeric} vs analytic {}",
                grads[s]
            );
            slot += 1;
        }
        assert!(slot > 10, "sampled too few parameters");
    }

    #[test]
    fn frozen_matches_reference_within_tolerance() {
        let mut net = InceptionNet::new(tiny_config(3, 77));
        warm_bn(&mut net, 40);
        let frozen = FrozenInception::freeze(&net);
        let x = sample_input(4, 1, 40, 0);
        let (probs, cams) = net.infer_with_cam(&x);
        let mut arena = InferenceArena::new();
        frozen.predict_into(&x, &mut arena);
        for bi in 0..4 {
            assert!((arena.probs()[bi] - probs[bi]).abs() < 1e-4);
            assert_eq!(arena.probs()[bi] > 0.5, probs[bi] > 0.5, "decision flip");
            for (a, r) in arena.cam(bi).iter().zip(&cams[bi]) {
                assert!((a - r).abs() < 1e-3, "cam {a} vs {r}");
            }
        }
    }

    #[test]
    fn quantized_plan_matches_frozen_decisions() {
        let mut net = InceptionNet::new(tiny_config(3, 9));
        warm_bn(&mut net, 40);
        let frozen = FrozenInception::freeze(&net);
        assert!(!frozen.is_int8());
        let quant = frozen.quantize(&sample_input(8, 1, 40, 11));
        assert!(quant.is_int8());
        let x = sample_input(4, 1, 40, 2);
        let mut fa = InferenceArena::new();
        let mut qa = InferenceArena::new();
        frozen.predict_into(&x, &mut fa);
        quant.predict_into(&x, &mut qa);
        for bi in 0..4 {
            let (fp, qp) = (fa.probs()[bi], qa.probs()[bi]);
            assert!((fp - qp).abs() < 0.05, "prob drift {fp} vs {qp}");
            if (fp - 0.5).abs() > 0.05 {
                assert_eq!(fp > 0.5, qp > 0.5, "decision flip");
            }
        }
    }

    #[test]
    fn steady_state_predict_allocates_nothing() {
        let mut net = InceptionNet::new(tiny_config(3, 13));
        warm_bn(&mut net, 32);
        for plan in [
            FrozenInception::freeze(&net),
            FrozenInception::freeze(&net).quantize(&sample_input(4, 1, 32, 1)),
        ] {
            let x = sample_input(3, 1, 32, 2);
            let mut arena = InferenceArena::new();
            plan.predict_into(&x, &mut arena); // warmup sizes the arena
            let before = ds_obs::alloc_count();
            for _ in 0..8 {
                plan.predict_into(&x, &mut arena);
            }
            assert_eq!(
                ds_obs::alloc_count(),
                before,
                "steady-state frozen inception forward must not allocate"
            );
        }
    }

    #[test]
    fn refreeze_is_bit_identical() {
        let mut net = InceptionNet::new(tiny_config(5, 5));
        warm_bn(&mut net, 24);
        assert_eq!(
            FrozenInception::freeze(&net).param_bits(),
            FrozenInception::freeze(&net).param_bits()
        );
    }
}
