//! Runtime-dispatched SIMD kernels for the frozen serving path.
//!
//! The scalar kernels in [`crate::conv`] stay the source of truth: they
//! are the bit-identical determinism twins the ds-par contract is built
//! on, and every SIMD path here is gated against them by the frozen
//! golden tests (logits within `1e-4`, zero decision flips) and the
//! `simd_props` property suite (elementwise agreement within `1e-6`
//! relative). The split mirrors ds-par's seq/par twin contract: the
//! optimized path may re-round (FMA contracts mul+add into one rounding)
//! but may never change a decision.
//!
//! Dispatch is resolved once per process: `DS_SIMD=off` (or `scalar`/`0`)
//! forces the scalar twins; anything else probes the host with
//! `is_x86_feature_detected!` and uses the AVX2/FMA f32x8 kernels when
//! available. [`set_mode`] overrides programmatically (the property tests
//! compare both paths in one process). Non-x86_64 builds compile to the
//! scalar path unconditionally.
//!
//! Two kernel families live here:
//!
//! - **f32 conv rows** ([`frozen_conv_rows`]): the frozen `[4 output
//!   rows] × [all input channels]` accumulation, vectorized over eight
//!   adjacent output positions. Each tap broadcast feeds four f32x8 FMA
//!   accumulators, so one weight load performs 32 multiply-accumulates —
//!   against the scalar kernel's two positions per weight load. Per
//!   element, taps still accumulate in ascending `(ic, k)` order, so the
//!   only numeric difference from the scalar twin is FMA's single
//!   rounding.
//! - **int8 conv rows** ([`quant_conv_rows`]): the quantized variant —
//!   i8×i8 products accumulated in i32 lanes. Integer addition is
//!   associative, and the f32 dequantization epilogue performs the same
//!   two-rounding `acc·scale + bias` per element as the scalar twin, so
//!   the SIMD int8 path is **bit-identical** to the scalar int8 path
//!   (asserted by the property tests), not merely within tolerance.

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the kernel path (`off`/`scalar`/`0`
/// force the scalar twins; unset or anything else auto-detects).
pub const ENV_VAR: &str = "DS_SIMD";

/// Which kernel family the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Scalar determinism twins only.
    Scalar,
    /// AVX2 + FMA f32x8 / i32x8 kernels.
    Avx2,
}

const UNRESOLVED: u8 = 0;
const SCALAR: u8 = 1;
const AVX2: u8 = 2;

/// Cached dispatch decision; `UNRESOLVED` until first use.
static MODE: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn detect() -> SimdMode {
    if let Ok(v) = std::env::var(ENV_VAR) {
        let v = v.trim().to_ascii_lowercase();
        if v == "off" || v == "scalar" || v == "0" {
            return SimdMode::Scalar;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdMode::Avx2;
        }
    }
    SimdMode::Scalar
}

/// The resolved kernel path (detects and caches on first call).
pub fn mode() -> SimdMode {
    match MODE.load(Ordering::Relaxed) {
        SCALAR => SimdMode::Scalar,
        AVX2 => SimdMode::Avx2,
        _ => {
            let m = detect();
            MODE.store(
                match m {
                    SimdMode::Scalar => SCALAR,
                    SimdMode::Avx2 => AVX2,
                },
                Ordering::Relaxed,
            );
            m
        }
    }
}

/// Overrides the dispatch for the rest of the process (`None` re-resolves
/// `DS_SIMD` + feature detection on next use). Forcing [`SimdMode::Avx2`]
/// on a host without AVX2 is ignored — the scalar twins run instead.
pub fn set_mode(mode: Option<SimdMode>) {
    let value = match mode {
        None => UNRESOLVED,
        Some(SimdMode::Scalar) => SCALAR,
        Some(SimdMode::Avx2) => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
                {
                    AVX2
                } else {
                    SCALAR
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                SCALAR
            }
        }
    };
    MODE.store(value, Ordering::Relaxed);
}

/// Human-readable dispatch label for reports and CI greps.
pub fn label() -> &'static str {
    match mode() {
        SimdMode::Scalar => "scalar",
        SimdMode::Avx2 => "avx2",
    }
}

/// One scalar output position for up to four rows of a frozen conv block:
/// `bias + Σ_ic Σ_k w·x` with a per-tap range check (zero padding). Used
/// by the SIMD paths for the padded edges and the vector-width remainder,
/// and for output-channel remainder rows. Tap order matches the vector
/// interior (ascending `ic`, then `k`).
#[allow(clippy::too_many_arguments)]
#[inline]
fn scalar_positions(
    weight: &[f32],
    bias: &[f32],
    in_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    x_rows: &[f32],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
    oc0: usize,
    rows: usize,
    t0: usize,
    t1: usize,
) {
    scalar_positions_strided(
        weight,
        bias,
        in_channels,
        kernel,
        pad,
        dilation,
        x_rows,
        l,
        y_rows,
        l,
        l,
        relu,
        oc0,
        rows,
        t0,
        t1,
    );
}

/// Strided generalization of [`scalar_positions`]: input and output rows
/// live at `x_stride`/`y_stride` (≥ `l`) instead of packed at `l`, so the
/// streaming ring arenas — whose rows are laid out at ring capacity — can
/// reuse the identical per-element accumulation chain. Bit-identical to
/// the packed twin for any stride.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn scalar_positions_strided(
    weight: &[f32],
    bias: &[f32],
    in_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    x_rows: &[f32],
    x_stride: usize,
    y_rows: &mut [f32],
    y_stride: usize,
    l: usize,
    relu: bool,
    oc0: usize,
    rows: usize,
    t0: usize,
    t1: usize,
) {
    for t in t0..t1 {
        for r in 0..rows {
            let oc = oc0 + r;
            let mut acc = bias[oc];
            for ic in 0..in_channels {
                let x_row = &x_rows[ic * x_stride..ic * x_stride + l];
                let w = &weight[(oc * in_channels + ic) * kernel..][..kernel];
                for (kk, &wv) in w.iter().enumerate() {
                    let s = t as isize + (kk * dilation) as isize - pad as isize;
                    if s >= 0 && (s as usize) < l {
                        acc += wv * x_row[s as usize];
                    }
                }
            }
            y_rows[r * y_stride + t] = if relu { acc.max(0.0) } else { acc };
        }
    }
}

/// SIMD-chunk geometry of the f32 AVX2 kernel at row length `l`: the
/// interior `[t_lo, t_hi)` runs in 8-wide chunks anchored at `t_lo + 8j`,
/// so positions `[t_lo, chunk_end)` take the FMA path and everything else
/// the scalar path. `chunk_end` is what the suffix kernel needs to know
/// about a *previous* row length: positions that change code path between
/// two lengths must be recomputed even if their inputs did not change.
#[inline]
pub(crate) fn f32_chunk_cover(l: usize, pad: usize, kernel: usize, dilation: usize) -> usize {
    let span = (kernel - 1) * dilation;
    let t_lo = pad.min(l);
    let t_hi = (l + pad).saturating_sub(span).clamp(t_lo, l);
    t_lo + (t_hi - t_lo) / 8 * 8
}

/// Vectorized frozen conv forward over one batch row: fill `y_rows`
/// (`[out_channels, l]`) from `x_rows` (`[in_channels, l]`), bias
/// included and ReLU optionally fused. Returns `false` without touching
/// `y_rows` when the SIMD path is disabled or unavailable — the caller
/// falls back to the scalar twins.
#[allow(clippy::too_many_arguments)]
pub(crate) fn frozen_conv_rows(
    weight: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    x_rows: &[f32],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
) -> bool {
    if mode() != SimdMode::Avx2 {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `mode()` only reports Avx2 after `is_x86_feature_detected!`
        // confirmed avx2+fma on this host.
        unsafe {
            f32_rows_avx2(
                weight,
                bias,
                in_channels,
                out_channels,
                kernel,
                pad,
                dilation,
                x_rows,
                y_rows,
                l,
                relu,
            );
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX2/FMA interior kernel: four output rows × eight adjacent positions
/// per step. Every broadcast weight feeds four f32x8 FMA chains (32 MACs
/// per weight load); per element the taps accumulate in ascending
/// `(ic, k)` order, exactly like the scalar twin, with FMA's fused
/// rounding as the only numeric difference.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn f32_rows_avx2(
    weight: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    x_rows: &[f32],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
) {
    use std::arch::x86_64::*;
    let span = (kernel - 1) * dilation;
    let t_lo = pad.min(l);
    let t_hi = (l + pad).saturating_sub(span).clamp(t_lo, l);
    let zero = _mm256_setzero_ps();
    let mut oc = 0;
    while oc < out_channels {
        let rows = (out_channels - oc).min(4);
        let block = &mut y_rows[oc * l..(oc + rows) * l];
        if rows == 4 {
            let (b0, b1, b2, b3) = (bias[oc], bias[oc + 1], bias[oc + 2], bias[oc + 3]);
            let mut t = t_lo;
            while t + 8 <= t_hi {
                let mut a0 = _mm256_set1_ps(b0);
                let mut a1 = _mm256_set1_ps(b1);
                let mut a2 = _mm256_set1_ps(b2);
                let mut a3 = _mm256_set1_ps(b3);
                for ic in 0..in_channels {
                    let x_base = x_rows.as_ptr().add(ic * l + t - pad);
                    let w_base = (oc * in_channels + ic) * kernel;
                    for kk in 0..kernel {
                        let xv = _mm256_loadu_ps(x_base.add(kk * dilation));
                        let w_at = |r: usize| {
                            _mm256_set1_ps(
                                *weight.get_unchecked(w_base + r * in_channels * kernel + kk),
                            )
                        };
                        a0 = _mm256_fmadd_ps(w_at(0), xv, a0);
                        a1 = _mm256_fmadd_ps(w_at(1), xv, a1);
                        a2 = _mm256_fmadd_ps(w_at(2), xv, a2);
                        a3 = _mm256_fmadd_ps(w_at(3), xv, a3);
                    }
                }
                if relu {
                    a0 = _mm256_max_ps(a0, zero);
                    a1 = _mm256_max_ps(a1, zero);
                    a2 = _mm256_max_ps(a2, zero);
                    a3 = _mm256_max_ps(a3, zero);
                }
                let y = block.as_mut_ptr().add(t);
                _mm256_storeu_ps(y, a0);
                _mm256_storeu_ps(y.add(l), a1);
                _mm256_storeu_ps(y.add(2 * l), a2);
                _mm256_storeu_ps(y.add(3 * l), a3);
                t += 8;
            }
            // Padded edges + the sub-vector interior remainder.
            scalar_positions(
                weight,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                x_rows,
                block,
                l,
                relu,
                oc,
                4,
                0,
                t_lo,
            );
            scalar_positions(
                weight,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                x_rows,
                block,
                l,
                relu,
                oc,
                4,
                t,
                l,
            );
        } else {
            scalar_positions(
                weight,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                x_rows,
                block,
                l,
                relu,
                oc,
                rows,
                0,
                l,
            );
        }
        oc += rows;
    }
}

/// Suffix variant of the f32 conv kernel for the streaming plan: given
/// that only input positions `≥ taint` changed since the rings last held
/// a consistent prefix of length `l_prev`, recompute exactly the output
/// positions a fresh batch call at length `l` could produce differently,
/// and return the first recomputed position (the output taint, which
/// seeds the next stage's halo).
///
/// Two effects force a position to be recomputed:
///
/// 1. **Value halo.** Output `t` reads inputs `[t − pad, t + pad]`
///    (odd kernels), so inputs changing at `taint` dirty outputs from
///    `g0 = taint − pad`.
/// 2. **Code-path churn (AVX2 only).** The batch kernel covers
///    `[t_lo, chunk_end(l))` with FMA chunks and the rest with the scalar
///    twin; `chunk_end` moves with `l`, and FMA's fused rounding differs
///    from the scalar chain. Positions whose path differs between
///    `l_prev` and `l` — `[min(chunk_end(l), chunk_end(l_prev)), l)` —
///    must be recomputed even though their inputs are unchanged.
///
/// The recompute start is snapped down to a chunk anchor (`t_lo + 8j`) so
/// the suffix run replays the exact instruction structure the batch
/// kernel would use from that anchor onward. In scalar mode there is no
/// churn (the per-element chain is position-independent) and the suffix
/// is exactly `[g0, l)`. `use_avx2` is the caller's captured dispatch
/// decision — the streaming plan resolves it once so a mid-stream
/// `DS_SIMD` flip cannot split a ring between code paths.
#[allow(clippy::too_many_arguments)]
pub(crate) fn frozen_conv_rows_suffix(
    weight: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    x_rows: &[f32],
    x_stride: usize,
    y_rows: &mut [f32],
    y_stride: usize,
    l: usize,
    l_prev: usize,
    taint: usize,
    use_avx2: bool,
    relu: bool,
) -> usize {
    debug_assert!(x_stride >= l && y_stride >= l);
    let g0 = taint.saturating_sub(pad).min(l);
    #[cfg(target_arch = "x86_64")]
    if use_avx2 {
        // SAFETY: `use_avx2` is only set from a cached `mode() == Avx2`
        // decision, which requires `is_x86_feature_detected!` success.
        return unsafe {
            f32_rows_avx2_suffix(
                weight,
                bias,
                in_channels,
                out_channels,
                kernel,
                pad,
                dilation,
                x_rows,
                x_stride,
                y_rows,
                y_stride,
                l,
                l_prev,
                g0,
                relu,
            )
        };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (use_avx2, l_prev);
    #[cfg(target_arch = "x86_64")]
    let _ = l_prev;
    let mut oc = 0;
    while oc < out_channels {
        let rows = (out_channels - oc).min(4);
        scalar_positions_strided(
            weight,
            bias,
            in_channels,
            kernel,
            pad,
            dilation,
            x_rows,
            x_stride,
            &mut y_rows[oc * y_stride..(oc + rows) * y_stride],
            y_stride,
            l,
            relu,
            oc,
            rows,
            g0,
            l,
        );
        oc += rows;
    }
    g0
}

/// AVX2/FMA suffix kernel: replays [`f32_rows_avx2`]'s structure from the
/// first position whose value or code path can differ at length `l`
/// versus the consistent prefix of length `l_prev` (see
/// [`frozen_conv_rows_suffix`] for the halo/churn rules).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn f32_rows_avx2_suffix(
    weight: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    x_rows: &[f32],
    x_stride: usize,
    y_rows: &mut [f32],
    y_stride: usize,
    l: usize,
    l_prev: usize,
    g0: usize,
    relu: bool,
) -> usize {
    use std::arch::x86_64::*;
    let span = (kernel - 1) * dilation;
    let t_lo = pad.min(l);
    let t_hi = (l + pad).saturating_sub(span).clamp(t_lo, l);
    let churn = f32_chunk_cover(l, pad, kernel, dilation)
        .min(f32_chunk_cover(l_prev, pad, kernel, dilation));
    let zero = _mm256_setzero_ps();
    let mut out_taint = l;
    let mut oc = 0;
    while oc < out_channels {
        let rows = (out_channels - oc).min(4);
        let block = &mut y_rows[oc * y_stride..(oc + rows - 1) * y_stride + l];
        if rows == 4 {
            let g1 = g0.min(churn);
            // Snap to a chunk anchor; below `t_lo` the whole row restarts
            // (the padded head is scalar at every length, but a moved
            // value halo inside it dirties everything downstream anyway).
            let (head_end, anchor) = if g1 <= t_lo {
                (t_lo, t_lo)
            } else {
                (0, t_lo + (g1 - t_lo) / 8 * 8)
            };
            out_taint = out_taint.min(if head_end == 0 { anchor } else { 0 });
            let (b0, b1, b2, b3) = (bias[oc], bias[oc + 1], bias[oc + 2], bias[oc + 3]);
            let tail_from = {
                let mut t = anchor;
                while t + 8 <= t_hi {
                    let mut a0 = _mm256_set1_ps(b0);
                    let mut a1 = _mm256_set1_ps(b1);
                    let mut a2 = _mm256_set1_ps(b2);
                    let mut a3 = _mm256_set1_ps(b3);
                    for ic in 0..in_channels {
                        let x_base = x_rows.as_ptr().add(ic * x_stride + t - pad);
                        let w_base = (oc * in_channels + ic) * kernel;
                        for kk in 0..kernel {
                            let xv = _mm256_loadu_ps(x_base.add(kk * dilation));
                            let w_at = |r: usize| {
                                _mm256_set1_ps(
                                    *weight.get_unchecked(w_base + r * in_channels * kernel + kk),
                                )
                            };
                            a0 = _mm256_fmadd_ps(w_at(0), xv, a0);
                            a1 = _mm256_fmadd_ps(w_at(1), xv, a1);
                            a2 = _mm256_fmadd_ps(w_at(2), xv, a2);
                            a3 = _mm256_fmadd_ps(w_at(3), xv, a3);
                        }
                    }
                    if relu {
                        a0 = _mm256_max_ps(a0, zero);
                        a1 = _mm256_max_ps(a1, zero);
                        a2 = _mm256_max_ps(a2, zero);
                        a3 = _mm256_max_ps(a3, zero);
                    }
                    let y = block.as_mut_ptr().add(t);
                    _mm256_storeu_ps(y, a0);
                    _mm256_storeu_ps(y.add(y_stride), a1);
                    _mm256_storeu_ps(y.add(2 * y_stride), a2);
                    _mm256_storeu_ps(y.add(3 * y_stride), a3);
                    t += 8;
                }
                t
            };
            if head_end > 0 {
                scalar_positions_strided(
                    weight,
                    bias,
                    in_channels,
                    kernel,
                    pad,
                    dilation,
                    x_rows,
                    x_stride,
                    block,
                    y_stride,
                    l,
                    relu,
                    oc,
                    4,
                    0,
                    head_end,
                );
            }
            scalar_positions_strided(
                weight,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                x_rows,
                x_stride,
                block,
                y_stride,
                l,
                relu,
                oc,
                4,
                tail_from,
                l,
            );
        } else {
            // Remainder rows are scalar at every length: value halo only.
            scalar_positions_strided(
                weight,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                x_rows,
                x_stride,
                block,
                y_stride,
                l,
                relu,
                oc,
                rows,
                g0,
                l,
            );
            out_taint = out_taint.min(g0);
        }
        oc += rows;
    }
    out_taint.min(l)
}

/// One scalar output position for up to four rows of a quantized conv
/// block: i32 accumulation over in-range taps, then the two-rounding
/// dequantization epilogue `acc·combined + bias`. Shared by the scalar
/// twin and the SIMD edge handling, so both paths are bit-identical.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn quant_scalar_positions(
    wq: &[i8],
    combined: &[f32],
    bias: &[f32],
    in_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    xq_rows: &[i8],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
    oc0: usize,
    rows: usize,
    t0: usize,
    t1: usize,
) {
    quant_scalar_positions_strided(
        wq,
        combined,
        bias,
        in_channels,
        kernel,
        pad,
        dilation,
        xq_rows,
        l,
        y_rows,
        l,
        l,
        relu,
        oc0,
        rows,
        t0,
        t1,
    );
}

/// Strided generalization of [`quant_scalar_positions`] for the streaming
/// ring arenas (rows at ring capacity, logical length `l`). i32
/// accumulation is exact, so this is bit-identical to the packed twin —
/// and to the SIMD path — at any stride.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn quant_scalar_positions_strided(
    wq: &[i8],
    combined: &[f32],
    bias: &[f32],
    in_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    xq_rows: &[i8],
    x_stride: usize,
    y_rows: &mut [f32],
    y_stride: usize,
    l: usize,
    relu: bool,
    oc0: usize,
    rows: usize,
    t0: usize,
    t1: usize,
) {
    for t in t0..t1 {
        for r in 0..rows {
            let oc = oc0 + r;
            let mut acc = 0i32;
            for ic in 0..in_channels {
                let x_row = &xq_rows[ic * x_stride..ic * x_stride + l];
                let w = &wq[(oc * in_channels + ic) * kernel..][..kernel];
                for (kk, &wv) in w.iter().enumerate() {
                    let s = t as isize + (kk * dilation) as isize - pad as isize;
                    if s >= 0 && (s as usize) < l {
                        acc += wv as i32 * x_row[s as usize] as i32;
                    }
                }
            }
            let v = acc as f32 * combined[oc] + bias[oc];
            y_rows[r * y_stride + t] = if relu { v.max(0.0) } else { v };
        }
    }
}

/// Suffix variant of the int8 conv kernel for the streaming plan. Because
/// the i32 accumulation is exact and the dequant epilogue is per-element,
/// the SIMD and scalar int8 paths are bit-identical at every position —
/// there is no code-path churn, and the recompute region is exactly the
/// value halo `[taint − pad, l)`. Returns the output taint
/// (`taint − pad`, clamped), seeding the next stage's halo.
#[allow(clippy::too_many_arguments)]
pub(crate) fn quant_conv_rows_suffix(
    wq: &[i8],
    combined: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    xq_rows: &[i8],
    x_stride: usize,
    y_rows: &mut [f32],
    y_stride: usize,
    l: usize,
    taint: usize,
    use_avx2: bool,
    relu: bool,
) -> usize {
    debug_assert!(x_stride >= l && y_stride >= l);
    let g0 = taint.saturating_sub(pad).min(l);
    #[cfg(target_arch = "x86_64")]
    if use_avx2 {
        // SAFETY: `use_avx2` comes from a cached avx2+fma detection.
        unsafe {
            quant_rows_avx2_suffix(
                wq,
                combined,
                bias,
                in_channels,
                out_channels,
                kernel,
                pad,
                dilation,
                xq_rows,
                x_stride,
                y_rows,
                y_stride,
                l,
                g0,
                relu,
            );
        }
        return g0;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_avx2;
    let mut oc = 0;
    while oc < out_channels {
        let rows = (out_channels - oc).min(4);
        quant_scalar_positions_strided(
            wq,
            combined,
            bias,
            in_channels,
            kernel,
            pad,
            dilation,
            xq_rows,
            x_stride,
            &mut y_rows[oc * y_stride..(oc + rows) * y_stride],
            y_stride,
            l,
            relu,
            oc,
            rows,
            g0,
            l,
        );
        oc += rows;
    }
    g0
}

/// AVX2 int8 suffix kernel: i32 lanes over `[g0, l)` only. Chunks may be
/// anchored anywhere (integer adds are associative), so the suffix starts
/// vectorizing at `max(g0, t_lo)` directly.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn quant_rows_avx2_suffix(
    wq: &[i8],
    combined: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    xq_rows: &[i8],
    x_stride: usize,
    y_rows: &mut [f32],
    y_stride: usize,
    l: usize,
    g0: usize,
    relu: bool,
) {
    use std::arch::x86_64::*;
    let span = (kernel - 1) * dilation;
    let t_lo = pad.min(l);
    let t_hi = (l + pad).saturating_sub(span).clamp(t_lo, l);
    let zero = _mm256_setzero_ps();
    let mut oc = 0;
    while oc < out_channels {
        let rows = (out_channels - oc).min(4);
        let block = &mut y_rows[oc * y_stride..(oc + rows - 1) * y_stride + l];
        if rows == 4 {
            let start = g0.max(t_lo);
            let mut t = start;
            while t + 8 <= t_hi {
                let mut a0 = _mm256_setzero_si256();
                let mut a1 = _mm256_setzero_si256();
                let mut a2 = _mm256_setzero_si256();
                let mut a3 = _mm256_setzero_si256();
                for ic in 0..in_channels {
                    let x_base = xq_rows.as_ptr().add(ic * x_stride + t - pad);
                    let w_base = (oc * in_channels + ic) * kernel;
                    for kk in 0..kernel {
                        let raw = _mm_loadl_epi64(x_base.add(kk * dilation) as *const __m128i);
                        let xv = _mm256_cvtepi8_epi32(raw);
                        let w_at = |r: usize| {
                            _mm256_set1_epi32(
                                *wq.get_unchecked(w_base + r * in_channels * kernel + kk) as i32,
                            )
                        };
                        a0 = _mm256_add_epi32(a0, _mm256_mullo_epi32(xv, w_at(0)));
                        a1 = _mm256_add_epi32(a1, _mm256_mullo_epi32(xv, w_at(1)));
                        a2 = _mm256_add_epi32(a2, _mm256_mullo_epi32(xv, w_at(2)));
                        a3 = _mm256_add_epi32(a3, _mm256_mullo_epi32(xv, w_at(3)));
                    }
                }
                let y = block.as_mut_ptr().add(t);
                let store = |ptr: *mut f32, acc: __m256i, r: usize| {
                    let f = _mm256_cvtepi32_ps(acc);
                    let mut v = _mm256_add_ps(
                        _mm256_mul_ps(f, _mm256_set1_ps(combined[oc + r])),
                        _mm256_set1_ps(bias[oc + r]),
                    );
                    if relu {
                        v = _mm256_max_ps(v, zero);
                    }
                    _mm256_storeu_ps(ptr, v);
                };
                store(y, a0, 0);
                store(y.add(y_stride), a1, 1);
                store(y.add(2 * y_stride), a2, 2);
                store(y.add(3 * y_stride), a3, 3);
                t += 8;
            }
            // Padded head below `t_lo` (if the halo reaches it) plus the
            // sub-vector remainder.
            if g0 < start {
                quant_scalar_positions_strided(
                    wq,
                    combined,
                    bias,
                    in_channels,
                    kernel,
                    pad,
                    dilation,
                    xq_rows,
                    x_stride,
                    block,
                    y_stride,
                    l,
                    relu,
                    oc,
                    4,
                    g0,
                    start,
                );
            }
            quant_scalar_positions_strided(
                wq,
                combined,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                xq_rows,
                x_stride,
                block,
                y_stride,
                l,
                relu,
                oc,
                4,
                t,
                l,
            );
        } else {
            quant_scalar_positions_strided(
                wq,
                combined,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                xq_rows,
                x_stride,
                block,
                y_stride,
                l,
                relu,
                oc,
                rows,
                g0,
                l,
            );
        }
        oc += rows;
    }
}

/// Vectorized quantized conv forward over one batch row (i32 lanes, f32
/// dequant epilogue). Returns `false` when the SIMD path is disabled —
/// the caller runs the scalar twin, which is bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn quant_conv_rows(
    wq: &[i8],
    combined: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    xq_rows: &[i8],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
) -> bool {
    if mode() != SimdMode::Avx2 {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: gated on the cached avx2+fma detection, as above.
        unsafe {
            quant_rows_avx2(
                wq,
                combined,
                bias,
                in_channels,
                out_channels,
                kernel,
                pad,
                dilation,
                xq_rows,
                y_rows,
                l,
                relu,
            );
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX2 int8 interior kernel: four output rows × eight positions, i8
/// taps widened to i32 lanes and multiply-accumulated exactly (integer
/// adds are associative, so lane order cannot change the result).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn quant_rows_avx2(
    wq: &[i8],
    combined: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    xq_rows: &[i8],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
) {
    use std::arch::x86_64::*;
    let span = (kernel - 1) * dilation;
    let t_lo = pad.min(l);
    let t_hi = (l + pad).saturating_sub(span).clamp(t_lo, l);
    let zero = _mm256_setzero_ps();
    let mut oc = 0;
    while oc < out_channels {
        let rows = (out_channels - oc).min(4);
        let block = &mut y_rows[oc * l..(oc + rows) * l];
        if rows == 4 {
            let mut t = t_lo;
            while t + 8 <= t_hi {
                let mut a0 = _mm256_setzero_si256();
                let mut a1 = _mm256_setzero_si256();
                let mut a2 = _mm256_setzero_si256();
                let mut a3 = _mm256_setzero_si256();
                for ic in 0..in_channels {
                    let x_base = xq_rows.as_ptr().add(ic * l + t - pad);
                    let w_base = (oc * in_channels + ic) * kernel;
                    for kk in 0..kernel {
                        // Widen 8 adjacent i8 inputs to i32 lanes.
                        let raw = _mm_loadl_epi64(x_base.add(kk * dilation) as *const __m128i);
                        let xv = _mm256_cvtepi8_epi32(raw);
                        let w_at = |r: usize| {
                            _mm256_set1_epi32(
                                *wq.get_unchecked(w_base + r * in_channels * kernel + kk) as i32,
                            )
                        };
                        a0 = _mm256_add_epi32(a0, _mm256_mullo_epi32(xv, w_at(0)));
                        a1 = _mm256_add_epi32(a1, _mm256_mullo_epi32(xv, w_at(1)));
                        a2 = _mm256_add_epi32(a2, _mm256_mullo_epi32(xv, w_at(2)));
                        a3 = _mm256_add_epi32(a3, _mm256_mullo_epi32(xv, w_at(3)));
                    }
                }
                // Dequant epilogue: mul then add (two roundings), matching
                // the scalar twin's `acc as f32 * combined + bias`.
                let y = block.as_mut_ptr().add(t);
                let store = |ptr: *mut f32, acc: __m256i, r: usize| {
                    let f = _mm256_cvtepi32_ps(acc);
                    let mut v = _mm256_add_ps(
                        _mm256_mul_ps(f, _mm256_set1_ps(combined[oc + r])),
                        _mm256_set1_ps(bias[oc + r]),
                    );
                    if relu {
                        v = _mm256_max_ps(v, zero);
                    }
                    _mm256_storeu_ps(ptr, v);
                };
                store(y, a0, 0);
                store(y.add(l), a1, 1);
                store(y.add(2 * l), a2, 2);
                store(y.add(3 * l), a3, 3);
                t += 8;
            }
            quant_scalar_positions(
                wq,
                combined,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                xq_rows,
                block,
                l,
                relu,
                oc,
                4,
                0,
                t_lo,
            );
            quant_scalar_positions(
                wq,
                combined,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                xq_rows,
                block,
                l,
                relu,
                oc,
                4,
                t,
                l,
            );
        } else {
            quant_scalar_positions(
                wq,
                combined,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                xq_rows,
                block,
                l,
                relu,
                oc,
                rows,
                0,
                l,
            );
        }
        oc += rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_matches_mode() {
        set_mode(Some(SimdMode::Scalar));
        assert_eq!(label(), "scalar");
        assert_eq!(mode(), SimdMode::Scalar);
        set_mode(None);
        // Whatever the host resolves to, the label agrees with the mode.
        let resolved = mode();
        assert_eq!(
            label(),
            match resolved {
                SimdMode::Scalar => "scalar",
                SimdMode::Avx2 => "avx2",
            }
        );
        set_mode(None);
    }

    /// Grow a row length sample-by-sample and chunk-by-chunk: the suffix
    /// kernels, fed only the taint position, must leave every ring row
    /// bit-identical to a from-scratch batch call at the new length —
    /// in both dispatch modes, at a ring stride wider than the row.
    #[test]
    fn suffix_kernels_match_batch_recompute_bitwise() {
        let avx2_ok = {
            #[cfg(target_arch = "x86_64")]
            {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        };
        let cap = 64usize;
        for kernel in [1usize, 3, 5, 7, 9, 15] {
            let pad = (kernel - 1) / 2;
            for (ci, co) in [(1usize, 4usize), (2, 5), (3, 8)] {
                let weight: Vec<f32> = (0..co * ci * kernel)
                    .map(|i| ((i * 37 + 11) % 23) as f32 / 46.0 - 0.25)
                    .collect();
                let bias: Vec<f32> = (0..co).map(|i| i as f32 * 0.05 - 0.1).collect();
                let x_full: Vec<f32> = (0..cap)
                    .map(|i| ((i * 29 % 17) as f32 - 8.0) / 16.0)
                    .collect();
                for use_avx2 in [false, true] {
                    if use_avx2 && !avx2_ok {
                        continue;
                    }
                    for relu in [false, true] {
                        // Ring state: x rows at stride `cap`, y rows at stride `cap`.
                        let mut x_ring = vec![0.0f32; ci * cap];
                        let mut y_ring = vec![0.0f32; co * cap];
                        let mut l_prev = 0usize;
                        for l in [1usize, 2, 7, 8, 9, 16, 23, 24, 40, 41, 64] {
                            for c in 0..ci {
                                for t in l_prev..l {
                                    x_ring[c * cap + t] = x_full[(c * 13 + t) % cap];
                                }
                            }
                            let taint = l_prev;
                            frozen_conv_rows_suffix(
                                &weight,
                                &bias,
                                ci,
                                co,
                                kernel,
                                pad,
                                1,
                                &x_ring,
                                cap,
                                &mut y_ring,
                                cap,
                                l,
                                l_prev,
                                taint,
                                use_avx2,
                                relu,
                            );
                            // From-scratch batch call at length l (packed rows).
                            let x_packed: Vec<f32> = (0..ci)
                                .flat_map(|c| x_ring[c * cap..c * cap + l].to_vec())
                                .collect();
                            let mut y_packed = vec![0.0f32; co * l];
                            if use_avx2 {
                                set_mode(Some(SimdMode::Avx2));
                                assert!(frozen_conv_rows(
                                    &weight,
                                    &bias,
                                    ci,
                                    co,
                                    kernel,
                                    pad,
                                    1,
                                    &x_packed,
                                    &mut y_packed,
                                    l,
                                    relu
                                ));
                                set_mode(None);
                            } else {
                                let mut oc = 0;
                                while oc < co {
                                    let rows = (co - oc).min(4);
                                    scalar_positions(
                                        &weight,
                                        &bias,
                                        ci,
                                        kernel,
                                        pad,
                                        1,
                                        &x_packed,
                                        &mut y_packed[oc * l..(oc + rows) * l],
                                        l,
                                        relu,
                                        oc,
                                        rows,
                                        0,
                                        l,
                                    );
                                    oc += rows;
                                }
                            }
                            for c in 0..co {
                                for t in 0..l {
                                    assert_eq!(
                                        y_ring[c * cap + t].to_bits(),
                                        y_packed[c * l + t].to_bits(),
                                        "k={kernel} ci={ci} co={co} avx2={use_avx2} relu={relu} l={l} c={c} t={t}"
                                    );
                                }
                            }
                            l_prev = l;
                        }
                    }
                }
            }
        }
    }

    /// Same growth protocol for the int8 kernels: suffix recompute over the
    /// value halo only must be bit-identical to a full batch call.
    #[test]
    fn quant_suffix_matches_batch_recompute_bitwise() {
        let avx2_ok = {
            #[cfg(target_arch = "x86_64")]
            {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        };
        let cap = 48usize;
        for kernel in [1usize, 3, 5, 9] {
            let pad = (kernel - 1) / 2;
            let (ci, co) = (2usize, 6usize);
            let wq: Vec<i8> = (0..co * ci * kernel)
                .map(|i| ((i * 53 + 7) % 255) as i8)
                .collect();
            let combined: Vec<f32> = (0..co).map(|i| 0.002 + i as f32 * 1e-4).collect();
            let bias: Vec<f32> = (0..co).map(|i| i as f32 * 0.03 - 0.07).collect();
            for use_avx2 in [false, true] {
                if use_avx2 && !avx2_ok {
                    continue;
                }
                let mut xq_ring = vec![0i8; ci * cap];
                let mut y_ring = vec![0.0f32; co * cap];
                let mut l_prev = 0usize;
                for l in [1usize, 5, 8, 17, 24, 33, 48] {
                    for c in 0..ci {
                        for t in l_prev..l {
                            xq_ring[c * cap + t] = ((c * 31 + t * 11) % 251) as i8;
                        }
                    }
                    quant_conv_rows_suffix(
                        &wq,
                        &combined,
                        &bias,
                        ci,
                        co,
                        kernel,
                        pad,
                        1,
                        &xq_ring,
                        cap,
                        &mut y_ring,
                        cap,
                        l,
                        l_prev,
                        use_avx2,
                        true,
                    );
                    let xq_packed: Vec<i8> = (0..ci)
                        .flat_map(|c| xq_ring[c * cap..c * cap + l].to_vec())
                        .collect();
                    let mut y_packed = vec![0.0f32; co * l];
                    let mut oc = 0;
                    while oc < co {
                        let rows = (co - oc).min(4);
                        quant_scalar_positions(
                            &wq,
                            &combined,
                            &bias,
                            ci,
                            kernel,
                            pad,
                            1,
                            &xq_packed,
                            &mut y_packed[oc * l..(oc + rows) * l],
                            l,
                            true,
                            oc,
                            rows,
                            0,
                            l,
                        );
                        oc += rows;
                    }
                    for c in 0..co {
                        for t in 0..l {
                            assert_eq!(
                                y_ring[c * cap + t].to_bits(),
                                y_packed[c * l + t].to_bits(),
                                "k={kernel} avx2={use_avx2} l={l} c={c} t={t}"
                            );
                        }
                    }
                    l_prev = l;
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn f32_rows_agree_with_scalar_positions() {
        if !std::arch::is_x86_feature_detected!("avx2")
            || !std::arch::is_x86_feature_detected!("fma")
        {
            return; // nothing to compare on this host
        }
        for kernel in [1usize, 3, 5, 9, 15] {
            for l in [5usize, 24, 40] {
                for (ci, co) in [(1usize, 4usize), (3, 4), (2, 6)] {
                    let pad = (kernel - 1) / 2;
                    let weight: Vec<f32> = (0..co * ci * kernel)
                        .map(|i| ((i * 37 + 11) % 23) as f32 / 46.0 - 0.25)
                        .collect();
                    let bias: Vec<f32> = (0..co).map(|i| i as f32 * 0.05 - 0.1).collect();
                    let x: Vec<f32> = (0..ci * l)
                        .map(|i| ((i * 29 % 17) as f32 - 8.0) / 16.0)
                        .collect();
                    for relu in [false, true] {
                        let mut simd = vec![0.0f32; co * l];
                        let mut scalar = vec![0.0f32; co * l];
                        set_mode(Some(SimdMode::Avx2));
                        assert!(frozen_conv_rows(
                            &weight, &bias, ci, co, kernel, pad, 1, &x, &mut simd, l, relu
                        ));
                        set_mode(None);
                        let mut oc = 0;
                        while oc < co {
                            let rows = (co - oc).min(4);
                            scalar_positions(
                                &weight,
                                &bias,
                                ci,
                                kernel,
                                pad,
                                1,
                                &x,
                                &mut scalar[oc * l..(oc + rows) * l],
                                l,
                                relu,
                                oc,
                                rows,
                                0,
                                l,
                            );
                            oc += rows;
                        }
                        for (a, b) in simd.iter().zip(&scalar) {
                            assert!(
                                (a - b).abs() <= 1e-6 * b.abs().max(1.0),
                                "k={kernel} l={l} ci={ci} co={co}: {a} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }
}
