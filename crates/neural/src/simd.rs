//! Runtime-dispatched SIMD kernels for the frozen serving path.
//!
//! The scalar kernels in [`crate::conv`] stay the source of truth: they
//! are the bit-identical determinism twins the ds-par contract is built
//! on, and every SIMD path here is gated against them by the frozen
//! golden tests (logits within `1e-4`, zero decision flips) and the
//! `simd_props` property suite (elementwise agreement within `1e-6`
//! relative). The split mirrors ds-par's seq/par twin contract: the
//! optimized path may re-round (FMA contracts mul+add into one rounding)
//! but may never change a decision.
//!
//! Dispatch is resolved once per process: `DS_SIMD=off` (or `scalar`/`0`)
//! forces the scalar twins; anything else probes the host with
//! `is_x86_feature_detected!` and uses the AVX2/FMA f32x8 kernels when
//! available. [`set_mode`] overrides programmatically (the property tests
//! compare both paths in one process). Non-x86_64 builds compile to the
//! scalar path unconditionally.
//!
//! Two kernel families live here:
//!
//! - **f32 conv rows** ([`frozen_conv_rows`]): the frozen `[4 output
//!   rows] × [all input channels]` accumulation, vectorized over eight
//!   adjacent output positions. Each tap broadcast feeds four f32x8 FMA
//!   accumulators, so one weight load performs 32 multiply-accumulates —
//!   against the scalar kernel's two positions per weight load. Per
//!   element, taps still accumulate in ascending `(ic, k)` order, so the
//!   only numeric difference from the scalar twin is FMA's single
//!   rounding.
//! - **int8 conv rows** ([`quant_conv_rows`]): the quantized variant —
//!   i8×i8 products accumulated in i32 lanes. Integer addition is
//!   associative, and the f32 dequantization epilogue performs the same
//!   two-rounding `acc·scale + bias` per element as the scalar twin, so
//!   the SIMD int8 path is **bit-identical** to the scalar int8 path
//!   (asserted by the property tests), not merely within tolerance.

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the kernel path (`off`/`scalar`/`0`
/// force the scalar twins; unset or anything else auto-detects).
pub const ENV_VAR: &str = "DS_SIMD";

/// Which kernel family the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Scalar determinism twins only.
    Scalar,
    /// AVX2 + FMA f32x8 / i32x8 kernels.
    Avx2,
}

const UNRESOLVED: u8 = 0;
const SCALAR: u8 = 1;
const AVX2: u8 = 2;

/// Cached dispatch decision; `UNRESOLVED` until first use.
static MODE: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn detect() -> SimdMode {
    if let Ok(v) = std::env::var(ENV_VAR) {
        let v = v.trim().to_ascii_lowercase();
        if v == "off" || v == "scalar" || v == "0" {
            return SimdMode::Scalar;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdMode::Avx2;
        }
    }
    SimdMode::Scalar
}

/// The resolved kernel path (detects and caches on first call).
pub fn mode() -> SimdMode {
    match MODE.load(Ordering::Relaxed) {
        SCALAR => SimdMode::Scalar,
        AVX2 => SimdMode::Avx2,
        _ => {
            let m = detect();
            MODE.store(
                match m {
                    SimdMode::Scalar => SCALAR,
                    SimdMode::Avx2 => AVX2,
                },
                Ordering::Relaxed,
            );
            m
        }
    }
}

/// Overrides the dispatch for the rest of the process (`None` re-resolves
/// `DS_SIMD` + feature detection on next use). Forcing [`SimdMode::Avx2`]
/// on a host without AVX2 is ignored — the scalar twins run instead.
pub fn set_mode(mode: Option<SimdMode>) {
    let value = match mode {
        None => UNRESOLVED,
        Some(SimdMode::Scalar) => SCALAR,
        Some(SimdMode::Avx2) => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
                {
                    AVX2
                } else {
                    SCALAR
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                SCALAR
            }
        }
    };
    MODE.store(value, Ordering::Relaxed);
}

/// Human-readable dispatch label for reports and CI greps.
pub fn label() -> &'static str {
    match mode() {
        SimdMode::Scalar => "scalar",
        SimdMode::Avx2 => "avx2",
    }
}

/// One scalar output position for up to four rows of a frozen conv block:
/// `bias + Σ_ic Σ_k w·x` with a per-tap range check (zero padding). Used
/// by the SIMD paths for the padded edges and the vector-width remainder,
/// and for output-channel remainder rows. Tap order matches the vector
/// interior (ascending `ic`, then `k`).
#[allow(clippy::too_many_arguments)]
#[inline]
fn scalar_positions(
    weight: &[f32],
    bias: &[f32],
    in_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    x_rows: &[f32],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
    oc0: usize,
    rows: usize,
    t0: usize,
    t1: usize,
) {
    for t in t0..t1 {
        for r in 0..rows {
            let oc = oc0 + r;
            let mut acc = bias[oc];
            for ic in 0..in_channels {
                let x_row = &x_rows[ic * l..(ic + 1) * l];
                let w = &weight[(oc * in_channels + ic) * kernel..][..kernel];
                for (kk, &wv) in w.iter().enumerate() {
                    let s = t as isize + (kk * dilation) as isize - pad as isize;
                    if s >= 0 && (s as usize) < l {
                        acc += wv * x_row[s as usize];
                    }
                }
            }
            y_rows[r * l + t] = if relu { acc.max(0.0) } else { acc };
        }
    }
}

/// Vectorized frozen conv forward over one batch row: fill `y_rows`
/// (`[out_channels, l]`) from `x_rows` (`[in_channels, l]`), bias
/// included and ReLU optionally fused. Returns `false` without touching
/// `y_rows` when the SIMD path is disabled or unavailable — the caller
/// falls back to the scalar twins.
#[allow(clippy::too_many_arguments)]
pub(crate) fn frozen_conv_rows(
    weight: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    x_rows: &[f32],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
) -> bool {
    if mode() != SimdMode::Avx2 {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `mode()` only reports Avx2 after `is_x86_feature_detected!`
        // confirmed avx2+fma on this host.
        unsafe {
            f32_rows_avx2(
                weight,
                bias,
                in_channels,
                out_channels,
                kernel,
                pad,
                dilation,
                x_rows,
                y_rows,
                l,
                relu,
            );
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX2/FMA interior kernel: four output rows × eight adjacent positions
/// per step. Every broadcast weight feeds four f32x8 FMA chains (32 MACs
/// per weight load); per element the taps accumulate in ascending
/// `(ic, k)` order, exactly like the scalar twin, with FMA's fused
/// rounding as the only numeric difference.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn f32_rows_avx2(
    weight: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    x_rows: &[f32],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
) {
    use std::arch::x86_64::*;
    let span = (kernel - 1) * dilation;
    let t_lo = pad.min(l);
    let t_hi = (l + pad).saturating_sub(span).clamp(t_lo, l);
    let zero = _mm256_setzero_ps();
    let mut oc = 0;
    while oc < out_channels {
        let rows = (out_channels - oc).min(4);
        let block = &mut y_rows[oc * l..(oc + rows) * l];
        if rows == 4 {
            let (b0, b1, b2, b3) = (bias[oc], bias[oc + 1], bias[oc + 2], bias[oc + 3]);
            let mut t = t_lo;
            while t + 8 <= t_hi {
                let mut a0 = _mm256_set1_ps(b0);
                let mut a1 = _mm256_set1_ps(b1);
                let mut a2 = _mm256_set1_ps(b2);
                let mut a3 = _mm256_set1_ps(b3);
                for ic in 0..in_channels {
                    let x_base = x_rows.as_ptr().add(ic * l + t - pad);
                    let w_base = (oc * in_channels + ic) * kernel;
                    for kk in 0..kernel {
                        let xv = _mm256_loadu_ps(x_base.add(kk * dilation));
                        let w_at = |r: usize| {
                            _mm256_set1_ps(
                                *weight.get_unchecked(w_base + r * in_channels * kernel + kk),
                            )
                        };
                        a0 = _mm256_fmadd_ps(w_at(0), xv, a0);
                        a1 = _mm256_fmadd_ps(w_at(1), xv, a1);
                        a2 = _mm256_fmadd_ps(w_at(2), xv, a2);
                        a3 = _mm256_fmadd_ps(w_at(3), xv, a3);
                    }
                }
                if relu {
                    a0 = _mm256_max_ps(a0, zero);
                    a1 = _mm256_max_ps(a1, zero);
                    a2 = _mm256_max_ps(a2, zero);
                    a3 = _mm256_max_ps(a3, zero);
                }
                let y = block.as_mut_ptr().add(t);
                _mm256_storeu_ps(y, a0);
                _mm256_storeu_ps(y.add(l), a1);
                _mm256_storeu_ps(y.add(2 * l), a2);
                _mm256_storeu_ps(y.add(3 * l), a3);
                t += 8;
            }
            // Padded edges + the sub-vector interior remainder.
            scalar_positions(
                weight,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                x_rows,
                block,
                l,
                relu,
                oc,
                4,
                0,
                t_lo,
            );
            scalar_positions(
                weight,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                x_rows,
                block,
                l,
                relu,
                oc,
                4,
                t,
                l,
            );
        } else {
            scalar_positions(
                weight,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                x_rows,
                block,
                l,
                relu,
                oc,
                rows,
                0,
                l,
            );
        }
        oc += rows;
    }
}

/// One scalar output position for up to four rows of a quantized conv
/// block: i32 accumulation over in-range taps, then the two-rounding
/// dequantization epilogue `acc·combined + bias`. Shared by the scalar
/// twin and the SIMD edge handling, so both paths are bit-identical.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn quant_scalar_positions(
    wq: &[i8],
    combined: &[f32],
    bias: &[f32],
    in_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    xq_rows: &[i8],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
    oc0: usize,
    rows: usize,
    t0: usize,
    t1: usize,
) {
    for t in t0..t1 {
        for r in 0..rows {
            let oc = oc0 + r;
            let mut acc = 0i32;
            for ic in 0..in_channels {
                let x_row = &xq_rows[ic * l..(ic + 1) * l];
                let w = &wq[(oc * in_channels + ic) * kernel..][..kernel];
                for (kk, &wv) in w.iter().enumerate() {
                    let s = t as isize + (kk * dilation) as isize - pad as isize;
                    if s >= 0 && (s as usize) < l {
                        acc += wv as i32 * x_row[s as usize] as i32;
                    }
                }
            }
            let v = acc as f32 * combined[oc] + bias[oc];
            y_rows[r * l + t] = if relu { v.max(0.0) } else { v };
        }
    }
}

/// Vectorized quantized conv forward over one batch row (i32 lanes, f32
/// dequant epilogue). Returns `false` when the SIMD path is disabled —
/// the caller runs the scalar twin, which is bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn quant_conv_rows(
    wq: &[i8],
    combined: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    xq_rows: &[i8],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
) -> bool {
    if mode() != SimdMode::Avx2 {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: gated on the cached avx2+fma detection, as above.
        unsafe {
            quant_rows_avx2(
                wq,
                combined,
                bias,
                in_channels,
                out_channels,
                kernel,
                pad,
                dilation,
                xq_rows,
                y_rows,
                l,
                relu,
            );
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX2 int8 interior kernel: four output rows × eight positions, i8
/// taps widened to i32 lanes and multiply-accumulated exactly (integer
/// adds are associative, so lane order cannot change the result).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn quant_rows_avx2(
    wq: &[i8],
    combined: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    dilation: usize,
    xq_rows: &[i8],
    y_rows: &mut [f32],
    l: usize,
    relu: bool,
) {
    use std::arch::x86_64::*;
    let span = (kernel - 1) * dilation;
    let t_lo = pad.min(l);
    let t_hi = (l + pad).saturating_sub(span).clamp(t_lo, l);
    let zero = _mm256_setzero_ps();
    let mut oc = 0;
    while oc < out_channels {
        let rows = (out_channels - oc).min(4);
        let block = &mut y_rows[oc * l..(oc + rows) * l];
        if rows == 4 {
            let mut t = t_lo;
            while t + 8 <= t_hi {
                let mut a0 = _mm256_setzero_si256();
                let mut a1 = _mm256_setzero_si256();
                let mut a2 = _mm256_setzero_si256();
                let mut a3 = _mm256_setzero_si256();
                for ic in 0..in_channels {
                    let x_base = xq_rows.as_ptr().add(ic * l + t - pad);
                    let w_base = (oc * in_channels + ic) * kernel;
                    for kk in 0..kernel {
                        // Widen 8 adjacent i8 inputs to i32 lanes.
                        let raw = _mm_loadl_epi64(x_base.add(kk * dilation) as *const __m128i);
                        let xv = _mm256_cvtepi8_epi32(raw);
                        let w_at = |r: usize| {
                            _mm256_set1_epi32(
                                *wq.get_unchecked(w_base + r * in_channels * kernel + kk) as i32,
                            )
                        };
                        a0 = _mm256_add_epi32(a0, _mm256_mullo_epi32(xv, w_at(0)));
                        a1 = _mm256_add_epi32(a1, _mm256_mullo_epi32(xv, w_at(1)));
                        a2 = _mm256_add_epi32(a2, _mm256_mullo_epi32(xv, w_at(2)));
                        a3 = _mm256_add_epi32(a3, _mm256_mullo_epi32(xv, w_at(3)));
                    }
                }
                // Dequant epilogue: mul then add (two roundings), matching
                // the scalar twin's `acc as f32 * combined + bias`.
                let y = block.as_mut_ptr().add(t);
                let store = |ptr: *mut f32, acc: __m256i, r: usize| {
                    let f = _mm256_cvtepi32_ps(acc);
                    let mut v = _mm256_add_ps(
                        _mm256_mul_ps(f, _mm256_set1_ps(combined[oc + r])),
                        _mm256_set1_ps(bias[oc + r]),
                    );
                    if relu {
                        v = _mm256_max_ps(v, zero);
                    }
                    _mm256_storeu_ps(ptr, v);
                };
                store(y, a0, 0);
                store(y.add(l), a1, 1);
                store(y.add(2 * l), a2, 2);
                store(y.add(3 * l), a3, 3);
                t += 8;
            }
            quant_scalar_positions(
                wq,
                combined,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                xq_rows,
                block,
                l,
                relu,
                oc,
                4,
                0,
                t_lo,
            );
            quant_scalar_positions(
                wq,
                combined,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                xq_rows,
                block,
                l,
                relu,
                oc,
                4,
                t,
                l,
            );
        } else {
            quant_scalar_positions(
                wq,
                combined,
                bias,
                in_channels,
                kernel,
                pad,
                dilation,
                xq_rows,
                block,
                l,
                relu,
                oc,
                rows,
                0,
                l,
            );
        }
        oc += rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_matches_mode() {
        set_mode(Some(SimdMode::Scalar));
        assert_eq!(label(), "scalar");
        assert_eq!(mode(), SimdMode::Scalar);
        set_mode(None);
        // Whatever the host resolves to, the label agrees with the mode.
        let resolved = mode();
        assert_eq!(
            label(),
            match resolved {
                SimdMode::Scalar => "scalar",
                SimdMode::Avx2 => "avx2",
            }
        );
        set_mode(None);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn f32_rows_agree_with_scalar_positions() {
        if !std::arch::is_x86_feature_detected!("avx2")
            || !std::arch::is_x86_feature_detected!("fma")
        {
            return; // nothing to compare on this host
        }
        for kernel in [1usize, 3, 5, 9, 15] {
            for l in [5usize, 24, 40] {
                for (ci, co) in [(1usize, 4usize), (3, 4), (2, 6)] {
                    let pad = (kernel - 1) / 2;
                    let weight: Vec<f32> = (0..co * ci * kernel)
                        .map(|i| ((i * 37 + 11) % 23) as f32 / 46.0 - 0.25)
                        .collect();
                    let bias: Vec<f32> = (0..co).map(|i| i as f32 * 0.05 - 0.1).collect();
                    let x: Vec<f32> = (0..ci * l)
                        .map(|i| ((i * 29 % 17) as f32 - 8.0) / 16.0)
                        .collect();
                    for relu in [false, true] {
                        let mut simd = vec![0.0f32; co * l];
                        let mut scalar = vec![0.0f32; co * l];
                        set_mode(Some(SimdMode::Avx2));
                        assert!(frozen_conv_rows(
                            &weight, &bias, ci, co, kernel, pad, 1, &x, &mut simd, l, relu
                        ));
                        set_mode(None);
                        let mut oc = 0;
                        while oc < co {
                            let rows = (co - oc).min(4);
                            scalar_positions(
                                &weight,
                                &bias,
                                ci,
                                kernel,
                                pad,
                                1,
                                &x,
                                &mut scalar[oc * l..(oc + rows) * l],
                                l,
                                relu,
                                oc,
                                rows,
                                0,
                                l,
                            );
                            oc += rows;
                        }
                        for (a, b) in simd.iter().zip(&scalar) {
                            assert!(
                                (a - b).abs() <= 1e-6 * b.abs().max(1.0),
                                "k={kernel} l={l} ci={ci} co={co}: {a} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }
}
