//! Model persistence: JSON weight files.
//!
//! JSON is deliberately chosen over a binary format: trained models in this
//! reproduction are small (tens of thousands of parameters), and an
//! auditable text format lets users diff and inspect checkpoints. The file
//! embeds a format version so future layouts can migrate.

use crate::resnet::ResNet;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct Checkpoint {
    format_version: u32,
    model: ResNet,
}

/// Errors from model persistence.
#[derive(Debug)]
pub enum ModelIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(String),
    /// The checkpoint was written by an incompatible version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "model io: {e}"),
            ModelIoError::Format(e) => write!(f, "model format: {e}"),
            ModelIoError::Version { found, expected } => {
                write!(f, "checkpoint version {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<std::io::Error> for ModelIoError {
    fn from(e: std::io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// Serialize a model to a JSON string.
pub fn to_json(model: &ResNet) -> String {
    serde_json::to_string(&Checkpoint {
        format_version: FORMAT_VERSION,
        model: model.clone(),
    })
    .expect("ResNet serialization is infallible")
}

/// Deserialize a model from a JSON string.
pub fn from_json(json: &str) -> Result<ResNet, ModelIoError> {
    let ckpt: Checkpoint =
        serde_json::from_str(json).map_err(|e| ModelIoError::Format(e.to_string()))?;
    if ckpt.format_version != FORMAT_VERSION {
        return Err(ModelIoError::Version {
            found: ckpt.format_version,
            expected: FORMAT_VERSION,
        });
    }
    Ok(ckpt.model)
}

/// Save a model to a file.
pub fn save(model: &ResNet, path: impl AsRef<Path>) -> Result<(), ModelIoError> {
    std::fs::write(path, to_json(model))?;
    Ok(())
}

/// Load a model from a file.
pub fn load(path: impl AsRef<Path>) -> Result<ResNet, ModelIoError> {
    let json = std::fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::ResNetConfig;
    use crate::tensor::Tensor;

    #[test]
    fn round_trip_preserves_predictions() {
        let mut model = ResNet::new(ResNetConfig::tiny(5, 3));
        let x = Tensor::from_windows(&[(0..32).map(|i| (i as f32 / 5.0).cos()).collect()]);
        let before = model.predict_positive_proba(&x);
        let json = to_json(&model);
        let mut back = from_json(&json).unwrap();
        let after = back.predict_positive_proba(&x);
        assert_eq!(before, after);
    }

    #[test]
    fn round_trip_supports_continued_training() {
        use crate::optim::Adam;
        use crate::VisitParams;
        let model = ResNet::new(ResNetConfig::tiny(3, 1));
        let mut back = from_json(&to_json(&model)).unwrap();
        // Gradients must be correctly sized so an optimizer step works.
        let x = Tensor::from_windows(&[vec![0.5; 16], vec![0.1; 16]]);
        back.zero_grad();
        let logits = back.forward(&x, true);
        let (_, grad) = crate::loss::softmax_cross_entropy(&logits, &[0, 1], None);
        back.backward(&grad);
        Adam::new(1e-3).step(&mut back);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let model = ResNet::new(ResNetConfig::tiny(3, 0));
        let json = to_json(&model).replace("\"format_version\":1", "\"format_version\":99");
        match from_json(&json) {
            Err(ModelIoError::Version {
                found: 99,
                expected,
            }) => {
                assert_eq!(expected, FORMAT_VERSION)
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(from_json("{"), Err(ModelIoError::Format(_))));
        assert!(matches!(from_json("{}"), Err(ModelIoError::Format(_))));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ds_neural_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let model = ResNet::new(ResNetConfig::tiny(7, 9));
        save(&model, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.config(), model.config());
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load(dir.join("missing.json")),
            Err(ModelIoError::Io(_))
        ));
    }
}
