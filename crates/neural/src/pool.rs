//! Global average pooling: `[B, C, L] → [B, C]`.
//!
//! The GAP layer is load-bearing for CamAL: because the classifier head sees
//! only channel averages, its weights `w_k^c` apply uniformly over time, and
//! projecting them back onto the pre-GAP feature maps yields the Class
//! Activation Map. See [`crate::cam`].

use crate::tensor::{Matrix, Tensor};
use serde::{Deserialize, Serialize};

/// Global average pooling over the length dimension.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GlobalAvgPool {
    #[serde(skip)]
    cached_shape: Option<(usize, usize, usize)>,
}

impl GlobalAvgPool {
    /// New pooling layer.
    pub fn new() -> GlobalAvgPool {
        GlobalAvgPool::default()
    }

    /// Forward: mean over `L` per `(batch, channel)`.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Matrix {
        let (b, c, l) = x.shape();
        assert!(l > 0, "cannot pool an empty sequence");
        let mut y = Matrix::zeros(b, c);
        for bi in 0..b {
            for ci in 0..c {
                let row = x.row(bi, ci);
                y.data[bi * c + ci] = row.iter().sum::<f32>() / l as f32;
            }
        }
        if train {
            self.cached_shape = Some((b, c, l));
        }
        y
    }

    /// Pure inference forward (`&self`).
    pub fn infer(&self, x: &Tensor) -> Matrix {
        let (b, c, l) = x.shape();
        assert!(l > 0, "cannot pool an empty sequence");
        let mut y = Matrix::zeros(b, c);
        for bi in 0..b {
            for ci in 0..c {
                let row = x.row(bi, ci);
                y.data[bi * c + ci] = row.iter().sum::<f32>() / l as f32;
            }
        }
        y
    }

    /// Backward: the gradient spreads uniformly over the pooled positions.
    pub fn backward(&mut self, grad_out: &Matrix) -> Tensor {
        let (b, c, l) = self
            .cached_shape
            .expect("GlobalAvgPool::backward requires forward(train=true) first");
        assert_eq!(grad_out.rows, b);
        assert_eq!(grad_out.cols, c);
        let mut g = Tensor::zeros(b, c, l);
        let scale = 1.0 / l as f32;
        for bi in 0..b {
            for ci in 0..c {
                let gv = grad_out.data[bi * c + ci] * scale;
                g.row_mut(bi, ci).fill(gv);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_averages() {
        let x = Tensor::from_data(1, 2, 3, vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
        let mut gap = GlobalAvgPool::new();
        let y = gap.forward(&x, false);
        assert_eq!(y.rows, 1);
        assert_eq!(y.cols, 2);
        assert!((y.get(0, 0) - 2.0).abs() < 1e-6);
        assert!((y.get(0, 1) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn backward_spreads_uniformly() {
        let x = Tensor::from_data(2, 1, 4, vec![0.0; 8]);
        let mut gap = GlobalAvgPool::new();
        let _ = gap.forward(&x, true);
        let g = Matrix::from_data(2, 1, vec![4.0, 8.0]);
        let gi = gap.backward(&g);
        assert_eq!(gi.row(0, 0), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(gi.row(1, 0), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn gradient_check() {
        let x = Tensor::from_data(1, 2, 3, vec![0.5, -1.0, 2.0, 1.0, 0.0, -0.5]);
        let mut gap = GlobalAvgPool::new();
        let y = gap.forward(&x, true);
        // loss = sum(y^2)/2, dL/dy = y.
        let gi = gap.backward(&y);
        let eps = 1e-3f32;
        for xi in 0..x.data.len() {
            let mut x2 = x.clone();
            x2.data[xi] += eps;
            let lp: f32 = gap
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x2.data[xi] -= 2.0 * eps;
            let lm: f32 = gap
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gi.data[xi]).abs() < 1e-3, "x[{xi}]");
        }
    }

    #[test]
    #[should_panic(expected = "requires forward")]
    fn backward_without_forward_panics() {
        let mut gap = GlobalAvgPool::new();
        let _ = gap.backward(&Matrix::zeros(1, 1));
    }
}
