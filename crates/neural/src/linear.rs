//! Dense (fully connected) layer: `[B, in] → [B, out]`.
//!
//! In the ResNet-TSC this is the classification head after GAP; its weight
//! matrix is exactly the `w_k^c` of the CAM formula.

use crate::tensor::Matrix;
use crate::VisitParams;
use serde::{Deserialize, Serialize};

/// A trainable linear layer `y = W x + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Input features.
    pub in_features: usize,
    /// Output features (classes).
    pub out_features: usize,
    /// Weights `[out, in]`, row-major.
    pub weight: Vec<f32>,
    /// Per-output bias.
    pub bias: Vec<f32>,
    /// Weight gradients. Serialized alongside the weights so a deserialized
    /// model has correctly sized buffers.
    pub grad_weight: Vec<f32>,
    /// Bias gradients.
    pub grad_bias: Vec<f32>,
    #[serde(skip)]
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Create with Xavier-normal weights (seeded).
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Linear {
        let mut weight = vec![0.0; out_features * in_features];
        crate::init::xavier_normal(seed, in_features, out_features, &mut weight);
        Linear {
            in_features,
            out_features,
            grad_weight: vec![0.0; weight.len()],
            grad_bias: vec![0.0; out_features],
            weight,
            bias: vec![0.0; out_features],
            cached_input: None,
        }
    }

    /// Weight row for output `o` (the `w_k^c` vector for class `o`).
    #[inline]
    pub fn weight_row(&self, o: usize) -> &[f32] {
        &self.weight[o * self.in_features..(o + 1) * self.in_features]
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let y = self.infer(x);
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    /// Pure inference forward (`&self`).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols, self.in_features, "linear input feature mismatch");
        let mut y = Matrix::zeros(x.rows, self.out_features);
        for r in 0..x.rows {
            let xr = x.row(r);
            for o in 0..self.out_features {
                let w = self.weight_row(o);
                let mut acc = self.bias[o];
                for (wv, xv) in w.iter().zip(xr) {
                    acc += wv * xv;
                }
                y.data[r * self.out_features + o] = acc;
            }
        }
        y
    }

    /// Backward pass: accumulates gradients, returns input gradient.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("Linear::backward requires forward(train=true) first");
        assert_eq!(grad_out.cols, self.out_features);
        assert_eq!(grad_out.rows, x.rows);
        let mut grad_in = Matrix::zeros(x.rows, self.in_features);
        for r in 0..x.rows {
            let xr = x.row(r);
            let gr = grad_out.row(r);
            for (o, &g) in gr.iter().enumerate() {
                self.grad_bias[o] += g;
                let wg = &mut self.grad_weight[o * self.in_features..(o + 1) * self.in_features];
                for (wgi, &xv) in wg.iter_mut().zip(xr) {
                    *wgi += g * xv;
                }
                let w = &self.weight[o * self.in_features..(o + 1) * self.in_features];
                let gi = grad_in.row_mut(r);
                for (giv, &wv) in gi.iter_mut().zip(w) {
                    *giv += g * wv;
                }
            }
        }
        grad_in
    }
}

impl VisitParams for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut lin = Linear::new(2, 2, 0);
        lin.weight = vec![1.0, 2.0, 3.0, 4.0]; // rows: [1,2], [3,4]
        lin.bias = vec![0.5, -0.5];
        let x = Matrix::from_data(1, 2, vec![10.0, 20.0]);
        let y = lin.forward(&x, false);
        assert_eq!(y.data, vec![10.0 + 40.0 + 0.5, 30.0 + 80.0 - 0.5]);
    }

    #[test]
    fn gradient_check() {
        let mut lin = Linear::new(3, 2, 5);
        let x = Matrix::from_data(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7]);
        let y = lin.forward(&x, true);
        let gi = lin.backward(&y); // loss = sum(y^2)/2
        let eps = 1e-3f32;
        let loss = |lin: &mut Linear, x: &Matrix| -> f32 {
            lin.forward(x, false).data.iter().map(|v| v * v / 2.0).sum()
        };
        for wi in 0..lin.weight.len() {
            let orig = lin.weight[wi];
            lin.weight[wi] = orig + eps;
            let lp = loss(&mut lin, &x);
            lin.weight[wi] = orig - eps;
            let lm = loss(&mut lin, &x);
            lin.weight[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - lin.grad_weight[wi]).abs() < 2e-2 * numeric.abs().max(1.0),
                "w[{wi}]"
            );
        }
        for bi in 0..lin.bias.len() {
            let orig = lin.bias[bi];
            lin.bias[bi] = orig + eps;
            let lp = loss(&mut lin, &x);
            lin.bias[bi] = orig - eps;
            let lm = loss(&mut lin, &x);
            lin.bias[bi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - lin.grad_bias[bi]).abs() < 2e-2 * numeric.abs().max(1.0));
        }
        let mut x2 = x.clone();
        for xi in 0..x.data.len() {
            let orig = x2.data[xi];
            x2.data[xi] = orig + eps;
            let lp = loss(&mut lin, &x2);
            x2.data[xi] = orig - eps;
            let lm = loss(&mut lin, &x2);
            x2.data[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gi.data[xi]).abs() < 2e-2 * numeric.abs().max(1.0),
                "x[{xi}]"
            );
        }
    }

    #[test]
    fn weight_row_is_class_vector() {
        let mut lin = Linear::new(3, 2, 1);
        lin.weight = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(lin.weight_row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(lin.weight_row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "requires forward")]
    fn backward_without_forward_panics() {
        let mut lin = Linear::new(1, 1, 0);
        let _ = lin.backward(&Matrix::zeros(1, 1));
    }
}
