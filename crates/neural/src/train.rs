//! Mini-batch training loop for window classifiers.
//!
//! Implements the paper's training phase mechanics: shuffled mini-batches,
//! class-imbalance weighting (positive windows are rare for long-cycle
//! appliances), Adam, and loss-plateau early stopping.

use crate::inception::InceptionNet;
use crate::loss::{softmax_cross_entropy, softmax_row};
use crate::optim::Adam;
use crate::resnet::ResNet;
use crate::tensor::{Matrix, Tensor};
use crate::transapp::TransAppNet;
use crate::workspace::Workspace;
use crate::VisitParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::ops::Range;

/// The training surface a window classifier exposes: a cached-state
/// forward, a backward from logit gradients, and parameter access via
/// [`VisitParams`]. [`train_classifier`] drives any implementor, which is
/// how every backbone (and the backbone-tagged [`DetectorNet`]) trains
/// through one loop.
///
/// [`DetectorNet`]: crate::backbone::DetectorNet
pub trait NeuralNet: VisitParams {
    /// Forward pass to logits `[B, num_classes]`; `train` enables
    /// batch-statistics and backward caches.
    fn forward(&mut self, x: &Tensor, train: bool) -> Matrix;

    /// Backward from logit gradients (after a training-mode forward).
    fn backward(&mut self, grad_logits: &Matrix);

    /// Positive-class probability per batch row, inference mode.
    fn predict_positive_proba(&mut self, x: &Tensor) -> Vec<f32> {
        let logits = self.forward(x, false);
        let mut probs = Vec::with_capacity(logits.rows);
        let mut row = vec![0.0f32; logits.cols];
        for r in 0..logits.rows {
            softmax_row(logits.row(r), &mut row);
            probs.push(row[1]);
        }
        probs
    }
}

impl NeuralNet for ResNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Matrix {
        ResNet::forward(self, x, train)
    }

    fn backward(&mut self, grad_logits: &Matrix) {
        ResNet::backward(self, grad_logits);
    }

    fn predict_positive_proba(&mut self, x: &Tensor) -> Vec<f32> {
        ResNet::predict_positive_proba(self, x)
    }
}

impl NeuralNet for InceptionNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Matrix {
        InceptionNet::forward(self, x, train)
    }

    fn backward(&mut self, grad_logits: &Matrix) {
        InceptionNet::backward(self, grad_logits);
    }
}

impl NeuralNet for TransAppNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Matrix {
        TransAppNet::forward(self, x, train)
    }

    fn backward(&mut self, grad_logits: &Matrix) {
        TransAppNet::backward(self, grad_logits);
    }
}

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Weight classes inversely to their frequency.
    pub class_weighting: bool,
    /// Seed of the shuffling RNG.
    pub shuffle_seed: u64,
    /// Stop after this many epochs without a new best loss (None = never).
    pub patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 1e-3,
            weight_decay: 1e-4,
            class_weighting: true,
            shuffle_seed: 0,
            patience: Some(8),
        }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests.
    pub fn fast() -> TrainConfig {
        TrainConfig {
            epochs: 5,
            batch_size: 8,
            patience: None,
            ..TrainConfig::default()
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch actually run.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy after the final epoch.
    pub train_accuracy: f32,
    /// Whether early stopping triggered.
    pub early_stopped: bool,
}

/// Split `0..n` into mini-batch ranges of `batch_size` (floored at 2 —
/// batch norm needs more than one sample of statistics), merging a
/// trailing singleton into the previous batch so every window trains.
/// A corpus of exactly one window yields one singleton batch rather than
/// nothing.
pub fn batch_ranges(n: usize, batch_size: usize) -> Vec<Range<usize>> {
    let bs = batch_size.max(2);
    let mut ranges = Vec::with_capacity(n.div_ceil(bs));
    let mut start = 0usize;
    while start < n {
        let mut end = (start + bs).min(n);
        if n - end == 1 {
            end = n;
        }
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Inverse-frequency class weights for binary labels, normalized to mean 1.
pub fn inverse_frequency_weights(labels: &[u8]) -> [f32; 2] {
    let n = labels.len().max(1) as f32;
    let pos = labels.iter().filter(|&&l| l == 1).count() as f32;
    let neg = n - pos;
    // Guard single-class corpora: uniform weights.
    if pos == 0.0 || neg == 0.0 {
        return [1.0, 1.0];
    }
    let w0 = n / (2.0 * neg);
    let w1 = n / (2.0 * pos);
    [w0, w1]
}

/// Train a [`NeuralNet`] window classifier on `(windows, labels)`.
///
/// # Panics
/// Panics if `windows` is empty or lengths are inconsistent.
pub fn train_classifier(
    net: &mut impl NeuralNet,
    windows: &[Vec<f32>],
    labels: &[u8],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!windows.is_empty(), "training requires at least one window");
    assert_eq!(windows.len(), labels.len(), "window/label count mismatch");
    let _span = ds_obs::span!("neural.train_classifier");
    let class_weights = cfg
        .class_weighting
        .then(|| inverse_frequency_weights(labels));
    let mut opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
    let mut order: Vec<usize> = (0..windows.len()).collect();
    let ranges = batch_ranges(order.len(), cfg.batch_size);
    let mut ws = Workspace::new();
    let mut batch_labels: Vec<u8> = Vec::new();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut best = f32::INFINITY;
    let mut since_best = 0usize;
    let mut early_stopped = false;

    for epoch in 0..cfg.epochs {
        let epoch_start = ds_obs::enabled().then(std::time::Instant::now);
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        let mut samples = 0usize;
        for range in &ranges {
            let chunk = &order[range.clone()];
            // Gather the batch into the reused workspace tensor — no
            // window clones, no fresh input allocation per step.
            let x = ws.gather(windows, chunk);
            batch_labels.clear();
            batch_labels.extend(chunk.iter().map(|&i| labels[i]));
            net.zero_grad();
            let logits = net.forward(x, true);
            let (loss, grad) = softmax_cross_entropy(
                &logits,
                &batch_labels,
                class_weights.as_ref().map(|w| &w[..]),
            );
            net.backward(&grad);
            opt.step(net);
            loss_sum += loss as f64;
            batches += 1;
            samples += chunk.len();
        }
        let epoch_loss = (loss_sum / batches.max(1) as f64) as f32;
        epoch_losses.push(epoch_loss);
        if let Some(start) = epoch_start {
            // Gradient L2 norm of the last batch, computed only when
            // observability is on (it walks every parameter tensor).
            let mut grad_sq = 0.0f64;
            net.visit_params(&mut |_, grads| {
                grad_sq += grads.iter().map(|&g| (g as f64) * (g as f64)).sum::<f64>();
            });
            let samples_per_sec = samples as f64 / start.elapsed().as_secs_f64().max(1e-9);
            ds_obs::counter_add("neural.epochs", 1);
            ds_obs::counter_add("neural.samples", samples as u64);
            ds_obs::event!(
                "train_epoch",
                epoch = epoch,
                loss = epoch_loss,
                grad_norm = grad_sq.sqrt(),
                samples_per_sec = samples_per_sec,
            );
        }
        if epoch_loss + 1e-5 < best {
            best = epoch_loss;
            since_best = 0;
        } else {
            since_best += 1;
            if cfg.patience.is_some_and(|p| since_best >= p) {
                early_stopped = true;
                break;
            }
        }
    }

    // Final training accuracy (inference mode, batched to bound memory,
    // gathered through the same reused workspace buffer as training).
    let mut correct = 0usize;
    for chunk in (0..windows.len()).collect::<Vec<_>>().chunks(64) {
        let x = ws.gather(windows, chunk);
        let probs = net.predict_positive_proba(x);
        for (j, &i) in chunk.iter().enumerate() {
            let pred = u8::from(probs[j] > 0.5);
            if pred == labels[i] {
                correct += 1;
            }
        }
    }
    TrainReport {
        epoch_losses,
        train_accuracy: correct as f32 / windows.len() as f32,
        early_stopped,
    }
}

/// The pre-workspace training loop, preserved verbatim as a reference
/// oracle: it clones every window into a fresh batch, re-allocates the
/// input tensor per step, and silently drops a trailing singleton batch
/// (the historical bug [`batch_ranges`] fixes). The perf harness times
/// [`train_classifier`] against it, and the determinism tests assert the
/// two produce bit-identical weights whenever no singleton is dropped.
pub fn train_classifier_reference(
    net: &mut ResNet,
    windows: &[Vec<f32>],
    labels: &[u8],
    cfg: &TrainConfig,
) -> TrainReport {
    use crate::tensor::Tensor;
    assert!(!windows.is_empty(), "training requires at least one window");
    assert_eq!(windows.len(), labels.len(), "window/label count mismatch");
    let class_weights = cfg
        .class_weighting
        .then(|| inverse_frequency_weights(labels));
    let mut opt = Adam::with_weight_decay(cfg.lr, cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
    let mut order: Vec<usize> = (0..windows.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut best = f32::INFINITY;
    let mut since_best = 0usize;
    let mut early_stopped = false;
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(2)) {
            if chunk.len() < 2 && order.len() >= 2 {
                continue;
            }
            let batch: Vec<Vec<f32>> = chunk.iter().map(|&i| windows[i].clone()).collect();
            let batch_labels: Vec<u8> = chunk.iter().map(|&i| labels[i]).collect();
            let x = Tensor::from_windows(&batch);
            net.zero_grad();
            let logits = net.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(
                &logits,
                &batch_labels,
                class_weights.as_ref().map(|w| &w[..]),
            );
            net.backward(&grad);
            opt.step(net);
            loss_sum += loss as f64;
            batches += 1;
        }
        let epoch_loss = (loss_sum / batches.max(1) as f64) as f32;
        epoch_losses.push(epoch_loss);
        if epoch_loss + 1e-5 < best {
            best = epoch_loss;
            since_best = 0;
        } else {
            since_best += 1;
            if cfg.patience.is_some_and(|p| since_best >= p) {
                early_stopped = true;
                break;
            }
        }
    }
    let mut correct = 0usize;
    for chunk in (0..windows.len()).collect::<Vec<_>>().chunks(64) {
        let batch: Vec<Vec<f32>> = chunk.iter().map(|&i| windows[i].clone()).collect();
        let x = Tensor::from_windows(&batch);
        let probs = net.predict_positive_proba(&x);
        for (j, &i) in chunk.iter().enumerate() {
            let pred = u8::from(probs[j] > 0.5);
            if pred == labels[i] {
                correct += 1;
            }
        }
    }
    TrainReport {
        epoch_losses,
        train_accuracy: correct as f32 / windows.len() as f32,
        early_stopped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::ResNetConfig;

    fn toy_dataset(n: usize, len: usize) -> (Vec<Vec<f32>>, Vec<u8>) {
        let mut windows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let mut w = vec![0.1f32; len];
            if i % 2 == 1 {
                let start = (i * 3) % (len / 2);
                for v in &mut w[start..start + len / 4] {
                    *v = 1.0;
                }
            }
            for (j, v) in w.iter_mut().enumerate() {
                *v += ((i * 7 + j * 11) % 13) as f32 * 0.005;
            }
            windows.push(w);
            labels.push((i % 2) as u8);
        }
        (windows, labels)
    }

    #[test]
    fn training_reaches_high_accuracy_on_separable_toy() {
        let (windows, labels) = toy_dataset(32, 48);
        let mut net = ResNet::new(ResNetConfig::tiny(5, 1));
        let cfg = TrainConfig {
            epochs: 25,
            batch_size: 8,
            lr: 2e-3,
            ..TrainConfig::default()
        };
        let report = train_classifier(&mut net, &windows, &labels, &cfg);
        assert!(
            report.train_accuracy > 0.9,
            "accuracy {}",
            report.train_accuracy
        );
        assert!(report.epoch_losses[0] > *report.epoch_losses.last().unwrap());
    }

    #[test]
    fn early_stopping_triggers_on_plateau() {
        let (windows, labels) = toy_dataset(8, 24);
        let mut net = ResNet::new(ResNetConfig::tiny(3, 2));
        // lr = 0 guarantees a perfect plateau, so patience must fire.
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 8,
            lr: 0.0,
            patience: Some(3),
            ..TrainConfig::default()
        };
        let report = train_classifier(&mut net, &windows, &labels, &cfg);
        assert!(report.early_stopped);
        assert!(
            report.epoch_losses.len() <= 5,
            "stopped late: {}",
            report.epoch_losses.len()
        );
    }

    #[test]
    fn batch_ranges_merges_trailing_singleton() {
        assert_eq!(batch_ranges(16, 8), vec![0..8, 8..16]);
        // A leftover single sample joins the previous batch instead of
        // being dropped.
        assert_eq!(batch_ranges(17, 8), vec![0..8, 8..17]);
        assert_eq!(batch_ranges(9, 8), vec![0..9]);
        // Degenerate corpora: one window trains alone; zero yields nothing.
        assert_eq!(batch_ranges(1, 8), vec![0..1]);
        assert!(batch_ranges(0, 8).is_empty());
        // Batch size floors at 2 for batch-norm statistics.
        assert_eq!(batch_ranges(5, 0), vec![0..2, 2..5]);
    }

    #[test]
    fn odd_corpus_trains_every_window() {
        // 17 windows with batch 8 used to drop the trailing singleton each
        // epoch; now the last batch absorbs it and training stays finite.
        let (windows, labels) = toy_dataset(17, 24);
        let mut net = ResNet::new(ResNetConfig::tiny(3, 4));
        let report = train_classifier(&mut net, &windows, &labels, &TrainConfig::fast());
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn class_weights_inverse_frequency() {
        let w = inverse_frequency_weights(&[0, 0, 0, 1]);
        assert!((w[0] - 4.0 / 6.0).abs() < 1e-6);
        assert!((w[1] - 2.0).abs() < 1e-6);
        // Single-class corpora degrade to uniform.
        assert_eq!(inverse_frequency_weights(&[0, 0]), [1.0, 1.0]);
        assert_eq!(inverse_frequency_weights(&[]), [1.0, 1.0]);
    }

    #[test]
    fn deterministic_training() {
        let (windows, labels) = toy_dataset(16, 32);
        let run = || {
            let mut net = ResNet::new(ResNetConfig::tiny(5, 7));
            let report = train_classifier(&mut net, &windows, &labels, &TrainConfig::fast());
            report.epoch_losses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn workspace_trainer_matches_legacy_reference() {
        use crate::VisitParams;
        // On corpora with no trailing singleton batch the fixed loop and
        // the preserved legacy loop are the same algorithm; the rewrite
        // must reproduce it bit for bit.
        let (windows, labels) = toy_dataset(16, 32);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            patience: None,
            ..TrainConfig::default()
        };
        let run = |reference: bool| {
            let mut net = ResNet::new(ResNetConfig::tiny(5, 7));
            let report = if reference {
                train_classifier_reference(&mut net, &windows, &labels, &cfg)
            } else {
                train_classifier(&mut net, &windows, &labels, &cfg)
            };
            let mut bits: Vec<u32> = Vec::new();
            net.visit_params(&mut |params, _| bits.extend(params.iter().map(|v| v.to_bits())));
            bits.extend(report.epoch_losses.iter().map(|l| l.to_bits()));
            bits.push(report.train_accuracy.to_bits());
            bits
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn empty_training_set_panics() {
        let mut net = ResNet::new(ResNetConfig::tiny(3, 0));
        let _ = train_classifier(&mut net, &[], &[], &TrainConfig::fast());
    }

    #[test]
    fn single_class_corpus_trains_without_nan() {
        let (windows, _) = toy_dataset(8, 24);
        let labels = vec![1u8; 8];
        let mut net = ResNet::new(ResNetConfig::tiny(3, 1));
        let report = train_classifier(&mut net, &windows, &labels, &TrainConfig::fast());
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }
}
