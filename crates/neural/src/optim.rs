//! Optimizers: Adam (default in the paper's lineage of TSC work) and SGD
//! with momentum. Both operate through [`crate::VisitParams`], keeping
//! per-parameter state keyed by visit order — which layers guarantee stable.

use crate::VisitParams;

/// Adam optimizer with decoupled weight decay (AdamW-style).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled weight decay coefficient.
    pub weight_decay: f32,
    step: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Standard Adam with the given learning rate.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with decoupled weight decay.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Adam {
        Adam {
            weight_decay,
            ..Adam::new(lr)
        }
    }

    /// Apply one update step over all parameters of `model`.
    pub fn step(&mut self, model: &mut impl VisitParams) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let mut idx = 0usize;
        let m = &mut self.m;
        let v = &mut self.v;
        model.visit_params(&mut |params, grads| {
            if idx == m.len() {
                m.push(vec![0.0; params.len()]);
                v.push(vec![0.0; params.len()]);
            }
            let mi = &mut m[idx];
            let vi = &mut v[idx];
            assert_eq!(
                mi.len(),
                params.len(),
                "parameter shape changed between optimizer steps"
            );
            for ((p, g), (ms, vs)) in params
                .iter_mut()
                .zip(grads.iter())
                .zip(mi.iter_mut().zip(vi.iter_mut()))
            {
                *ms = b1 * *ms + (1.0 - b1) * g;
                *vs = b2 * *vs + (1.0 - b2) * g * g;
                let m_hat = *ms / bc1;
                let v_hat = *vs / bc2;
                if wd > 0.0 {
                    *p -= lr * wd * *p;
                }
                *p -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// SGD with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Sgd {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Sgd {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Apply one update step.
    pub fn step(&mut self, model: &mut impl VisitParams) {
        let (lr, mu) = (self.lr, self.momentum);
        let mut idx = 0usize;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |params, grads| {
            if idx == velocity.len() {
                velocity.push(vec![0.0; params.len()]);
            }
            let vel = &mut velocity[idx];
            for ((p, g), v) in params.iter_mut().zip(grads.iter()).zip(vel.iter_mut()) {
                if mu > 0.0 {
                    *v = mu * *v + g;
                    *p -= lr * *v;
                } else {
                    *p -= lr * g;
                }
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy quadratic "model": params p, loss = 0.5 * ||p - target||^2.
    struct Quadratic {
        params: Vec<f32>,
        grads: Vec<f32>,
        target: Vec<f32>,
    }

    impl Quadratic {
        fn new(start: Vec<f32>, target: Vec<f32>) -> Self {
            let grads = vec![0.0; start.len()];
            Quadratic {
                params: start,
                grads,
                target,
            }
        }
        fn compute_grads(&mut self) {
            for i in 0..self.params.len() {
                self.grads[i] = self.params[i] - self.target[i];
            }
        }
        fn loss(&self) -> f32 {
            self.params
                .iter()
                .zip(&self.target)
                .map(|(p, t)| (p - t) * (p - t) / 2.0)
                .sum()
        }
    }

    impl VisitParams for Quadratic {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
            f(&mut self.params, &mut self.grads);
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut model = Quadratic::new(vec![5.0, -3.0, 0.5], vec![1.0, 2.0, -1.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            model.compute_grads();
            opt.step(&mut model);
        }
        assert!(model.loss() < 1e-4, "loss {}", model.loss());
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut model = Quadratic::new(vec![5.0, -3.0], vec![0.0, 0.0]);
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        for _ in 0..300 {
            model.compute_grads();
            opt.step(&mut model);
        }
        assert!(model.loss() < 1e-4, "loss {}", model.loss());
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut model = Quadratic::new(vec![10.0], vec![10.0]); // zero task gradient
        let mut opt = Adam::with_weight_decay(0.01, 0.5);
        for _ in 0..100 {
            model.compute_grads(); // grad = 0
            opt.step(&mut model);
        }
        assert!(model.params[0] < 10.0, "decay had no effect");
    }

    #[test]
    fn adam_step_count_and_state_growth() {
        let mut model = Quadratic::new(vec![1.0, 1.0], vec![0.0, 0.0]);
        let mut opt = Adam::new(0.01);
        model.compute_grads();
        opt.step(&mut model);
        assert_eq!(opt.m.len(), 1);
        assert_eq!(opt.m[0].len(), 2);
        opt.step(&mut model);
        assert_eq!(opt.m.len(), 1, "state must not grow on later steps");
    }

    #[test]
    fn deterministic_updates() {
        let run = || {
            let mut model = Quadratic::new(vec![3.0], vec![0.0]);
            let mut opt = Adam::new(0.05);
            for _ in 0..10 {
                model.compute_grads();
                opt.step(&mut model);
            }
            model.params[0]
        };
        assert_eq!(run(), run());
    }
}
