//! The inference arena: every buffer a frozen forward pass needs, sized
//! once per `(batch, length, channels)` shape and reused forever after.
//!
//! [`crate::frozen::FrozenResNet::predict_into`] runs the whole network —
//! blocks, GAP, head, softmax, CAM — against an [`InferenceArena`], and the
//! arena is the *only* memory it touches. Buffers grow on the first call
//! for a given shape (the warmup) and never shrink, so steady-state
//! serving on a fixed window shape performs **zero heap allocations**; the
//! perf harness asserts this with the ds-obs allocation counter.
//!
//! Activations ping-pong through three flat buffers, each large enough for
//! the widest `[B, C, L]` tensor in the network: `a` holds the current
//! block input, the block writes its output to `b` and uses `c` as
//! scratch, then `a` and `b` swap (a pointer swap via [`std::mem::swap`],
//! never a copy). After the last block, `a` holds the final feature maps,
//! which GAP, the head, and the CAM read in place.

/// Reusable buffers for one frozen network's forward passes.
///
/// One arena serves one network at a time (shapes are per-network), but it
/// can be re-used across networks of the same width — `ensure` only ever
/// grows. All state is plain `Vec<f32>` + the dimensions of the most
/// recent pass; accessors slice the valid region.
#[derive(Debug, Default, Clone)]
pub struct InferenceArena {
    /// Ping buffer: block input / final feature maps `[B, C, L]`.
    buf_a: Vec<f32>,
    /// Pong buffer: block output before the swap.
    buf_b: Vec<f32>,
    /// Scratch: mid-block activation and the projection-shortcut result.
    buf_c: Vec<f32>,
    /// GAP output `[B, features]`.
    pooled: Vec<f32>,
    /// Head output `[B, classes]`.
    logits: Vec<f32>,
    /// One softmax row `[classes]`.
    softmax: Vec<f32>,
    /// Positive-class probability per batch row `[B]`.
    probs: Vec<f32>,
    /// Class-1 CAM per batch row `[B, L]`.
    cams: Vec<f32>,
    /// Quantized-input scratch `[B, C, L]` as `i8` — only grown by
    /// [`InferenceArena::ensure_quant`]; stays empty for f32 plans.
    qbuf: Vec<i8>,
    /// Backbone-specific scratch (Inception branch staging, TransApp
    /// attention scores) — only grown by [`InferenceArena::ensure_aux`];
    /// stays empty for plain ResNet plans.
    aux: Vec<f32>,
    batch: usize,
    len: usize,
    classes: usize,
}

impl InferenceArena {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> InferenceArena {
        InferenceArena::default()
    }

    /// Size every buffer for a `(batch, len)` pass through a network whose
    /// widest tensor has `max_channels` channels, with `features` last-block
    /// channels and `classes` logits. Grow-only: a smaller follow-up shape
    /// reuses the existing capacity without reallocating.
    pub fn ensure(
        &mut self,
        batch: usize,
        len: usize,
        max_channels: usize,
        features: usize,
        classes: usize,
    ) {
        fn grow(buf: &mut Vec<f32>, n: usize) {
            if buf.len() < n {
                buf.resize(n, 0.0);
            }
        }
        let act = batch * max_channels * len;
        grow(&mut self.buf_a, act);
        grow(&mut self.buf_b, act);
        grow(&mut self.buf_c, act);
        grow(&mut self.pooled, batch * features);
        grow(&mut self.logits, batch * classes);
        grow(&mut self.softmax, classes);
        grow(&mut self.probs, batch);
        grow(&mut self.cams, batch * len);
        self.batch = batch;
        self.len = len;
        self.classes = classes;
    }

    /// [`InferenceArena::ensure`] plus the `i8` input-quantization
    /// scratch the int8 plan needs. Grow-only, like everything else here.
    pub fn ensure_quant(
        &mut self,
        batch: usize,
        len: usize,
        max_channels: usize,
        features: usize,
        classes: usize,
    ) {
        self.ensure(batch, len, max_channels, features, classes);
        let act = batch * max_channels * len;
        if self.qbuf.len() < act {
            self.qbuf.resize(act, 0);
        }
    }

    /// Grow the backbone-specific f32 scratch to at least `n` elements.
    /// Grow-only, like everything else here; call before [`parts`].
    ///
    /// [`parts`]: InferenceArena::parts
    pub(crate) fn ensure_aux(&mut self, n: usize) {
        if self.aux.len() < n {
            self.aux.resize(n, 0.0);
        }
    }

    /// The ping/pong/scratch activation buffers, the `i8` quantization
    /// scratch, the backbone aux scratch, plus the output buffers,
    /// borrowed simultaneously for one forward pass.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(
        &mut self,
    ) -> (
        &mut Vec<f32>,
        &mut Vec<f32>,
        &mut Vec<f32>,
        &mut [i8],
        &mut [f32],
        &mut [f32],
        &mut [f32],
        &mut [f32],
        &mut [f32],
        &mut [f32],
    ) {
        (
            &mut self.buf_a,
            &mut self.buf_b,
            &mut self.buf_c,
            &mut self.qbuf,
            &mut self.aux,
            &mut self.pooled,
            &mut self.logits,
            &mut self.softmax,
            &mut self.probs,
            &mut self.cams,
        )
    }

    /// Heap footprint of every buffer in bytes (capacity, not live
    /// length). Serving fronts report this per plan so operators can see
    /// what one warm arena costs before cloning plans per worker.
    pub fn heap_bytes(&self) -> usize {
        let f32s = self.buf_a.capacity()
            + self.buf_b.capacity()
            + self.buf_c.capacity()
            + self.aux.capacity()
            + self.pooled.capacity()
            + self.logits.capacity()
            + self.softmax.capacity()
            + self.probs.capacity()
            + self.cams.capacity();
        f32s * std::mem::size_of::<f32>() + self.qbuf.capacity()
    }

    /// Batch size of the most recent pass.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Window length of the most recent pass.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before the first `ensure`.
    pub fn is_empty(&self) -> bool {
        self.batch == 0
    }

    /// Positive-class probability per batch row of the most recent pass.
    pub fn probs(&self) -> &[f32] {
        &self.probs[..self.batch]
    }

    /// Class-1 CAM of batch row `bi` from the most recent pass.
    pub fn cam(&self, bi: usize) -> &[f32] {
        assert!(bi < self.batch, "cam row {bi} out of {}", self.batch);
        &self.cams[bi * self.len..(bi + 1) * self.len]
    }

    /// Logits of batch row `bi` from the most recent pass.
    pub fn logits_row(&self, bi: usize) -> &[f32] {
        assert!(bi < self.batch, "logits row {bi} out of {}", self.batch);
        &self.logits[bi * self.classes..(bi + 1) * self.classes]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_grows_then_reuses() {
        let mut arena = InferenceArena::new();
        assert!(arena.is_empty());
        arena.ensure(4, 32, 8, 8, 2);
        assert_eq!(arena.batch(), 4);
        assert_eq!(arena.len(), 32);
        let ptr = arena.buf_a.as_ptr();
        let cap = arena.buf_a.capacity();
        // Smaller shape: no reallocation, dimensions update.
        arena.ensure(1, 32, 8, 8, 2);
        assert_eq!(arena.buf_a.as_ptr(), ptr);
        assert_eq!(arena.buf_a.capacity(), cap);
        assert_eq!(arena.batch(), 1);
        assert_eq!(arena.probs().len(), 1);
        assert_eq!(arena.cam(0).len(), 32);
        assert_eq!(arena.logits_row(0).len(), 2);
    }

    #[test]
    fn steady_state_ensure_allocates_nothing() {
        let mut arena = InferenceArena::new();
        arena.ensure(8, 64, 32, 32, 2); // warmup
        let before = ds_obs::alloc_count();
        for _ in 0..16 {
            arena.ensure(8, 64, 32, 32, 2);
            arena.ensure(3, 64, 32, 32, 2);
        }
        assert_eq!(ds_obs::alloc_count(), before, "ensure must not allocate");
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn cam_row_bounds_checked() {
        let mut arena = InferenceArena::new();
        arena.ensure(2, 8, 4, 4, 2);
        let _ = arena.cam(2);
    }
}
