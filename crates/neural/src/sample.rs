//! Resolution-changing layers: max pooling and nearest-neighbour
//! upsampling. Together they make true encoder–decoder (UNet-style)
//! seq2seq architectures expressible on this substrate.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Max pooling over non-overlapping windows of `factor` along the length
/// axis. A trailing remainder shorter than `factor` is dropped (PyTorch
/// semantics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool1d {
    /// Pooling factor (window and stride).
    pub factor: usize,
    #[serde(skip)]
    argmax: Option<(Vec<usize>, usize, usize, usize)>, // indices, b, c, l_in
}

impl MaxPool1d {
    /// Create a pooling layer.
    ///
    /// # Panics
    /// Panics if `factor == 0`.
    pub fn new(factor: usize) -> MaxPool1d {
        assert!(factor >= 1, "pooling factor must be positive");
        MaxPool1d {
            factor,
            argmax: None,
        }
    }

    /// Output length for a given input length.
    pub fn out_len(&self, l: usize) -> usize {
        l / self.factor
    }

    /// Forward pass; caches argmax positions when training.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (b, c, l) = x.shape();
        let lo = self.out_len(l);
        assert!(
            lo > 0,
            "input ({l}) shorter than the pooling factor ({})",
            self.factor
        );
        let mut y = Tensor::zeros(b, c, lo);
        let mut argmax = vec![0usize; b * c * lo];
        for bi in 0..b {
            for ci in 0..c {
                let row = x.row(bi, ci);
                for (o, am) in argmax[(bi * c + ci) * lo..(bi * c + ci + 1) * lo]
                    .iter_mut()
                    .enumerate()
                {
                    let start = o * self.factor;
                    let mut best = start;
                    let mut best_v = row[start];
                    for (k, &v) in row[start..start + self.factor].iter().enumerate() {
                        if v > best_v {
                            best_v = v;
                            best = start + k;
                        }
                    }
                    *y.get_mut(bi, ci, o) = best_v;
                    *am = best;
                }
            }
        }
        if train {
            self.argmax = Some((argmax, b, c, l));
        }
        y
    }

    /// Backward: the gradient routes to the argmax positions.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (argmax, b, c, l_in) = self
            .argmax
            .as_ref()
            .expect("MaxPool1d::backward requires forward(train=true) first");
        assert_eq!(grad_out.batch, *b);
        assert_eq!(grad_out.channels, *c);
        let lo = grad_out.len;
        let mut grad_in = Tensor::zeros(*b, *c, *l_in);
        for bi in 0..*b {
            for ci in 0..*c {
                for o in 0..lo {
                    let src = argmax[(bi * c + ci) * lo + o];
                    *grad_in.get_mut(bi, ci, src) += grad_out.get(bi, ci, o);
                }
            }
        }
        grad_in
    }
}

/// Nearest-neighbour upsampling by an integer factor (each sample repeats
/// `factor` times). The inverse-resolution partner of [`MaxPool1d`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Upsample1d {
    /// Repetition factor.
    pub factor: usize,
}

impl Upsample1d {
    /// Create an upsampling layer.
    ///
    /// # Panics
    /// Panics if `factor == 0`.
    pub fn new(factor: usize) -> Upsample1d {
        assert!(factor >= 1, "upsampling factor must be positive");
        Upsample1d { factor }
    }

    /// Forward (pure — no cache needed; backward only needs the factor).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (b, c, l) = x.shape();
        let mut y = Tensor::zeros(b, c, l * self.factor);
        for bi in 0..b {
            for ci in 0..c {
                let row = x.row(bi, ci);
                let out = y.row_mut(bi, ci);
                for (i, &v) in row.iter().enumerate() {
                    out[i * self.factor..(i + 1) * self.factor].fill(v);
                }
            }
        }
        y
    }

    /// Backward: each input position accumulates the gradient of its
    /// `factor` replicas.
    pub fn backward(&self, grad_out: &Tensor) -> Tensor {
        let (b, c, lo) = grad_out.shape();
        assert!(
            lo % self.factor == 0,
            "upsample backward expects a multiple of the factor"
        );
        let l = lo / self.factor;
        let mut grad_in = Tensor::zeros(b, c, l);
        for bi in 0..b {
            for ci in 0..c {
                let g = grad_out.row(bi, ci);
                let out = grad_in.row_mut(bi, ci);
                for (i, o) in out.iter_mut().enumerate() {
                    *o = g[i * self.factor..(i + 1) * self.factor].iter().sum();
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_picks_maxima() {
        let x = Tensor::from_data(1, 1, 6, vec![1.0, 5.0, 2.0, 7.0, 3.0, 4.0]);
        let mut pool = MaxPool1d::new(2);
        let y = pool.forward(&x, false);
        assert_eq!(y.data, vec![5.0, 7.0, 4.0]);
        assert_eq!(pool.out_len(7), 3); // remainder dropped
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_data(1, 1, 4, vec![1.0, 5.0, 7.0, 2.0]);
        let mut pool = MaxPool1d::new(2);
        let _ = pool.forward(&x, true);
        let g = Tensor::from_data(1, 1, 2, vec![10.0, 20.0]);
        let gi = pool.backward(&g);
        assert_eq!(gi.data, vec![0.0, 10.0, 20.0, 0.0]);
    }

    #[test]
    fn maxpool_gradient_check() {
        let x = Tensor::from_data(1, 2, 8, (0..16).map(|i| ((i * 7) % 11) as f32).collect());
        let mut pool = MaxPool1d::new(2);
        let y = pool.forward(&x, true);
        let gi = pool.backward(&y); // loss = sum(y^2)/2
        let eps = 1e-3f32;
        for xi in 0..x.data.len() {
            let mut x2 = x.clone();
            x2.data[xi] += eps;
            let lp: f32 = pool
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x2.data[xi] -= 2.0 * eps;
            let lm: f32 = pool
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gi.data[xi]).abs() < 1e-2, "x[{xi}]");
        }
    }

    #[test]
    fn upsample_round_trip_shapes() {
        let x = Tensor::from_data(2, 1, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let up = Upsample1d::new(3);
        let y = up.forward(&x);
        assert_eq!(y.shape(), (2, 1, 9));
        assert_eq!(&y.data[0..4], &[1.0, 1.0, 1.0, 2.0]);
        let gi = up.backward(&y);
        assert_eq!(gi.shape(), x.shape());
        assert_eq!(gi.data[0], 3.0); // 1.0 × 3 replicas
    }

    #[test]
    fn upsample_gradient_check() {
        let x = Tensor::from_data(1, 1, 4, vec![0.5, -1.0, 2.0, 0.0]);
        let up = Upsample1d::new(2);
        let y = up.forward(&x);
        let gi = up.backward(&y); // loss = sum(y^2)/2
        let eps = 1e-3f32;
        for xi in 0..4 {
            let mut x2 = x.clone();
            x2.data[xi] += eps;
            let lp: f32 = up.forward(&x2).data.iter().map(|v| v * v / 2.0).sum();
            x2.data[xi] -= 2.0 * eps;
            let lm: f32 = up.forward(&x2).data.iter().map(|v| v * v / 2.0).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gi.data[xi]).abs() < 1e-2, "x[{xi}]");
        }
    }

    #[test]
    fn pool_then_upsample_preserves_length() {
        let x = Tensor::from_data(1, 1, 12, (0..12).map(|i| i as f32).collect());
        let mut pool = MaxPool1d::new(4);
        let up = Upsample1d::new(4);
        let y = up.forward(&pool.forward(&x, false));
        assert_eq!(y.len, 12);
    }

    #[test]
    #[should_panic(expected = "requires forward")]
    fn maxpool_backward_without_forward_panics() {
        let mut pool = MaxPool1d::new(2);
        let _ = pool.backward(&Tensor::zeros(1, 1, 2));
    }
}
