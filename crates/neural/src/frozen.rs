//! The frozen inference plan: a trained [`ResNet`] compiled once into an
//! immutable, allocation-free serving form.
//!
//! Three transformations, applied at freeze time:
//!
//! 1. **BN folding.** Each `Conv → BN` stage collapses into a single
//!    convolution: with the BatchNorm inference affine
//!    `scale[c] = γ[c]/√(running_var[c]+ε)`,
//!    `shift[c] = β[c] − scale[c]·μ[c]`, the folded weights are
//!    `W'[oc,·,·] = W[oc,·,·]·scale[oc]` and the folded bias
//!    `b'[oc] = b[oc]·scale[oc] + shift[oc]`. This deletes one full tensor
//!    pass per stage — 9 stages plus projection shortcuts per ensemble
//!    member.
//! 2. **Fused ReLU epilogue.** Where the reference path materializes a
//!    post-BN tensor and then clamps it, the frozen conv clamps in the
//!    output-write loop of the register-blocked kernel
//!    ([`crate::conv::accumulate_conv4`]'s const-dispatched `relu` flag),
//!    deleting the activation passes as well.
//! 3. **Arena execution.** [`FrozenResNet::predict_into`] runs entirely
//!    inside an [`InferenceArena`]: activations ping-pong through three
//!    pre-sized buffers, and GAP/head/softmax/CAM write into reused output
//!    buffers. After the first call per shape, a forward pass performs
//!    zero heap allocations.
//!
//! Folding reassociates floating-point products, so frozen outputs are not
//! bit-identical to the mutable path. The contract — enforced by the
//! `frozen_plan` golden tests and the perf harness — is *tolerance plus
//! decision identity*: logits within `1e-4` max-abs, and exactly the same
//! detections (`prob > 0.5`) and localization masks.

use crate::batchnorm::BatchNorm1d;
use crate::conv::{accumulate_conv, accumulate_conv4t2, Conv1d};
use crate::linear::Linear;
use crate::loss::softmax_row;
use crate::plan::InferenceArena;
use crate::resblock::ResidualBlock;
use crate::resnet::ResNet;
use crate::tensor::Tensor;

/// A convolution with a BatchNorm inference affine folded into its
/// weights and bias. Immutable by construction.
#[derive(Debug, Clone)]
pub struct FrozenConv {
    pub(crate) in_channels: usize,
    pub(crate) out_channels: usize,
    pub(crate) kernel: usize,
    pub(crate) dilation: usize,
    /// Folded weights `[out, in, k]`, row-major.
    pub(crate) weight: Vec<f32>,
    /// Folded per-output-channel bias.
    pub(crate) bias: Vec<f32>,
}

impl FrozenConv {
    /// Fold `bn`'s inference affine into `conv`. Public as the building
    /// block of the frozen plan — benches and tests fold single stages to
    /// measure the kernels in isolation.
    pub fn fold(conv: &Conv1d, bn: &BatchNorm1d) -> FrozenConv {
        assert_eq!(
            conv.out_channels, bn.channels,
            "fold requires conv output channels to match BN channels"
        );
        let (scale, shift) = bn.inference_affine();
        let per_oc = conv.in_channels * conv.kernel;
        let mut weight = conv.weight.clone();
        for (oc, &s) in scale.iter().enumerate() {
            for w in &mut weight[oc * per_oc..(oc + 1) * per_oc] {
                *w *= s;
            }
        }
        let bias = conv
            .bias
            .iter()
            .zip(scale.iter().zip(&shift))
            .map(|(&b, (&s, &sh))| b * s + sh)
            .collect();
        FrozenConv {
            in_channels: conv.in_channels,
            out_channels: conv.out_channels,
            kernel: conv.kernel,
            dilation: conv.dilation,
            weight,
            bias,
        }
    }

    /// Fold an explicit per-output-channel affine (`scale`, `shift`) into
    /// `conv` — the general form of [`FrozenConv::fold`] for BatchNorm
    /// layers that normalize a *concatenation* of several convolutions'
    /// outputs (the Inception block): each branch conv folds the slice of
    /// the affine covering its output-channel range.
    pub(crate) fn fold_affine(conv: &Conv1d, scale: &[f32], shift: &[f32]) -> FrozenConv {
        assert_eq!(conv.out_channels, scale.len(), "affine length mismatch");
        assert_eq!(conv.out_channels, shift.len(), "affine length mismatch");
        let per_oc = conv.in_channels * conv.kernel;
        let mut weight = conv.weight.clone();
        for (oc, &s) in scale.iter().enumerate() {
            for w in &mut weight[oc * per_oc..(oc + 1) * per_oc] {
                *w *= s;
            }
        }
        let bias = conv
            .bias
            .iter()
            .zip(scale.iter().zip(shift))
            .map(|(&b, (&s, &sh))| b * s + sh)
            .collect();
        FrozenConv {
            in_channels: conv.in_channels,
            out_channels: conv.out_channels,
            kernel: conv.kernel,
            dilation: conv.dilation,
            weight,
            bias,
        }
    }

    /// Freeze a convolution that has no adjacent BatchNorm (identity
    /// fold): attention projections, FFN convs, Inception bottlenecks.
    pub(crate) fn from_conv(conv: &Conv1d) -> FrozenConv {
        FrozenConv {
            in_channels: conv.in_channels,
            out_channels: conv.out_channels,
            kernel: conv.kernel,
            dilation: conv.dilation,
            weight: conv.weight.clone(),
            bias: conv.bias.clone(),
        }
    }

    #[inline]
    pub(crate) fn pad_left(&self) -> usize {
        (self.kernel - 1) * self.dilation / 2
    }

    /// Forward `batch` rows of `[in_channels, l]` from `x` into `y`
    /// (`[batch, out_channels, l]` region), optionally fusing a ReLU into
    /// the final accumulation pass. Sequential and allocation-free.
    pub fn infer_into(&self, x: &[f32], batch: usize, l: usize, y: &mut [f32], relu: bool) {
        debug_assert!(x.len() >= batch * self.in_channels * l);
        debug_assert!(y.len() >= batch * self.out_channels * l);
        let (in_stride, out_stride) = (self.in_channels * l, self.out_channels * l);
        for bi in 0..batch {
            self.infer_row(
                &x[bi * in_stride..(bi + 1) * in_stride],
                &mut y[bi * out_stride..(bi + 1) * out_stride],
                l,
                relu,
            );
        }
    }

    /// One batch row. On AVX2+FMA hosts (unless `DS_SIMD=off`) the
    /// vectorized [`crate::simd::frozen_conv_rows`] kernel runs — eight
    /// output positions per step, logits within `1e-4` of the scalar
    /// path. Otherwise: bias fill, then blocks of four output channels
    /// accumulated against each input row via the two-position kernel
    /// ([`accumulate_conv4t2`]) — bit-identical to [`Conv1d::infer`]'s
    /// per-element tap order, with the weight loads shared across adjacent
    /// positions and the epilogue fused into the last input-channel pass.
    /// The scalar path is the determinism twin the golden tests gate the
    /// SIMD path against.
    fn infer_row(&self, x_rows: &[f32], y_rows: &mut [f32], l: usize, relu: bool) {
        let pad = self.pad_left();
        if crate::simd::frozen_conv_rows(
            &self.weight,
            &self.bias,
            self.in_channels,
            self.out_channels,
            self.kernel,
            pad,
            self.dilation,
            x_rows,
            y_rows,
            l,
            relu,
        ) {
            return;
        }
        let k = self.kernel;
        let mut oc = 0;
        while oc < self.out_channels {
            let rows = (self.out_channels - oc).min(4);
            let block = &mut y_rows[oc * l..(oc + rows) * l];
            for (r, row) in block.chunks_mut(l).enumerate() {
                row[..l].fill(self.bias[oc + r]);
            }
            for ic in 0..self.in_channels {
                let x_row = &x_rows[ic * l..(ic + 1) * l];
                // Only the final accumulation pass may clamp: each output
                // element is written exactly once per pass.
                let last = ic + 1 == self.in_channels;
                let w_at = |r: usize| {
                    let start = ((oc + r) * self.in_channels + ic) * k;
                    &self.weight[start..start + k]
                };
                if rows == 4 {
                    let w = [w_at(0), w_at(1), w_at(2), w_at(3)];
                    accumulate_conv4t2(block, l, x_row, w, k, pad, self.dilation, relu && last);
                } else {
                    for (r, y_row) in block.chunks_mut(l).enumerate() {
                        accumulate_conv(
                            y_row,
                            x_row,
                            w_at(r),
                            pad as isize,
                            self.dilation as isize,
                        );
                    }
                }
            }
            // The single-row fallback has no epilogue; clamp the remainder
            // rows once all input channels are accumulated.
            if relu && rows < 4 {
                for v in block.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            oc += rows;
        }
    }

    pub(crate) fn push_bits(&self, bits: &mut Vec<u32>) {
        bits.extend(self.weight.iter().map(|v| v.to_bits()));
        bits.extend(self.bias.iter().map(|v| v.to_bits()));
    }
}

/// A residual block compiled to three folded convolutions plus an
/// optional folded projection shortcut.
#[derive(Debug, Clone)]
pub struct FrozenBlock {
    pub(crate) stage1: FrozenConv,
    pub(crate) stage2: FrozenConv,
    pub(crate) stage3: FrozenConv,
    pub(crate) shortcut: Option<FrozenConv>,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
}

impl FrozenBlock {
    fn freeze(block: &ResidualBlock) -> FrozenBlock {
        let fold = |i: usize| {
            let (conv, bn) = block.stage_parts(i);
            FrozenConv::fold(conv, bn)
        };
        FrozenBlock {
            stage1: fold(0),
            stage2: fold(1),
            stage3: fold(2),
            shortcut: block.shortcut_parts().map(|(c, b)| FrozenConv::fold(c, b)),
            in_channels: block.in_channels,
            out_channels: block.out_channels,
        }
    }

    /// Run the block: read from `x`, leave the result in `out`, clobber
    /// `tmp`. The dataflow mirrors [`ResidualBlock::infer`] with every
    /// BN/ReLU pass fused away:
    /// `out ← relu(st1(x))`, `tmp ← relu(st2(out))`, `out ← st3(tmp)`,
    /// then `out ← relu(out + shortcut(x)|x)`.
    fn infer_into(&self, x: &[f32], out: &mut [f32], tmp: &mut [f32], batch: usize, l: usize) {
        let n_out = batch * self.out_channels * l;
        self.stage1.infer_into(x, batch, l, out, true);
        self.stage2.infer_into(&out[..n_out], batch, l, tmp, true);
        self.stage3.infer_into(&tmp[..n_out], batch, l, out, false);
        match &self.shortcut {
            Some(sc) => {
                sc.infer_into(x, batch, l, tmp, false);
                for (o, &r) in out[..n_out].iter_mut().zip(&tmp[..n_out]) {
                    *o = (*o + r).max(0.0);
                }
            }
            None => {
                for (o, &r) in out[..n_out].iter_mut().zip(&x[..n_out]) {
                    *o = (*o + r).max(0.0);
                }
            }
        }
    }
}

/// An immutable, BN-folded, fused, arena-driven compilation of a trained
/// [`ResNet`]. Build one with [`FrozenResNet::freeze`] (or
/// `ResNet`-holding wrappers' `freeze()` methods) after training; it
/// shares no state with the source network.
#[derive(Debug, Clone)]
pub struct FrozenResNet {
    pub(crate) blocks: Vec<FrozenBlock>,
    /// Head weights `[num_classes, features]`, row-major.
    pub(crate) head_weight: Vec<f32>,
    /// Head bias `[num_classes]`.
    pub(crate) head_bias: Vec<f32>,
    pub(crate) in_channels: usize,
    pub(crate) features: usize,
    pub(crate) num_classes: usize,
    pub(crate) kernel: usize,
    pub(crate) max_channels: usize,
}

impl FrozenResNet {
    /// Compile `net` into a frozen plan. `net` is read, not consumed —
    /// training can continue on it and a new plan can be frozen later.
    pub fn freeze(net: &ResNet) -> FrozenResNet {
        let head: &Linear = net.head();
        assert!(
            head.out_features >= 2,
            "frozen plan needs a binary (or wider) head for class-1 CAM"
        );
        let blocks: Vec<FrozenBlock> = net.blocks().iter().map(FrozenBlock::freeze).collect();
        let in_channels = net.config().in_channels;
        let features = blocks.last().expect("at least one block").out_channels;
        let max_channels = blocks
            .iter()
            .map(|b| b.out_channels)
            .max()
            .unwrap()
            .max(in_channels);
        FrozenResNet {
            head_weight: head.weight.clone(),
            head_bias: head.bias.clone(),
            in_channels,
            features,
            num_classes: head.out_features,
            kernel: net.kernel(),
            blocks,
            max_channels,
        }
    }

    /// Kernel size of the source member (the ensemble diversity knob).
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Channel count of the last block's feature maps.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Widest channel count of any activation tensor (arena sizing).
    pub fn max_channels(&self) -> usize {
        self.max_channels
    }

    /// Number of classes of the head.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Full forward pass into `arena`: positive-class probabilities
    /// ([`InferenceArena::probs`]), class-1 CAMs ([`InferenceArena::cam`])
    /// and logits ([`InferenceArena::logits_row`]). Zero heap allocations
    /// once the arena has seen the shape.
    pub fn predict_into(&self, x: &Tensor, arena: &mut InferenceArena) {
        let _span = ds_obs::span!("frozen.forward");
        let (b, c, l) = x.shape();
        assert_eq!(c, self.in_channels, "frozen input channel mismatch");
        assert!(b > 0 && l > 0, "frozen forward needs a non-empty batch");
        arena.ensure(b, l, self.max_channels, self.features, self.num_classes);
        let (buf_a, buf_b, buf_c, _qbuf, _aux, pooled, logits, softmax, probs, cams) =
            arena.parts();
        buf_a[..b * c * l].copy_from_slice(&x.data[..b * c * l]);
        let mut c_in = self.in_channels;
        for block in &self.blocks {
            block.infer_into(&buf_a[..b * c_in * l], buf_b, buf_c, b, l);
            std::mem::swap(buf_a, buf_b);
            c_in = block.out_channels;
        }
        let feats = &buf_a[..b * self.features * l];
        finish_forward(
            feats,
            &self.head_weight,
            &self.head_bias,
            self.features,
            self.num_classes,
            b,
            l,
            pooled,
            logits,
            softmax,
            probs,
            cams,
        );
    }

    /// Every folded parameter as raw `f32` bits in a fixed traversal
    /// order. Two plans with equal `param_bits` compute bit-identical
    /// outputs; the model_io round-trip test uses this to assert
    /// `freeze(load(save(net)))` equals `freeze(net)` exactly.
    pub fn param_bits(&self) -> Vec<u32> {
        let mut bits = Vec::new();
        for block in &self.blocks {
            block.stage1.push_bits(&mut bits);
            block.stage2.push_bits(&mut bits);
            block.stage3.push_bits(&mut bits);
            if let Some(sc) = &block.shortcut {
                sc.push_bits(&mut bits);
            }
        }
        bits.extend(self.head_weight.iter().map(|v| v.to_bits()));
        bits.extend(self.head_bias.iter().map(|v| v.to_bits()));
        bits
    }
}

/// The network epilogue shared by the f32 and int8 frozen plans: GAP,
/// head, softmax → positive-class probability, and the class-1 CAM, all
/// reading `feats` (`[b, features, l]`) in place and writing into arena
/// buffers. Accumulation orders match the mutable reference path
/// (`GlobalAvgPool::infer`, `Linear::infer`, `cam_from_features`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_forward(
    feats: &[f32],
    head_weight: &[f32],
    head_bias: &[f32],
    features: usize,
    num_classes: usize,
    b: usize,
    l: usize,
    pooled: &mut [f32],
    logits: &mut [f32],
    softmax: &mut [f32],
    probs: &mut [f32],
    cams: &mut [f32],
) {
    // GAP — same summation order as `GlobalAvgPool::infer`.
    for bi in 0..b {
        for ci in 0..features {
            let row = &feats[(bi * features + ci) * l..][..l];
            pooled[bi * features + ci] = row.iter().sum::<f32>() / l as f32;
        }
    }
    // Head — same accumulation order as `Linear::infer`.
    for bi in 0..b {
        let xr = &pooled[bi * features..(bi + 1) * features];
        for o in 0..num_classes {
            let w = &head_weight[o * features..(o + 1) * features];
            let mut acc = head_bias[o];
            for (wv, xv) in w.iter().zip(xr) {
                acc += wv * xv;
            }
            logits[bi * num_classes + o] = acc;
        }
    }
    // Softmax → positive-class probability.
    for bi in 0..b {
        softmax_row(&logits[bi * num_classes..(bi + 1) * num_classes], softmax);
        probs[bi] = softmax[1];
    }
    // Class-1 CAM — same accumulation order (ascending channel, zero
    // weights skipped) as `cam_from_features`.
    let w1 = &head_weight[features..2 * features];
    for bi in 0..b {
        let cam = &mut cams[bi * l..(bi + 1) * l];
        cam.fill(0.0);
        for (ki, &w) in w1.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let f = &feats[(bi * features + ki) * l..][..l];
            for (cv, &fv) in cam.iter_mut().zip(f) {
                *cv += w * fv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::ResNetConfig;

    fn sample_input(b: usize, c: usize, l: usize) -> Tensor {
        let data: Vec<f32> = (0..b * c * l)
            .map(|i| ((i * 31 % 17) as f32 - 8.0) / 4.0)
            .collect();
        Tensor::from_data(b, c, l, data)
    }

    /// Give a network non-trivial BN running statistics so folding is not
    /// an identity transform.
    fn warm_bn(net: &mut ResNet, l: usize) {
        let x = sample_input(6, net.config().in_channels, l);
        for _ in 0..4 {
            let _ = net.forward(&x, true);
        }
    }

    #[test]
    fn fold_matches_conv_then_bn() {
        let mut conv = Conv1d::new(3, 5, 7, 21);
        let mut bn = BatchNorm1d::new(5);
        // Hand-set, non-trivial inference statistics.
        for c in 0..5 {
            bn.gamma[c] = 0.5 + c as f32 * 0.3;
            bn.beta[c] = -0.2 + c as f32 * 0.1;
            bn.running_mean[c] = 0.05 * c as f32 - 0.1;
            bn.running_var[c] = 0.4 + 0.2 * c as f32;
        }
        conv.bias.iter_mut().enumerate().for_each(|(i, b)| {
            *b = 0.01 * i as f32 - 0.02;
        });
        let x = sample_input(2, 3, 19);
        let reference = bn.infer(&conv.infer(&x));
        let frozen = FrozenConv::fold(&conv, &bn);
        let mut y = vec![0.0f32; 2 * 5 * 19];
        frozen.infer_into(&x.data, 2, 19, &mut y, false);
        for (a, r) in y.iter().zip(&reference.data) {
            assert!((a - r).abs() < 1e-5, "folded {a} vs reference {r}");
        }
    }

    #[test]
    fn fused_relu_matches_separate_clamp() {
        // Odd output-channel count exercises both the 4-row fused epilogue
        // and the remainder-row post-clamp.
        let conv = Conv1d::new(2, 7, 5, 9);
        let bn = BatchNorm1d::new(7);
        let frozen = FrozenConv::fold(&conv, &bn);
        let x = sample_input(3, 2, 23);
        let mut plain = vec![0.0f32; 3 * 7 * 23];
        let mut fused = vec![0.0f32; 3 * 7 * 23];
        frozen.infer_into(&x.data, 3, 23, &mut plain, false);
        frozen.infer_into(&x.data, 3, 23, &mut fused, true);
        for (p, f) in plain.iter().zip(&fused) {
            assert_eq!(p.max(0.0).to_bits(), f.to_bits());
        }
    }

    #[test]
    fn frozen_net_matches_reference_within_tolerance() {
        for kernel in [3usize, 5] {
            let mut net = ResNet::new(ResNetConfig::tiny(kernel, 77));
            warm_bn(&mut net, 40);
            let frozen = FrozenResNet::freeze(&net);
            let x = sample_input(4, 1, 40);
            let (logits, _) = net.infer(&x);
            let (probs, cams) = net.infer_with_cam(&x);
            let mut arena = InferenceArena::new();
            frozen.predict_into(&x, &mut arena);
            for bi in 0..4 {
                for (a, r) in arena.logits_row(bi).iter().zip(logits.row(bi)) {
                    assert!((a - r).abs() < 1e-4, "k={kernel} logit {a} vs {r}");
                }
                assert!((arena.probs()[bi] - probs[bi]).abs() < 1e-4);
                assert_eq!(arena.probs()[bi] > 0.5, probs[bi] > 0.5, "decision flip");
                for (a, r) in arena.cam(bi).iter().zip(&cams[bi]) {
                    assert!((a - r).abs() < 1e-3, "k={kernel} cam {a} vs {r}");
                }
            }
        }
    }

    #[test]
    fn steady_state_predict_allocates_nothing() {
        let mut net = ResNet::new(ResNetConfig::tiny(5, 13));
        warm_bn(&mut net, 32);
        let frozen = FrozenResNet::freeze(&net);
        let x = sample_input(3, 1, 32);
        let mut arena = InferenceArena::new();
        frozen.predict_into(&x, &mut arena); // warmup sizes the arena
        let before = ds_obs::alloc_count();
        for _ in 0..8 {
            frozen.predict_into(&x, &mut arena);
        }
        assert_eq!(
            ds_obs::alloc_count(),
            before,
            "steady-state frozen forward must not allocate"
        );
    }

    #[test]
    fn refreeze_is_bit_identical() {
        let mut net = ResNet::new(ResNetConfig::tiny(7, 5));
        warm_bn(&mut net, 24);
        let a = FrozenResNet::freeze(&net);
        let b = FrozenResNet::freeze(&net);
        assert_eq!(a.param_bits(), b.param_bits());
    }
}
