//! Class Activation Map extraction.
//!
//! For a GAP-classifier network, the logit of class `c` decomposes over
//! time: `logit_c = Σ_k w_k^c · GAP(f_k) + b_c = mean_t Σ_k w_k^c · f_k(t)`.
//! The inner sum is the **Class Activation Map**
//! `CAM_c(t) = Σ_k w_k^c · f_k(t)` (Zhou et al., CVPR 2016) — the paper's
//! equation in §II-B step 3. It localizes *which timesteps* drove the
//! classifier's decision, which CamAL turns into appliance localization.

use crate::resnet::ResNet;
use crate::tensor::Tensor;

/// CAM extraction was requested before any forward pass ran, so there are
/// no cached feature maps to decompose. The typed form of the panic in
/// [`class_activation_maps`]; serving paths route it into their own error
/// taxonomy instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoForwardPass;

impl std::fmt::Display for NoForwardPass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CAM extraction requires a forward pass first")
    }
}

impl std::error::Error for NoForwardPass {}

/// Extract the CAM of `class` for every batch row of the most recent
/// forward pass of `net`.
///
/// Returns one `Vec<f32>` of length `L` per batch row.
///
/// # Panics
/// Panics if the network has not run a forward pass yet. Serving paths
/// that must not abort use [`try_class_activation_maps`].
pub fn class_activation_maps(net: &ResNet, class: usize) -> Vec<Vec<f32>> {
    try_class_activation_maps(net, class).expect("CAM extraction requires a forward pass first")
}

/// Fallible form of [`class_activation_maps`]: `Err(NoForwardPass)` when
/// the network has no cached features yet.
pub fn try_class_activation_maps(
    net: &ResNet,
    class: usize,
) -> Result<Vec<Vec<f32>>, NoForwardPass> {
    let features = net.last_features().ok_or(NoForwardPass)?;
    let weights = net.class_weights(class);
    Ok(cam_from_features(features, weights))
}

/// CAM from explicit feature maps `[B, K, L]` and class weights `w[K]`.
pub fn cam_from_features(features: &Tensor, weights: &[f32]) -> Vec<Vec<f32>> {
    assert_eq!(
        features.channels,
        weights.len(),
        "feature channels must match class-weight length"
    );
    let (b, k, l) = features.shape();
    let mut out = Vec::with_capacity(b);
    for bi in 0..b {
        let mut cam = vec![0.0f32; l];
        for (ki, &w) in weights.iter().enumerate().take(k) {
            if w == 0.0 {
                continue;
            }
            for (c, &f) in cam.iter_mut().zip(features.row(bi, ki)) {
                *c += w * f;
            }
        }
        out.push(cam);
    }
    out
}

/// Run a forward pass and return `(positive-class probabilities, CAMs of
/// class 1)` in one call — the unit of work of a CamAL ensemble member.
pub fn predict_with_cam(net: &mut ResNet, x: &Tensor) -> (Vec<f32>, Vec<Vec<f32>>) {
    let probs = net.predict_positive_proba(x);
    let cams = class_activation_maps(net, 1);
    (probs, cams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::ResNetConfig;

    #[test]
    fn cam_matches_manual_computation() {
        let features = Tensor::from_data(
            1,
            2,
            3,
            vec![
                1.0, 2.0, 3.0, // channel 0
                10.0, 20.0, 30.0, // channel 1
            ],
        );
        let cams = cam_from_features(&features, &[0.5, 0.1]);
        assert_eq!(cams.len(), 1);
        let expected = [
            0.5 * 1.0 + 0.1 * 10.0,
            0.5 * 2.0 + 0.1 * 20.0,
            0.5 * 3.0 + 0.1 * 30.0,
        ];
        for (a, e) in cams[0].iter().zip(expected) {
            assert!((a - e).abs() < 1e-6);
        }
    }

    #[test]
    fn cam_mean_equals_logit_contribution() {
        // mean_t CAM_c(t) == logit_c - bias_c for a GAP network.
        let mut net = ResNet::new(ResNetConfig::tiny(5, 9));
        let x = Tensor::from_windows(&[(0..40).map(|i| (i as f32 * 0.37).sin()).collect()]);
        let logits = net.forward(&x, false);
        let cams = class_activation_maps(&net, 1);
        let cam_mean: f32 = cams[0].iter().sum::<f32>() / cams[0].len() as f32;
        // Reconstruct logit 1 minus its bias via the head weights and GAP.
        let feats = net.last_features().unwrap();
        let w = net.class_weights(1);
        let mut manual = 0.0;
        for (k, &wk) in w.iter().enumerate() {
            let mean: f32 = feats.row(0, k).iter().sum::<f32>() / feats.len as f32;
            manual += wk * mean;
        }
        assert!((cam_mean - manual).abs() < 1e-4);
        let _ = logits;
    }

    #[test]
    fn batch_cams_are_per_row() {
        let features = Tensor::from_data(2, 1, 2, vec![1.0, 2.0, 5.0, 6.0]);
        let cams = cam_from_features(&features, &[2.0]);
        assert_eq!(cams[0], vec![2.0, 4.0]);
        assert_eq!(cams[1], vec![10.0, 12.0]);
    }

    #[test]
    fn predict_with_cam_runs_end_to_end() {
        let mut net = ResNet::new(ResNetConfig::tiny(7, 4));
        let x = Tensor::from_windows(&[vec![0.3; 24], vec![0.9; 24]]);
        let (probs, cams) = predict_with_cam(&mut net, &x);
        assert_eq!(probs.len(), 2);
        assert_eq!(cams.len(), 2);
        assert_eq!(cams[0].len(), 24);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    #[should_panic(expected = "forward pass")]
    fn cam_without_forward_panics() {
        let net = ResNet::new(ResNetConfig::tiny(5, 0));
        let _ = class_activation_maps(&net, 1);
    }

    #[test]
    fn try_cam_without_forward_errors() {
        let net = ResNet::new(ResNetConfig::tiny(5, 0));
        assert_eq!(try_class_activation_maps(&net, 1), Err(NoForwardPass));
        assert_eq!(
            NoForwardPass.to_string(),
            "CAM extraction requires a forward pass first"
        );
    }

    #[test]
    #[should_panic(expected = "channels must match")]
    fn mismatched_weights_panic() {
        let features = Tensor::zeros(1, 3, 4);
        let _ = cam_from_features(&features, &[1.0, 2.0]);
    }
}
