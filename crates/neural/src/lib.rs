//! # ds-neural
//!
//! A from-scratch, pure-Rust deep-learning substrate for 1D convolutional
//! time-series classification — the stand-in for the PyTorch stack the
//! DeviceScope paper trains its models with.
//!
//! The paper's CamAL method needs exactly one architecture family: the
//! **convolutional Residual Network for time-series classification** of
//! Wang et al. (IJCNN 2016), cited as [7] — stacked residual blocks of
//! `Conv1d → BatchNorm1d → ReLU`, a global average pooling (GAP), and a
//! linear classification head. Its baselines need a handful of further
//! convolutional seq2seq architectures. Everything required to build and
//! train those lives here:
//!
//! - [`tensor`]: dense `[batch, channels, length]` tensors and `[rows, cols]`
//!   matrices with explicit, allocation-conscious layouts.
//! - [`conv`]: same-padded 1D convolution with full backward.
//! - [`batchnorm`]: batch normalization over `(batch, length)` with running
//!   statistics for inference.
//! - [`activations`], [`pool`], [`linear`]: ReLU / sigmoid, GAP, dense head.
//! - [`sample`]: max pooling and nearest-neighbour upsampling (true
//!   encoder–decoder seq2seq architectures).
//! - [`resblock`], [`resnet`]: residual blocks and the ResNet-TSC model with
//!   configurable kernel size `k` — the paper's ensemble members differ only
//!   in `k ∈ {5, 7, 9, 15}`.
//! - [`loss`]: softmax cross-entropy (detection) and per-timestep binary
//!   cross-entropy (seq2seq baselines).
//! - [`optim`]: Adam and SGD with weight decay.
//! - [`train`]: mini-batch training loop with shuffling, class weighting and
//!   early stopping.
//! - [`workspace`]: reused training buffers (input gather, scratch pools)
//!   and the fixed micro-batch height shared by the parallel layer kernels.
//! - [`cam`]: Class Activation Map extraction — `CAM_c(t) = Σ_k w_k^c f_k(t)`
//!   — the mechanism CamAL builds on.
//! - [`frozen`], [`plan`]: the compiled serving form — BatchNorm folded into
//!   conv weights, ReLU fused into the conv epilogue, and a ping-pong
//!   inference arena that makes steady-state prediction allocation-free.
//! - [`simd`]: runtime-dispatched AVX2/FMA kernels for the frozen path
//!   (`DS_SIMD=off` forces the scalar determinism twins).
//! - [`quant`]: the int8 symmetric-quantized frozen plan — per-channel
//!   weight scales, calibrated activation scales, exact i32 accumulation.
//! - [`serialize`]: JSON weight persistence for trained models.
//!
//! Every differentiable layer is covered by finite-difference gradient
//! checks in its module tests.

pub mod activations;
pub mod backbone;
pub mod batchnorm;
pub mod cam;
pub mod conv;
pub mod frozen;
pub mod inception;
pub mod init;
pub mod linear;
pub mod loss;
pub mod optim;
pub mod plan;
pub mod pool;
pub mod quant;
pub mod resblock;
pub mod resnet;
pub mod sample;
pub mod serialize;
pub mod simd;
pub mod streaming;
pub mod tensor;
pub mod train;
pub mod transapp;
pub mod workspace;

pub use backbone::{Backbone, DetectorNet, FrozenDetector, QuantizedDetector};
pub use frozen::FrozenResNet;
pub use inception::{FrozenInception, InceptionConfig, InceptionNet};
pub use plan::InferenceArena;
pub use quant::QuantizedResNet;
pub use resnet::{ResNet, ResNetConfig};
pub use streaming::{StreamError, StreamingPlan};
pub use tensor::{Matrix, Tensor};
pub use train::NeuralNet;
pub use transapp::{FrozenTransApp, TransAppConfig, TransAppNet};

/// A standard-normal-based deviate via Box–Muller (local helper; this crate
/// is a leaf substrate and does not depend on the dataset crate's sampler).
pub fn randutil_normal(rng: &mut impl rand::Rng, mean: f32, std: f32) -> f32 {
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
    mean + std * z
}

/// Visitor over a layer's `(parameters, gradients)` slices.
///
/// Layers expose their state through this callback instead of returning
/// references, which sidesteps borrow-checker gymnastics and guarantees the
/// optimizer sees parameters in a stable order across steps.
pub trait VisitParams {
    /// Call `f(params, grads)` once per parameter tensor, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Zero all gradient buffers.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.fill(0.0));
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }
}
