//! Element-wise activations: ReLU (trainable pass-through) and the sigmoid
//! helpers used by CamAL's attention step and the seq2seq baselines.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// ReLU with cached mask for backward.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReLU {
    #[serde(skip)]
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// New activation layer.
    pub fn new() -> ReLU {
        ReLU::default()
    }

    /// Elements per parallel task for the element-wise fills. Fixed (never
    /// derived from the worker count); since the operation is per-element,
    /// any split is trivially bit-identical to the sequential pass.
    const CHUNK: usize = 16 * 1024;

    /// Forward: `max(0, x)`; caches the activation mask when training.
    /// The mask allocation is reused across steps.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = x.clone();
        if train {
            let mut mask = self
                .mask
                .take()
                .filter(|_| crate::workspace::buffer_reuse())
                .unwrap_or_default();
            mask.clear();
            mask.resize(x.data.len(), false);
            ds_par::par_zip_chunks_mut(&mut y.data, &mut mask, Self::CHUNK, |_, ys, ms| {
                for (v, m) in ys.iter_mut().zip(ms.iter_mut()) {
                    if *v > 0.0 {
                        *m = true;
                    } else {
                        *v = 0.0;
                    }
                }
            });
            self.mask = Some(mask);
        } else {
            ds_par::par_chunks_mut(&mut y.data, Self::CHUNK, |_, ys| {
                for v in ys.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            });
        }
        y
    }

    /// Backward: gradient passes where the input was positive.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("ReLU::backward requires forward(train=true) first");
        assert_eq!(mask.len(), grad_out.data.len());
        let mut g = grad_out.clone();
        ds_par::par_chunks_mut(&mut g.data, Self::CHUNK, |ci, gs| {
            let ms = &mask[ci * Self::CHUNK..ci * Self::CHUNK + gs.len()];
            for (v, &m) in gs.iter_mut().zip(ms) {
                if !m {
                    *v = 0.0;
                }
            }
        });
        g
    }
}

/// Pure ReLU inference over a tensor (`max(0, x)`, no caching).
pub fn relu_infer(x: &Tensor) -> Tensor {
    let mut y = x.clone();
    for v in y.data.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    y
}

/// Numerically stable scalar sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Apply [`sigmoid`] to a slice in place.
pub fn sigmoid_slice(values: &mut [f32]) {
    for v in values {
        *v = sigmoid(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_data(1, 1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let mut relu = ReLU::new();
        let y = relu.forward(&x, false);
        assert_eq!(y.data, vec![0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = Tensor::from_data(1, 1, 4, vec![-1.0, 0.5, 2.0, -3.0]);
        let mut relu = ReLU::new();
        let _ = relu.forward(&x, true);
        let g = Tensor::from_data(1, 1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let gi = relu.backward(&g);
        assert_eq!(gi.data, vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "requires forward")]
    fn relu_backward_without_forward_panics() {
        let mut relu = ReLU::new();
        let _ = relu.backward(&Tensor::zeros(1, 1, 2));
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 1e-4);
        // Stability at extremes.
        assert!(sigmoid(100.0).is_finite());
        assert!(sigmoid(-100.0).is_finite());
        // Symmetry: s(-x) = 1 - s(x).
        for x in [-3.0f32, -1.0, 0.5, 2.0] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_slice_in_place() {
        let mut v = vec![0.0, 10.0, -10.0];
        sigmoid_slice(&mut v);
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert!(v[1] > 0.999);
        assert!(v[2] < 0.001);
    }
}
