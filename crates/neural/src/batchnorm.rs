//! Batch normalization over `(batch, length)` for `[B, C, L]` tensors.
//!
//! Training mode normalizes with the current mini-batch statistics and
//! updates exponential running statistics; inference mode uses the running
//! statistics, matching the standard `BatchNorm1d` semantics of the ResNet
//! the paper builds on.

use crate::tensor::Tensor;
use crate::VisitParams;
use serde::{Deserialize, Serialize};

/// A trainable batch-normalization layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm1d {
    /// Channel count.
    pub channels: usize,
    /// Learnable scale γ (one per channel).
    pub gamma: Vec<f32>,
    /// Learnable shift β (one per channel).
    pub beta: Vec<f32>,
    /// Running mean used at inference.
    pub running_mean: Vec<f32>,
    /// Running variance used at inference.
    pub running_var: Vec<f32>,
    /// Momentum of the running statistics update.
    pub momentum: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// γ gradients. Serialized so a deserialized model has sized buffers.
    pub grad_gamma: Vec<f32>,
    /// β gradients.
    pub grad_beta: Vec<f32>,
    #[serde(skip)]
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm1d {
    /// Create a unit-scale, zero-shift layer.
    pub fn new(channels: usize) -> BatchNorm1d {
        BatchNorm1d {
            channels,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            cache: None,
        }
    }

    /// Forward pass; training mode uses and updates batch statistics.
    ///
    /// Training runs in two phases. Phase A computes the per-channel batch
    /// statistics **once over the full batch, sequentially** — the f64
    /// accumulation order is the contract that keeps training bit-identical
    /// at any worker count, so it never splits. Phase B broadcasts those
    /// statistics to fixed-height micro-batches of rows that normalize in
    /// parallel; each output element depends only on its own input and the
    /// phase-A statistics, so the fan-out cannot change a single bit.
    /// The `x_hat` cache tensor is recycled from the previous step when the
    /// shape matches (it is only consumed by `backward`, which returns it
    /// as the input gradient).
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.channels, self.channels, "batchnorm channel mismatch");
        if !train {
            return self.infer(x);
        }
        let (b, c, l) = x.shape();
        let n = (b * l) as f32;
        let mut y = x.zeros_like();
        let reusable = self
            .cache
            .take()
            .filter(|_| crate::workspace::buffer_reuse());
        let (mut x_hat, mut inv_std) = match reusable {
            Some(cache) if cache.x_hat.shape() == x.shape() => (cache.x_hat, cache.inv_std),
            _ => (x.zeros_like(), vec![0.0f32; c]),
        };
        inv_std.resize(c, 0.0);
        let mut means = vec![0.0f32; c];
        // Phase A: full-batch channel statistics + running-stat update.
        #[allow(clippy::needless_range_loop)] // ci also indexes gamma/beta/running stats
        for ci in 0..c {
            let mut sum = 0.0f64;
            for bi in 0..b {
                for &v in x.row(bi, ci) {
                    sum += v as f64;
                }
            }
            let mean = (sum / n as f64) as f32;
            let mut var_acc = 0.0f64;
            for bi in 0..b {
                for &v in x.row(bi, ci) {
                    let d = v - mean;
                    var_acc += (d * d) as f64;
                }
            }
            let var = (var_acc / n as f64) as f32;
            means[ci] = mean;
            inv_std[ci] = 1.0 / (var + self.eps).sqrt();
            self.running_mean[ci] =
                (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
            self.running_var[ci] =
                (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
        }
        // Phase B: normalize micro-batches of rows on the worker team.
        let micro = crate::workspace::MICRO_ROWS;
        let (gamma, beta) = (&self.gamma, &self.beta);
        let (means, inv_std_ref) = (&means, &inv_std);
        ds_par::par_zip_chunks_mut(
            &mut x_hat.data,
            &mut y.data,
            micro * l,
            |chunk, xh_rows, y_rows| {
                let _span = ds_obs::span!("train.microbatch");
                let row0 = chunk * micro;
                for (j, (xh_row, y_row)) in
                    xh_rows.chunks_mut(l).zip(y_rows.chunks_mut(l)).enumerate()
                {
                    let (bi, ci) = ((row0 + j) / c, (row0 + j) % c);
                    let (mean, istd) = (means[ci], inv_std_ref[ci]);
                    let (g, be) = (gamma[ci], beta[ci]);
                    for ((xh, yv), &v) in xh_row.iter_mut().zip(y_row.iter_mut()).zip(x.row(bi, ci))
                    {
                        let h = (v - mean) * istd;
                        *xh = h;
                        *yv = g * h + be;
                    }
                }
            },
        );
        self.cache = Some(Cache { x_hat, inv_std });
        y
    }

    /// Pure inference forward using running statistics (`&self`).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.channels, self.channels, "batchnorm channel mismatch");
        let (b, c, l) = x.shape();
        let mut y = x.zeros_like();
        for ci in 0..c {
            let mean = self.running_mean[ci];
            let istd = 1.0 / (self.running_var[ci] + self.eps).sqrt();
            let (g, be) = (self.gamma[ci], self.beta[ci]);
            for bi in 0..b {
                let xr = x.row(bi, ci);
                let start = (bi * c + ci) * l;
                for (t, &v) in xr.iter().enumerate() {
                    y.data[start + t] = g * (v - mean) * istd + be;
                }
            }
        }
        y
    }

    /// The inference pass as a per-channel affine: `(scale, shift)` with
    /// `scale[c] = γ[c] / sqrt(running_var[c] + ε)` and
    /// `shift[c] = β[c] − scale[c] · running_mean[c]`, so that
    /// `infer(x)[c] ≈ scale[c] · x + shift[c]`. "≈" because [`infer`]
    /// evaluates `γ·(x−μ)·istd + β` — the same real-number function with a
    /// different association, which is exactly the reassociation the frozen
    /// plan's tolerance contract (`1e-4` max-abs on logits) absorbs.
    ///
    /// [`infer`]: BatchNorm1d::infer
    pub fn inference_affine(&self) -> (Vec<f32>, Vec<f32>) {
        let mut scale = Vec::with_capacity(self.channels);
        let mut shift = Vec::with_capacity(self.channels);
        for ci in 0..self.channels {
            let istd = 1.0 / (self.running_var[ci] + self.eps).sqrt();
            let s = self.gamma[ci] * istd;
            scale.push(s);
            shift.push(self.beta[ci] - s * self.running_mean[ci]);
        }
        (scale, shift)
    }

    /// Backward pass (training statistics), returning the input gradient.
    ///
    /// Mirrors the forward split: phase A reduces the channel sums over the
    /// full batch sequentially (same f64 accumulation order as ever), then
    /// phase B rewrites the cached `x_hat` **in place** into the input
    /// gradient across fixed-height micro-batches — the cache is consumed,
    /// so the backward pass allocates nothing.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let Cache { mut x_hat, inv_std } = self
            .cache
            .take()
            .expect("BatchNorm1d::backward requires forward(train=true) first");
        assert_eq!(grad_out.shape(), x_hat.shape());
        let (b, c, l) = x_hat.shape();
        let n = (b * l) as f32;
        let mut mean_g = vec![0.0f32; c];
        let mut mean_gx = vec![0.0f32; c];
        // Phase A: channel-wise reductions over the full batch.
        for ci in 0..c {
            let mut sum_g = 0.0f64;
            let mut sum_gx = 0.0f64;
            for bi in 0..b {
                let go = grad_out.row(bi, ci);
                let xh = &x_hat.data[(bi * c + ci) * l..(bi * c + ci) * l + l];
                for (gv, xv) in go.iter().zip(xh) {
                    sum_g += *gv as f64;
                    sum_gx += (*gv * *xv) as f64;
                }
            }
            self.grad_beta[ci] += sum_g as f32;
            self.grad_gamma[ci] += sum_gx as f32;
            mean_g[ci] = sum_g as f32 / n;
            mean_gx[ci] = sum_gx as f32 / n;
        }
        // Phase B: turn x_hat into grad_in, micro-batch parallel. Each
        // element reads its own x_hat value before overwriting it, so the
        // in-place rewrite is exact.
        let micro = crate::workspace::MICRO_ROWS;
        let (gamma, inv_std_ref) = (&self.gamma, &inv_std);
        let (mean_g_ref, mean_gx_ref) = (&mean_g, &mean_gx);
        ds_par::par_chunks_mut(&mut x_hat.data, micro * l, |chunk, rows| {
            let _span = ds_obs::span!("train.microbatch");
            let row0 = chunk * micro;
            for (j, row) in rows.chunks_mut(l).enumerate() {
                let (bi, ci) = ((row0 + j) / c, (row0 + j) % c);
                let scale = gamma[ci] * inv_std_ref[ci];
                let (mg, mgx) = (mean_g_ref[ci], mean_gx_ref[ci]);
                let go = grad_out.row(bi, ci);
                for (xh, &gv) in row.iter_mut().zip(go) {
                    *xh = scale * (gv - mg - *xh * mgx);
                }
            }
        });
        x_hat
    }
}

impl VisitParams for BatchNorm1d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.gamma, &mut self.grad_gamma);
        f(&mut self.beta, &mut self.grad_beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input(b: usize, c: usize, l: usize) -> Tensor {
        let data: Vec<f32> = (0..b * c * l)
            .map(|i| ((i * 31 % 17) as f32 - 8.0) / 3.0 + (i / 7) as f32 * 0.1)
            .collect();
        Tensor::from_data(b, c, l, data)
    }

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm1d::new(3);
        let x = sample_input(4, 3, 10);
        let y = bn.forward(&x, true);
        for ci in 0..3 {
            let mut vals = Vec::new();
            for bi in 0..4 {
                vals.extend_from_slice(y.row(bi, ci));
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn gamma_beta_shift_output() {
        let mut bn = BatchNorm1d::new(1);
        bn.gamma[0] = 2.0;
        bn.beta[0] = 5.0;
        let x = sample_input(2, 1, 8);
        let y = bn.forward(&x, true);
        let mean: f32 = y.data.iter().sum::<f32>() / y.data.len() as f32;
        assert!((mean - 5.0).abs() < 1e-3);
    }

    #[test]
    fn inference_uses_running_statistics() {
        let mut bn = BatchNorm1d::new(2);
        let x = sample_input(4, 2, 16);
        // Several training passes move the running stats toward batch stats.
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        let y_train = bn.forward(&x, true);
        let y_eval = bn.forward(&x, false);
        for (a, b) in y_train.data.iter().zip(y_eval.data.iter()) {
            assert!((a - b).abs() < 0.1, "train {a} vs eval {b}");
        }
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm1d::new(2);
        bn.gamma = vec![1.3, 0.7];
        bn.beta = vec![0.2, -0.4];
        let x = sample_input(2, 2, 6);
        let y = bn.forward(&x, true);
        let grad_in = bn.backward(&y); // loss = sum(y^2)/2
        let eps = 1e-3f32;
        let loss = |bn: &mut BatchNorm1d, x: &Tensor| -> f32 {
            bn.forward(x, true).data.iter().map(|v| v * v / 2.0).sum()
        };
        // Gamma.
        for ci in 0..2 {
            let orig = bn.gamma[ci];
            bn.gamma[ci] = orig + eps;
            let lp = loss(&mut bn, &x);
            bn.gamma[ci] = orig - eps;
            let lm = loss(&mut bn, &x);
            bn.gamma[ci] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - bn.grad_gamma[ci]).abs() < 2e-2 * numeric.abs().max(1.0),
                "gamma[{ci}] numeric {numeric} vs {}",
                bn.grad_gamma[ci]
            );
        }
        // Beta.
        for ci in 0..2 {
            let orig = bn.beta[ci];
            bn.beta[ci] = orig + eps;
            let lp = loss(&mut bn, &x);
            bn.beta[ci] = orig - eps;
            let lm = loss(&mut bn, &x);
            bn.beta[ci] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - bn.grad_beta[ci]).abs() < 2e-2 * numeric.abs().max(1.0),
                "beta[{ci}]"
            );
        }
        // Input (batch statistics depend on x, so the full Jacobian matters).
        let mut x2 = x.clone();
        for xi in [0usize, 3, 10, x.data.len() - 1] {
            let orig = x2.data[xi];
            x2.data[xi] = orig + eps;
            let lp = loss(&mut bn, &x2);
            x2.data[xi] = orig - eps;
            let lm = loss(&mut bn, &x2);
            x2.data[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in.data[xi]).abs() < 5e-2 * numeric.abs().max(1.0),
                "x[{xi}] numeric {numeric} vs analytic {}",
                grad_in.data[xi]
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires forward")]
    fn backward_without_forward_panics() {
        let mut bn = BatchNorm1d::new(1);
        let _ = bn.backward(&Tensor::zeros(1, 1, 4));
    }

    #[test]
    fn visit_params_counts() {
        use crate::VisitParams;
        let mut bn = BatchNorm1d::new(5);
        assert_eq!(bn.param_count(), 10);
    }
}
