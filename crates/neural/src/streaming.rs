//! Streaming incremental inference over a growing prefix: ring-buffer
//! feature-map reuse for the frozen plans.
//!
//! [`StreamingPlan`] wraps a [`FrozenResNet`] or [`QuantizedResNet`] and
//! keeps, per residual block, persistent **feature-map rings** — one row
//! per channel, laid out at ring capacity — holding the stage-1, stage-2,
//! stage-3, shortcut, and post-residual activations of the prefix pushed
//! so far. Each [`StreamingPlan::push`] appends samples and recomputes
//! only the **suffix a fresh batch call could produce differently**:
//!
//! - Every conv stage dirties `pad = (k−1)·d/2` positions to the left of
//!   its input taint (same-padded odd kernels), so the halo widens by one
//!   receptive-field radius per stage — 6 convs deep, a taint at `t`
//!   reaches back to `t − Σ pads`, still O(1) per push.
//! - On the AVX2 f32 path, positions whose *code path* (FMA chunk vs
//!   scalar edge) differs between the old and new length are recomputed
//!   too, snapped to a chunk anchor — see
//!   [`crate::simd::frozen_conv_rows_suffix`]. The int8 path has no churn
//!   (exact i32 accumulation), so its halo is the value halo alone.
//!
//! The contract, asserted bit-for-bit by this module's tests and the
//! `streaming_parity` suite: after any sequence of pushes accumulating a
//! prefix of length `L`, the emitted probability, logits and CAM are
//! **bit-identical** to `predict_into` on the full prefix — at every push
//! granularity, in both `DS_SIMD` modes, at both precisions. Steady-state
//! pushes perform **zero heap allocations**: every ring is sized at
//! construction from the declared capacity.
//!
//! Gap-aware invalidation: [`StreamingPlan::invalidate_from`] logically
//! truncates the stream at a fault boundary; the next push re-derives
//! exactly the tainted halo (the rings keep the still-valid prefix). The
//! "ring" is deliberately an *anchored* arena, not a circular one:
//! detection pools over the whole prefix, so evicting the head would
//! change the batch-equivalent answer. Capacity is therefore part of the
//! API contract — [`StreamingPlan::push`] past it is a typed
//! [`StreamError::OverCapacity`], and the serving layer retires completed
//! windows instead of wrapping.

use crate::frozen::{FrozenConv, FrozenResNet};
use crate::loss::softmax_row;
use crate::quant::{QuantConv, QuantizedResNet};
use crate::simd::{self, SimdMode};

/// Typed failures of the streaming push path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The push would grow the prefix past the ring capacity declared at
    /// construction. The rings are unchanged; retire or reset first.
    OverCapacity {
        /// Ring capacity in samples.
        capacity: usize,
        /// Prefix length the rejected push would have produced.
        requested: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::OverCapacity {
                capacity,
                requested,
            } => write!(
                f,
                "streaming push overflows ring capacity: {requested} samples requested, \
                 capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Per-block persistent feature rings, one `[channels × capacity]` slab
/// per stage output. `sc` is empty for identity-shortcut blocks (the
/// residual reads the input ring directly).
#[derive(Debug)]
struct BlockRings {
    s1: Vec<f32>,
    s2: Vec<f32>,
    s3: Vec<f32>,
    sc: Vec<f32>,
    out: Vec<f32>,
}

#[derive(Debug)]
enum StreamPlanKind {
    F32(FrozenResNet),
    Int8(QuantizedResNet),
}

/// Streaming twin of the frozen plans: anchored feature rings plus
/// suffix-only recompute. See the module docs for the contract.
#[derive(Debug)]
pub struct StreamingPlan {
    plan: StreamPlanKind,
    capacity: usize,
    /// Logical prefix length (samples pushed and not invalidated).
    len: usize,
    /// Ring consistency horizon: the prefix length at which every ring
    /// row last matched a from-scratch batch call bit-for-bit. Differs
    /// from `len` only between an `invalidate_from` and the next push.
    computed_len: usize,
    /// Dispatch decision captured at construction (or `reset`), so a
    /// mid-stream `DS_SIMD` flip cannot split a ring between code paths.
    use_avx2: bool,
    /// Raw input ring `[in_channels × capacity]`.
    input: Vec<f32>,
    blocks: Vec<BlockRings>,
    /// Quantization scratch ring (int8 plans only).
    qbuf: Vec<i8>,
    pooled: Vec<f32>,
    logits: Vec<f32>,
    softmax: Vec<f32>,
    /// Class-1 CAM ring over the prefix.
    cam: Vec<f32>,
    prob: f32,
}

impl StreamingPlan {
    /// Build streaming rings over a cloned f32 frozen plan.
    pub fn for_frozen(net: &FrozenResNet, capacity: usize) -> StreamingPlan {
        let shapes: Vec<(usize, bool)> = net
            .blocks
            .iter()
            .map(|b| (b.out_channels, b.shortcut.is_some()))
            .collect();
        Self::with_rings(
            StreamPlanKind::F32(net.clone()),
            net.in_channels,
            net.num_classes,
            &shapes,
            capacity,
            false,
        )
    }

    /// Build streaming rings over a cloned int8 quantized plan.
    pub fn for_quantized(net: &QuantizedResNet, capacity: usize) -> StreamingPlan {
        let shapes: Vec<(usize, bool)> = net
            .blocks
            .iter()
            .map(|b| (b.out_channels, b.shortcut.is_some()))
            .collect();
        Self::with_rings(
            StreamPlanKind::Int8(net.clone()),
            net.in_channels,
            net.num_classes,
            &shapes,
            capacity,
            true,
        )
    }

    fn with_rings(
        plan: StreamPlanKind,
        in_channels: usize,
        num_classes: usize,
        block_shapes: &[(usize, bool)],
        capacity: usize,
        quantized: bool,
    ) -> StreamingPlan {
        assert_eq!(
            in_channels, 1,
            "the streaming plan serves the univariate pipeline"
        );
        assert!(capacity > 0, "streaming ring capacity must be positive");
        assert!(
            num_classes >= 2,
            "streaming emit reads the positive-class probability"
        );
        let blocks = block_shapes
            .iter()
            .map(|&(co, has_sc)| BlockRings {
                s1: vec![0.0; co * capacity],
                s2: vec![0.0; co * capacity],
                s3: vec![0.0; co * capacity],
                sc: if has_sc {
                    vec![0.0; co * capacity]
                } else {
                    Vec::new()
                },
                out: vec![0.0; co * capacity],
            })
            .collect();
        let max_channels = block_shapes
            .iter()
            .map(|&(co, _)| co)
            .max()
            .unwrap_or(1)
            .max(in_channels);
        let features = block_shapes.last().map_or(in_channels, |&(co, _)| co);
        StreamingPlan {
            plan,
            capacity,
            len: 0,
            computed_len: 0,
            use_avx2: simd::mode() == SimdMode::Avx2,
            input: vec![0.0; in_channels * capacity],
            blocks,
            qbuf: if quantized {
                vec![0; max_channels * capacity]
            } else {
                Vec::new()
            },
            pooled: vec![0.0; features],
            logits: vec![0.0; num_classes],
            softmax: vec![0.0; num_classes],
            cam: vec![0.0; capacity],
            prob: f32::NAN,
        }
    }

    /// Current prefix length in samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before the first (non-empty) push.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ring capacity in samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Positive-class probability of the current prefix (NaN before the
    /// first sample arrives).
    pub fn probability(&self) -> f32 {
        self.prob
    }

    /// Class-1 CAM over the current prefix.
    pub fn cam(&self) -> &[f32] {
        &self.cam[..self.len]
    }

    /// Head logits of the current prefix.
    pub fn logits(&self) -> &[f32] {
        &self.logits
    }

    /// Append samples and re-emit: recomputes the tainted suffix of every
    /// ring plus the full (cheap) pooled/head epilogue. After this call
    /// the emitted probability, logits and CAM are bit-identical to a
    /// from-scratch `predict_into` on the whole prefix. Zero heap
    /// allocations. An over-capacity push is rejected atomically.
    pub fn push(&mut self, samples: &[f32]) -> Result<(), StreamError> {
        let old = self.len;
        let requested = old + samples.len();
        if requested > self.capacity {
            return Err(StreamError::OverCapacity {
                capacity: self.capacity,
                requested,
            });
        }
        self.input[old..requested].copy_from_slice(samples);
        self.len = requested;
        if requested == 0 {
            return Ok(());
        }
        let (l, l_prev, cap) = (requested, self.computed_len, self.capacity);
        let taint = match &self.plan {
            StreamPlanKind::F32(net) => forward_f32(
                net,
                &mut self.blocks,
                &self.input,
                cap,
                l,
                l_prev,
                old,
                self.use_avx2,
            ),
            StreamPlanKind::Int8(net) => forward_int8(
                net,
                &mut self.blocks,
                &mut self.qbuf,
                &self.input,
                cap,
                l,
                old,
                self.use_avx2,
            ),
        };
        self.computed_len = l;
        let (head_weight, head_bias, features, num_classes) = match &self.plan {
            StreamPlanKind::F32(net) => (
                &net.head_weight,
                &net.head_bias,
                net.features,
                net.num_classes,
            ),
            StreamPlanKind::Int8(net) => (
                &net.head_weight,
                &net.head_bias,
                net.features,
                net.num_classes,
            ),
        };
        let feats: &[f32] = match self.blocks.last() {
            Some(b) => &b.out,
            None => &self.input,
        };
        // GAP — same per-row summation chain as `finish_forward` (ring
        // rows are contiguous over `[0, l)`).
        for ci in 0..features {
            self.pooled[ci] = feats[ci * cap..ci * cap + l].iter().sum::<f32>() / l as f32;
        }
        // Head — same accumulation order as `finish_forward`.
        for o in 0..num_classes {
            let w = &head_weight[o * features..(o + 1) * features];
            let mut acc = head_bias[o];
            for (wv, xv) in w.iter().zip(&self.pooled[..features]) {
                acc += wv * xv;
            }
            self.logits[o] = acc;
        }
        softmax_row(&self.logits[..num_classes], &mut self.softmax);
        self.prob = self.softmax[1];
        // Class-1 CAM, suffix only: per element the chain is the same
        // ascending-channel, zero-skipping accumulation as
        // `finish_forward`, and positions below the final taint are
        // untouched (their feature columns did not change).
        let w1 = &head_weight[features..2 * features];
        for t in taint..l {
            let mut acc = 0.0f32;
            for (ki, &w) in w1.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                acc += w * feats[ki * cap + t];
            }
            self.cam[t] = acc;
        }
        Ok(())
    }

    /// Gap-aware invalidation: logically truncate the stream at `pos`
    /// (a fault boundary or `Status::Unknown` onset). The rings keep the
    /// still-valid prefix; the next push recomputes exactly the tainted
    /// halo from `pos` leftward — including the AVX2 chunk churn of a
    /// *shrunk* row, which the suffix kernels derive from the consistency
    /// horizon. No-op when `pos ≥ len`.
    pub fn invalidate_from(&mut self, pos: usize) {
        self.len = self.len.min(pos);
    }

    /// Forget the stream entirely and re-capture the SIMD dispatch
    /// decision. Keeps every ring allocation.
    pub fn reset(&mut self) {
        self.len = 0;
        self.computed_len = 0;
        self.prob = f32::NAN;
        self.use_avx2 = simd::mode() == SimdMode::Avx2;
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_suffix_f32(
    conv: &FrozenConv,
    x: &[f32],
    y: &mut [f32],
    cap: usize,
    l: usize,
    l_prev: usize,
    taint: usize,
    use_avx2: bool,
    relu: bool,
) -> usize {
    simd::frozen_conv_rows_suffix(
        &conv.weight,
        &conv.bias,
        conv.in_channels,
        conv.out_channels,
        conv.kernel,
        conv.pad_left(),
        conv.dilation,
        x,
        cap,
        y,
        cap,
        l,
        l_prev,
        taint,
        use_avx2,
        relu,
    )
}

#[allow(clippy::too_many_arguments)]
fn forward_f32(
    net: &FrozenResNet,
    blocks: &mut [BlockRings],
    input: &[f32],
    cap: usize,
    l: usize,
    l_prev: usize,
    taint0: usize,
    use_avx2: bool,
) -> usize {
    let mut taint = taint0;
    for bi in 0..net.blocks.len() {
        let (done, rest) = blocks.split_at_mut(bi);
        let rings = &mut rest[0];
        let x: &[f32] = if bi == 0 { input } else { &done[bi - 1].out };
        let fb = &net.blocks[bi];
        let f1 = conv_suffix_f32(
            &fb.stage1,
            x,
            &mut rings.s1,
            cap,
            l,
            l_prev,
            taint,
            use_avx2,
            true,
        );
        let f2 = conv_suffix_f32(
            &fb.stage2,
            &rings.s1,
            &mut rings.s2,
            cap,
            l,
            l_prev,
            f1,
            use_avx2,
            true,
        );
        let f3 = conv_suffix_f32(
            &fb.stage3,
            &rings.s2,
            &mut rings.s3,
            cap,
            l,
            l_prev,
            f2,
            use_avx2,
            false,
        );
        let fsc = match &fb.shortcut {
            Some(sc) => {
                conv_suffix_f32(sc, x, &mut rings.sc, cap, l, l_prev, taint, use_avx2, false)
            }
            None => taint,
        };
        let fo = f3.min(fsc).min(l);
        // Residual epilogue over the dirty suffix — the same
        // `(stage3 + residual).max(0)` element op as the batch path.
        let has_sc = fb.shortcut.is_some();
        for c in 0..fb.out_channels {
            let base = c * cap;
            for t in fo..l {
                let r = if has_sc {
                    rings.sc[base + t]
                } else {
                    x[base + t]
                };
                rings.out[base + t] = (rings.s3[base + t] + r).max(0.0);
            }
        }
        taint = fo;
    }
    taint
}

#[allow(clippy::too_many_arguments)]
fn conv_suffix_int8(
    conv: &QuantConv,
    x: &[f32],
    y: &mut [f32],
    qbuf: &mut [i8],
    cap: usize,
    l: usize,
    taint: usize,
    use_avx2: bool,
    relu: bool,
) -> usize {
    let pad = conv.pad_left();
    // Quantize only the input range the recomputed taps can reach — the
    // same per-element code as the batch path, so codes are identical
    // wherever both compute them.
    let qlo = taint.saturating_sub(2 * pad).min(l);
    for c in 0..conv.in_channels {
        let x_row = &x[c * cap..c * cap + l];
        let q_row = &mut qbuf[c * cap..c * cap + l];
        for t in qlo..l {
            q_row[t] = (x_row[t] * conv.inv_x_scale).round().clamp(-127.0, 127.0) as i8;
        }
    }
    simd::quant_conv_rows_suffix(
        &conv.wq,
        &conv.combined,
        &conv.bias,
        conv.in_channels,
        conv.out_channels,
        conv.kernel,
        pad,
        conv.dilation,
        qbuf,
        cap,
        y,
        cap,
        l,
        taint,
        use_avx2,
        relu,
    )
}

#[allow(clippy::too_many_arguments)]
fn forward_int8(
    net: &QuantizedResNet,
    blocks: &mut [BlockRings],
    qbuf: &mut [i8],
    input: &[f32],
    cap: usize,
    l: usize,
    taint0: usize,
    use_avx2: bool,
) -> usize {
    let mut taint = taint0;
    for bi in 0..net.blocks.len() {
        let (done, rest) = blocks.split_at_mut(bi);
        let rings = &mut rest[0];
        let x: &[f32] = if bi == 0 { input } else { &done[bi - 1].out };
        let qb = &net.blocks[bi];
        let f1 = conv_suffix_int8(
            &qb.stage1,
            x,
            &mut rings.s1,
            qbuf,
            cap,
            l,
            taint,
            use_avx2,
            true,
        );
        let f2 = conv_suffix_int8(
            &qb.stage2,
            &rings.s1,
            &mut rings.s2,
            qbuf,
            cap,
            l,
            f1,
            use_avx2,
            true,
        );
        let f3 = conv_suffix_int8(
            &qb.stage3,
            &rings.s2,
            &mut rings.s3,
            qbuf,
            cap,
            l,
            f2,
            use_avx2,
            false,
        );
        let fsc = match &qb.shortcut {
            Some(sc) => {
                conv_suffix_int8(sc, x, &mut rings.sc, qbuf, cap, l, taint, use_avx2, false)
            }
            None => taint,
        };
        let fo = f3.min(fsc).min(l);
        let has_sc = qb.shortcut.is_some();
        for c in 0..qb.out_channels {
            let base = c * cap;
            for t in fo..l {
                let r = if has_sc {
                    rings.sc[base + t]
                } else {
                    x[base + t]
                };
                rings.out[base + t] = (rings.s3[base + t] + r).max(0.0);
            }
        }
        taint = fo;
    }
    taint
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::InferenceArena;
    use crate::resnet::{ResNet, ResNetConfig};
    use crate::simd::set_mode;
    use crate::tensor::Tensor;

    fn sample_series(n: usize, seed: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (((i + seed) * 31 % 17) as f32 - 8.0) / 4.0)
            .collect()
    }

    fn trained_frozen(kernel: usize) -> FrozenResNet {
        let mut net = ResNet::new(ResNetConfig::tiny(kernel, 77));
        let x = Tensor::from_data(6, 1, 40, sample_series(6 * 40, 3));
        for _ in 0..4 {
            let _ = net.forward(&x, true);
        }
        FrozenResNet::freeze(&net)
    }

    fn batch_reference(frozen: &FrozenResNet, prefix: &[f32], arena: &mut InferenceArena) {
        let x = Tensor::from_data(1, 1, prefix.len(), prefix.to_vec());
        frozen.predict_into(&x, arena);
    }

    fn assert_emit_matches(plan: &StreamingPlan, arena: &InferenceArena, ctx: &str) {
        assert_eq!(
            plan.probability().to_bits(),
            arena.probs()[0].to_bits(),
            "{ctx}: probability"
        );
        for (i, (a, b)) in plan.logits().iter().zip(arena.logits_row(0)).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: logit {i}");
        }
        for (t, (a, b)) in plan.cam().iter().zip(arena.cam(0)).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: cam[{t}]");
        }
    }

    #[test]
    fn f32_stream_bit_identical_to_batch_at_every_push() {
        let modes = [SimdMode::Scalar, SimdMode::Avx2];
        for kernel in [3usize, 5] {
            let frozen = trained_frozen(kernel);
            let series = sample_series(120, 9);
            for mode in modes {
                set_mode(Some(mode));
                let mut plan = StreamingPlan::for_frozen(&frozen, series.len());
                let mut arena = InferenceArena::new();
                let mut off = 0;
                for chunk in [1usize, 3, 8, 2, 16, 5, 30, 1, 24, 30] {
                    let end = (off + chunk).min(series.len());
                    plan.push(&series[off..end]).unwrap();
                    off = end;
                    batch_reference(&frozen, &series[..off], &mut arena);
                    assert_emit_matches(
                        &plan,
                        &arena,
                        &format!("k={kernel} mode={mode:?} l={off}"),
                    );
                }
                set_mode(None);
            }
        }
    }

    #[test]
    fn int8_stream_bit_identical_to_batch_at_every_push() {
        let frozen = trained_frozen(5);
        let calib = Tensor::from_data(8, 1, 40, sample_series(8 * 40, 11));
        let quant = QuantizedResNet::quantize(&frozen, &calib);
        let series = sample_series(96, 4);
        for mode in [SimdMode::Scalar, SimdMode::Avx2] {
            set_mode(Some(mode));
            let mut plan = StreamingPlan::for_quantized(&quant, series.len());
            let mut arena = InferenceArena::new();
            let mut off = 0;
            for chunk in [2usize, 7, 8, 1, 14, 32, 32] {
                let end = (off + chunk).min(series.len());
                plan.push(&series[off..end]).unwrap();
                off = end;
                let x = Tensor::from_data(1, 1, off, series[..off].to_vec());
                quant.predict_into(&x, &mut arena);
                assert_emit_matches(&plan, &arena, &format!("int8 mode={mode:?} l={off}"));
            }
            set_mode(None);
        }
    }

    #[test]
    fn invalidation_flushes_exactly_the_tainted_halo() {
        let frozen = trained_frozen(5);
        let series = sample_series(80, 2);
        let mut plan = StreamingPlan::for_frozen(&frozen, series.len());
        plan.push(&series).unwrap();
        // A fault at position 50 taints the suffix: truncate, then replay
        // corrected samples. The result must match a from-scratch pass on
        // the corrected series.
        let mut corrected = series.clone();
        for v in &mut corrected[50..] {
            *v = -*v * 0.5 + 0.1;
        }
        plan.invalidate_from(50);
        plan.push(&corrected[50..]).unwrap();
        let mut arena = InferenceArena::new();
        batch_reference(&frozen, &corrected, &mut arena);
        assert_emit_matches(&plan, &arena, "after invalidate_from(50)");
        // Shrink-only invalidation (no re-push yet) keeps a valid prefix.
        plan.invalidate_from(23);
        plan.push(&[]).unwrap();
        batch_reference(&frozen, &corrected[..23], &mut arena);
        assert_emit_matches(&plan, &arena, "after shrink to 23");
    }

    #[test]
    fn steady_state_push_allocates_nothing() {
        let frozen = trained_frozen(3);
        let series = sample_series(256, 6);
        let mut plan = StreamingPlan::for_frozen(&frozen, series.len());
        plan.push(&series[..16]).unwrap();
        let before = ds_obs::alloc_count();
        let mut off = 16;
        while off < series.len() {
            let end = (off + 12).min(series.len());
            plan.push(&series[off..end]).unwrap();
            off = end;
        }
        assert_eq!(
            ds_obs::alloc_count(),
            before,
            "steady-state streaming push must not allocate"
        );
    }

    #[test]
    fn over_capacity_push_is_a_typed_error_and_atomic() {
        let frozen = trained_frozen(3);
        let series = sample_series(40, 1);
        let mut plan = StreamingPlan::for_frozen(&frozen, 32);
        plan.push(&series[..30]).unwrap();
        let err = plan.push(&series[30..40]).unwrap_err();
        assert_eq!(
            err,
            StreamError::OverCapacity {
                capacity: 32,
                requested: 40
            }
        );
        // The rejected push left the stream untouched.
        assert_eq!(plan.len(), 30);
        let mut arena = InferenceArena::new();
        batch_reference(&frozen, &series[..30], &mut arena);
        assert_emit_matches(&plan, &arena, "after rejected push");
    }
}
