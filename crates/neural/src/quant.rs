//! The int8 symmetric-quantized frozen plan.
//!
//! [`QuantizedResNet::quantize`] compiles a [`FrozenResNet`] (already
//! BN-folded and fused) into an int8 serving form:
//!
//! - **Weights** are quantized per output channel: each folded `[ic, k]`
//!   slab gets `w_scale[oc] = maxabs(W'[oc])/127`, and
//!   `wq = round(W'/w_scale)` clamped to `[-127, 127]`. Per-channel
//!   scales keep narrow channels (BN folding spreads channel magnitudes
//!   over orders of magnitude) from drowning in a per-tensor scale.
//! - **Activations** are quantized per conv input with a single
//!   per-tensor scale computed by a **calibration pass**: the f32 frozen
//!   plan replays a held-out window set, recording the max-abs of every
//!   conv's input activation; `x_scale = maxabs/127`. Inputs are
//!   re-quantized on the fly each pass (`round(x/x_scale)` clamped),
//!   activations stay f32 between layers.
//! - **Accumulation** is exact i32 over `i8×i8` products; the epilogue
//!   dequantizes with one multiply (`acc · w_scale[oc]·x_scale`), adds
//!   the f32 folded bias, and fuses the ReLU clamp — the same fused
//!   BN+ReLU epilogue shape as the f32 plan.
//!
//! GAP, head, softmax and CAM stay f32 (they are a rounding error of the
//! runtime and the CAM feeds localization thresholds directly). Because
//! integer adds are associative, the SIMD and scalar int8 kernels are
//! **bit-identical** — the quantized plan is deterministic regardless of
//! `DS_SIMD`. Accuracy is gated by the frozen golden series: zero
//! decision flips on the calibration corpus (CI) and on the tri-state
//! golden series.

use crate::frozen::{finish_forward, FrozenConv, FrozenResNet};
use crate::plan::InferenceArena;
use crate::simd;
use crate::tensor::Tensor;

/// Guard against all-zero slabs: a zero scale would divide by zero; any
/// positive scale maps a zero slab to zero codes, so the value is moot.
const SCALE_FLOOR: f32 = 1e-30;

/// Per-output-channel symmetric quantization of a folded weight slab.
/// Returns `(codes, scales)` with `codes[oc·per_oc + i] =
/// round(w/scales[oc])` clamped to `[-127, 127]`.
pub fn quantize_weights_per_channel(
    weight: &[f32],
    out_channels: usize,
    per_oc: usize,
) -> (Vec<i8>, Vec<f32>) {
    assert_eq!(weight.len(), out_channels * per_oc);
    let mut codes = vec![0i8; weight.len()];
    let mut scales = vec![0.0f32; out_channels];
    for oc in 0..out_channels {
        let slab = &weight[oc * per_oc..(oc + 1) * per_oc];
        let maxabs = slab.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = (maxabs / 127.0).max(SCALE_FLOOR);
        scales[oc] = scale;
        for (c, &v) in codes[oc * per_oc..(oc + 1) * per_oc].iter_mut().zip(slab) {
            *c = (v / scale).round().clamp(-127.0, 127.0) as i8;
        }
    }
    (codes, scales)
}

/// A folded convolution with int8 weights and a per-tensor input
/// activation scale from calibration.
#[derive(Debug, Clone)]
pub struct QuantConv {
    pub(crate) in_channels: usize,
    pub(crate) out_channels: usize,
    pub(crate) kernel: usize,
    pub(crate) dilation: usize,
    /// Quantized weights `[out, in, k]`, row-major.
    pub(crate) wq: Vec<i8>,
    /// Per-output-channel weight scales.
    w_scale: Vec<f32>,
    /// Input activation scale (one quantum in input units).
    x_scale: f32,
    /// `127/maxabs` — multiplier used to quantize inputs on the fly.
    pub(crate) inv_x_scale: f32,
    /// Dequant multiplier per output channel: `w_scale[oc] · x_scale`.
    pub(crate) combined: Vec<f32>,
    /// Folded f32 bias, applied after dequantization.
    pub(crate) bias: Vec<f32>,
}

impl QuantConv {
    /// Quantize a folded conv given the calibration max-abs of its input
    /// activation.
    pub(crate) fn quantize(conv: &FrozenConv, input_maxabs: f32) -> QuantConv {
        let per_oc = conv.in_channels * conv.kernel;
        let (wq, w_scale) = quantize_weights_per_channel(&conv.weight, conv.out_channels, per_oc);
        let x_scale = (input_maxabs / 127.0).max(SCALE_FLOOR);
        let combined = w_scale.iter().map(|&ws| ws * x_scale).collect();
        QuantConv {
            in_channels: conv.in_channels,
            out_channels: conv.out_channels,
            kernel: conv.kernel,
            dilation: conv.dilation,
            wq,
            w_scale,
            x_scale,
            inv_x_scale: 1.0 / x_scale,
            combined,
            bias: conv.bias.clone(),
        }
    }

    /// Per-output-channel weight scales (exposed for the property tests).
    pub fn weight_scales(&self) -> &[f32] {
        &self.w_scale
    }

    /// Input activation scale from calibration.
    pub fn input_scale(&self) -> f32 {
        self.x_scale
    }

    #[inline]
    pub(crate) fn pad_left(&self) -> usize {
        (self.kernel - 1) * self.dilation / 2
    }

    /// Forward `batch` rows from f32 `x` into f32 `y`, quantizing the
    /// input into `qbuf` on the fly. Sequential and allocation-free; the
    /// SIMD and scalar paths are bit-identical (i32 accumulation).
    pub(crate) fn infer_into(
        &self,
        x: &[f32],
        batch: usize,
        l: usize,
        y: &mut [f32],
        relu: bool,
        qbuf: &mut [i8],
    ) {
        let n_in = batch * self.in_channels * l;
        debug_assert!(x.len() >= n_in);
        debug_assert!(y.len() >= batch * self.out_channels * l);
        debug_assert!(qbuf.len() >= n_in);
        for (q, &v) in qbuf[..n_in].iter_mut().zip(&x[..n_in]) {
            *q = (v * self.inv_x_scale).round().clamp(-127.0, 127.0) as i8;
        }
        let pad = self.pad_left();
        let (in_stride, out_stride) = (self.in_channels * l, self.out_channels * l);
        for bi in 0..batch {
            let xq_rows = &qbuf[bi * in_stride..(bi + 1) * in_stride];
            let y_rows = &mut y[bi * out_stride..(bi + 1) * out_stride];
            if simd::quant_conv_rows(
                &self.wq,
                &self.combined,
                &self.bias,
                self.in_channels,
                self.out_channels,
                self.kernel,
                pad,
                self.dilation,
                xq_rows,
                y_rows,
                l,
                relu,
            ) {
                continue;
            }
            // Scalar twin — identical i32 accumulation and dequant ops.
            let mut oc = 0;
            while oc < self.out_channels {
                let rows = (self.out_channels - oc).min(4);
                simd::quant_scalar_positions(
                    &self.wq,
                    &self.combined,
                    &self.bias,
                    self.in_channels,
                    self.kernel,
                    pad,
                    self.dilation,
                    xq_rows,
                    &mut y_rows[oc * l..(oc + rows) * l],
                    l,
                    relu,
                    oc,
                    rows,
                    0,
                    l,
                );
                oc += rows;
            }
        }
    }

    pub(crate) fn push_bits(&self, bits: &mut Vec<u32>) {
        bits.extend(self.wq.iter().map(|&c| c as i32 as u32));
        bits.extend(self.w_scale.iter().map(|v| v.to_bits()));
        bits.push(self.x_scale.to_bits());
        bits.extend(self.bias.iter().map(|v| v.to_bits()));
    }
}

/// A residual block of quantized convolutions (same dataflow as
/// [`FrozenBlock`], f32 activations between stages).
#[derive(Debug, Clone)]
pub(crate) struct QuantizedBlock {
    pub(crate) stage1: QuantConv,
    pub(crate) stage2: QuantConv,
    pub(crate) stage3: QuantConv,
    pub(crate) shortcut: Option<QuantConv>,
    pub(crate) out_channels: usize,
}

impl QuantizedBlock {
    /// `out ← relu(q1(x))`, `tmp ← relu(q2(out))`, `out ← q3(tmp)`, then
    /// `out ← relu(out + shortcut(x)|x)` — shortcut adds stay f32.
    fn infer_into(
        &self,
        x: &[f32],
        out: &mut [f32],
        tmp: &mut [f32],
        qbuf: &mut [i8],
        batch: usize,
        l: usize,
    ) {
        let n_out = batch * self.out_channels * l;
        self.stage1.infer_into(x, batch, l, out, true, qbuf);
        self.stage2
            .infer_into(&out[..n_out], batch, l, tmp, true, qbuf);
        self.stage3
            .infer_into(&tmp[..n_out], batch, l, out, false, qbuf);
        match &self.shortcut {
            Some(sc) => {
                sc.infer_into(x, batch, l, tmp, false, qbuf);
                for (o, &r) in out[..n_out].iter_mut().zip(&tmp[..n_out]) {
                    *o = (*o + r).max(0.0);
                }
            }
            None => {
                for (o, &r) in out[..n_out].iter_mut().zip(&x[..n_out]) {
                    *o = (*o + r).max(0.0);
                }
            }
        }
    }
}

/// Per-block calibration record: max-abs of the block input (feeds stage1
/// and the projection shortcut) and of the two mid-stage activations.
#[derive(Debug, Clone, Copy, Default)]
struct BlockRanges {
    input: f32,
    mid1: f32,
    mid2: f32,
}

/// Replay `calib` through the f32 frozen plan, recording each conv's
/// input activation range. One-time pass at quantize time — allocates
/// freely.
fn calibrate(frozen: &FrozenResNet, calib: &Tensor) -> Vec<BlockRanges> {
    let (b, c, l) = calib.shape();
    assert_eq!(c, frozen.in_channels, "calibration channel mismatch");
    assert!(b > 0 && l > 0, "calibration needs a non-empty batch");
    let maxabs = |s: &[f32]| s.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let act = b * frozen.max_channels * l;
    let mut cur = vec![0.0f32; act];
    let mut out = vec![0.0f32; act];
    let mut tmp = vec![0.0f32; act];
    cur[..b * c * l].copy_from_slice(&calib.data[..b * c * l]);
    let mut c_in = frozen.in_channels;
    let mut ranges = Vec::with_capacity(frozen.blocks.len());
    for block in &frozen.blocks {
        let n_in = b * c_in * l;
        let n_out = b * block.out_channels * l;
        let mut r = BlockRanges {
            input: maxabs(&cur[..n_in]),
            ..Default::default()
        };
        block.stage1.infer_into(&cur[..n_in], b, l, &mut out, true);
        r.mid1 = maxabs(&out[..n_out]);
        block.stage2.infer_into(&out[..n_out], b, l, &mut tmp, true);
        r.mid2 = maxabs(&tmp[..n_out]);
        block
            .stage3
            .infer_into(&tmp[..n_out], b, l, &mut out, false);
        match &block.shortcut {
            Some(sc) => {
                sc.infer_into(&cur[..n_in], b, l, &mut tmp, false);
                for (o, &s) in out[..n_out].iter_mut().zip(&tmp[..n_out]) {
                    *o = (*o + s).max(0.0);
                }
            }
            None => {
                for (o, &s) in out[..n_out].iter_mut().zip(&cur[..n_out]) {
                    *o = (*o + s).max(0.0);
                }
            }
        }
        cur[..n_out].copy_from_slice(&out[..n_out]);
        c_in = block.out_channels;
        ranges.push(r);
    }
    ranges
}

/// The int8 compilation of a [`FrozenResNet`]: per-channel weight codes,
/// calibrated activation scales, f32 head. Serves through the same
/// [`InferenceArena`] interface as the f32 plan.
#[derive(Debug, Clone)]
pub struct QuantizedResNet {
    pub(crate) blocks: Vec<QuantizedBlock>,
    pub(crate) head_weight: Vec<f32>,
    pub(crate) head_bias: Vec<f32>,
    pub(crate) in_channels: usize,
    pub(crate) features: usize,
    pub(crate) num_classes: usize,
    pub(crate) kernel: usize,
    pub(crate) max_channels: usize,
}

impl QuantizedResNet {
    /// Quantize a frozen plan, calibrating activation scales on `calib`
    /// (a `[n, in_channels, l]` batch of held-out windows, pre-processed
    /// exactly like serving inputs).
    pub fn quantize(frozen: &FrozenResNet, calib: &Tensor) -> QuantizedResNet {
        let ranges = calibrate(frozen, calib);
        let blocks = frozen
            .blocks
            .iter()
            .zip(&ranges)
            .map(|(b, r)| QuantizedBlock {
                stage1: QuantConv::quantize(&b.stage1, r.input),
                stage2: QuantConv::quantize(&b.stage2, r.mid1),
                stage3: QuantConv::quantize(&b.stage3, r.mid2),
                shortcut: b
                    .shortcut
                    .as_ref()
                    .map(|sc| QuantConv::quantize(sc, r.input)),
                out_channels: b.out_channels,
            })
            .collect();
        QuantizedResNet {
            blocks,
            head_weight: frozen.head_weight.clone(),
            head_bias: frozen.head_bias.clone(),
            in_channels: frozen.in_channels,
            features: frozen.features,
            num_classes: frozen.num_classes,
            kernel: frozen.kernel,
            max_channels: frozen.max_channels,
        }
    }

    /// Kernel size of the source member.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Channel count of the last block's feature maps.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Widest channel count of any activation tensor (arena sizing).
    pub fn max_channels(&self) -> usize {
        self.max_channels
    }

    /// Number of classes of the head.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Every stage's calibrated conv, in traversal order (property tests).
    pub fn convs(&self) -> Vec<&QuantConv> {
        let mut out = Vec::new();
        for b in &self.blocks {
            out.push(&b.stage1);
            out.push(&b.stage2);
            out.push(&b.stage3);
            if let Some(sc) = &b.shortcut {
                out.push(sc);
            }
        }
        out
    }

    /// Full forward pass into `arena` — same outputs and buffers as
    /// [`FrozenResNet::predict_into`], zero steady-state allocations.
    pub fn predict_into(&self, x: &Tensor, arena: &mut InferenceArena) {
        let _span = ds_obs::span!("frozen.forward.int8");
        let (b, c, l) = x.shape();
        assert_eq!(c, self.in_channels, "quantized input channel mismatch");
        assert!(b > 0 && l > 0, "quantized forward needs a non-empty batch");
        arena.ensure_quant(b, l, self.max_channels, self.features, self.num_classes);
        let (buf_a, buf_b, buf_c, qbuf, _aux, pooled, logits, softmax, probs, cams) = arena.parts();
        buf_a[..b * c * l].copy_from_slice(&x.data[..b * c * l]);
        let mut c_in = self.in_channels;
        for block in &self.blocks {
            block.infer_into(&buf_a[..b * c_in * l], buf_b, buf_c, qbuf, b, l);
            std::mem::swap(buf_a, buf_b);
            c_in = block.out_channels;
        }
        let feats = &buf_a[..b * self.features * l];
        finish_forward(
            feats,
            &self.head_weight,
            &self.head_bias,
            self.features,
            self.num_classes,
            b,
            l,
            pooled,
            logits,
            softmax,
            probs,
            cams,
        );
    }

    /// Raw parameter bits in a fixed traversal order (codes widened to
    /// `u32`), for persistence round-trip equality checks.
    pub fn param_bits(&self) -> Vec<u32> {
        let mut bits = Vec::new();
        for block in &self.blocks {
            block.stage1.push_bits(&mut bits);
            block.stage2.push_bits(&mut bits);
            block.stage3.push_bits(&mut bits);
            if let Some(sc) = &block.shortcut {
                sc.push_bits(&mut bits);
            }
        }
        bits.extend(self.head_weight.iter().map(|v| v.to_bits()));
        bits.extend(self.head_bias.iter().map(|v| v.to_bits()));
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::{ResNet, ResNetConfig};
    use crate::simd::{set_mode, SimdMode};

    fn sample_input(b: usize, c: usize, l: usize, seed: usize) -> Tensor {
        let data: Vec<f32> = (0..b * c * l)
            .map(|i| (((i + seed) * 31 % 17) as f32 - 8.0) / 4.0)
            .collect();
        Tensor::from_data(b, c, l, data)
    }

    fn trained_frozen(kernel: usize) -> FrozenResNet {
        let mut net = ResNet::new(ResNetConfig::tiny(kernel, 77));
        let x = sample_input(6, 1, 40, 3);
        for _ in 0..4 {
            let _ = net.forward(&x, true);
        }
        FrozenResNet::freeze(&net)
    }

    #[test]
    fn per_channel_scales_bound_roundtrip_error() {
        let weight: Vec<f32> = (0..3 * 10)
            .map(|i| ((i * 13 % 29) as f32 - 14.0) / 7.0)
            .collect();
        let (codes, scales) = quantize_weights_per_channel(&weight, 3, 10);
        for oc in 0..3 {
            let s = scales[oc];
            for i in 0..10 {
                let w = weight[oc * 10 + i];
                let back = codes[oc * 10 + i] as f32 * s;
                assert!(
                    (w - back).abs() <= s * 0.5 + 1e-6,
                    "oc={oc} i={i}: {w} vs {back} (scale {s})"
                );
            }
        }
    }

    #[test]
    fn quantized_plan_matches_frozen_decisions() {
        for kernel in [3usize, 5] {
            let frozen = trained_frozen(kernel);
            let calib = sample_input(8, 1, 40, 11);
            let quant = QuantizedResNet::quantize(&frozen, &calib);
            let x = sample_input(4, 1, 40, 0);
            let mut fa = InferenceArena::new();
            let mut qa = InferenceArena::new();
            frozen.predict_into(&x, &mut fa);
            quant.predict_into(&x, &mut qa);
            for bi in 0..4 {
                let (fp, qp) = (fa.probs()[bi], qa.probs()[bi]);
                assert!((fp - qp).abs() < 0.05, "k={kernel} prob drift {fp} vs {qp}");
                // A warm-BN-only net can sit arbitrarily close to 0.5;
                // decision identity on *trained* nets is the golden tests'
                // job. Here we require it whenever there is real margin.
                if (fp - 0.5).abs() > 0.05 {
                    assert_eq!(fp > 0.5, qp > 0.5, "k={kernel} decision flip");
                }
            }
        }
    }

    #[test]
    fn simd_and_scalar_int8_paths_bit_identical() {
        let frozen = trained_frozen(5);
        let calib = sample_input(8, 1, 40, 7);
        let quant = QuantizedResNet::quantize(&frozen, &calib);
        let x = sample_input(3, 1, 40, 5);
        let mut a = InferenceArena::new();
        let mut b = InferenceArena::new();
        set_mode(Some(SimdMode::Avx2));
        quant.predict_into(&x, &mut a);
        set_mode(Some(SimdMode::Scalar));
        quant.predict_into(&x, &mut b);
        set_mode(None);
        for bi in 0..3 {
            for (p, q) in a.logits_row(bi).iter().zip(b.logits_row(bi)) {
                assert_eq!(p.to_bits(), q.to_bits(), "int8 paths must be bit-identical");
            }
            for (p, q) in a.cam(bi).iter().zip(b.cam(bi)) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn steady_state_quantized_predict_allocates_nothing() {
        let frozen = trained_frozen(5);
        let calib = sample_input(4, 1, 32, 1);
        let quant = QuantizedResNet::quantize(&frozen, &calib);
        let x = sample_input(3, 1, 32, 2);
        let mut arena = InferenceArena::new();
        quant.predict_into(&x, &mut arena); // warmup sizes the arena
        let before = ds_obs::alloc_count();
        for _ in 0..8 {
            quant.predict_into(&x, &mut arena);
        }
        assert_eq!(
            ds_obs::alloc_count(),
            before,
            "steady-state quantized forward must not allocate"
        );
    }
}
