//! Same-padded 1D convolution with full backward pass.
//!
//! This is the hot path of the entire reproduction: every model in the
//! benchmark is convolutional. The forward and backward passes use
//! register-blocked inner kernels — four output rows share every loaded
//! input element, the interior (all taps in range) is split from the
//! padded edges so the hot loop carries no bounds branch, and the kernel
//! width is const-dispatched for the paper's sizes (`k ∈ {5, 7, 9, 15}`
//! plus the 1/3 used by shortcuts and tests) so the tap loop fully
//! unrolls. The batch dimension fans out across cores via `ds-par`; batch
//! rows are independent, so the parallel output is bit-identical to the
//! sequential one, and the backward weight-gradient reduction uses a
//! *fixed* chunk size so its summation tree is also identical under any
//! worker count.
//!
//! Shape convention: input `[B, C_in, L]` → output `[B, C_out, L]`
//! (stride 1, zero padding `k/2`; for even `k` the output is anchored so
//! position `t` sees `x[t - k/2 .. t + (k - 1)/2]`).

use crate::tensor::Tensor;
use crate::VisitParams;
use serde::{Deserialize, Serialize};

/// A trainable 1D convolution layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Dilation factor (1 = dense). The effective receptive span is
    /// `(kernel - 1) * dilation + 1`; padding keeps the output length equal
    /// to the input length. Dilated stacks power the TCN baseline.
    pub dilation: usize,
    /// Weights `[out, in, k]`, row-major.
    pub weight: Vec<f32>,
    /// Per-output-channel bias.
    pub bias: Vec<f32>,
    /// Weight gradients (same layout as `weight`). Serialized alongside the
    /// weights so a deserialized model has correctly sized buffers.
    pub grad_weight: Vec<f32>,
    /// Bias gradients.
    pub grad_bias: Vec<f32>,
    /// Cached input from the last forward (needed by backward).
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// Create a layer with He-normal weights (seeded).
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Conv1d {
        Conv1d::dilated(in_channels, out_channels, kernel, 1, seed)
    }

    /// Create a dilated layer (dilation 1 gives a dense convolution).
    pub fn dilated(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        dilation: usize,
        seed: u64,
    ) -> Conv1d {
        assert!(kernel >= 1, "kernel must be at least 1");
        assert!(dilation >= 1, "dilation must be at least 1");
        let mut weight = vec![0.0; out_channels * in_channels * kernel];
        crate::init::he_normal(seed, in_channels * kernel, &mut weight);
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            dilation,
            grad_weight: vec![0.0; weight.len()],
            grad_bias: vec![0.0; out_channels],
            weight,
            bias: vec![0.0; out_channels],
            cached_input: None,
        }
    }

    /// Left padding implied by "same" output length.
    #[inline]
    fn pad_left(&self) -> usize {
        (self.kernel - 1) * self.dilation / 2
    }

    #[cfg_attr(not(test), allow(dead_code))] // used by the reference impl in tests
    #[inline]
    fn w_row(&self, oc: usize, ic: usize) -> &[f32] {
        let start = (oc * self.in_channels + ic) * self.kernel;
        &self.weight[start..start + self.kernel]
    }

    /// Forward pass. In training mode the input is cached for backward.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.infer(x);
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    /// Pure inference forward (no caching, `&self`) — used by ensembles that
    /// must stay shareable at prediction time.
    ///
    /// Batch rows are filled in parallel (each row is an independent
    /// computation, so the result is bit-identical to the sequential
    /// path); within a row, output channels are processed four at a time
    /// by the register-blocked kernels.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let (b, _, l) = x.shape();
        let mut y = Tensor::zeros(b, self.out_channels, l);
        self.infer_into(x, &mut y);
        y
    }

    /// [`Conv1d::infer`] into a caller-owned, pre-shaped output tensor —
    /// the allocation-free variant for hot loops that reuse the output
    /// across calls. Below the ds-par fan-out floor
    /// ([`ds_par::should_fanout`]) batch rows run sequentially in place,
    /// skipping even the dispatch bookkeeping; the result is bit-identical
    /// either way.
    pub fn infer_into(&self, x: &Tensor, y: &mut Tensor) {
        assert_eq!(x.channels, self.in_channels, "conv input channel mismatch");
        let _span = ds_obs::span!("conv.infer");
        let (b, _, l) = x.shape();
        assert_eq!(
            y.shape(),
            (b, self.out_channels, l),
            "conv output tensor shape mismatch"
        );
        let row_stride = self.out_channels * l;
        if !ds_par::should_fanout(b) {
            for bi in 0..b {
                self.infer_row(x, bi, &mut y.data[bi * row_stride..][..row_stride], l);
            }
            return;
        }
        let rows_per_task = self.rows_per_task(b, l);
        ds_par::par_chunks_mut(&mut y.data, rows_per_task * row_stride, |ti, chunk| {
            let bi0 = ti * rows_per_task;
            for (j, y_rows) in chunk.chunks_mut(row_stride).enumerate() {
                self.infer_row(x, bi0 + j, y_rows, l);
            }
        });
    }

    /// Batch rows per parallel task: even split across workers, floored so
    /// a task always carries enough multiply-accumulates to amortize the
    /// dispatch. Grouping only sets granularity — row results are
    /// independent — so tracking the worker count here is safe.
    ///
    /// The 2²⁰-MAC floor comes from `par.chunk` span profiles: at the old
    /// 2¹⁸ floor a serving-size chunk retired in tens of µs, the same
    /// order as the dispatch (thread spawn + lane setup) that fed it —
    /// the thread sweeps in `results/BENCH_perf.json` were flat at
    /// 0.97–1.01× for exactly this reason. Four times coarser chunks keep
    /// each task comfortably above the dispatch cost while still
    /// splitting training-scale batches.
    fn rows_per_task(&self, b: usize, l: usize) -> usize {
        const MIN_TASK_MACS: usize = 1 << 20;
        let row_macs = self.out_channels * self.in_channels * l * self.kernel;
        let per_worker = b.div_ceil(ds_par::threads().max(1)).max(1);
        per_worker
            .max(MIN_TASK_MACS.div_ceil(row_macs.max(1)))
            .min(b.max(1))
    }

    /// One batch row of the forward pass: bias fill, then blocks of four
    /// output channels accumulated against each input row in one pass.
    fn infer_row(&self, x: &Tensor, bi: usize, y_rows: &mut [f32], l: usize) {
        let pad = self.pad_left();
        let k = self.kernel;
        let mut oc = 0;
        while oc < self.out_channels {
            let rows = (self.out_channels - oc).min(4);
            let block = &mut y_rows[oc * l..(oc + rows) * l];
            for (r, row) in block.chunks_mut(l).enumerate() {
                row.fill(self.bias[oc + r]);
            }
            for ic in 0..self.in_channels {
                let x_row = x.row(bi, ic);
                let w_at = |r: usize| {
                    let start = ((oc + r) * self.in_channels + ic) * k;
                    &self.weight[start..start + k]
                };
                if rows == 4 {
                    let w = [w_at(0), w_at(1), w_at(2), w_at(3)];
                    accumulate_conv4(block, l, x_row, w, k, pad, self.dilation, false);
                } else {
                    for (r, y_row) in block.chunks_mut(l).enumerate() {
                        accumulate_conv(
                            y_row,
                            x_row,
                            w_at(r),
                            pad as isize,
                            self.dilation as isize,
                        );
                    }
                }
            }
            oc += rows;
        }
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    /// Panics if called without a preceding training-mode forward.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Conv1d::backward requires forward(train=true) first");
        assert_eq!(grad_out.channels, self.out_channels);
        assert_eq!(grad_out.batch, x.batch);
        assert_eq!(grad_out.len, x.len);
        let _span = ds_obs::span!("conv.backward");
        let (_, _, l) = x.shape();
        let mut grad_in = x.zeros_like();
        let gi_stride = self.in_channels * l;
        // Fixed micro-batch of batch rows. Input-gradient rows are disjoint
        // per micro-batch; weight/bias gradients come back as per-slot
        // partials and are reduced below in slot order, so the summation
        // tree — hence the result — is identical for every worker count.
        // The micro-batch height must therefore never track
        // `ds_par::threads()`.
        let micro = crate::workspace::MICRO_ROWS;
        let this = &*self;
        let partials: Vec<(Vec<f32>, Vec<f32>)> =
            ds_par::par_chunks_map_mut(&mut grad_in.data, micro * gi_stride, |ci, gi_chunk| {
                let _span = ds_obs::span!("train.microbatch");
                let mut gw = crate::workspace::take_buf(this.weight.len());
                let mut gb = crate::workspace::take_buf(this.out_channels);
                let bi0 = ci * micro;
                for (j, gi_rows) in gi_chunk.chunks_mut(gi_stride).enumerate() {
                    this.backward_row(x, grad_out, bi0 + j, gi_rows, &mut gw, &mut gb, l);
                }
                (gw, gb)
            });
        // Fold the per-slot partials in slot order (fixed-shape reduction),
        // recycling every consumed scratch buffer back into the pool.
        let _span = ds_obs::span!("train.reduce");
        if let Some((gw, gb)) = ds_par::par_reduce(partials, |acc, p| {
            for (a, v) in acc.0.iter_mut().zip(&p.0) {
                *a += v;
            }
            for (a, v) in acc.1.iter_mut().zip(&p.1) {
                *a += v;
            }
            crate::workspace::recycle_buf(p.0);
            crate::workspace::recycle_buf(p.1);
        }) {
            for (acc, v) in self.grad_weight.iter_mut().zip(&gw) {
                *acc += v;
            }
            for (acc, v) in self.grad_bias.iter_mut().zip(&gb) {
                *acc += v;
            }
            crate::workspace::recycle_buf(gw);
            crate::workspace::recycle_buf(gb);
        }
        grad_in
    }

    /// One batch row of the backward pass: bias sums, single-pass weight
    /// taps, and the input-gradient gather in blocks of four input rows.
    #[allow(clippy::too_many_arguments)]
    fn backward_row(
        &self,
        x: &Tensor,
        grad_out: &Tensor,
        bi: usize,
        gi_rows: &mut [f32],
        gw: &mut [f32],
        gb: &mut [f32],
        l: usize,
    ) {
        let pad = self.pad_left();
        let k = self.kernel;
        for (oc, gb_oc) in gb.iter_mut().enumerate().take(self.out_channels) {
            let g_row = grad_out.row(bi, oc);
            *gb_oc += g_row.iter().sum::<f32>();
            // dL/dw[oc][ic][k] = sum_t g[t] * x[t + k*d - pad]
            for ic in 0..self.in_channels {
                let start = (oc * self.in_channels + ic) * k;
                grad_weight_taps(
                    &mut gw[start..start + k],
                    g_row,
                    x.row(bi, ic),
                    pad,
                    self.dilation,
                );
            }
            // dL/dx[s] = sum_k g[s + pad - k*d] * w[k], gathered (not
            // scattered) so four input rows can share every loaded g[·].
            let mut ic = 0;
            while ic < self.in_channels {
                let rows = (self.in_channels - ic).min(4);
                let block = &mut gi_rows[ic * l..(ic + rows) * l];
                let w_at = |r: usize| {
                    let start = (oc * self.in_channels + ic + r) * k;
                    &self.weight[start..start + k]
                };
                if rows == 4 {
                    let w = [w_at(0), w_at(1), w_at(2), w_at(3)];
                    accumulate_corr4(block, l, g_row, w, k, pad, self.dilation);
                } else {
                    for (r, gi_row) in block.chunks_mut(l).enumerate() {
                        accumulate_corr1(gi_row, g_row, w_at(r), k, pad, self.dilation);
                    }
                }
                ic += rows;
            }
        }
    }
}

/// Accumulate `y[t] += Σ_k w[k] * x[t + k*d - pad]` with zero padding,
/// keeping the inner loop over a contiguous valid range (no per-element
/// bounds branch). Single-row fallback for output-channel remainders and
/// arbitrary kernel widths. Crate-visible so the frozen inference plan
/// can drive the same kernels without the layer's bias/caching wrapper.
#[inline]
pub(crate) fn accumulate_conv(y: &mut [f32], x: &[f32], w: &[f32], pad: isize, dilation: isize) {
    let l = y.len();
    for (k, &wk) in w.iter().enumerate() {
        let shift = k as isize * dilation - pad;
        let (t0, t1) = overlap(l, shift);
        if t1 <= t0 {
            continue; // tap never lands inside the row (short series)
        }
        // y[t] += wk * x[t + shift] for t in [t0, t1)
        let x_off = (t0 as isize + shift) as usize;
        let n = t1 - t0;
        let ys = &mut y[t0..t1];
        let xs = &x[x_off..x_off + n];
        for (yv, xv) in ys.iter_mut().zip(xs) {
            *yv += wk * xv;
        }
    }
}

/// Valid `t` range such that `0 <= t + shift < l`.
#[inline]
fn overlap(l: usize, shift: isize) -> (usize, usize) {
    let t0 = (-shift).max(0) as usize;
    let t1 = ((l as isize - shift).min(l as isize)).max(0) as usize;
    (t0.min(t1), t1)
}

/// Dispatches `f::<K>` for the kernel widths the paper's models use, so
/// the tap loops unroll; other widths run the `dyn_k` fallback.
macro_rules! dispatch_kernel {
    ($k:expr, $f:ident ( $($args:expr),* ), $dyn_fallback:expr) => {
        match $k {
            1 => $f::<1>($($args),*),
            3 => $f::<3>($($args),*),
            5 => $f::<5>($($args),*),
            7 => $f::<7>($($args),*),
            9 => $f::<9>($($args),*),
            15 => $f::<15>($($args),*),
            _ => $dyn_fallback,
        }
    };
}

/// Register-blocked forward kernel: accumulate four contiguous output
/// rows (`block`, length `4*l`) against one input row in a single pass —
/// each loaded `x[·]` feeds four accumulators. Per-element tap order
/// (ascending `k`) matches [`accumulate_conv`], so results are
/// bit-identical to the single-row path.
///
/// `relu` is a fused epilogue: when true, each output element is clamped
/// to `max(v, 0)` as it is written back. Only the *final* accumulation
/// pass over a block may fuse (each element is written exactly once per
/// pass, so an earlier clamp would corrupt later accumulation) — the
/// frozen inference plan passes `relu = ic + 1 == in_channels`, the
/// mutable path always passes `false` (bit-identical to the pre-epilogue
/// kernel). The flag is const-dispatched together with the kernel width,
/// so the `false` path compiles to exactly the old loop.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn accumulate_conv4(
    block: &mut [f32],
    l: usize,
    x: &[f32],
    w: [&[f32]; 4],
    k: usize,
    pad: usize,
    dilation: usize,
    relu: bool,
) {
    #[inline(always)]
    fn epi<const RELU: bool>(v: f32) -> f32 {
        if RELU {
            v.max(0.0)
        } else {
            v
        }
    }
    #[inline(always)]
    fn body<const RELU: bool>(
        block: &mut [f32],
        l: usize,
        x: &[f32],
        w: [&[f32]; 4],
        k: usize,
        pad: usize,
        dilation: usize,
    ) {
        let span = (k - 1) * dilation;
        let t_lo = pad.min(l);
        let t_hi = (l + pad).saturating_sub(span).clamp(t_lo, l);
        let (y0, rest) = block.split_at_mut(l);
        let (y1, rest) = rest.split_at_mut(l);
        let (y2, y3) = rest.split_at_mut(l);
        let (w0, w1, w2, w3) = (&w[0][..k], &w[1][..k], &w[2][..k], &w[3][..k]);
        // Padded edges: per-tap range check.
        for t in (0..t_lo).chain(t_hi..l) {
            let (mut a0, mut a1, mut a2, mut a3) = (y0[t], y1[t], y2[t], y3[t]);
            for kk in 0..k {
                let s = t as isize + (kk * dilation) as isize - pad as isize;
                if s >= 0 && (s as usize) < l {
                    let xv = x[s as usize];
                    a0 += w0[kk] * xv;
                    a1 += w1[kk] * xv;
                    a2 += w2[kk] * xv;
                    a3 += w3[kk] * xv;
                }
            }
            y0[t] = epi::<RELU>(a0);
            y1[t] = epi::<RELU>(a1);
            y2[t] = epi::<RELU>(a2);
            y3[t] = epi::<RELU>(a3);
        }
        // Interior: every tap in range, no branch in the tap loop.
        for t in t_lo..t_hi {
            let xs = &x[t - pad..t - pad + span + 1];
            let (mut a0, mut a1, mut a2, mut a3) = (y0[t], y1[t], y2[t], y3[t]);
            for kk in 0..k {
                let xv = xs[kk * dilation];
                a0 += w0[kk] * xv;
                a1 += w1[kk] * xv;
                a2 += w2[kk] * xv;
                a3 += w3[kk] * xv;
            }
            y0[t] = epi::<RELU>(a0);
            y1[t] = epi::<RELU>(a1);
            y2[t] = epi::<RELU>(a2);
            y3[t] = epi::<RELU>(a3);
        }
    }
    #[inline]
    fn fixed<const K: usize, const RELU: bool>(
        block: &mut [f32],
        l: usize,
        x: &[f32],
        w: [&[f32]; 4],
        pad: usize,
        dilation: usize,
    ) {
        body::<RELU>(block, l, x, w, K, pad, dilation);
    }
    macro_rules! go {
        ($relu:literal) => {
            match k {
                1 => fixed::<1, $relu>(block, l, x, w, pad, dilation),
                3 => fixed::<3, $relu>(block, l, x, w, pad, dilation),
                5 => fixed::<5, $relu>(block, l, x, w, pad, dilation),
                7 => fixed::<7, $relu>(block, l, x, w, pad, dilation),
                9 => fixed::<9, $relu>(block, l, x, w, pad, dilation),
                15 => fixed::<15, $relu>(block, l, x, w, pad, dilation),
                _ => body::<$relu>(block, l, x, w, k, pad, dilation),
            }
        };
    }
    if relu {
        go!(true)
    } else {
        go!(false)
    }
}

/// Frozen-path forward kernel: accumulate four contiguous output rows at
/// **two adjacent output positions** per interior step. Each loaded
/// weight `w[kk]` feeds positions `t` and `t+1`, halving weight traffic
/// (the dominant memory operation of the per-element kernel — `4k` weight
/// loads against `k` input loads and 8 output operations), and the eight
/// accumulators double the independent FMA chains, hiding add latency the
/// four-chain kernel cannot. Each output element still accumulates its
/// taps in ascending `k` order in a single register, so the result is
/// bit-identical to [`accumulate_conv4`].
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn accumulate_conv4t2(
    block: &mut [f32],
    l: usize,
    x: &[f32],
    w: [&[f32]; 4],
    k: usize,
    pad: usize,
    dilation: usize,
    relu: bool,
) {
    #[inline(always)]
    fn epi<const RELU: bool>(v: f32) -> f32 {
        if RELU {
            v.max(0.0)
        } else {
            v
        }
    }
    #[inline(always)]
    fn body<const RELU: bool>(
        block: &mut [f32],
        l: usize,
        x: &[f32],
        w: [&[f32]; 4],
        k: usize,
        pad: usize,
        dilation: usize,
    ) {
        let span = (k - 1) * dilation;
        let t_lo = pad.min(l);
        let t_hi = (l + pad).saturating_sub(span).clamp(t_lo, l);
        let (y0, rest) = block.split_at_mut(l);
        let (y1, rest) = rest.split_at_mut(l);
        let (y2, y3) = rest.split_at_mut(l);
        let (w0, w1, w2, w3) = (&w[0][..k], &w[1][..k], &w[2][..k], &w[3][..k]);
        // Padded edges: per-tap range check.
        for t in (0..t_lo).chain(t_hi..l) {
            let (mut a0, mut a1, mut a2, mut a3) = (y0[t], y1[t], y2[t], y3[t]);
            for kk in 0..k {
                let s = t as isize + (kk * dilation) as isize - pad as isize;
                if s >= 0 && (s as usize) < l {
                    let xv = x[s as usize];
                    a0 += w0[kk] * xv;
                    a1 += w1[kk] * xv;
                    a2 += w2[kk] * xv;
                    a3 += w3[kk] * xv;
                }
            }
            y0[t] = epi::<RELU>(a0);
            y1[t] = epi::<RELU>(a1);
            y2[t] = epi::<RELU>(a2);
            y3[t] = epi::<RELU>(a3);
        }
        // Interior, two positions per step: position t+1's tap `kk` reads
        // `x[t+1-pad+kk*d]` — one element past position t's — so both
        // share the window slice.
        let mut t = t_lo;
        while t + 2 <= t_hi {
            let xs = &x[t - pad..t - pad + span + 2];
            let (mut a00, mut a10, mut a20, mut a30) = (y0[t], y1[t], y2[t], y3[t]);
            let (mut a01, mut a11, mut a21, mut a31) = (y0[t + 1], y1[t + 1], y2[t + 1], y3[t + 1]);
            for kk in 0..k {
                let xv0 = xs[kk * dilation];
                let xv1 = xs[kk * dilation + 1];
                let (c0, c1, c2, c3) = (w0[kk], w1[kk], w2[kk], w3[kk]);
                a00 += c0 * xv0;
                a01 += c0 * xv1;
                a10 += c1 * xv0;
                a11 += c1 * xv1;
                a20 += c2 * xv0;
                a21 += c2 * xv1;
                a30 += c3 * xv0;
                a31 += c3 * xv1;
            }
            y0[t] = epi::<RELU>(a00);
            y1[t] = epi::<RELU>(a10);
            y2[t] = epi::<RELU>(a20);
            y3[t] = epi::<RELU>(a30);
            y0[t + 1] = epi::<RELU>(a01);
            y1[t + 1] = epi::<RELU>(a11);
            y2[t + 1] = epi::<RELU>(a21);
            y3[t + 1] = epi::<RELU>(a31);
            t += 2;
        }
        // Odd interior remainder: one position, same chain as the pair.
        if t < t_hi {
            let xs = &x[t - pad..t - pad + span + 1];
            let (mut a0, mut a1, mut a2, mut a3) = (y0[t], y1[t], y2[t], y3[t]);
            for kk in 0..k {
                let xv = xs[kk * dilation];
                a0 += w0[kk] * xv;
                a1 += w1[kk] * xv;
                a2 += w2[kk] * xv;
                a3 += w3[kk] * xv;
            }
            y0[t] = epi::<RELU>(a0);
            y1[t] = epi::<RELU>(a1);
            y2[t] = epi::<RELU>(a2);
            y3[t] = epi::<RELU>(a3);
        }
    }
    #[inline]
    fn fixed<const K: usize, const RELU: bool>(
        block: &mut [f32],
        l: usize,
        x: &[f32],
        w: [&[f32]; 4],
        pad: usize,
        dilation: usize,
    ) {
        body::<RELU>(block, l, x, w, K, pad, dilation);
    }
    macro_rules! go {
        ($relu:literal) => {
            match k {
                1 => fixed::<1, $relu>(block, l, x, w, pad, dilation),
                3 => fixed::<3, $relu>(block, l, x, w, pad, dilation),
                5 => fixed::<5, $relu>(block, l, x, w, pad, dilation),
                7 => fixed::<7, $relu>(block, l, x, w, pad, dilation),
                9 => fixed::<9, $relu>(block, l, x, w, pad, dilation),
                15 => fixed::<15, $relu>(block, l, x, w, pad, dilation),
                _ => body::<$relu>(block, l, x, w, k, pad, dilation),
            }
        };
    }
    if relu {
        go!(true)
    } else {
        go!(false)
    }
}

/// Register-blocked input-gradient kernel (the transpose of the forward
/// read): accumulate four contiguous input-gradient rows against one
/// output-gradient row, `gi[s] += Σ_k w[k] * g[s + pad - k*d]`, gathered
/// so every loaded `g[·]` feeds four accumulators.
#[inline]
fn accumulate_corr4(
    block: &mut [f32],
    l: usize,
    g: &[f32],
    w: [&[f32]; 4],
    k: usize,
    pad: usize,
    dilation: usize,
) {
    #[inline(always)]
    fn body(
        block: &mut [f32],
        l: usize,
        g: &[f32],
        w: [&[f32]; 4],
        k: usize,
        pad: usize,
        dilation: usize,
    ) {
        let span = (k - 1) * dilation;
        let s_lo = span.saturating_sub(pad).min(l);
        let s_hi = l.saturating_sub(pad).clamp(s_lo, l);
        let (y0, rest) = block.split_at_mut(l);
        let (y1, rest) = rest.split_at_mut(l);
        let (y2, y3) = rest.split_at_mut(l);
        let (w0, w1, w2, w3) = (&w[0][..k], &w[1][..k], &w[2][..k], &w[3][..k]);
        for s in (0..s_lo).chain(s_hi..l) {
            let (mut a0, mut a1, mut a2, mut a3) = (y0[s], y1[s], y2[s], y3[s]);
            for kk in 0..k {
                let t = s as isize + pad as isize - (kk * dilation) as isize;
                if t >= 0 && (t as usize) < l {
                    let gv = g[t as usize];
                    a0 += w0[kk] * gv;
                    a1 += w1[kk] * gv;
                    a2 += w2[kk] * gv;
                    a3 += w3[kk] * gv;
                }
            }
            y0[s] = a0;
            y1[s] = a1;
            y2[s] = a2;
            y3[s] = a3;
        }
        for s in s_lo..s_hi {
            // Base of the gather window: s + pad - span .. s + pad.
            let gs = &g[s + pad - span..s + pad + 1];
            let (mut a0, mut a1, mut a2, mut a3) = (y0[s], y1[s], y2[s], y3[s]);
            for kk in 0..k {
                let gv = gs[span - kk * dilation];
                a0 += w0[kk] * gv;
                a1 += w1[kk] * gv;
                a2 += w2[kk] * gv;
                a3 += w3[kk] * gv;
            }
            y0[s] = a0;
            y1[s] = a1;
            y2[s] = a2;
            y3[s] = a3;
        }
    }
    #[inline]
    fn fixed<const K: usize>(
        block: &mut [f32],
        l: usize,
        g: &[f32],
        w: [&[f32]; 4],
        pad: usize,
        dilation: usize,
    ) {
        body(block, l, g, w, K, pad, dilation);
    }
    dispatch_kernel!(
        k,
        fixed(block, l, g, w, pad, dilation),
        body(block, l, g, w, k, pad, dilation)
    );
}

/// Single-row input-gradient gather (input-channel remainder fallback):
/// `gi[s] += Σ_k w[k] * g[s + pad - k*d]` with ascending-`k` tap order.
#[inline]
fn accumulate_corr1(gi: &mut [f32], g: &[f32], w: &[f32], k: usize, pad: usize, dilation: usize) {
    let l = gi.len();
    for (kk, &wk) in w.iter().enumerate().take(k) {
        // gi[s] += wk * g[s + shift] with shift = pad - kk*d.
        let shift = pad as isize - (kk * dilation) as isize;
        let (s0, s1) = overlap(l, shift);
        if s1 <= s0 {
            continue; // tap never lands inside the row (short series)
        }
        let g_off = (s0 as isize + shift) as usize;
        let n = s1 - s0;
        let ys = &mut gi[s0..s1];
        let gs = &g[g_off..g_off + n];
        for (yv, gv) in ys.iter_mut().zip(gs) {
            *yv += wk * gv;
        }
    }
}

/// Weight-gradient taps for one `(oc, ic)` pair: `gw[k] += Σ_t g[t] *
/// x[t + k*d - pad]`, all `k` accumulated in a single pass over `t` (each
/// accumulator still sums in ascending `t`, like the per-tap loop).
#[inline]
fn grad_weight_taps(gw: &mut [f32], g: &[f32], x: &[f32], pad: usize, dilation: usize) {
    #[inline(always)]
    fn edge_taps(acc: &mut [f32], t: usize, g: &[f32], x: &[f32], pad: usize, dilation: usize) {
        let l = g.len();
        for (kk, a) in acc.iter_mut().enumerate() {
            let s = t as isize + (kk * dilation) as isize - pad as isize;
            if s >= 0 && (s as usize) < l {
                *a += g[t] * x[s as usize];
            }
        }
    }
    #[inline]
    fn fixed<const K: usize>(gw: &mut [f32], g: &[f32], x: &[f32], pad: usize, dilation: usize) {
        let l = g.len();
        let span = (K - 1) * dilation;
        let t_lo = pad.min(l);
        let t_hi = (l + pad).saturating_sub(span).clamp(t_lo, l);
        let mut acc = [0.0f32; K];
        for t in 0..t_lo {
            edge_taps(&mut acc, t, g, x, pad, dilation);
        }
        for t in t_lo..t_hi {
            let gt = g[t];
            let xs = &x[t - pad..t - pad + span + 1];
            for (kk, a) in acc.iter_mut().enumerate() {
                *a += gt * xs[kk * dilation];
            }
        }
        for t in t_hi..l {
            edge_taps(&mut acc, t, g, x, pad, dilation);
        }
        for (gwk, a) in gw.iter_mut().zip(acc) {
            *gwk += a;
        }
    }
    // Fallback: one shifted-dot pass per tap (identical accumulation
    // order per tap: ascending t).
    fn dyn_k(gw: &mut [f32], g: &[f32], x: &[f32], pad: usize, dilation: usize) {
        let l = g.len();
        for (kk, gwk) in gw.iter_mut().enumerate() {
            let shift = (kk * dilation) as isize - pad as isize;
            let (t0, t1) = overlap(l, shift);
            if t1 <= t0 {
                continue; // tap never lands inside the row (short series)
            }
            let x_off = (t0 as isize + shift) as usize;
            let mut acc = 0.0f32;
            for (gv, xv) in g[t0..t1].iter().zip(&x[x_off..x_off + (t1 - t0)]) {
                acc += gv * xv;
            }
            *gwk += acc;
        }
    }
    let k = gw.len();
    dispatch_kernel!(
        k,
        fixed(gw, g, x, pad, dilation),
        dyn_k(gw, g, x, pad, dilation)
    );
}

impl VisitParams for Conv1d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference convolution for cross-checking.
    fn reference_forward(conv: &Conv1d, x: &Tensor) -> Tensor {
        let (b, _, l) = x.shape();
        let pad = ((conv.kernel - 1) * conv.dilation / 2) as isize;
        let mut y = Tensor::zeros(b, conv.out_channels, l);
        for bi in 0..b {
            for oc in 0..conv.out_channels {
                for t in 0..l {
                    let mut acc = conv.bias[oc];
                    for ic in 0..conv.in_channels {
                        for k in 0..conv.kernel {
                            let s = t as isize + (k * conv.dilation) as isize - pad;
                            if s >= 0 && (s as usize) < l {
                                acc += conv.w_row(oc, ic)[k] * x.get(bi, ic, s as usize);
                            }
                        }
                    }
                    *y.get_mut(bi, oc, t) = acc;
                }
            }
        }
        y
    }

    fn sample_input(b: usize, c: usize, l: usize) -> Tensor {
        let data: Vec<f32> = (0..b * c * l)
            .map(|i| ((i * 37 % 23) as f32 - 11.0) / 7.0)
            .collect();
        Tensor::from_data(b, c, l, data)
    }

    #[test]
    fn forward_matches_reference() {
        for kernel in [1usize, 2, 3, 5, 7, 15] {
            let mut conv = Conv1d::new(3, 4, kernel, 11);
            let x = sample_input(2, 3, 20);
            let fast = conv.forward(&x, false);
            let slow = reference_forward(&conv, &x);
            for (a, b) in fast.data.iter().zip(slow.data.iter()) {
                assert!((a - b).abs() < 1e-4, "kernel {kernel}: {a} vs {b}");
            }
        }
    }

    /// The 4-row blocked kernel plus remainder fallback must agree with
    /// the reference for every block shape: channel counts on, below, and
    /// off the blocking factor, and rows shorter than the kernel span.
    #[test]
    fn blocked_forward_matches_reference_all_shapes() {
        for (ci, co) in [
            (1usize, 1usize),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (4, 8),
            (6, 7),
        ] {
            for kernel in [1usize, 3, 5, 7, 9, 15] {
                for l in [3usize, 8, 17] {
                    let mut conv = Conv1d::new(ci, co, kernel, 29);
                    let x = sample_input(2, ci, l);
                    let fast = conv.forward(&x, false);
                    let slow = reference_forward(&conv, &x);
                    for (a, b) in fast.data.iter().zip(slow.data.iter()) {
                        assert!(
                            (a - b).abs() < 1e-4,
                            "ci={ci} co={co} k={kernel} l={l}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    /// Forward and backward are bit-identical for any worker count: the
    /// batch fan-out writes disjoint rows, and the backward reduction
    /// sums fixed-size chunk partials in chunk order.
    #[test]
    fn parallel_paths_are_bit_identical() {
        let run = |workers: usize| {
            ds_par::set_threads(Some(workers));
            let mut conv = Conv1d::new(3, 8, 5, 17);
            // Large enough rows that `rows_per_task` clears the minimum
            // task size and the forward fan-out really splits the batch.
            let x = sample_input(9, 3, 2400);
            let y = conv.forward(&x, true);
            let gi = conv.backward(&y);
            ds_par::set_threads(None);
            (
                y.data,
                gi.data,
                conv.grad_weight.clone(),
                conv.grad_bias.clone(),
            )
        };
        let base = run(1);
        for workers in [2usize, 3, 8] {
            let par = run(workers);
            assert!(base
                .0
                .iter()
                .zip(&par.0)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            assert!(base
                .1
                .iter()
                .zip(&par.1)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            assert!(base
                .2
                .iter()
                .zip(&par.2)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            assert!(base
                .3
                .iter()
                .zip(&par.3)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    /// The two-position frozen kernel must be bit-identical to the
    /// one-position kernel, with and without the fused ReLU, across
    /// kernel widths (const-dispatched and fallback), even and odd
    /// interior lengths, rows shorter than the kernel span, and dilation.
    #[test]
    fn conv4t2_matches_conv4() {
        for kernel in [1usize, 4, 5, 9, 15] {
            for l in [3usize, 17, 40] {
                for dilation in [1usize, 2] {
                    let pad = (kernel - 1) * dilation / 2;
                    let w_flat: Vec<f32> = (0..kernel * 4)
                        .map(|i| ((i * 37 + 13) % 23) as f32 / 7.0 - 1.5)
                        .collect();
                    let w: [&[f32]; 4] = std::array::from_fn(|r| &w_flat[r * kernel..][..kernel]);
                    let x: Vec<f32> = (0..l).map(|i| ((i * 29 % 17) as f32 - 8.0) / 5.0).collect();
                    for relu in [false, true] {
                        let mut single: Vec<f32> =
                            (0..4 * l).map(|i| (i % 5) as f32 * 0.3 - 0.6).collect();
                        let mut paired = single.clone();
                        accumulate_conv4(&mut single, l, &x, w, kernel, pad, dilation, relu);
                        accumulate_conv4t2(&mut paired, l, &x, w, kernel, pad, dilation, relu);
                        for (a, b) in paired.iter().zip(&single) {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "k={kernel} l={l} d={dilation} relu={relu}: {a} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv1d::new(1, 1, 1, 0);
        conv.weight[0] = 1.0;
        conv.bias[0] = 0.0;
        let x = sample_input(1, 1, 10);
        let y = conv.forward(&x, false);
        assert_eq!(y.data, x.data);
    }

    #[test]
    fn output_preserves_length() {
        for kernel in [2usize, 4, 9] {
            let mut conv = Conv1d::new(2, 5, kernel, 3);
            let x = sample_input(3, 2, 17);
            let y = conv.forward(&x, false);
            assert_eq!(y.shape(), (3, 5, 17));
        }
    }

    /// Finite-difference gradient check for weights, bias and input.
    #[test]
    fn gradient_check() {
        let mut conv = Conv1d::new(2, 3, 5, 42);
        let x = sample_input(2, 2, 9);
        // Loss = sum of squares of output / 2 -> dL/dy = y.
        let y = conv.forward(&x, true);
        let grad_in = conv.backward(&y);
        let eps = 1e-3f32;

        // Weight gradients.
        for wi in [0usize, 7, 13, conv.weight.len() - 1] {
            let orig = conv.weight[wi];
            conv.weight[wi] = orig + eps;
            let lp: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.weight[wi] = orig - eps;
            let lm: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.weight[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = conv.grad_weight[wi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(1.0),
                "w[{wi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Bias gradients.
        for bi in 0..conv.bias.len() {
            let orig = conv.bias[bi];
            conv.bias[bi] = orig + eps;
            let lp: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.bias[bi] = orig - eps;
            let lm: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.bias[bi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = conv.grad_bias[bi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(1.0),
                "b[{bi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Input gradients.
        let mut x2 = x.clone();
        for xi in [0usize, 5, 11, x.data.len() - 1] {
            let orig = x2.data[xi];
            x2.data[xi] = orig + eps;
            let lp: f32 = conv
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x2.data[xi] = orig - eps;
            let lm: f32 = conv
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x2.data[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.data[xi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(1.0),
                "x[{xi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn even_kernel_gradient_check() {
        let mut conv = Conv1d::new(1, 2, 4, 9);
        let x = sample_input(1, 1, 8);
        let y = conv.forward(&x, true);
        let _ = conv.backward(&y);
        let eps = 1e-3f32;
        let wi = 3;
        let orig = conv.weight[wi];
        conv.weight[wi] = orig + eps;
        let lp: f32 = conv
            .forward(&x, false)
            .data
            .iter()
            .map(|v| v * v / 2.0)
            .sum();
        conv.weight[wi] = orig - eps;
        let lm: f32 = conv
            .forward(&x, false)
            .data
            .iter()
            .map(|v| v * v / 2.0)
            .sum();
        conv.weight[wi] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - conv.grad_weight[wi]).abs() < 2e-2 * numeric.abs().max(1.0));
    }

    #[test]
    fn dilated_forward_matches_reference() {
        for dilation in [2usize, 3, 4] {
            let mut conv = Conv1d::dilated(2, 3, 3, dilation, 13);
            let x = sample_input(2, 2, 24);
            let fast = conv.forward(&x, false);
            let slow = reference_forward(&conv, &x);
            for (a, b) in fast.data.iter().zip(slow.data.iter()) {
                assert!((a - b).abs() < 1e-4, "dilation {dilation}: {a} vs {b}");
            }
            assert_eq!(fast.shape(), (2, 3, 24));
        }
    }

    #[test]
    fn dilated_gradient_check() {
        let mut conv = Conv1d::dilated(1, 2, 3, 4, 21);
        let x = sample_input(1, 1, 20);
        let y = conv.forward(&x, true);
        let grad_in = conv.backward(&y);
        let eps = 1e-3f32;
        for wi in 0..conv.weight.len() {
            let orig = conv.weight[wi];
            conv.weight[wi] = orig + eps;
            let lp: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.weight[wi] = orig - eps;
            let lm: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.weight[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - conv.grad_weight[wi]).abs() < 2e-2 * numeric.abs().max(1.0),
                "dilated w[{wi}]"
            );
        }
        let mut x2 = x.clone();
        for xi in [0usize, 7, 19] {
            let orig = x2.data[xi];
            x2.data[xi] = orig + eps;
            let lp: f32 = conv
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x2.data[xi] = orig - eps;
            let lm: f32 = conv
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x2.data[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in.data[xi]).abs() < 2e-2 * numeric.abs().max(1.0),
                "dilated x[{xi}]"
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires forward")]
    fn backward_without_forward_panics() {
        let mut conv = Conv1d::new(1, 1, 3, 0);
        let g = Tensor::zeros(1, 1, 4);
        let _ = conv.backward(&g);
    }

    #[test]
    fn visit_params_reaches_everything() {
        let mut conv = Conv1d::new(2, 3, 5, 1);
        use crate::VisitParams;
        assert_eq!(conv.param_count(), 2 * 3 * 5 + 3);
        conv.grad_weight.fill(1.0);
        conv.zero_grad();
        assert!(conv.grad_weight.iter().all(|&g| g == 0.0));
    }
}
