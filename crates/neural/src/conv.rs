//! Same-padded 1D convolution with full backward pass.
//!
//! This is the hot path of the entire reproduction: every model in the
//! benchmark is convolutional. The implementation keeps the inner loops on
//! contiguous slices (input rows and kernel rows) so the compiler can
//! vectorize, and allocates nothing during forward/backward except the
//! output/gradient tensors themselves.
//!
//! Shape convention: input `[B, C_in, L]` → output `[B, C_out, L]`
//! (stride 1, zero padding `k/2`; for even `k` the output is anchored so
//! position `t` sees `x[t - k/2 .. t + (k - 1)/2]`).

use crate::tensor::Tensor;
use crate::VisitParams;
use serde::{Deserialize, Serialize};

/// A trainable 1D convolution layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Dilation factor (1 = dense). The effective receptive span is
    /// `(kernel - 1) * dilation + 1`; padding keeps the output length equal
    /// to the input length. Dilated stacks power the TCN baseline.
    pub dilation: usize,
    /// Weights `[out, in, k]`, row-major.
    pub weight: Vec<f32>,
    /// Per-output-channel bias.
    pub bias: Vec<f32>,
    /// Weight gradients (same layout as `weight`). Serialized alongside the
    /// weights so a deserialized model has correctly sized buffers.
    pub grad_weight: Vec<f32>,
    /// Bias gradients.
    pub grad_bias: Vec<f32>,
    /// Cached input from the last forward (needed by backward).
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// Create a layer with He-normal weights (seeded).
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Conv1d {
        Conv1d::dilated(in_channels, out_channels, kernel, 1, seed)
    }

    /// Create a dilated layer (dilation 1 gives a dense convolution).
    pub fn dilated(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        dilation: usize,
        seed: u64,
    ) -> Conv1d {
        assert!(kernel >= 1, "kernel must be at least 1");
        assert!(dilation >= 1, "dilation must be at least 1");
        let mut weight = vec![0.0; out_channels * in_channels * kernel];
        crate::init::he_normal(seed, in_channels * kernel, &mut weight);
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            dilation,
            grad_weight: vec![0.0; weight.len()],
            grad_bias: vec![0.0; out_channels],
            weight,
            bias: vec![0.0; out_channels],
            cached_input: None,
        }
    }

    /// Left padding implied by "same" output length.
    #[inline]
    fn pad_left(&self) -> usize {
        (self.kernel - 1) * self.dilation / 2
    }

    #[cfg_attr(not(test), allow(dead_code))] // used by the reference impl in tests
    #[inline]
    fn w_row(&self, oc: usize, ic: usize) -> &[f32] {
        let start = (oc * self.in_channels + ic) * self.kernel;
        &self.weight[start..start + self.kernel]
    }

    /// Forward pass. In training mode the input is cached for backward.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.infer(x);
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    /// Pure inference forward (no caching, `&self`) — used by ensembles that
    /// must stay shareable at prediction time.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.channels, self.in_channels, "conv input channel mismatch");
        let (b, _, l) = x.shape();
        let mut y = Tensor::zeros(b, self.out_channels, l);
        let pad = self.pad_left() as isize;
        let dilation = self.dilation as isize;
        for bi in 0..b {
            for oc in 0..self.out_channels {
                let bias = self.bias[oc];
                // Initialize with bias, then accumulate channel by channel.
                let y_row_start = (bi * self.out_channels + oc) * l;
                y.data[y_row_start..y_row_start + l].fill(bias);
                for ic in 0..self.in_channels {
                    let w = {
                        let start = (oc * self.in_channels + ic) * self.kernel;
                        &self.weight[start..start + self.kernel]
                    };
                    let x_row = x.row(bi, ic);
                    let y_row = &mut y.data[y_row_start..y_row_start + l];
                    accumulate_conv(y_row, x_row, w, pad, dilation);
                }
            }
        }
        y
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    /// Panics if called without a preceding training-mode forward.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Conv1d::backward requires forward(train=true) first");
        assert_eq!(grad_out.channels, self.out_channels);
        assert_eq!(grad_out.batch, x.batch);
        assert_eq!(grad_out.len, x.len);
        let (b, _, l) = x.shape();
        let pad = self.pad_left() as isize;
        let dilation = self.dilation as isize;
        let mut grad_in = x.zeros_like();
        for bi in 0..b {
            for oc in 0..self.out_channels {
                let g_row = grad_out.row(bi, oc);
                self.grad_bias[oc] += g_row.iter().sum::<f32>();
                for ic in 0..self.in_channels {
                    let x_row = x.row(bi, ic);
                    // dL/dw[oc][ic][k] = sum_t g[t] * x[t + k - pad]
                    let gw = {
                        let start = (oc * self.in_channels + ic) * self.kernel;
                        &mut self.grad_weight[start..start + self.kernel]
                    };
                    for (k, gwk) in gw.iter_mut().enumerate() {
                        let shift = k as isize * dilation - pad;
                        let (t0, t1) = overlap(l, shift);
                        let mut acc = 0.0f32;
                        for t in t0..t1 {
                            acc += g_row[t] * x_row[(t as isize + shift) as usize];
                        }
                        *gwk += acc;
                    }
                    // dL/dx[s] = sum_k g[s - k + pad] * w[k]
                    let w = {
                        let start = (oc * self.in_channels + ic) * self.kernel;
                        &self.weight[start..start + self.kernel]
                    };
                    let gi_start = (bi * self.in_channels + ic) * l;
                    let gi_row = &mut grad_in.data[gi_start..gi_start + l];
                    for (k, &wk) in w.iter().enumerate() {
                        // y[t] reads x[t + k*d - pad], so g[t] scatters into
                        // x[t + k*d - pad]: the same shift as the forward read.
                        let shift = k as isize * dilation - pad;
                        let (t0, t1) = overlap(l, shift);
                        for t in t0..t1 {
                            gi_row[(t as isize + shift) as usize] += g_row[t] * wk;
                        }
                    }
                }
            }
        }
        grad_in
    }
}

/// Accumulate `y[t] += Σ_k w[k] * x[t + k - pad]` with zero padding, keeping
/// the inner loop over a contiguous valid range (no per-element bounds
/// branch).
#[inline]
fn accumulate_conv(y: &mut [f32], x: &[f32], w: &[f32], pad: isize, dilation: isize) {
    let l = y.len();
    for (k, &wk) in w.iter().enumerate() {
        if wk == 0.0 {
            continue;
        }
        let shift = k as isize * dilation - pad;
        let (t0, t1) = overlap(l, shift);
        // y[t] += wk * x[t + shift] for t in [t0, t1)
        let x_off = (t0 as isize + shift) as usize;
        let n = t1 - t0;
        let ys = &mut y[t0..t1];
        let xs = &x[x_off..x_off + n];
        for (yv, xv) in ys.iter_mut().zip(xs) {
            *yv += wk * xv;
        }
    }
}

/// Valid `t` range such that `0 <= t + shift < l`.
#[inline]
fn overlap(l: usize, shift: isize) -> (usize, usize) {
    let t0 = (-shift).max(0) as usize;
    let t1 = ((l as isize - shift).min(l as isize)).max(0) as usize;
    (t0.min(t1), t1)
}

impl VisitParams for Conv1d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference convolution for cross-checking.
    fn reference_forward(conv: &Conv1d, x: &Tensor) -> Tensor {
        let (b, _, l) = x.shape();
        let pad = ((conv.kernel - 1) * conv.dilation / 2) as isize;
        let mut y = Tensor::zeros(b, conv.out_channels, l);
        for bi in 0..b {
            for oc in 0..conv.out_channels {
                for t in 0..l {
                    let mut acc = conv.bias[oc];
                    for ic in 0..conv.in_channels {
                        for k in 0..conv.kernel {
                            let s = t as isize + (k * conv.dilation) as isize - pad;
                            if s >= 0 && (s as usize) < l {
                                acc += conv.w_row(oc, ic)[k] * x.get(bi, ic, s as usize);
                            }
                        }
                    }
                    *y.get_mut(bi, oc, t) = acc;
                }
            }
        }
        y
    }

    fn sample_input(b: usize, c: usize, l: usize) -> Tensor {
        let data: Vec<f32> = (0..b * c * l)
            .map(|i| ((i * 37 % 23) as f32 - 11.0) / 7.0)
            .collect();
        Tensor::from_data(b, c, l, data)
    }

    #[test]
    fn forward_matches_reference() {
        for kernel in [1usize, 2, 3, 5, 7, 15] {
            let mut conv = Conv1d::new(3, 4, kernel, 11);
            let x = sample_input(2, 3, 20);
            let fast = conv.forward(&x, false);
            let slow = reference_forward(&conv, &x);
            for (a, b) in fast.data.iter().zip(slow.data.iter()) {
                assert!((a - b).abs() < 1e-4, "kernel {kernel}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv1d::new(1, 1, 1, 0);
        conv.weight[0] = 1.0;
        conv.bias[0] = 0.0;
        let x = sample_input(1, 1, 10);
        let y = conv.forward(&x, false);
        assert_eq!(y.data, x.data);
    }

    #[test]
    fn output_preserves_length() {
        for kernel in [2usize, 4, 9] {
            let mut conv = Conv1d::new(2, 5, kernel, 3);
            let x = sample_input(3, 2, 17);
            let y = conv.forward(&x, false);
            assert_eq!(y.shape(), (3, 5, 17));
        }
    }

    /// Finite-difference gradient check for weights, bias and input.
    #[test]
    fn gradient_check() {
        let mut conv = Conv1d::new(2, 3, 5, 42);
        let x = sample_input(2, 2, 9);
        // Loss = sum of squares of output / 2 -> dL/dy = y.
        let y = conv.forward(&x, true);
        let grad_in = conv.backward(&y);
        let eps = 1e-3f32;

        // Weight gradients.
        for wi in [0usize, 7, 13, conv.weight.len() - 1] {
            let orig = conv.weight[wi];
            conv.weight[wi] = orig + eps;
            let lp: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.weight[wi] = orig - eps;
            let lm: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.weight[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = conv.grad_weight[wi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(1.0),
                "w[{wi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Bias gradients.
        for bi in 0..conv.bias.len() {
            let orig = conv.bias[bi];
            conv.bias[bi] = orig + eps;
            let lp: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.bias[bi] = orig - eps;
            let lm: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.bias[bi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = conv.grad_bias[bi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(1.0),
                "b[{bi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Input gradients.
        let mut x2 = x.clone();
        for xi in [0usize, 5, 11, x.data.len() - 1] {
            let orig = x2.data[xi];
            x2.data[xi] = orig + eps;
            let lp: f32 = conv
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x2.data[xi] = orig - eps;
            let lm: f32 = conv
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x2.data[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.data[xi];
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(1.0),
                "x[{xi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn even_kernel_gradient_check() {
        let mut conv = Conv1d::new(1, 2, 4, 9);
        let x = sample_input(1, 1, 8);
        let y = conv.forward(&x, true);
        let _ = conv.backward(&y);
        let eps = 1e-3f32;
        let wi = 3;
        let orig = conv.weight[wi];
        conv.weight[wi] = orig + eps;
        let lp: f32 = conv
            .forward(&x, false)
            .data
            .iter()
            .map(|v| v * v / 2.0)
            .sum();
        conv.weight[wi] = orig - eps;
        let lm: f32 = conv
            .forward(&x, false)
            .data
            .iter()
            .map(|v| v * v / 2.0)
            .sum();
        conv.weight[wi] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - conv.grad_weight[wi]).abs() < 2e-2 * numeric.abs().max(1.0));
    }

    #[test]
    fn dilated_forward_matches_reference() {
        for dilation in [2usize, 3, 4] {
            let mut conv = Conv1d::dilated(2, 3, 3, dilation, 13);
            let x = sample_input(2, 2, 24);
            let fast = conv.forward(&x, false);
            let slow = reference_forward(&conv, &x);
            for (a, b) in fast.data.iter().zip(slow.data.iter()) {
                assert!((a - b).abs() < 1e-4, "dilation {dilation}: {a} vs {b}");
            }
            assert_eq!(fast.shape(), (2, 3, 24));
        }
    }

    #[test]
    fn dilated_gradient_check() {
        let mut conv = Conv1d::dilated(1, 2, 3, 4, 21);
        let x = sample_input(1, 1, 20);
        let y = conv.forward(&x, true);
        let grad_in = conv.backward(&y);
        let eps = 1e-3f32;
        for wi in 0..conv.weight.len() {
            let orig = conv.weight[wi];
            conv.weight[wi] = orig + eps;
            let lp: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.weight[wi] = orig - eps;
            let lm: f32 = conv
                .forward(&x, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            conv.weight[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - conv.grad_weight[wi]).abs() < 2e-2 * numeric.abs().max(1.0),
                "dilated w[{wi}]"
            );
        }
        let mut x2 = x.clone();
        for xi in [0usize, 7, 19] {
            let orig = x2.data[xi];
            x2.data[xi] = orig + eps;
            let lp: f32 = conv
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x2.data[xi] = orig - eps;
            let lm: f32 = conv
                .forward(&x2, false)
                .data
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x2.data[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_in.data[xi]).abs() < 2e-2 * numeric.abs().max(1.0),
                "dilated x[{xi}]"
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires forward")]
    fn backward_without_forward_panics() {
        let mut conv = Conv1d::new(1, 1, 3, 0);
        let g = Tensor::zeros(1, 1, 4);
        let _ = conv.backward(&g);
    }

    #[test]
    fn visit_params_reaches_everything() {
        let mut conv = Conv1d::new(2, 3, 5, 1);
        use crate::VisitParams;
        assert_eq!(conv.param_count(), 2 * 3 * 5 + 3);
        conv.grad_weight.fill(1.0);
        conv.zero_grad();
        assert!(conv.grad_weight.iter().all(|&g| g == 0.0));
    }
}
