//! Reusable training-loop buffers: the zero-alloc workspace.
//!
//! The training hot path used to re-allocate on every step: each batch
//! cloned its windows into a fresh `Vec<Vec<f32>>`, packed them with
//! `Tensor::from_windows`, and every layer allocated scratch buffers for
//! its partial gradients. This module centralizes the reuse story:
//!
//! - [`Workspace`] owns the input-gather tensor and copies window rows
//!   straight from the corpus into it, so a training step performs no
//!   input allocation after the first batch.
//! - [`take_buf`]/[`recycle_buf`] run a small thread-local pool of `f32`
//!   scratch buffers for per-micro-batch gradient partials (conv backward
//!   turns over two of these per chunk per step).
//! - [`MICRO_ROWS`] is the fixed micro-batch height shared by every layer
//!   that splits a batch for the worker team. It is a constant — never
//!   derived from `ds_par::threads()` — which is what keeps the gradient
//!   summation tree, and therefore the trained weights, bit-identical at
//!   any `DS_PAR_THREADS`.
//!
//! The pool is thread-local on purpose: recycling through a shared locked
//! pool would serialize the workers it exists to feed. On the caller
//! thread (the entire sequential path, and every nested call suppressed
//! inside a ds-par worker) buffers persist across steps; scoped worker
//! threads die at the end of each dispatch and take their pools with
//! them, which costs nothing relative to the pre-pool behavior of
//! allocating fresh buffers in every closure.

use crate::tensor::Tensor;
use std::cell::{Cell, RefCell};

/// Fixed micro-batch height (batch rows per worker task) used by the
/// layer kernels when they split a batch across the team. One value for
/// every layer so the per-slot gradient partials line up with the chunk
/// boundaries regardless of which layer produced them.
pub const MICRO_ROWS: usize = 4;

/// Reused buffers for a training run (one per trained network).
#[derive(Debug)]
pub struct Workspace {
    input: Tensor,
}

impl Default for Workspace {
    fn default() -> Workspace {
        Workspace::new()
    }
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Workspace {
        Workspace {
            input: Tensor::zeros(0, 1, 0),
        }
    }

    /// Gather `windows[i]` for each `i` in `indices` into the reused
    /// `[indices.len(), 1, L]` input tensor and return it. Replaces the
    /// per-batch `windows[i].clone()` + `Tensor::from_windows` pattern:
    /// after the first call the gather is a straight copy into capacity
    /// already owned by the workspace.
    ///
    /// # Panics
    /// Panics if `indices` is empty or the selected windows have
    /// inconsistent lengths.
    pub fn gather(&mut self, windows: &[Vec<f32>], indices: &[usize]) -> &Tensor {
        assert!(!indices.is_empty(), "gather requires at least one window");
        let len = windows[indices[0]].len();
        self.input.data.clear();
        self.input.data.reserve(indices.len() * len);
        for &i in indices {
            assert_eq!(windows[i].len(), len, "window length mismatch");
            self.input.data.extend_from_slice(&windows[i]);
        }
        self.input.batch = indices.len();
        self.input.channels = 1;
        self.input.len = len;
        &self.input
    }
}

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    static REUSE: Cell<bool> = const { Cell::new(true) };
}

/// Enable or disable buffer reuse on the calling thread.
///
/// With reuse off, [`take_buf`] always allocates fresh, [`recycle_buf`]
/// drops, and the layers skip their cross-step cache/mask reuse — i.e.
/// every step pays the historical per-call allocation profile of the
/// pre-workspace trainer. Numerics are unaffected (reused buffers are
/// (re)initialized exactly like fresh ones), so the perf harness uses
/// this to time the legacy allocation behavior against the zero-alloc
/// path while asserting both produce bit-identical weights.
pub fn set_buffer_reuse(on: bool) {
    REUSE.with(|r| r.set(on));
}

/// Whether buffer reuse is enabled on the calling thread (the default).
pub fn buffer_reuse() -> bool {
    REUSE.with(|r| r.get())
}

/// Buffers kept per thread; beyond this, recycled buffers are dropped.
const MAX_POOLED: usize = 64;

/// Take a zero-filled `f32` buffer of length `len`, reusing a pooled
/// allocation when one with enough capacity exists.
pub fn take_buf(len: usize) -> Vec<f32> {
    if !buffer_reuse() {
        return vec![0.0; len];
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        match pool.iter().position(|b| b.capacity() >= len) {
            Some(at) => {
                let mut buf = pool.swap_remove(at);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    })
}

/// Return a buffer to the calling thread's pool for later [`take_buf`]s.
pub fn recycle_buf(buf: Vec<f32>) {
    if buf.capacity() == 0 || !buffer_reuse() {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_matches_from_windows() {
        let windows = vec![
            vec![1.0f32, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ];
        let mut ws = Workspace::new();
        let x = ws.gather(&windows, &[2, 0]);
        let expected = Tensor::from_windows(&[windows[2].clone(), windows[0].clone()]);
        assert_eq!(x.shape(), expected.shape());
        assert_eq!(x.data, expected.data);
    }

    #[test]
    fn gather_reuses_capacity_across_batches() {
        let windows = vec![vec![0.5f32; 64]; 8];
        let mut ws = Workspace::new();
        ws.gather(&windows, &[0, 1, 2, 3, 4, 5, 6, 7]);
        let cap = ws.input.data.capacity();
        let ptr = ws.input.data.as_ptr();
        // A smaller follow-up batch must not re-allocate.
        let x = ws.gather(&windows, &[3, 1]);
        assert_eq!(x.shape(), (2, 1, 64));
        assert_eq!(ws.input.data.capacity(), cap);
        assert_eq!(ws.input.data.as_ptr(), ptr);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn gather_rejects_ragged_windows() {
        let windows = vec![vec![0.0f32; 4], vec![0.0f32; 5]];
        Workspace::new().gather(&windows, &[0, 1]);
    }

    #[test]
    fn disabling_reuse_bypasses_the_pool() {
        let a = take_buf(24);
        let ptr = a.as_ptr();
        recycle_buf(a);
        set_buffer_reuse(false);
        assert!(!buffer_reuse());
        // Fresh allocation, still zeroed; recycling becomes a drop.
        let b = take_buf(24);
        assert_ne!(b.as_ptr(), ptr);
        assert!(b.iter().all(|&v| v == 0.0));
        recycle_buf(b);
        set_buffer_reuse(true);
        // The buffer pooled before the toggle is still there.
        let c = take_buf(24);
        assert_eq!(c.as_ptr(), ptr);
        recycle_buf(c);
    }

    #[test]
    fn pool_round_trips_buffers() {
        let a = take_buf(32);
        assert_eq!(a.len(), 32);
        assert!(a.iter().all(|&v| v == 0.0));
        let ptr = a.as_ptr();
        recycle_buf(a);
        // Same thread, enough capacity: the pooled allocation comes back,
        // zeroed even after being dirtied.
        let mut b = take_buf(16);
        assert_eq!(b.as_ptr(), ptr);
        assert!(b.iter().all(|&v| v == 0.0));
        b.fill(7.0);
        recycle_buf(b);
        let c = take_buf(16);
        assert!(c.iter().all(|&v| v == 0.0));
    }
}
