//! Property tests for the SIMD dispatch layer: the vectorized frozen
//! conv kernel must agree with its scalar determinism twin everywhere,
//! and the int8 quantization scales must behave like calibrated
//! per-channel ranges.
//!
//! Coverage axes (satellite of the SIMD/quantization change):
//! - kernel widths `{1, 3, 5, 7, 9, 15}` — degenerate, small-odd, and the
//!   paper ensemble's sizes;
//! - window lengths `1..80` against spans up to 15, so all-edge windows
//!   (`l < span`), mixed edge/interior, and interior-dominated windows
//!   all occur;
//! - batch sizes `{1, 4, 17}` — singleton, the 4-row register block, and
//!   a remainder-row count.
//!
//! The f32 comparison is 1e-6-relative (FMA's fused rounding is the only
//! permitted divergence); the int8 path must be **bit-identical** across
//! dispatches because integer accumulation is associative.

use ds_neural::batchnorm::BatchNorm1d;
use ds_neural::conv::Conv1d;
use ds_neural::frozen::FrozenConv;
use ds_neural::quant::{quantize_weights_per_channel, QuantizedResNet};
use ds_neural::simd::{self, SimdMode};
use ds_neural::tensor::Tensor;
use ds_neural::{FrozenResNet, InferenceArena, ResNet, ResNetConfig};
use proptest::prelude::*;
use std::sync::Mutex;

/// `simd::set_mode` is process-global; tests that toggle it serialize.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// A folded conv with BatchNorm statistics moved off their init values,
/// so the folded weights are a non-trivial function of both layers.
fn folded_conv(in_ch: usize, out_ch: usize, kernel: usize, seed: u64) -> FrozenConv {
    let conv = Conv1d::new(in_ch, out_ch, kernel, seed);
    let mut bn = BatchNorm1d::new(out_ch);
    for oc in 0..out_ch {
        bn.running_mean[oc] = (oc as f32 * 0.37).sin() * 0.5;
        bn.running_var[oc] = 1.0 + (oc as f32 * 0.61).cos().abs();
        bn.gamma[oc] = 1.0 + (oc as f32 * 0.23).sin() * 0.3;
        bn.beta[oc] = (oc as f32 * 0.41).cos() * 0.2;
    }
    FrozenConv::fold(&conv, &bn)
}

/// Run `conv` once under each dispatch, returning the two outputs.
fn both_dispatches(
    conv: &FrozenConv,
    x: &[f32],
    batch: usize,
    l: usize,
    out_ch: usize,
    relu: bool,
) -> (Vec<f32>, Vec<f32>) {
    let mut y_scalar = vec![0.0f32; batch * out_ch * l];
    let mut y_simd = vec![0.0f32; batch * out_ch * l];
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    simd::set_mode(Some(SimdMode::Scalar));
    conv.infer_into(x, batch, l, &mut y_scalar, relu);
    // On hosts without AVX2 this falls back to scalar and the comparison
    // is trivially exact — the property is still vacuously safe there.
    simd::set_mode(Some(SimdMode::Avx2));
    conv.infer_into(x, batch, l, &mut y_simd, relu);
    simd::set_mode(None);
    (y_scalar, y_simd)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The vectorized f32 kernel agrees with the scalar twin to
    /// 1e-6-relative at every output position — edges, interior, and
    /// remainder rows alike.
    #[test]
    fn f32_kernel_matches_scalar_twin(
        kernel in prop::sample::select(vec![1usize, 3, 5, 7, 9, 15]),
        batch in prop::sample::select(vec![1usize, 4, 17]),
        in_ch in 1usize..4,
        out_ch in 1usize..6,
        l in 1usize..80,
        relu in prop::sample::select(vec![true, false]),
        seed in 0u64..1_000,
        values in prop::collection::vec(-3.0f32..3.0, 16..64),
    ) {
        let conv = folded_conv(in_ch, out_ch, kernel, seed);
        let x: Vec<f32> = (0..batch * in_ch * l)
            .map(|i| {
                values[i % values.len()]
                    + ((i / values.len()) as f32 * 0.13).sin() * 0.01
            })
            .collect();
        let (y_scalar, y_simd) = both_dispatches(&conv, &x, batch, l, out_ch, relu);
        for (i, (a, b)) in y_scalar.iter().zip(&y_simd).enumerate() {
            let tol = 1e-6 * a.abs().max(b.abs()).max(1.0);
            prop_assert!(
                (a - b).abs() <= tol,
                "position {}: scalar {} vs simd {} (k={}, b={}, l={})",
                i, a, b, kernel, batch, l
            );
        }
    }

    /// Per-output-channel int8 scales: the round-trip error of every
    /// weight is bounded by half a quantization step of its own channel,
    /// and scales are monotone in the channel's max-abs range (a larger
    /// channel never gets a finer step than a smaller one).
    #[test]
    fn per_channel_scales_are_monotone_and_bound_roundtrip(
        out_ch in 1usize..8,
        kernel in 1usize..16,
        in_ch in 1usize..4,
        values in prop::collection::vec(-50.0f32..50.0, 8..64),
    ) {
        let per = in_ch * kernel;
        let weight: Vec<f32> = (0..out_ch * per)
            .map(|i| values[i % values.len()] * (1.0 + i as f32 * 0.01))
            .collect();
        let (wq, scales) = quantize_weights_per_channel(&weight, out_ch, per);
        prop_assert_eq!(wq.len(), weight.len());
        prop_assert_eq!(scales.len(), out_ch);
        for oc in 0..out_ch {
            prop_assert!(scales[oc] > 0.0);
            for j in 0..per {
                let w = weight[oc * per + j];
                let deq = wq[oc * per + j] as f32 * scales[oc];
                prop_assert!(
                    (w - deq).abs() <= scales[oc] * 0.5 + 1e-6,
                    "oc {} j {}: {} round-tripped to {} (scale {})",
                    oc, j, w, deq, scales[oc]
                );
            }
        }
        let maxabs: Vec<f32> = (0..out_ch)
            .map(|oc| {
                weight[oc * per..(oc + 1) * per]
                    .iter()
                    .fold(0.0f32, |m, &v| m.max(v.abs()))
            })
            .collect();
        for a in 0..out_ch {
            for b in 0..out_ch {
                if maxabs[a] < maxabs[b] {
                    prop_assert!(
                        scales[a] <= scales[b],
                        "channel {} (maxabs {}) got scale {} > channel {} (maxabs {}) scale {}",
                        a, maxabs[a], scales[a], b, maxabs[b], scales[b]
                    );
                }
            }
        }
    }
}

proptest! {
    // Each case folds, calibrates, and quantizes a whole network — fewer
    // cases keep the suite fast while still varying seeds and batches.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The int8 serving path is **bit-identical** across dispatches:
    /// integer accumulation is associative, and the dequant epilogues
    /// share one rounding order by construction.
    #[test]
    fn int8_predictions_are_dispatch_invariant(
        seed in 0u64..50,
        batch in prop::sample::select(vec![1usize, 3]),
        kernel in prop::sample::select(vec![5usize, 9]),
    ) {
        const WINDOW: usize = 48;
        let net = ResNet::new(ResNetConfig {
            in_channels: 1,
            channels: vec![4, 8],
            kernel,
            num_classes: 2,
            seed,
        });
        let frozen = FrozenResNet::freeze(&net);
        let calib_data: Vec<f32> = (0..4 * WINDOW)
            .map(|i| ((i as f32 * 0.21).sin() * 1.5) + ((i % 13) as f32 * 0.05))
            .collect();
        let calib = Tensor::from_data(4, 1, WINDOW, calib_data);
        let quant = QuantizedResNet::quantize(&frozen, &calib);
        let x_data: Vec<f32> = (0..batch * WINDOW)
            .map(|i| ((i as f32 * 0.17).cos() * 1.2) + ((i % 7) as f32 * 0.1))
            .collect();
        let x = Tensor::from_data(batch, 1, WINDOW, x_data);

        let mut arena = InferenceArena::new();
        let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        simd::set_mode(Some(SimdMode::Scalar));
        quant.predict_into(&x, &mut arena);
        let scalar_probs: Vec<u32> = arena.probs().iter().map(|p| p.to_bits()).collect();
        simd::set_mode(Some(SimdMode::Avx2));
        quant.predict_into(&x, &mut arena);
        let simd_probs: Vec<u32> = arena.probs().iter().map(|p| p.to_bits()).collect();
        simd::set_mode(None);
        prop_assert_eq!(scalar_probs, simd_probs);
    }
}
