//! ds-serve: a zero-dependency HTTP/1.1 serving front for frozen CamAL
//! plans with **cross-request micro-batching**.
//!
//! PR 7–8 made the single-request path fast (frozen + SIMD + int8,
//! streaming reuse); this crate serves it to a fleet. The server is plain
//! `std`: a `TcpListener` accept loop, one detached thread per live
//! connection (bounded), and a fixed pool of inference workers — no async
//! runtime, mirroring the hand-rolled ds-par worker-team style.
//!
//! ## The perf core: the micro-batch collector
//!
//! A lone HTTP request would pay a one-window `localize_batch_into` call,
//! wasting the [`ds_camal`] arena's `WINDOW_CHUNK = 16` batch slots the
//! frozen kernels were shaped for. Instead, every `detect`/`localize`
//! request is queued into a [collector](batch) keyed by
//! [`PlanKey`](registry::PlanKey) = (preset, appliance, window length,
//! precision). A batch dispatches when it **fills** (16 windows) or when
//! its **deadline** expires (`max_wait`, default 2 ms) — p99 latency is
//! traded explicitly against req/s instead of every request paying an
//! under-filled kernel call. Batching cannot change results: windows in a
//! batch are computed independently (per-window z-norm, per-window CAM),
//! and a `PlanKey` fixes the window length, so batches are always
//! homogeneous. The loadtest oracle and `tests/serve_concurrency.rs`
//! verify zero decision flips against direct per-request calls.
//!
//! ## Plans, arenas, allocations
//!
//! Models register once into a [`registry::ModelRegistry`]; the first
//! request for a `PlanKey` freezes the plan exactly once (OnceLock), warms
//! its arena at the full chunk shape, and each inference worker clones the
//! warm template — one arena per worker, no locks on the hot path, and
//! zero steady-state heap allocations, asserted under load via the ds-obs
//! allocation counter.
//!
//! ## Backpressure
//!
//! Admission control is typed and bounded: the accept loop caps live
//! connections, the collector caps queued jobs (`queue_depth`), and every
//! rejection or model error maps to a JSON error body with a meaningful
//! status — validation 400, unknown plan 404, stream-order conflicts 409,
//! overload 503. ds-obs wiring: `serve.request_latency_s` histograms per
//! endpoint against the 50 ms p99 SLO budget, `serve.batch_fill`
//! fill-ratio histogram, and a queue-depth gauge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

mod api;
mod batch;
pub mod client;
pub mod http;
pub mod registry;
mod server;

pub use client::Client;
pub use registry::{ModelRegistry, PlanError, PlanKey};
pub use server::{Server, ServerHandle};

/// Tuning knobs for one [`Server`]. `Default` is sized for a small box:
/// worker count follows the ds-par thread resolution (`DS_PAR_THREADS`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Inference worker threads (each owns a clone of every plan it
    /// serves). Defaults to `ds_par::threads()`.
    pub workers: usize,
    /// Micro-batch deadline: a partially filled batch dispatches at most
    /// this long after its first window arrived.
    pub max_wait: Duration,
    /// Windows per dispatched batch; capped at the arena chunk
    /// ([`ds_camal::WINDOW_CHUNK`]) — larger values buy nothing.
    pub batch_windows: usize,
    /// Maximum queued jobs (windows + series) across all plans before the
    /// collector rejects with 503.
    pub queue_depth: usize,
    /// Maximum simultaneously live connections; excess accepts get an
    /// immediate 503 and a close.
    pub max_connections: usize,
    /// Request body size cap (bytes); larger bodies get 413.
    pub max_body_bytes: usize,
    /// Maximum live streaming push sessions (distinct meter × plan).
    pub max_sessions: usize,
    /// Ring capacity of each push session, in windows.
    pub stream_window_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: ds_par::threads(),
            max_wait: Duration::from_millis(2),
            batch_windows: ds_camal::WINDOW_CHUNK,
            queue_depth: 256,
            max_connections: 64,
            max_body_bytes: 8 * 1024 * 1024,
            max_sessions: 256,
            stream_window_capacity: 64,
        }
    }
}

/// Live counters a running server exposes on `/api/v1/stats` and that the
/// loadtest asserts against. All plain atomics so they work (and cost
/// nearly nothing) whether or not ds-obs recording is enabled.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// HTTP requests answered (any status).
    pub requests: AtomicU64,
    /// 503 responses (queue full, connection cap, session cap, shutdown).
    pub rejected: AtomicU64,
    /// 4xx responses other than 503 (validation, unknown plan, conflicts).
    pub client_errors: AtomicU64,
    /// Micro-batches dispatched to workers.
    pub batches: AtomicU64,
    /// Windows carried by those batches (mean fill = windows / (batches ×
    /// batch_windows)).
    pub batched_windows: AtomicU64,
    /// Batches dispatched because they filled all slots.
    pub full_batches: AtomicU64,
    /// Batches dispatched because their deadline expired first.
    pub deadline_batches: AtomicU64,
    /// Heap allocations observed *inside* batched kernel calls after plan
    /// warmup. The contract is zero; the loadtest asserts it.
    pub steady_allocs: AtomicU64,
}

impl ServerStats {
    /// Mean batch fill ratio in `[0, 1]` over the server's lifetime.
    pub fn mean_batch_fill(&self, batch_windows: usize) -> f64 {
        let batches = self.batches.load(Ordering::Relaxed);
        if batches == 0 || batch_windows == 0 {
            return 0.0;
        }
        let windows = self.batched_windows.load(Ordering::Relaxed);
        windows as f64 / (batches as f64 * batch_windows as f64)
    }
}
