//! The server proper: accept loop, bounded connection threads, and the
//! inference worker pool that drains the micro-batch collector.
//!
//! Threading model (all `std`, no async runtime):
//!
//! - **accept thread** — owns the listener; enforces `max_connections`
//!   (over the cap: immediate 503 + close, counted as a rejection).
//! - **connection threads** — one per live connection, detached; parse
//!   requests, submit jobs, block on the reply channel, write responses.
//!   A short socket read timeout doubles as the shutdown poll while idle.
//! - **inference workers** — fixed pool of `config.workers` threads; each
//!   owns *clones* of the frozen plans it has served (one arena per
//!   worker, no locks on the hot path) and processes one batch or series
//!   job at a time from the [`Collector`](crate::batch::Collector).

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ds_camal::{FrozenCamal, StreamingCamal};

use crate::api;
use crate::batch::{Collector, JobError, JobKind, Work};
use crate::http::{self, HttpError, ReadOutcome};
use crate::registry::{ModelRegistry, PlanKey};
use crate::{ServeConfig, ServerStats};

/// Live streaming push sessions, keyed by (meter id, plan).
pub(crate) type SessionMap = BTreeMap<(String, PlanKey), Arc<Mutex<StreamingCamal>>>;

/// State shared by every thread of one server.
pub(crate) struct Shared {
    pub config: ServeConfig,
    pub registry: Arc<ModelRegistry>,
    pub collector: Collector,
    pub stats: Arc<ServerStats>,
    pub sessions: Mutex<SessionMap>,
    pub shutdown: AtomicBool,
    pub connections: AtomicUsize,
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`].
pub struct Server;

pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and accept loop, and return.
    pub fn start(
        config: ServeConfig,
        registry: Arc<ModelRegistry>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        ds_obs::declare_budget(
            "serve_request_latency",
            "serve.request_latency_s",
            ds_obs::Quantile::P99,
            0.050,
        );
        let collector = Collector::new(config.batch_windows, config.max_wait, config.queue_depth);
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            config,
            registry,
            collector,
            stats: Arc::new(ServerStats::default()),
            sessions: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
        });
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = shared.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("ds-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("ds-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers: worker_handles,
        })
    }
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Windows per micro-batch (for fill-ratio math in harnesses).
    pub fn batch_windows(&self) -> usize {
        self.shared.collector.batch_windows()
    }

    /// Jobs currently queued in the collector.
    pub fn queue_depth(&self) -> usize {
        self.shared.collector.queued()
    }

    /// Stop accepting, drain queued work, join the pool. In-flight
    /// connection threads notice the flag via their read timeout and exit
    /// on their own; we wait briefly for them.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.collector.shutdown();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.shared.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        if shared.connections.load(Ordering::SeqCst) >= shared.config.max_connections {
            shared.stats.requests.fetch_add(1, Ordering::Relaxed);
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = http::write_response(
                &mut stream,
                503,
                &api::error_body("overload", "connection limit reached"),
                false,
            );
            continue;
        }
        shared.connections.fetch_add(1, Ordering::SeqCst);
        let shared = shared.clone();
        let _ = std::thread::Builder::new()
            .name("ds-serve-conn".to_string())
            .spawn(move || {
                handle_connection(&shared, stream);
                shared.connections.fetch_sub(1, Ordering::SeqCst);
            });
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match http::read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Ok(ReadOutcome::Request(request)) => {
                let started = Instant::now();
                let (status, body) = api::handle(shared, &request);
                let stats = &shared.stats;
                stats.requests.fetch_add(1, Ordering::Relaxed);
                if status == 503 {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                } else if (400..500).contains(&status) {
                    stats.client_errors.fetch_add(1, Ordering::Relaxed);
                }
                if ds_obs::enabled() {
                    let secs = started.elapsed().as_secs_f64();
                    ds_obs::observe(
                        "serve.request_latency_s",
                        secs,
                        ds_obs::Buckets::DurationSecs,
                    );
                    ds_obs::observe(
                        api::latency_metric(&request.path),
                        secs,
                        ds_obs::Buckets::DurationSecs,
                    );
                }
                let keep = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
                if http::write_response(&mut writer, status, &body, keep).is_err() || !keep {
                    break;
                }
            }
            Err(HttpError::BodyTooLarge { limit }) => {
                let body = api::error_body(
                    "body_too_large",
                    &format!("request body exceeds the {limit}-byte limit"),
                );
                let _ = http::write_response(&mut writer, 413, &body, false);
                break;
            }
            Err(HttpError::Malformed(msg)) => {
                let _ = http::write_response(
                    &mut writer,
                    400,
                    &api::error_body("malformed", msg),
                    false,
                );
                break;
            }
            Err(HttpError::Io(_)) => break,
        }
    }
}

/// One inference worker: drain the collector until shutdown. Each worker
/// keeps its own plan clones — the arenas inside are written in place on
/// every batch, so sharing them would need a lock; cloning trades a
/// little memory (reported via `arena_bytes`) for a lock-free hot path.
fn worker_loop(shared: &Arc<Shared>) {
    let mut plans: BTreeMap<PlanKey, FrozenCamal> = BTreeMap::new();
    let mut states = Vec::new();
    while let Some(work) = shared.collector.next_work() {
        match work {
            Work::Batch { key, jobs, full } => {
                let stats = &shared.stats;
                stats.batches.fetch_add(1, Ordering::Relaxed);
                stats
                    .batched_windows
                    .fetch_add(jobs.len() as u64, Ordering::Relaxed);
                if full {
                    stats.full_batches.fetch_add(1, Ordering::Relaxed);
                } else {
                    stats.deadline_batches.fetch_add(1, Ordering::Relaxed);
                }
                if ds_obs::enabled() {
                    let fill = jobs.len() as f64 / shared.collector.batch_windows() as f64;
                    ds_obs::observe("serve.batch_fill", fill, ds_obs::Buckets::Unit);
                }
                let Some(plan) = worker_plan(shared, &mut plans, &key, &jobs) else {
                    continue;
                };
                let refs: Vec<&[f32]> = jobs.iter().map(|j| j.window.as_slice()).collect();
                // The zero-steady-state-allocs contract is measured around
                // the kernel call alone: request framing and reply
                // building allocate by design; the inference must not.
                let before = ds_obs::alloc_count();
                let result = plan.try_localize_batch_into(&refs);
                let allocs = ds_obs::alloc_count() - before;
                stats.steady_allocs.fetch_add(allocs, Ordering::Relaxed);
                match result {
                    Ok(batch) => {
                        for (i, job) in jobs.iter().enumerate() {
                            let include_cam =
                                matches!(job.kind, JobKind::Localize { include_cam: true });
                            let with_status = matches!(job.kind, JobKind::Localize { .. });
                            let reply = crate::batch::WindowReply {
                                probability: batch.probability(i),
                                detected: batch.detected(i),
                                members: batch.member_probabilities(i).collect(),
                                status: if with_status {
                                    batch.status(i).to_vec()
                                } else {
                                    Vec::new()
                                },
                                cam: if include_cam {
                                    batch.cam(i).to_vec()
                                } else {
                                    Vec::new()
                                },
                            };
                            let _ = job.tx.send(Ok(reply));
                        }
                    }
                    Err(err) => {
                        for job in &jobs {
                            let _ = job.tx.send(Err(JobError::Camal(err.clone())));
                        }
                    }
                }
            }
            Work::Series(job) => {
                let Some(plan) = worker_plan_series(shared, &mut plans, &job) else {
                    continue;
                };
                plan.predict_status_into(&job.series, job.window, &mut states);
                let _ = job.tx.send(Ok(states.clone()));
            }
        }
    }
}

/// Resolve (or adopt) this worker's clone of the plan for `key`,
/// reporting a per-job error to every requester if the freeze fails.
fn worker_plan<'a>(
    shared: &Arc<Shared>,
    plans: &'a mut BTreeMap<PlanKey, FrozenCamal>,
    key: &PlanKey,
    jobs: &[crate::batch::WindowJob],
) -> Option<&'a mut FrozenCamal> {
    if !plans.contains_key(key) {
        match shared.registry.get_or_freeze(key) {
            Ok(template) => {
                plans.insert(key.clone(), (*template).clone());
            }
            Err(err) => {
                for job in jobs {
                    let _ = job.tx.send(Err(JobError::Plan(err)));
                }
                return None;
            }
        }
    }
    plans.get_mut(key)
}

fn worker_plan_series<'a>(
    shared: &Arc<Shared>,
    plans: &'a mut BTreeMap<PlanKey, FrozenCamal>,
    job: &crate::batch::SeriesJob,
) -> Option<&'a mut FrozenCamal> {
    if !plans.contains_key(&job.key) {
        match shared.registry.get_or_freeze(&job.key) {
            Ok(template) => {
                plans.insert(job.key.clone(), (*template).clone());
            }
            Err(err) => {
                let _ = job.tx.send(Err(JobError::Plan(err)));
                return None;
            }
        }
    }
    plans.get_mut(&job.key)
}
