//! Request routing, JSON parsing/shaping, and the error-to-status map.
//!
//! Every response is JSON. Error bodies are uniform:
//! `{"error": "<message>", "kind": "<machine-readable-kind>"}` with the
//! status carrying the semantics — validation 400, unknown plan 404,
//! stream-order conflicts 409, overload/draining 503.

use std::sync::atomic::Ordering;
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ds_camal::{Backbone, CamalError, Precision, StreamingCamal};
use ds_timeseries::{Status, TimeSeries};
use serde_json::Value;

use crate::batch::{JobError, JobKind, SeriesJob, SubmitError, WindowJob};
use crate::http::Request;
use crate::registry::{PlanError, PlanKey};
use crate::server::Shared;

/// JSON object builder (the vendored serde's object representation).
type Obj = std::collections::BTreeMap<String, Value>;

/// How long a connection thread waits for a worker reply before giving
/// up with a 500. Generous: queue admission already bounds backlog.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Uniform JSON error body.
pub(crate) fn error_body(kind: &str, message: &str) -> String {
    let mut obj = Obj::new();
    obj.insert("error".to_string(), Value::from(message));
    obj.insert("kind".to_string(), Value::from(kind));
    Value::Object(obj).to_string()
}

/// Static per-endpoint latency metric name (ds-obs interns by `&str`,
/// but a stable name keeps cardinality fixed).
pub(crate) fn latency_metric(path: &str) -> &'static str {
    match path {
        "/api/v1/detect" => "serve.detect.latency_s",
        "/api/v1/localize" => "serve.localize.latency_s",
        "/api/v1/status-series" => "serve.status_series.latency_s",
        "/api/v1/push" => "serve.push.latency_s",
        _ => "serve.other.latency_s",
    }
}

/// Route one request to `(status, json body)`.
pub(crate) fn handle(shared: &Arc<Shared>, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"ok\":true}".to_string()),
        ("GET", "/api/v1/stats") => (200, stats_body(shared)),
        ("POST", "/api/v1/detect") => window_endpoint(shared, request, false),
        ("POST", "/api/v1/localize") => window_endpoint(shared, request, true),
        ("POST", "/api/v1/status-series") => series_endpoint(shared, request),
        ("POST", "/api/v1/push") => push_endpoint(shared, request),
        ("GET", _) | ("POST", _) => (404, error_body("not_found", "unknown endpoint")),
        _ => (
            405,
            error_body("method_not_allowed", "only GET and POST are served"),
        ),
    }
}

// ---------------------------------------------------------------- parsing

type ApiError = (u16, String);

fn bad(kind: &str, message: &str) -> ApiError {
    (400, error_body(kind, message))
}

fn parse_body(request: &Request) -> Result<Value, ApiError> {
    let text =
        std::str::from_utf8(&request.body).map_err(|_| bad("malformed", "body is not UTF-8"))?;
    serde_json::parse_value_complete(text).map_err(|_| bad("malformed", "body is not valid JSON"))
}

fn str_field<'v>(body: &'v Value, name: &str) -> Result<&'v str, ApiError> {
    body.get(name)
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing_field", &format!("field '{name}' must be a string")))
}

fn precision_field(body: &Value) -> Result<Precision, ApiError> {
    match body.get("precision") {
        None | Some(Value::Null) => Ok(Precision::F32),
        Some(v) => {
            let label = v
                .as_str()
                .ok_or_else(|| bad("bad_precision", "field 'precision' must be a string"))?;
            Precision::parse(label)
                .ok_or_else(|| bad("bad_precision", "precision must be 'f32' or 'int8'"))
        }
    }
}

fn backbone_field(body: &Value) -> Result<Backbone, ApiError> {
    match body.get("backbone") {
        // Absent means the paper's default architecture, mirroring the
        // pre-zoo behavior of every registered model being a ResNet.
        None | Some(Value::Null) => Ok(Backbone::ResNet),
        Some(v) => {
            let label = v
                .as_str()
                .ok_or_else(|| bad("bad_backbone", "field 'backbone' must be a string"))?;
            Backbone::parse(label).ok_or_else(|| {
                bad(
                    "bad_backbone",
                    "backbone must be 'resnet', 'inception' or 'transapp'",
                )
            })
        }
    }
}

/// Parse the `values` array. `allow_gaps` maps JSON `null` to NaN (the
/// series/stream paths treat NaN as a missing sample); the window paths
/// reject non-finite samples outright — a NaN window would silently
/// degrade, and degradation should be the caller's explicit choice.
fn values_field(body: &Value, allow_gaps: bool) -> Result<Vec<f32>, ApiError> {
    let items = body
        .get("values")
        .and_then(Value::as_array)
        .ok_or_else(|| {
            bad(
                "missing_field",
                "field 'values' must be an array of numbers",
            )
        })?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Value::Null if allow_gaps => out.push(f32::NAN),
            Value::Number(n) => {
                let v = n.as_f64() as f32;
                if !v.is_finite() && !allow_gaps {
                    return Err(bad("bad_values", "values must be finite numbers"));
                }
                out.push(v);
            }
            _ => return Err(bad("bad_values", "values must be numbers")),
        }
    }
    Ok(out)
}

fn plan_key(body: &Value, window: usize) -> Result<PlanKey, ApiError> {
    Ok(PlanKey {
        preset: str_field(body, "preset")?.to_string(),
        appliance: str_field(body, "appliance")?.to_string(),
        window,
        backbone: backbone_field(body)?,
        precision: precision_field(body)?,
    })
}

// ------------------------------------------------------------ error maps

fn plan_error(err: PlanError) -> ApiError {
    match err {
        PlanError::UnknownModel => (
            404,
            error_body(
                "unknown_plan",
                "no model registered for (preset, appliance, window, backbone)",
            ),
        ),
        PlanError::NoCalibration => (
            404,
            error_body(
                "no_calibration",
                "int8 requested but the model has no calibration set",
            ),
        ),
    }
}

fn submit_error(err: SubmitError) -> ApiError {
    match err {
        SubmitError::QueueFull { depth } => (
            503,
            error_body(
                "overload",
                &format!("inference queue is full ({depth} jobs); retry"),
            ),
        ),
        SubmitError::ShuttingDown => (503, error_body("draining", "server is shutting down")),
    }
}

fn camal_error(err: &CamalError) -> ApiError {
    let status = match err {
        CamalError::OutOfOrderPush { .. }
        | CamalError::IntervalMismatch { .. }
        | CamalError::OverCapacity { .. } => 409,
        _ => 400,
    };
    (status, error_body("camal", &err.to_string()))
}

fn job_error(err: &JobError) -> ApiError {
    match err {
        JobError::Camal(e) => camal_error(e),
        JobError::Plan(e) => plan_error(*e),
    }
}

// ------------------------------------------------------------- endpoints

fn window_endpoint(shared: &Arc<Shared>, request: &Request, localize: bool) -> (u16, String) {
    match window_response(shared, request, localize) {
        Ok(body) => (200, body),
        Err((status, body)) => (status, body),
    }
}

fn window_response(
    shared: &Arc<Shared>,
    request: &Request,
    localize: bool,
) -> Result<String, ApiError> {
    let body = parse_body(request)?;
    let values = values_field(&body, false)?;
    if values.is_empty() {
        return Err(bad("bad_values", "window must not be empty"));
    }
    let key = plan_key(&body, values.len())?;
    // Reject unknown plans *before* queueing so they never occupy queue
    // slots or poison a batch.
    shared.registry.check(&key).map_err(plan_error)?;
    let include_cam = localize
        && body
            .get("include_cam")
            .and_then(Value::as_bool)
            .unwrap_or(false);
    let kind = if localize {
        JobKind::Localize { include_cam }
    } else {
        JobKind::Detect
    };
    let (tx, rx) = sync_channel(1);
    shared
        .collector
        .submit_window(WindowJob {
            key: key.clone(),
            window: values,
            kind,
            tx,
        })
        .map_err(submit_error)?;
    let reply = rx
        .recv_timeout(REPLY_TIMEOUT)
        .map_err(|_| {
            (
                500,
                error_body("internal", "inference worker dropped the request"),
            )
        })?
        .map_err(|e| job_error(&e))?;

    let mut obj = Obj::new();
    obj.insert("probability".to_string(), Value::from(reply.probability));
    obj.insert("detected".to_string(), Value::from(reply.detected));
    obj.insert("window".to_string(), Value::from(key.window));
    obj.insert("backbone".to_string(), Value::from(key.backbone.label()));
    obj.insert("precision".to_string(), Value::from(key.precision.label()));
    let members: Vec<Value> = reply
        .members
        .iter()
        .map(|&(kernel, prob)| Value::Array(vec![Value::from(kernel), Value::from(prob)]))
        .collect();
    obj.insert("members".to_string(), Value::Array(members));
    if localize {
        obj.insert(
            "status".to_string(),
            Value::from(mask_string(&reply.status)),
        );
    }
    if !reply.cam.is_empty() {
        obj.insert("cam".to_string(), Value::from(reply.cam.clone()));
    }
    Ok(Value::Object(obj).to_string())
}

fn series_endpoint(shared: &Arc<Shared>, request: &Request) -> (u16, String) {
    match series_response(shared, request) {
        Ok(body) => (200, body),
        Err((status, body)) => (status, body),
    }
}

fn series_response(shared: &Arc<Shared>, request: &Request) -> Result<String, ApiError> {
    let body = parse_body(request)?;
    let values = values_field(&body, true)?;
    if values.is_empty() {
        return Err(bad("bad_values", "series must not be empty"));
    }
    let window = body
        .get("window")
        .and_then(Value::as_u64)
        .ok_or_else(|| bad("missing_field", "field 'window' must be a positive integer"))?
        as usize;
    if window == 0 {
        return Err(bad("bad_window", "window must be positive"));
    }
    let start = body.get("start").and_then(Value::as_i64).unwrap_or(0);
    let interval = body
        .get("interval_secs")
        .and_then(Value::as_u64)
        .unwrap_or(60) as u32;
    if interval == 0 {
        return Err(bad("bad_interval", "interval_secs must be positive"));
    }
    let key = plan_key(&body, window)?;
    shared.registry.check(&key).map_err(plan_error)?;
    let series = TimeSeries::from_values(start, interval, values);
    let (tx, rx) = sync_channel(1);
    shared
        .collector
        .submit_series(SeriesJob {
            key,
            series,
            window,
            tx,
        })
        .map_err(submit_error)?;
    let states = rx
        .recv_timeout(REPLY_TIMEOUT)
        .map_err(|_| {
            (
                500,
                error_body("internal", "inference worker dropped the request"),
            )
        })?
        .map_err(|e| job_error(&e))?;

    let unknown = states.iter().filter(|s| **s == Status::Unknown).count();
    let mask: String = states
        .iter()
        .map(|s| match s {
            Status::Off => '0',
            Status::On => '1',
            Status::Unknown => '?',
        })
        .collect();
    let mut obj = Obj::new();
    obj.insert("states".to_string(), Value::from(mask));
    obj.insert("len".to_string(), Value::from(states.len()));
    obj.insert("unknown".to_string(), Value::from(unknown));
    Ok(Value::Object(obj).to_string())
}

fn push_endpoint(shared: &Arc<Shared>, request: &Request) -> (u16, String) {
    match push_response(shared, request) {
        Ok(body) => (200, body),
        Err((status, body)) => (status, body),
    }
}

fn push_response(shared: &Arc<Shared>, request: &Request) -> Result<String, ApiError> {
    let body = parse_body(request)?;
    let meter = str_field(&body, "meter")?.to_string();
    let values = values_field(&body, true)?;
    let window = body
        .get("window")
        .and_then(Value::as_u64)
        .ok_or_else(|| bad("missing_field", "field 'window' must be a positive integer"))?
        as usize;
    if window == 0 {
        return Err(bad("bad_window", "window must be positive"));
    }
    let key = plan_key(&body, window)?;
    let reset = body.get("reset").and_then(Value::as_bool).unwrap_or(false);

    let session = {
        let mut sessions = shared.sessions.lock().unwrap();
        let id = (meter, key.clone());
        match sessions.get(&id) {
            Some(session) => session.clone(),
            None => {
                if sessions.len() >= shared.config.max_sessions {
                    return Err((
                        503,
                        error_body(
                            "overload",
                            &format!(
                                "push session limit reached ({}); retire sessions first",
                                shared.config.max_sessions
                            ),
                        ),
                    ));
                }
                let plan = shared.registry.get_or_freeze(&key).map_err(plan_error)?;
                let max_windows = shared.config.stream_window_capacity.max(1);
                let stream = StreamingCamal::new((*plan).clone(), window, max_windows);
                let session = Arc::new(Mutex::new(stream));
                sessions.insert(id, session.clone());
                session
            }
        }
    };

    let mut stream = session.lock().unwrap();
    if reset {
        stream.reset();
    }
    let absorbed = stream.push_values(&values).map_err(|e| camal_error(&e))?;
    let mut obj = Obj::new();
    obj.insert("absorbed_windows".to_string(), Value::from(absorbed));
    obj.insert("len".to_string(), Value::from(stream.len()));
    obj.insert("capacity".to_string(), Value::from(stream.capacity()));
    let tail = if absorbed > 0 {
        let i = absorbed - 1;
        let mut t = Obj::new();
        t.insert("index".to_string(), Value::from(i));
        t.insert("clean".to_string(), Value::from(stream.window_clean(i)));
        t.insert(
            "probability".to_string(),
            Value::from(stream.window_probability(i)),
        );
        t.insert(
            "detected".to_string(),
            Value::from(stream.window_detected(i)),
        );
        t.insert(
            "status".to_string(),
            Value::from(mask_string(stream.window_status(i))),
        );
        Value::Object(t)
    } else {
        Value::Null
    };
    obj.insert("tail".to_string(), tail);
    Ok(Value::Object(obj).to_string())
}

fn stats_body(shared: &Arc<Shared>) -> String {
    let stats = &shared.stats;
    let batch_windows = shared.collector.batch_windows();
    let mut obj = Obj::new();
    obj.insert(
        "requests".to_string(),
        Value::from(stats.requests.load(Ordering::Relaxed)),
    );
    obj.insert(
        "rejected".to_string(),
        Value::from(stats.rejected.load(Ordering::Relaxed)),
    );
    obj.insert(
        "client_errors".to_string(),
        Value::from(stats.client_errors.load(Ordering::Relaxed)),
    );
    obj.insert(
        "batches".to_string(),
        Value::from(stats.batches.load(Ordering::Relaxed)),
    );
    obj.insert(
        "batched_windows".to_string(),
        Value::from(stats.batched_windows.load(Ordering::Relaxed)),
    );
    obj.insert(
        "full_batches".to_string(),
        Value::from(stats.full_batches.load(Ordering::Relaxed)),
    );
    obj.insert(
        "deadline_batches".to_string(),
        Value::from(stats.deadline_batches.load(Ordering::Relaxed)),
    );
    obj.insert(
        "mean_batch_fill".to_string(),
        Value::from(stats.mean_batch_fill(batch_windows)),
    );
    obj.insert(
        "steady_allocs".to_string(),
        Value::from(stats.steady_allocs.load(Ordering::Relaxed)),
    );
    obj.insert(
        "queue_depth".to_string(),
        Value::from(shared.collector.queued()),
    );
    obj.insert("batch_windows".to_string(), Value::from(batch_windows));
    obj.insert("workers".to_string(), Value::from(shared.config.workers));
    obj.insert(
        "sessions".to_string(),
        Value::from(shared.sessions.lock().unwrap().len()),
    );
    obj.insert(
        "freezes".to_string(),
        Value::from(shared.registry.freeze_count()),
    );
    let plans: Vec<Value> = shared
        .registry
        .frozen_plans()
        .into_iter()
        .map(|(key, arena_bytes)| {
            let mut p = Obj::new();
            p.insert("preset".to_string(), Value::from(key.preset));
            p.insert("appliance".to_string(), Value::from(key.appliance));
            p.insert("window".to_string(), Value::from(key.window));
            p.insert("backbone".to_string(), Value::from(key.backbone.label()));
            p.insert("precision".to_string(), Value::from(key.precision.label()));
            p.insert("arena_bytes".to_string(), Value::from(arena_bytes));
            Value::Object(p)
        })
        .collect();
    obj.insert("plans".to_string(), Value::Array(plans));
    Value::Object(obj).to_string()
}

/// Per-timestep 0/1 mask as a compact string.
fn mask_string(status: &[u8]) -> String {
    status
        .iter()
        .map(|&s| if s == 1 { '1' } else { '0' })
        .collect()
}
