//! A tiny blocking keep-alive HTTP/1.1 client, for the loadtest harness,
//! the REPL, and the integration tests. One `Client` = one persistent
//! connection; requests are strictly sequential on it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:8732"` or a `SocketAddr`
    /// string) with TCP_NODELAY set — these are small latency-sensitive
    /// exchanges.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// `GET path` → (status, body).
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// `POST path` with a JSON body → (status, body).
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        write!(
            self.writer,
            "{} {} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            method,
            path,
            body.len(),
            body
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let status_line = self.read_line()?;
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
            })?;
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|text| (status, text))
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut buf = Vec::with_capacity(64);
        self.reader.read_until(b'\n', &mut buf)?;
        while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
            buf.pop();
        }
        String::from_utf8(buf)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 header"))
    }
}
