//! The cross-request micro-batch collector.
//!
//! Window jobs (detect/localize) for the same [`PlanKey`] accumulate in a
//! per-key pending batch. A batch becomes dispatchable when it **fills**
//! (`batch_windows` slots, sized to the arena chunk) or when its
//! **deadline** expires (`max_wait` after the batch's first window
//! arrived) — whichever comes first. Workers block on a condvar and take
//! one dispatchable batch (or one unbatchable series job) at a time.
//!
//! Admission is bounded: `queue_depth` caps the total queued jobs across
//! all keys; past it, submissions are rejected immediately and the HTTP
//! layer answers 503. That makes overload visible to clients instead of
//! letting latency collapse silently.

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use ds_camal::CamalError;
use ds_timeseries::{Status, TimeSeries};

use crate::registry::{PlanError, PlanKey};

/// Everything a window job can come back with. Detect replies leave
/// `status`/`cam` empty; localize fills `status` and, on request, `cam`.
#[derive(Debug)]
pub(crate) struct WindowReply {
    pub probability: f32,
    pub detected: bool,
    /// (kernel size, member probability) per ensemble member.
    pub members: Vec<(usize, f32)>,
    pub status: Vec<u8>,
    pub cam: Vec<f32>,
}

/// What the worker should extract from the batch for this job.
#[derive(Debug, Clone, Copy)]
pub(crate) enum JobKind {
    Detect,
    Localize { include_cam: bool },
}

/// Why a queued job failed after admission.
#[derive(Debug, Clone)]
pub(crate) enum JobError {
    Camal(CamalError),
    Plan(PlanError),
}

pub(crate) type WindowResult = Result<WindowReply, JobError>;
pub(crate) type SeriesResult = Result<Vec<Status>, JobError>;

/// One queued detect/localize window.
pub(crate) struct WindowJob {
    pub key: PlanKey,
    pub window: Vec<f32>,
    pub kind: JobKind,
    pub tx: SyncSender<WindowResult>,
}

/// One queued status-series request (runs un-batched: its cost scales
/// with the series length, not one window).
pub(crate) struct SeriesJob {
    pub key: PlanKey,
    pub series: TimeSeries,
    pub window: usize,
    pub tx: SyncSender<SeriesResult>,
}

/// One unit a worker takes from the collector.
pub(crate) enum Work {
    Batch {
        key: PlanKey,
        jobs: Vec<WindowJob>,
        /// True when the batch dispatched because it filled every slot
        /// (vs its deadline expiring).
        full: bool,
    },
    Series(SeriesJob),
}

/// Typed admission rejection → 503.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubmitError {
    /// `queue_depth` reached.
    QueueFull { depth: usize },
    /// Server is draining.
    ShuttingDown,
}

struct Pending {
    jobs: Vec<WindowJob>,
    /// Dispatch-at-latest instant, armed when the first window arrived.
    deadline: Instant,
}

struct State {
    batches: BTreeMap<PlanKey, Pending>,
    series: VecDeque<SeriesJob>,
    /// Total queued jobs (windows + series) across all keys.
    queued: usize,
    shutdown: bool,
}

pub(crate) struct Collector {
    state: Mutex<State>,
    ready: Condvar,
    batch_windows: usize,
    max_wait: Duration,
    queue_depth: usize,
}

impl Collector {
    pub fn new(batch_windows: usize, max_wait: Duration, queue_depth: usize) -> Collector {
        Collector {
            state: Mutex::new(State {
                batches: BTreeMap::new(),
                series: VecDeque::new(),
                queued: 0,
                shutdown: false,
            }),
            ready: Condvar::new(),
            batch_windows: batch_windows.clamp(1, ds_camal::WINDOW_CHUNK),
            max_wait,
            queue_depth: queue_depth.max(1),
        }
    }

    /// Slots one micro-batch holds.
    pub fn batch_windows(&self) -> usize {
        self.batch_windows
    }

    /// Jobs currently queued (stats endpoint).
    pub fn queued(&self) -> usize {
        self.state.lock().unwrap().queued
    }

    pub fn submit_window(&self, job: WindowJob) -> Result<(), SubmitError> {
        let mut state = self.state.lock().unwrap();
        self.admit(&mut state)?;
        let deadline = Instant::now() + self.max_wait;
        state
            .batches
            .entry(job.key.clone())
            .or_insert_with(|| Pending {
                jobs: Vec::with_capacity(self.batch_windows),
                deadline,
            })
            .jobs
            .push(job);
        state.queued += 1;
        ds_obs::gauge_set("serve.queue_depth", state.queued as f64);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    pub fn submit_series(&self, job: SeriesJob) -> Result<(), SubmitError> {
        let mut state = self.state.lock().unwrap();
        self.admit(&mut state)?;
        state.series.push_back(job);
        state.queued += 1;
        ds_obs::gauge_set("serve.queue_depth", state.queued as f64);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    fn admit(&self, state: &mut State) -> Result<(), SubmitError> {
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queued >= self.queue_depth {
            return Err(SubmitError::QueueFull {
                depth: self.queue_depth,
            });
        }
        Ok(())
    }

    /// Block until there is work (or shutdown drains the queue). Returns
    /// `None` exactly when shutting down with nothing left; workers exit.
    pub fn next_work(&self) -> Option<Work> {
        let mut state = self.state.lock().unwrap();
        loop {
            let now = Instant::now();
            // Full batches dispatch immediately, regardless of deadline.
            if let Some(key) = state
                .batches
                .iter()
                .find(|(_, p)| p.jobs.len() >= self.batch_windows)
                .map(|(k, _)| k.clone())
            {
                return Some(self.take_batch(&mut state, key, true));
            }
            if state.shutdown {
                // Draining: flush everything as it stands.
                if let Some(key) = state.batches.keys().next().cloned() {
                    return Some(self.take_batch(&mut state, key, false));
                }
                if let Some(job) = state.series.pop_front() {
                    state.queued -= 1;
                    return Some(Work::Series(job));
                }
                return None;
            }
            // Deadline-expired partial batches.
            if let Some(key) = state
                .batches
                .iter()
                .find(|(_, p)| p.deadline <= now)
                .map(|(k, _)| k.clone())
            {
                return Some(self.take_batch(&mut state, key, false));
            }
            // Series jobs fill worker idle time between batch deadlines.
            if let Some(job) = state.series.pop_front() {
                state.queued -= 1;
                ds_obs::gauge_set("serve.queue_depth", state.queued as f64);
                return Some(Work::Series(job));
            }
            // Sleep until the earliest pending deadline or a submit.
            let earliest = state.batches.values().map(|p| p.deadline).min();
            state = match earliest {
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(now);
                    self.ready.wait_timeout(state, wait).unwrap().0
                }
                None => self.ready.wait(state).unwrap(),
            };
        }
    }

    fn take_batch(&self, state: &mut State, key: PlanKey, full: bool) -> Work {
        let mut pending = state.batches.remove(&key).expect("pending batch vanished");
        let jobs = if pending.jobs.len() > self.batch_windows {
            // More windows queued than one batch holds: take one chunk,
            // keep the remainder (original deadline — they've waited).
            let rest = pending.jobs.split_off(self.batch_windows);
            let taken = std::mem::replace(&mut pending.jobs, rest);
            state.batches.insert(key.clone(), pending);
            taken
        } else {
            pending.jobs
        };
        state.queued -= jobs.len();
        ds_obs::gauge_set("serve.queue_depth", state.queued as f64);
        Work::Batch { key, jobs, full }
    }

    /// Begin draining: further submissions are rejected, queued work is
    /// flushed immediately (no deadline waits), and workers exit once the
    /// queue is empty.
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_camal::Precision;
    use std::sync::mpsc::sync_channel;

    fn key(window: usize) -> PlanKey {
        PlanKey {
            preset: "TEST".into(),
            appliance: "kettle".into(),
            window,
            backbone: ds_camal::Backbone::ResNet,
            precision: Precision::F32,
        }
    }

    fn job(window: usize) -> (WindowJob, std::sync::mpsc::Receiver<WindowResult>) {
        let (tx, rx) = sync_channel(1);
        (
            WindowJob {
                key: key(window),
                window: vec![0.0; window],
                kind: JobKind::Detect,
                tx,
            },
            rx,
        )
    }

    #[test]
    fn full_batch_dispatches_before_deadline() {
        let collector = Collector::new(4, Duration::from_secs(3600), 64);
        for _ in 0..4 {
            collector.submit_window(job(16).0).unwrap();
        }
        match collector.next_work().unwrap() {
            Work::Batch { jobs, full, .. } => {
                assert_eq!(jobs.len(), 4);
                assert!(full);
            }
            Work::Series(_) => panic!("expected a batch"),
        }
        assert_eq!(collector.queued(), 0);
    }

    #[test]
    fn deadline_flushes_a_partial_batch() {
        let collector = Collector::new(16, Duration::from_millis(5), 64);
        collector.submit_window(job(16).0).unwrap();
        let started = Instant::now();
        match collector.next_work().unwrap() {
            Work::Batch { jobs, full, .. } => {
                assert_eq!(jobs.len(), 1);
                assert!(!full);
            }
            Work::Series(_) => panic!("expected a batch"),
        }
        assert!(started.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn queue_bound_rejects_with_a_typed_error() {
        let collector = Collector::new(16, Duration::from_secs(1), 2);
        collector.submit_window(job(16).0).unwrap();
        collector.submit_window(job(16).0).unwrap();
        let err = collector.submit_window(job(16).0).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { depth: 2 });
    }

    #[test]
    fn distinct_keys_never_share_a_batch() {
        let collector = Collector::new(16, Duration::from_millis(1), 64);
        collector.submit_window(job(16).0).unwrap();
        collector.submit_window(job(32).0).unwrap();
        let mut sizes = Vec::new();
        for _ in 0..2 {
            match collector.next_work().unwrap() {
                Work::Batch { jobs, .. } => sizes.push(jobs.len()),
                Work::Series(_) => panic!("expected batches"),
            }
        }
        assert_eq!(sizes, vec![1, 1]);
    }

    #[test]
    fn shutdown_flushes_then_ends() {
        let collector = Collector::new(16, Duration::from_secs(3600), 64);
        collector.submit_window(job(16).0).unwrap();
        collector.shutdown();
        assert!(matches!(collector.next_work(), Some(Work::Batch { .. })));
        assert!(collector.next_work().is_none());
        let err = collector.submit_window(job(16).0).unwrap_err();
        assert_eq!(err, SubmitError::ShuttingDown);
    }
}
