//! Minimal HTTP/1.1 framing: just enough protocol for a JSON API over
//! keep-alive connections — request-line + headers + `Content-Length`
//! bodies in, fixed-length JSON responses out. No chunked encoding, no
//! TLS, no pipelining guarantees beyond strict request/response order.

use std::io::{BufRead, ErrorKind, Write};

/// Longest accepted request line or header line, in bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
}

/// Why a read failed (maps to a response + close, or just a close).
#[derive(Debug)]
pub enum HttpError {
    Io(std::io::Error),
    /// Unparseable request line / headers / length field.
    Malformed(&'static str),
    /// Declared `Content-Length` exceeds the configured cap → 413.
    BodyTooLarge {
        limit: usize,
    },
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// What one read attempt produced.
#[derive(Debug)]
pub enum ReadOutcome {
    Request(Request),
    /// Peer closed the connection cleanly between requests.
    Closed,
    /// Read timeout fired while idle (no bytes of a next request yet):
    /// the caller checks its shutdown flag and retries.
    Idle,
}

/// Read one request. The idle/shutdown poll works through the reader's
/// socket read timeout: a timeout *before any byte* of the next request is
/// [`ReadOutcome::Idle`]; a timeout mid-request is an error (slow or stuck
/// peer → close).
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<ReadOutcome, HttpError> {
    match reader.fill_buf() {
        Ok([]) => return Ok(ReadOutcome::Closed),
        Ok(_) => {}
        Err(e)
            if matches!(
                e.kind(),
                ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
            ) =>
        {
            return Ok(ReadOutcome::Idle)
        }
        Err(e) => return Err(HttpError::Io(e)),
    }

    let line = read_line(reader)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?;
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length: Option<usize> = None;
    for _ in 0..MAX_HEADERS {
        let header = read_line(reader)?;
        if header.is_empty() {
            let content_length = content_length.unwrap_or(0);
            let mut body = vec![0u8; content_length];
            if content_length > 0 {
                reader.read_exact(&mut body)?;
            }
            return Ok(ReadOutcome::Request(Request {
                method: method.to_string(),
                path: path.to_string(),
                body,
                keep_alive,
            }));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Malformed("header line without a colon"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let length = value
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
            // Duplicate Content-Length headers are a request-smuggling
            // vector (RFC 9112 §6.3): a proxy honoring the first and this
            // server honoring the last would disagree on where the request
            // ends. Reject rather than pick a winner — even when the
            // copies agree, since a smuggling attempt is malformed either
            // way and honest clients never send two.
            if content_length.is_some() {
                return Err(HttpError::Malformed("duplicate Content-Length"));
            }
            if length > max_body {
                return Err(HttpError::BodyTooLarge { limit: max_body });
            }
            content_length = Some(length);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Chunked bodies are unimplemented; silently ignoring the
            // header would make this server read a body boundary different
            // from what the client (or an intermediary) framed — the other
            // half of the smuggling vector. Refuse loudly instead.
            return Err(HttpError::Malformed("Transfer-Encoding not supported"));
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    Err(HttpError::Malformed("too many headers"))
}

/// One CRLF-terminated line, without the terminator.
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::with_capacity(64);
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        if byte[0] == b'\n' {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return String::from_utf8(buf)
                .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes"));
        }
        if buf.len() >= MAX_LINE {
            return Err(HttpError::Malformed("header line too long"));
        }
        buf.push(byte[0]);
    }
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one fixed-length JSON response.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        status,
        reason(status),
        body.len(),
        connection,
        body
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<ReadOutcome, HttpError> {
        read_request(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn parses_post_with_body_and_keeps_alive() {
        let raw = b"POST /api/v1/detect HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        match parse(raw).unwrap() {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/api/v1/detect");
                assert_eq!(req.body, b"abcd");
                assert!(req.keep_alive);
            }
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn connection_close_clears_keep_alive() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        match parse(raw).unwrap() {
            ReadOutcome::Request(req) => assert!(!req.keep_alive),
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn eof_between_requests_is_closed() {
        assert!(matches!(parse(b"").unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn oversized_body_is_rejected_with_the_limit() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        match parse(raw) {
            Err(HttpError::BodyTooLarge { limit }) => assert_eq!(limit, 1024),
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_content_length_is_malformed() {
        // Conflicting copies: last-wins would smuggle 4 bytes past a
        // first-wins intermediary.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 4\r\n\r\nabcd";
        match parse(raw) {
            Err(HttpError::Malformed(msg)) => assert_eq!(msg, "duplicate Content-Length"),
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Even agreeing copies are rejected: two lengths never come from
        // an honest client.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd";
        assert!(matches!(parse(raw), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn transfer_encoding_is_rejected_not_ignored() {
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
        match parse(raw) {
            Err(HttpError::Malformed(msg)) => {
                assert_eq!(msg, "Transfer-Encoding not supported")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Case-insensitive, and rejected even alongside a Content-Length.
        let raw =
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\ntransfer-encoding: identity\r\n\r\nabcd";
        assert!(matches!(parse(raw), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn garbage_request_line_is_malformed() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn response_is_length_framed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
