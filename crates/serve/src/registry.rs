//! Model registration and exactly-once plan freezing.
//!
//! An application registers *trained* [`Camal`] models (plus their int8
//! calibration windows) once; the serving path then materializes frozen
//! plans lazily, one per [`PlanKey`]. The freeze is guarded by a
//! per-key `OnceLock`, so N racing requests for a cold key perform
//! exactly one freeze — the others block on the cell and share the
//! resulting `Arc`. `tests/serve_concurrency.rs` hammers this from many
//! threads and asserts the single-freeze property.
//!
//! The frozen template is warmed with one full-chunk pass before it is
//! published, which sizes every arena buffer to its steady-state shape.
//! Workers clone the template (one arena per worker, no locking on the
//! hot path) and inherit the warm sizes, so even a worker's *first* real
//! batch allocates nothing inside the kernel call.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ds_camal::{Backbone, Camal, FrozenCamal, Precision, WINDOW_CHUNK};

/// Identity of one frozen serving plan. Requests carrying the same key
/// share a plan and may share a micro-batch.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanKey {
    /// Dataset preset the model was trained on (e.g. `UKDALE_1`).
    pub preset: String,
    /// Appliance slug (e.g. `kettle`).
    pub appliance: String,
    /// Window length in samples. Part of the key so every micro-batch is
    /// shape-homogeneous — a length-mismatched request can never poison a
    /// batch.
    pub window: usize,
    /// Detector architecture of the registered model (its lead backbone).
    /// Part of the key so plans of different backbones never alias in the
    /// freeze cache, micro-batcher, or streaming sessions.
    pub backbone: Backbone,
    /// Numeric precision of the frozen plan (f32 or int8).
    pub precision: Precision,
}

/// Why a plan could not be materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// No model registered under (preset, appliance, window) → 404.
    UnknownModel,
    /// Int8 requested but the model registered no calibration windows.
    NoCalibration,
}

struct ModelEntry {
    camal: Camal,
    calib: Vec<Vec<f32>>,
}

type ModelId = (String, String, usize, Backbone);
type PlanCell = Arc<OnceLock<Arc<FrozenCamal>>>;

/// Registered models plus the frozen-plan cache derived from them.
#[derive(Default)]
pub struct ModelRegistry {
    models: Mutex<BTreeMap<ModelId, ModelEntry>>,
    plans: Mutex<BTreeMap<PlanKey, PlanCell>>,
    freezes: AtomicU64,
}

impl ModelRegistry {
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Register a trained model under (preset, appliance, window,
    /// backbone) — the backbone is read off the model itself (its lead
    /// backbone), so one (preset, appliance, window) slot can hold one
    /// model per architecture side by side. `calib` enables int8 plans;
    /// pass an empty vec to serve f32 only. Re-registering replaces the
    /// model but NOT already-frozen plans (frozen plans are immutable for
    /// the server's lifetime).
    pub fn register(
        &self,
        preset: &str,
        appliance: &str,
        window: usize,
        camal: Camal,
        calib: Vec<Vec<f32>>,
    ) {
        let backbone = camal.config().lead_backbone();
        self.models.lock().unwrap().insert(
            (preset.to_string(), appliance.to_string(), window, backbone),
            ModelEntry { camal, calib },
        );
    }

    /// Registered model identities (for the REPL's `serve status`).
    pub fn model_keys(&self) -> Vec<(String, String, usize, Backbone)> {
        self.models.lock().unwrap().keys().cloned().collect()
    }

    /// Cheap admission check: can `key` possibly be served? Run before
    /// queueing a job so unknown plans 404 at submit time instead of
    /// occupying queue slots.
    pub fn check(&self, key: &PlanKey) -> Result<(), PlanError> {
        let models = self.models.lock().unwrap();
        let id = (
            key.preset.clone(),
            key.appliance.clone(),
            key.window,
            key.backbone,
        );
        match models.get(&id) {
            None => Err(PlanError::UnknownModel),
            Some(entry) if key.precision == Precision::Int8 && entry.calib.is_empty() => {
                Err(PlanError::NoCalibration)
            }
            Some(_) => Ok(()),
        }
    }

    /// Total plan freezes performed (the concurrency test asserts this
    /// equals the number of distinct keys served).
    pub fn freeze_count(&self) -> u64 {
        self.freezes.load(Ordering::Relaxed)
    }

    /// Already-frozen plans with their warm arena footprints, for the
    /// stats endpoint.
    pub fn frozen_plans(&self) -> Vec<(PlanKey, usize)> {
        let plans = self.plans.lock().unwrap();
        plans
            .iter()
            .filter_map(|(k, cell)| cell.get().map(|p| (k.clone(), p.arena_bytes())))
            .collect()
    }

    /// Get the shared frozen plan for `key`, freezing it exactly once on
    /// first use. Concurrent callers for the same cold key race to the
    /// per-key cell: one wins and freezes, the rest share its result (a
    /// loser's cloned source model is dropped unused — a one-time cost).
    pub fn get_or_freeze(&self, key: &PlanKey) -> Result<Arc<FrozenCamal>, PlanError> {
        self.check(key)?;
        let cell: PlanCell = {
            let mut plans = self.plans.lock().unwrap();
            plans.entry(key.clone()).or_default().clone()
        };
        if let Some(plan) = cell.get() {
            ds_obs::counter_add("cache.serve_plan.hits", 1);
            return Ok(plan.clone());
        }
        let (camal, calib) = {
            let models = self.models.lock().unwrap();
            let id = (
                key.preset.clone(),
                key.appliance.clone(),
                key.window,
                key.backbone,
            );
            let entry = models.get(&id).ok_or(PlanError::UnknownModel)?;
            (entry.camal.clone(), entry.calib.clone())
        };
        let plan = cell.get_or_init(|| {
            self.freezes.fetch_add(1, Ordering::Relaxed);
            ds_obs::counter_add("cache.serve_plan.misses", 1);
            let mut frozen = match key.precision {
                Precision::Int8 => camal.freeze_quantized(&calib),
                _ => camal.freeze(),
            };
            warm(&mut frozen, key.window);
            Arc::new(frozen)
        });
        Ok(plan.clone())
    }
}

/// Run one full-chunk pass of flat windows through a fresh plan so every
/// arena buffer reaches its steady-state size before the template is
/// cloned to workers. Flat windows are valid inputs (z-norm maps them to
/// all-zero), and plan outputs are stateless, so warming cannot change
/// any later result.
fn warm(plan: &mut FrozenCamal, window: usize) {
    let zeros = vec![0.0f32; window];
    let refs: Vec<&[f32]> = (0..WINDOW_CHUNK).map(|_| zeros.as_slice()).collect();
    let _ = plan.localize_batch_into(&refs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_camal::{CamalConfig, ResNetEnsemble};

    fn tiny_model(window: usize) -> Camal {
        let cfg = CamalConfig::fast_test();
        let mut windows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            let on = i % 2 == 0;
            let w: Vec<f32> = (0..window)
                .map(|t| {
                    let base = ((i * 5 + t * 3) % 7) as f32 * 0.01;
                    if on && t % 5 < 2 {
                        80.0 + base
                    } else {
                        (t % 3) as f32 + base
                    }
                })
                .collect();
            windows.push(w);
            labels.push(on as u8);
        }
        let mut ens = ResNetEnsemble::untrained(&cfg);
        ens.train(&windows, &labels, &cfg);
        Camal::from_parts(ens, cfg)
    }

    fn key(window: usize, precision: Precision) -> PlanKey {
        PlanKey {
            preset: "TEST".into(),
            appliance: "kettle".into(),
            window,
            backbone: Backbone::ResNet,
            precision,
        }
    }

    #[test]
    fn unknown_model_is_rejected_before_any_freeze() {
        let registry = ModelRegistry::new();
        let err = registry
            .get_or_freeze(&key(32, Precision::F32))
            .unwrap_err();
        assert_eq!(err, PlanError::UnknownModel);
        assert_eq!(registry.freeze_count(), 0);
        assert!(registry.frozen_plans().is_empty());
    }

    #[test]
    fn int8_without_calibration_is_a_typed_error() {
        let registry = ModelRegistry::new();
        registry.register("TEST", "kettle", 32, tiny_model(32), Vec::new());
        let err = registry
            .get_or_freeze(&key(32, Precision::Int8))
            .unwrap_err();
        assert_eq!(err, PlanError::NoCalibration);
        assert!(registry.get_or_freeze(&key(32, Precision::F32)).is_ok());
    }

    #[test]
    fn backbones_never_alias_in_the_registry() {
        // A ResNet model registered under (preset, appliance, window) must
        // not serve a request keyed to a different backbone — that request
        // is an unknown plan, not a silent architecture swap.
        let registry = ModelRegistry::new();
        registry.register("TEST", "kettle", 32, tiny_model(32), Vec::new());
        assert_eq!(
            registry.model_keys(),
            vec![(
                "TEST".to_string(),
                "kettle".to_string(),
                32,
                Backbone::ResNet
            )]
        );
        let mut inception = key(32, Precision::F32);
        inception.backbone = Backbone::Inception;
        assert_eq!(
            registry.get_or_freeze(&inception).unwrap_err(),
            PlanError::UnknownModel
        );
        assert!(registry.get_or_freeze(&key(32, Precision::F32)).is_ok());
        assert_eq!(registry.freeze_count(), 1);
    }

    #[test]
    fn repeat_gets_share_one_frozen_plan() {
        let registry = ModelRegistry::new();
        registry.register("TEST", "kettle", 32, tiny_model(32), Vec::new());
        let a = registry.get_or_freeze(&key(32, Precision::F32)).unwrap();
        let b = registry.get_or_freeze(&key(32, Precision::F32)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.freeze_count(), 1);
        // The published template is warm: its arena footprint is nonzero.
        let plans = registry.frozen_plans();
        assert_eq!(plans.len(), 1);
        assert!(plans[0].1 > 0, "warmed template must report arena bytes");
    }
}
