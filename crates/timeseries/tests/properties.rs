//! Property-based tests for the time-series substrate invariants.

use ds_timeseries::missing::{find_gaps, impute, Imputation};
use ds_timeseries::normalize::{min_max_normalize, Scaler};
use ds_timeseries::resample::{resample, DownsampleAgg, UpsampleFill};
use ds_timeseries::window::{subsequences_complete, window_count, WindowLength};
use ds_timeseries::TimeSeries;
use proptest::prelude::*;

fn finite_values(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0e4f32..1.0e4, 1..max_len)
}

fn gappy_values(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![4 => (-1.0e4f32..1.0e4).boxed(), 1 => Just(f32::NAN).boxed()],
        1..max_len,
    )
}

proptest! {
    #[test]
    fn windows_tile_the_series(values in finite_values(400), size in 1usize..50) {
        let ts = TimeSeries::from_values(0, 60, values);
        let windows: Vec<_> = ts.windows(WindowLength::Custom(size)).collect();
        prop_assert_eq!(windows.len(), ts.len() / size);
        prop_assert_eq!(windows.len(), window_count(&ts, WindowLength::Custom(size)));
        // Concatenating the windows reproduces the covered prefix.
        let mut rebuilt = Vec::new();
        for w in &windows {
            prop_assert_eq!(w.len(), size);
            rebuilt.extend_from_slice(w.values());
        }
        prop_assert_eq!(&ts.values()[..rebuilt.len()], rebuilt.as_slice());
    }

    #[test]
    fn complete_subsequences_have_no_gaps(values in gappy_values(300), size in 1usize..40, stride in 1usize..40) {
        let ts = TimeSeries::from_values(0, 60, values);
        for sub in subsequences_complete(&ts, size, stride).unwrap() {
            prop_assert!(!sub.has_missing());
            prop_assert_eq!(sub.len(), size);
        }
    }

    #[test]
    fn downsample_mean_preserves_energy_on_complete_series(
        values in finite_values(360), factor in 1u32..10
    ) {
        let ts = TimeSeries::from_values(0, 6, values);
        // Trim so the length divides the factor: energy comparison is exact then.
        let n = ts.len() - ts.len() % factor as usize;
        if n == 0 { return Ok(()); }
        let ts = ts.slice(0, n).unwrap();
        let r = resample(&ts, 6 * factor, DownsampleAgg::Mean, UpsampleFill::ForwardFill).unwrap();
        let rel = (r.energy_wh() - ts.energy_wh()).abs() / ts.energy_wh().abs().max(1.0);
        prop_assert!(rel < 1e-4, "energy drift {rel}");
    }

    #[test]
    fn upsample_forward_fill_preserves_mean(values in finite_values(100), factor in 1u32..6) {
        let interval = 60u32;
        let ts = TimeSeries::from_values(0, interval, values);
        if !interval.is_multiple_of(factor) { return Ok(()); }
        let r = resample(&ts, interval / factor, DownsampleAgg::Mean, UpsampleFill::ForwardFill).unwrap();
        prop_assert_eq!(r.len(), ts.len() * factor as usize);
        let mean_a: f64 = ts.values().iter().map(|&v| v as f64).sum::<f64>() / ts.len() as f64;
        let mean_b: f64 = r.values().iter().map(|&v| v as f64).sum::<f64>() / r.len() as f64;
        prop_assert!((mean_a - mean_b).abs() < 1e-3);
    }

    #[test]
    fn min_max_normalize_bounds(mut values in finite_values(200)) {
        min_max_normalize(&mut values);
        for v in values {
            prop_assert!((0.0..=1.0).contains(&v), "value {v} out of [0,1]");
        }
    }

    #[test]
    fn scaler_round_trips(values in finite_values(200)) {
        let ts = TimeSeries::from_values(0, 60, values);
        for scaler in [
            Scaler::fit_min_max(&ts).unwrap(),
            Scaler::fit_z_score(&ts).unwrap(),
            Scaler::fit_max_abs(&ts).unwrap(),
        ] {
            let t = scaler.transform(&ts);
            let back = scaler.inverse(&t);
            for (a, b) in back.values().iter().zip(ts.values()) {
                // Constant series intentionally collapse to 0 and cannot
                // round-trip; detect via transform range.
                let s = ds_timeseries::stats::summarize(&ts).unwrap();
                if s.max > s.min {
                    prop_assert!((a - b).abs() <= 1e-2 * b.abs().max(1.0), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn imputation_removes_all_gaps(values in gappy_values(200)) {
        let ts = TimeSeries::from_values(0, 60, values);
        for strategy in [Imputation::Constant(0.0), Imputation::ForwardFill, Imputation::Linear] {
            let filled = impute(&ts, strategy);
            prop_assert!(!filled.has_missing());
            prop_assert!(find_gaps(&filled).is_empty());
            // Present readings are untouched.
            for (a, b) in filled.values().iter().zip(ts.values()) {
                if !b.is_nan() {
                    prop_assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn gap_inventory_accounts_for_all_missing(values in gappy_values(200)) {
        let ts = TimeSeries::from_values(0, 60, values);
        let total: usize = find_gaps(&ts).iter().map(|g| g.len()).sum();
        prop_assert_eq!(total, ts.missing_count());
    }

    #[test]
    fn csv_round_trip_preserves_series(values in gappy_values(100), interval in 1u32..3600) {
        let ts = TimeSeries::from_values(12345, interval, values);
        let mut buf = Vec::new();
        ds_timeseries::io::write_csv(&ts, &mut buf).unwrap();
        let back = ds_timeseries::io::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.start(), ts.start());
        if ts.len() >= 2 {
            // A single-row CSV cannot encode its interval; the reader
            // defaults to 60 s there, so only multi-row files round-trip it.
            prop_assert_eq!(back.interval_secs(), ts.interval_secs());
        }
        prop_assert_eq!(back.len(), ts.len());
        for (a, b) in back.values().iter().zip(ts.values()) {
            if b.is_nan() {
                prop_assert!(a.is_nan());
            } else {
                prop_assert!((a - b).abs() <= 1e-3 * b.abs().max(1.0));
            }
        }
    }
}
