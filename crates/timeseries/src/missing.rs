//! Gap detection and imputation.
//!
//! Real smart-meter recordings contain transmission dropouts. The paper's
//! training pipeline *omits* subsequences with missing data (see
//! [`crate::window::subsequences_complete`]); the app, however, still needs
//! to display gappy series, and the simulator needs to *inject* realistic
//! gaps. This module provides gap inventory and the usual imputation
//! strategies for display purposes.

use crate::series::TimeSeries;

/// A maximal run of consecutive missing readings, as a half-open index range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gap {
    /// Index of the first missing reading.
    pub start: usize,
    /// One past the last missing reading.
    pub end: usize,
}

impl Gap {
    /// Number of missing readings in the gap.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the gap is empty (never produced by [`find_gaps`]).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Inventory of all gaps in a series, in order.
pub fn find_gaps(series: &TimeSeries) -> Vec<Gap> {
    let mut gaps = Vec::new();
    let mut cur: Option<usize> = None;
    for (i, v) in series.values().iter().enumerate() {
        match (v.is_nan(), cur) {
            (true, None) => cur = Some(i),
            (false, Some(s)) => {
                gaps.push(Gap { start: s, end: i });
                cur = None;
            }
            _ => {}
        }
    }
    if let Some(s) = cur {
        gaps.push(Gap {
            start: s,
            end: series.len(),
        });
    }
    gaps
}

/// Length of the longest gap (0 if none).
pub fn longest_gap(series: &TimeSeries) -> usize {
    find_gaps(series).iter().map(Gap::len).max().unwrap_or(0)
}

/// Imputation strategies for display/analysis (training never imputes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Imputation {
    /// Replace missing readings with a constant (typically 0 W).
    Constant(f32),
    /// Repeat the last present reading; leading gaps fall back to the first
    /// present reading (or the constant 0 if the series is all-missing).
    ForwardFill,
    /// Straight line between the readings flanking each gap; boundary gaps
    /// degrade to forward/backward fill.
    Linear,
}

/// Return a copy of `series` with all gaps filled per `strategy`.
pub fn impute(series: &TimeSeries, strategy: Imputation) -> TimeSeries {
    let mut values = series.values().to_vec();
    match strategy {
        Imputation::Constant(c) => {
            for v in &mut values {
                if v.is_nan() {
                    *v = c;
                }
            }
        }
        Imputation::ForwardFill => {
            let first_present = values.iter().copied().find(|v| !v.is_nan()).unwrap_or(0.0);
            let mut last = first_present;
            for v in &mut values {
                if v.is_nan() {
                    *v = last;
                } else {
                    last = *v;
                }
            }
        }
        Imputation::Linear => {
            for gap in find_gaps(series) {
                let left = if gap.start == 0 {
                    None
                } else {
                    Some(values[gap.start - 1])
                };
                let right = values.get(gap.end).copied().filter(|v| !v.is_nan());
                match (left, right) {
                    (Some(l), Some(r)) => {
                        let span = (gap.len() + 1) as f32;
                        for (k, v) in values[gap.start..gap.end].iter_mut().enumerate() {
                            let t = (k + 1) as f32 / span;
                            *v = l + (r - l) * t;
                        }
                    }
                    (Some(l), None) => values[gap.start..gap.end].fill(l),
                    (None, Some(r)) => values[gap.start..gap.end].fill(r),
                    (None, None) => values[gap.start..gap.end].fill(0.0),
                }
            }
        }
    }
    TimeSeries::from_values(series.start(), series.interval_secs(), values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gappy() -> TimeSeries {
        TimeSeries::from_values(
            0,
            60,
            vec![1.0, f32::NAN, f32::NAN, 4.0, 5.0, f32::NAN, 7.0],
        )
    }

    #[test]
    fn gap_inventory() {
        let gaps = find_gaps(&gappy());
        assert_eq!(
            gaps,
            vec![Gap { start: 1, end: 3 }, Gap { start: 5, end: 6 }]
        );
        assert_eq!(gaps[0].len(), 2);
        assert!(!gaps[0].is_empty());
        assert_eq!(longest_gap(&gappy()), 2);
        let clean = TimeSeries::from_values(0, 60, vec![1.0, 2.0]);
        assert!(find_gaps(&clean).is_empty());
        assert_eq!(longest_gap(&clean), 0);
    }

    #[test]
    fn trailing_gap_detected() {
        let ts = TimeSeries::from_values(0, 60, vec![1.0, f32::NAN, f32::NAN]);
        assert_eq!(find_gaps(&ts), vec![Gap { start: 1, end: 3 }]);
    }

    #[test]
    fn constant_imputation() {
        let filled = impute(&gappy(), Imputation::Constant(0.0));
        assert_eq!(filled.values(), &[1.0, 0.0, 0.0, 4.0, 5.0, 0.0, 7.0]);
        assert!(!filled.has_missing());
    }

    #[test]
    fn forward_fill_imputation() {
        let filled = impute(&gappy(), Imputation::ForwardFill);
        assert_eq!(filled.values(), &[1.0, 1.0, 1.0, 4.0, 5.0, 5.0, 7.0]);
    }

    #[test]
    fn forward_fill_leading_gap_uses_first_present() {
        let ts = TimeSeries::from_values(0, 60, vec![f32::NAN, f32::NAN, 3.0]);
        let filled = impute(&ts, Imputation::ForwardFill);
        assert_eq!(filled.values(), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn forward_fill_all_missing_is_zero() {
        let ts = TimeSeries::missing(0, 60, 3);
        let filled = impute(&ts, Imputation::ForwardFill);
        assert_eq!(filled.values(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn linear_imputation_interpolates() {
        let filled = impute(&gappy(), Imputation::Linear);
        assert_eq!(filled.values(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn linear_boundary_gaps_degrade_to_fill() {
        let ts = TimeSeries::from_values(0, 60, vec![f32::NAN, 2.0, f32::NAN]);
        let filled = impute(&ts, Imputation::Linear);
        assert_eq!(filled.values(), &[2.0, 2.0, 2.0]);
        let all = TimeSeries::missing(0, 60, 2);
        assert_eq!(impute(&all, Imputation::Linear).values(), &[0.0, 0.0]);
    }
}
