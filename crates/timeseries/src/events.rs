//! Edge-based event detection: the classic, training-free NILM primitive
//! (Hart 1992 lineage). An *event* is a steep sustained change in aggregate
//! power; pairing rising and falling edges of similar magnitude yields
//! candidate appliance activations.
//!
//! DeviceScope's scenario 3 invites the user to "identify potential margins
//! of improvement" in the benchmarked methods; this module powers the
//! repository's training-free reference heuristic
//! (`ds_baselines::extensions::EdgeHeuristic`), the floor any learned
//! method must beat.

use crate::series::TimeSeries;

/// A detected power edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Sample index at which the change completes.
    pub index: usize,
    /// Signed power change in watts (positive = switch-on).
    pub delta_w: f32,
}

/// Detect steep edges: changes of at least `min_delta_w` between
/// consecutive readings. Consecutive same-sign steps are merged into one
/// edge whose delta is their sum (appliances often ramp over 2 samples).
/// Missing readings break merging and never produce edges.
pub fn detect_edges(series: &TimeSeries, min_delta_w: f32) -> Vec<Edge> {
    let values = series.values();
    let mut edges: Vec<Edge> = Vec::new();
    let mut pending: Option<Edge> = None;
    for i in 1..values.len() {
        let (a, b) = (values[i - 1], values[i]);
        if a.is_nan() || b.is_nan() {
            flush(&mut pending, &mut edges, min_delta_w);
            continue;
        }
        let step = b - a;
        if step.abs() < min_delta_w / 4.0 {
            flush(&mut pending, &mut edges, min_delta_w);
            continue;
        }
        match pending.as_mut() {
            Some(e) if (e.delta_w > 0.0) == (step > 0.0) => {
                e.delta_w += step;
                e.index = i;
            }
            _ => {
                flush(&mut pending, &mut edges, min_delta_w);
                pending = Some(Edge {
                    index: i,
                    delta_w: step,
                });
            }
        }
    }
    flush(&mut pending, &mut edges, min_delta_w);
    edges
}

fn flush(pending: &mut Option<Edge>, edges: &mut Vec<Edge>, min_delta_w: f32) {
    if let Some(e) = pending.take() {
        if e.delta_w.abs() >= min_delta_w {
            edges.push(e);
        }
    }
}

/// A candidate activation: a rising edge paired with the next falling edge
/// of comparable magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventSegment {
    /// Index of the switch-on edge.
    pub start: usize,
    /// Index one past the switch-off edge.
    pub end: usize,
    /// Magnitude of the rising edge in watts.
    pub rise_w: f32,
}

/// Pair edges into candidate activations.
///
/// Greedy matching: each rising edge of at least `min_delta_w` is matched
/// to the first subsequent falling edge whose magnitude is within
/// `tolerance` (relative) of the rise, searching at most `max_len` samples
/// ahead. Unmatched rises are dropped (conservative).
pub fn pair_events(
    edges: &[Edge],
    min_delta_w: f32,
    tolerance: f32,
    max_len: usize,
) -> Vec<EventSegment> {
    let mut segments = Vec::new();
    let mut used = vec![false; edges.len()];
    for (i, rise) in edges.iter().enumerate() {
        if rise.delta_w < min_delta_w {
            continue;
        }
        for (j, fall) in edges.iter().enumerate().skip(i + 1) {
            if used[j] || fall.delta_w >= 0.0 {
                continue;
            }
            if fall.index - rise.index > max_len {
                break;
            }
            let ratio = (-fall.delta_w) / rise.delta_w;
            if (1.0 - tolerance..=1.0 + tolerance).contains(&ratio) {
                segments.push(EventSegment {
                    start: rise.index,
                    end: fall.index,
                    rise_w: rise.delta_w,
                });
                used[j] = true;
                break;
            }
        }
    }
    segments
}

/// Render paired events as a per-timestep 0/1 status of length `len`.
pub fn segments_to_status(segments: &[EventSegment], len: usize) -> Vec<u8> {
    let mut status = vec![0u8; len];
    for seg in segments {
        let end = seg.end.min(len);
        if seg.start < end {
            status[seg.start..end].fill(1);
        }
    }
    status
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: Vec<f32>) -> TimeSeries {
        TimeSeries::from_values(0, 60, values)
    }

    #[test]
    fn detects_clean_square_pulse() {
        let mut v = vec![100.0f32; 20];
        v[5..10].fill(2100.0);
        let edges = detect_edges(&series(v), 500.0);
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0].index, 5);
        assert!((edges[0].delta_w - 2000.0).abs() < 1.0);
        assert_eq!(edges[1].index, 10);
        assert!((edges[1].delta_w + 2000.0).abs() < 1.0);
    }

    #[test]
    fn merges_two_sample_ramps() {
        let mut v = vec![0.0f32; 12];
        v[4] = 1000.0;
        for x in &mut v[5..9] {
            *x = 2000.0;
        }
        let edges = detect_edges(&series(v), 1500.0);
        // The rise happens over samples 4 and 5: one merged edge of 2000 W.
        assert_eq!(edges.len(), 2);
        assert!((edges[0].delta_w - 2000.0).abs() < 1.0);
    }

    #[test]
    fn small_fluctuations_ignored() {
        let v: Vec<f32> = (0..50).map(|i| 100.0 + (i % 3) as f32 * 20.0).collect();
        assert!(detect_edges(&series(v), 500.0).is_empty());
    }

    #[test]
    fn missing_readings_break_edges() {
        let mut v = vec![0.0f32; 10];
        v[4] = f32::NAN;
        v[5..].fill(2000.0);
        let edges = detect_edges(&series(v), 500.0);
        assert!(
            edges.is_empty(),
            "edge across a gap must not fire: {edges:?}"
        );
    }

    #[test]
    fn pairing_matches_rise_and_fall() {
        let edges = vec![
            Edge {
                index: 5,
                delta_w: 2000.0,
            },
            Edge {
                index: 12,
                delta_w: -1950.0,
            },
            Edge {
                index: 20,
                delta_w: 800.0,
            },
            Edge {
                index: 24,
                delta_w: -300.0,
            }, // magnitude mismatch
        ];
        let segs = pair_events(&edges, 500.0, 0.2, 100);
        assert_eq!(segs.len(), 1);
        assert_eq!(
            segs[0],
            EventSegment {
                start: 5,
                end: 12,
                rise_w: 2000.0
            }
        );
    }

    #[test]
    fn pairing_respects_max_len() {
        let edges = vec![
            Edge {
                index: 0,
                delta_w: 2000.0,
            },
            Edge {
                index: 500,
                delta_w: -2000.0,
            },
        ];
        assert!(pair_events(&edges, 500.0, 0.2, 100).is_empty());
        assert_eq!(pair_events(&edges, 500.0, 0.2, 600).len(), 1);
    }

    #[test]
    fn status_rendering() {
        let segs = vec![EventSegment {
            start: 2,
            end: 5,
            rise_w: 1000.0,
        }];
        assert_eq!(segments_to_status(&segs, 7), vec![0, 0, 1, 1, 1, 0, 0]);
        // Out-of-range segments are clipped.
        let segs = vec![EventSegment {
            start: 5,
            end: 99,
            rise_w: 1.0,
        }];
        let status = segments_to_status(&segs, 7);
        assert_eq!(&status[5..], &[1, 1]);
    }

    #[test]
    fn end_to_end_square_wave() {
        let mut v = vec![150.0f32; 60];
        v[10..20].fill(2650.0);
        v[40..45].fill(8150.0);
        let ts = series(v);
        let edges = detect_edges(&ts, 1000.0);
        let segs = pair_events(&edges, 1000.0, 0.15, 30);
        assert_eq!(segs.len(), 2);
        let status = segments_to_status(&segs, ts.len());
        assert_eq!(status[10..20].iter().sum::<u8>(), 10);
        assert_eq!(status[40..45].iter().sum::<u8>(), 5);
        assert_eq!(status.iter().map(|&s| s as usize).sum::<usize>(), 15);
    }
}
