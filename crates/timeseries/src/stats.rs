//! Descriptive statistics over series, skipping missing readings.
//!
//! Used by the simulator (power-balance checks), the app (window summary
//! strip) and the weak baseline (window feature extraction).

use crate::series::TimeSeries;

/// Summary statistics of the present readings of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of present (non-missing) readings.
    pub count: usize,
    /// Minimum present reading.
    pub min: f32,
    /// Maximum present reading.
    pub max: f32,
    /// Arithmetic mean of present readings.
    pub mean: f32,
    /// Population standard deviation of present readings.
    pub std: f32,
}

/// Compute a [`Summary`]; `None` if every reading is missing or the series
/// is empty.
pub fn summarize(series: &TimeSeries) -> Option<Summary> {
    summarize_slice(series.values())
}

/// [`summarize`] over a raw slice.
pub fn summarize_slice(values: &[f32]) -> Option<Summary> {
    let mut count = 0usize;
    let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
    let mut sum = 0.0f64;
    for &v in values {
        if v.is_nan() {
            continue;
        }
        count += 1;
        min = min.min(v);
        max = max.max(v);
        sum += v as f64;
    }
    if count == 0 {
        return None;
    }
    let mean = sum / count as f64;
    let var = values
        .iter()
        .filter(|v| !v.is_nan())
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / count as f64;
    Some(Summary {
        count,
        min,
        max,
        mean: mean as f32,
        std: var.sqrt() as f32,
    })
}

/// Empirical quantile (`q` in `[0,1]`) of present readings using the
/// nearest-rank method; `None` if all readings are missing.
pub fn quantile(series: &TimeSeries, q: f32) -> Option<f32> {
    let mut present: Vec<f32> = series
        .values()
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .collect();
    if present.is_empty() {
        return None;
    }
    present.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * present.len() as f32).ceil() as usize).clamp(1, present.len());
    Some(present[rank - 1])
}

/// Centered moving average with an odd window, shrinking at the edges.
/// Missing readings stay missing and are excluded from neighbouring means.
pub fn moving_average(series: &TimeSeries, window: usize) -> TimeSeries {
    let window = window.max(1) | 1; // force odd
    let half = window / 2;
    let values = series.values();
    let mut out = Vec::with_capacity(values.len());
    for i in 0..values.len() {
        if values[i].is_nan() {
            out.push(f32::NAN);
            continue;
        }
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(values.len());
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for &v in &values[lo..hi] {
            if !v.is_nan() {
                sum += v as f64;
                n += 1;
            }
        }
        out.push((sum / n as f64) as f32);
    }
    TimeSeries::from_values(series.start(), series.interval_secs(), out)
}

/// First difference `x[i+1] - x[i]` (length `n-1`); differences touching a
/// missing reading are missing. Used for edge/event detection features.
pub fn diff(series: &TimeSeries) -> TimeSeries {
    let values = series.values();
    let out: Vec<f32> = values
        .windows(2)
        .map(|w| {
            if w[0].is_nan() || w[1].is_nan() {
                f32::NAN
            } else {
                w[1] - w[0]
            }
        })
        .collect();
    TimeSeries::from_values(series.start(), series.interval_secs(), out)
}

/// Count of upward edges exceeding `threshold` watts between consecutive
/// readings — a cheap appliance-activation event proxy used by the weak
/// baseline's feature vector.
pub fn rising_edges(series: &TimeSeries, threshold: f32) -> usize {
    series
        .values()
        .windows(2)
        .filter(|w| !w[0].is_nan() && !w[1].is_nan() && w[1] - w[0] > threshold)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let ts = TimeSeries::from_values(0, 60, vec![1.0, 2.0, 3.0, 4.0]);
        let s = summarize(&ts).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-6);
        assert!((s.std - (1.25f32).sqrt()).abs() < 1e-5);
    }

    #[test]
    fn summary_skips_missing() {
        let ts = TimeSeries::from_values(0, 60, vec![f32::NAN, 2.0, 4.0]);
        let s = summarize(&ts).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 3.0);
        assert!(summarize(&TimeSeries::missing(0, 60, 3)).is_none());
        assert!(summarize(&TimeSeries::from_values(0, 60, vec![])).is_none());
    }

    #[test]
    fn quantiles_nearest_rank() {
        let ts = TimeSeries::from_values(0, 60, vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(quantile(&ts, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&ts, 0.5).unwrap(), 3.0);
        assert_eq!(quantile(&ts, 1.0).unwrap(), 5.0);
        assert_eq!(quantile(&ts, 0.2).unwrap(), 1.0);
        assert!(quantile(&TimeSeries::missing(0, 60, 2), 0.5).is_none());
    }

    #[test]
    fn moving_average_smooths() {
        let ts = TimeSeries::from_values(0, 60, vec![0.0, 0.0, 9.0, 0.0, 0.0]);
        let ma = moving_average(&ts, 3);
        assert_eq!(ma.values(), &[0.0, 3.0, 3.0, 3.0, 0.0]);
        // Even window is promoted to the next odd size.
        let ma2 = moving_average(&ts, 2);
        assert_eq!(ma2.values(), &[0.0, 3.0, 3.0, 3.0, 0.0]);
    }

    #[test]
    fn moving_average_keeps_missing() {
        let ts = TimeSeries::from_values(0, 60, vec![3.0, f32::NAN, 9.0]);
        let ma = moving_average(&ts, 3);
        assert_eq!(ma.values()[0], 3.0);
        assert!(ma.values()[1].is_nan());
        assert_eq!(ma.values()[2], 9.0);
    }

    #[test]
    fn diff_and_edges() {
        let ts = TimeSeries::from_values(0, 60, vec![0.0, 100.0, 100.0, 0.0, f32::NAN, 50.0]);
        let d = diff(&ts);
        assert_eq!(d.len(), 5);
        assert_eq!(d.values()[0], 100.0);
        assert_eq!(d.values()[1], 0.0);
        assert_eq!(d.values()[2], -100.0);
        assert!(d.values()[3].is_nan());
        assert!(d.values()[4].is_nan());
        assert_eq!(rising_edges(&ts, 50.0), 1);
        assert_eq!(rising_edges(&ts, 150.0), 0);
    }
}
