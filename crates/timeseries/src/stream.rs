//! Suffix-delta iteration over a series for streaming consumers.
//!
//! A streaming engine wants the series as an ordered feed of two event
//! kinds: runs of present samples (to push into the model) and runs of
//! missing samples (gap boundaries that degrade windows / invalidate
//! halos). [`StreamCursor`] walks a [`TimeSeries`] once, splitting at
//! every NaN-run boundary and additionally capping present runs at a
//! caller-chosen chunk size — the push stride. Events partition the
//! series exactly: indices are contiguous, nothing is dropped or
//! reordered, and the cursor never allocates (present runs are borrowed
//! slices of the underlying values).

use crate::series::TimeSeries;

/// One step of a streamed series: either a run of present samples or a
/// run of missing ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamEvent<'a> {
    /// A gap-free run of samples starting at `index`, at most the
    /// cursor's chunk length.
    Samples {
        /// Offset of `values[0]` within the series.
        index: usize,
        /// The samples themselves (no NaN inside).
        values: &'a [f32],
    },
    /// A run of missing samples — a gap boundary for invalidation.
    Gap {
        /// Offset of the first missing sample.
        index: usize,
        /// Number of consecutive missing samples.
        len: usize,
    },
}

impl StreamEvent<'_> {
    /// Offset of the event's first sample within the series.
    pub fn index(&self) -> usize {
        match self {
            StreamEvent::Samples { index, .. } | StreamEvent::Gap { index, .. } => *index,
        }
    }

    /// Number of samples the event covers.
    pub fn len(&self) -> usize {
        match self {
            StreamEvent::Samples { values, .. } => values.len(),
            StreamEvent::Gap { len, .. } => *len,
        }
    }

    /// True for zero-length events (never produced by the cursor).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Iterator of [`StreamEvent`]s over a series: suffix deltas for a
/// streaming engine. See the module docs.
#[derive(Debug, Clone)]
pub struct StreamCursor<'a> {
    values: &'a [f32],
    pos: usize,
    chunk: usize,
}

impl<'a> StreamCursor<'a> {
    /// Walk `series` in present-runs of at most `chunk` samples (the push
    /// stride) and unbounded gap runs.
    pub fn new(series: &'a TimeSeries, chunk: usize) -> StreamCursor<'a> {
        assert!(chunk > 0, "stream chunk must be positive");
        StreamCursor {
            values: series.values(),
            pos: 0,
            chunk,
        }
    }

    /// Offset of the next event (== series length when exhausted).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Samples not yet emitted.
    pub fn remaining(&self) -> usize {
        self.values.len() - self.pos
    }
}

impl<'a> Iterator for StreamCursor<'a> {
    type Item = StreamEvent<'a>;

    fn next(&mut self) -> Option<StreamEvent<'a>> {
        let start = self.pos;
        let rest = &self.values[start..];
        let first = *rest.first()?;
        let run = if first.is_nan() {
            let len = rest.iter().take_while(|v| v.is_nan()).count();
            self.pos += len;
            StreamEvent::Gap { index: start, len }
        } else {
            let len = rest
                .iter()
                .take(self.chunk)
                .take_while(|v| !v.is_nan())
                .count();
            self.pos += len;
            StreamEvent::Samples {
                index: start,
                values: &rest[..len],
            }
        };
        Some(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: Vec<f32>) -> TimeSeries {
        TimeSeries::from_values(0, 30, values)
    }

    #[test]
    fn events_partition_the_series_exactly() {
        let nan = f32::NAN;
        let ts = series(vec![1.0, 2.0, nan, nan, nan, 3.0, 4.0, 5.0, nan, 6.0]);
        let events: Vec<StreamEvent<'_>> = StreamCursor::new(&ts, 16).collect();
        assert_eq!(events.len(), 5);
        assert_eq!(
            events[0],
            StreamEvent::Samples {
                index: 0,
                values: &[1.0, 2.0]
            }
        );
        assert_eq!(events[1], StreamEvent::Gap { index: 2, len: 3 });
        assert_eq!(
            events[2],
            StreamEvent::Samples {
                index: 5,
                values: &[3.0, 4.0, 5.0]
            }
        );
        assert_eq!(events[3], StreamEvent::Gap { index: 8, len: 1 });
        assert_eq!(events[4].index(), 9);
        // Contiguity: each event starts where the previous ended.
        let mut at = 0;
        for e in &events {
            assert_eq!(e.index(), at);
            assert!(!e.is_empty());
            at += e.len();
        }
        assert_eq!(at, ts.len());
    }

    #[test]
    fn chunk_caps_present_runs_but_not_gaps() {
        let mut values = vec![1.0f32; 10];
        values.extend([f32::NAN; 7]);
        values.extend([2.0f32; 3]);
        let ts = series(values);
        let events: Vec<StreamEvent<'_>> = StreamCursor::new(&ts, 4).collect();
        let lens: Vec<usize> = events.iter().map(|e| e.len()).collect();
        assert_eq!(lens, vec![4, 4, 2, 7, 3]);
        assert!(matches!(events[3], StreamEvent::Gap { len: 7, .. }));
    }

    #[test]
    fn cursor_tracks_position_and_handles_edges() {
        let ts = series(vec![f32::NAN, f32::NAN]);
        let mut cur = StreamCursor::new(&ts, 8);
        assert_eq!(cur.remaining(), 2);
        assert_eq!(cur.next(), Some(StreamEvent::Gap { index: 0, len: 2 }));
        assert_eq!(cur.pos(), 2);
        assert_eq!(cur.next(), None);
        let empty = series(Vec::new());
        assert_eq!(StreamCursor::new(&empty, 1).next(), None);
    }
}
