//! Sliding-window extraction and interactive navigation.
//!
//! DeviceScope lets the user pick a window length of **6 hours, 12 hours or
//! 1 day** and page through a loaded series with **Prev** / **Next**
//! buttons. Training likewise divides each household's consumption into
//! fixed-length subsequences, *omitting subsequences with missing data*.
//! Both behaviours live here: [`WindowIter`] for batch extraction,
//! [`WindowCursor`] for interactive paging, and
//! [`subsequences_complete`] for the training-time extraction rule.

use crate::series::{StatusSeries, TimeSeries};
use crate::{Result, TsError};
use serde::{Deserialize, Serialize};

/// The window lengths offered by the DeviceScope GUI, plus an escape hatch
/// for experiments with custom lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowLength {
    /// 6 hours (360 samples at 1-minute resolution).
    SixHours,
    /// 12 hours (720 samples at 1-minute resolution).
    TwelveHours,
    /// 1 day (1440 samples at 1-minute resolution).
    OneDay,
    /// A custom number of samples (must be positive).
    Custom(usize),
}

impl WindowLength {
    /// Window size in *samples* for a series with the given interval.
    ///
    /// Durations that are not an exact multiple of the interval round down,
    /// with a minimum of one sample.
    pub fn samples(self, interval_secs: u32) -> usize {
        match self {
            WindowLength::SixHours => (6 * 3600 / interval_secs as usize).max(1),
            WindowLength::TwelveHours => (12 * 3600 / interval_secs as usize).max(1),
            WindowLength::OneDay => (24 * 3600 / interval_secs as usize).max(1),
            WindowLength::Custom(n) => n.max(1),
        }
    }

    /// Human-readable label used by the app.
    pub fn label(self) -> String {
        match self {
            WindowLength::SixHours => "6 hours".into(),
            WindowLength::TwelveHours => "12 hours".into(),
            WindowLength::OneDay => "1 day".into(),
            WindowLength::Custom(n) => format!("{n} samples"),
        }
    }

    /// The three lengths the GUI offers.
    pub fn gui_choices() -> [WindowLength; 3] {
        [
            WindowLength::SixHours,
            WindowLength::TwelveHours,
            WindowLength::OneDay,
        ]
    }
}

/// Iterator over non-overlapping complete windows of a series.
///
/// A trailing partial window is not yielded.
pub struct WindowIter<'a> {
    series: &'a TimeSeries,
    size: usize,
    pos: usize,
}

impl<'a> WindowIter<'a> {
    pub(crate) fn new(series: &'a TimeSeries, length: WindowLength) -> Self {
        let size = length.samples(series.interval_secs());
        Self {
            series,
            size,
            pos: 0,
        }
    }

    /// Window size in samples.
    pub fn window_size(&self) -> usize {
        self.size
    }
}

impl Iterator for WindowIter<'_> {
    type Item = TimeSeries;

    fn next(&mut self) -> Option<TimeSeries> {
        let hi = self.pos + self.size;
        if hi > self.series.len() {
            return None;
        }
        let w = self
            .series
            .slice(self.pos, hi)
            .expect("window bounds are validated");
        self.pos = hi;
        Some(w)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.series.len() - self.pos) / self.size;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for WindowIter<'_> {}

/// Number of complete non-overlapping windows in a series.
pub fn window_count(series: &TimeSeries, length: WindowLength) -> usize {
    let size = length.samples(series.interval_secs());
    series.len() / size
}

/// Extract complete, *gap-free* subsequences with a stride.
///
/// This is the training-time extraction rule of the paper: subsequences
/// containing any missing reading are omitted. `stride == size` gives
/// non-overlapping windows; a smaller stride gives overlapping ones (useful
/// for augmenting scarce positive windows).
pub fn subsequences_complete(
    series: &TimeSeries,
    size: usize,
    stride: usize,
) -> Result<Vec<TimeSeries>> {
    if size == 0 || stride == 0 {
        return Err(TsError::OutOfRange {
            detail: "subsequence size and stride must be positive".into(),
        });
    }
    if series.len() < size {
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity((series.len() - size) / stride + 1);
    let values = series.values();
    let mut lo = 0;
    while lo + size <= values.len() {
        if values[lo..lo + size].iter().all(|v| !v.is_nan()) {
            out.push(series.slice(lo, lo + size).expect("validated bounds"));
        }
        lo += stride;
    }
    Ok(out)
}

/// A paged view over a series: the state behind the GUI's Prev/Next buttons.
///
/// The cursor always points at a *complete* window; `prev`/`next` saturate
/// at the boundaries (like the GUI, which disables the buttons) and report
/// whether they moved.
#[derive(Debug, Clone)]
pub struct WindowCursor {
    series: TimeSeries,
    status: Vec<(String, StatusSeries)>,
    size: usize,
    index: usize,
}

impl WindowCursor {
    /// Create a cursor over `series` with the given window length.
    ///
    /// Fails if the series is shorter than one window.
    pub fn new(series: TimeSeries, length: WindowLength) -> Result<Self> {
        let size = length.samples(series.interval_secs());
        if series.len() < size {
            return Err(TsError::OutOfRange {
                detail: format!(
                    "series of {} samples is shorter than one {} window ({} samples)",
                    series.len(),
                    length.label(),
                    size
                ),
            });
        }
        Ok(Self {
            series,
            status: Vec::new(),
            size,
            index: 0,
        })
    }

    /// Attach a named aligned status channel (e.g. ground truth or a
    /// prediction) so that window views can expose the matching slice.
    pub fn attach_status(&mut self, name: impl Into<String>, status: StatusSeries) -> Result<()> {
        if status.start() != self.series.start()
            || status.interval_secs() != self.series.interval_secs()
            || status.len() != self.series.len()
        {
            return Err(TsError::Misaligned {
                detail: "attached status must align with the browsed series".into(),
            });
        }
        self.status.push((name.into(), status));
        Ok(())
    }

    /// Window size in samples.
    pub fn window_size(&self) -> usize {
        self.size
    }

    /// Index of the current window (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of complete windows.
    pub fn count(&self) -> usize {
        self.series.len() / self.size
    }

    /// The current window of the aggregate series.
    pub fn current(&self) -> TimeSeries {
        let lo = self.index * self.size;
        self.series
            .slice(lo, lo + self.size)
            .expect("cursor stays in range")
    }

    /// The current window of an attached status channel, by name.
    pub fn current_status(&self, name: &str) -> Option<StatusSeries> {
        let lo = self.index * self.size;
        self.status
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.slice(lo, lo + self.size).expect("cursor stays in range"))
    }

    /// Names of attached status channels, in attachment order.
    pub fn status_names(&self) -> Vec<&str> {
        self.status.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Move to the next window. Returns `true` if the cursor moved.
    #[allow(clippy::should_implement_trait)] // "Next" is the GUI button, not an iterator
    pub fn next(&mut self) -> bool {
        if self.index + 1 < self.count() {
            self.index += 1;
            true
        } else {
            false
        }
    }

    /// Move to the previous window. Returns `true` if the cursor moved.
    pub fn prev(&mut self) -> bool {
        if self.index > 0 {
            self.index -= 1;
            true
        } else {
            false
        }
    }

    /// Jump to window `i`; fails if out of range.
    pub fn seek(&mut self, i: usize) -> Result<()> {
        if i >= self.count() {
            return Err(TsError::OutOfRange {
                detail: format!("window {i} of {}", self.count()),
            });
        }
        self.index = i;
        Ok(())
    }

    /// Borrow the underlying full series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day_series() -> TimeSeries {
        TimeSeries::from_values(0, 60, (0..1440).map(|i| i as f32).collect())
    }

    #[test]
    fn window_length_samples() {
        assert_eq!(WindowLength::SixHours.samples(60), 360);
        assert_eq!(WindowLength::TwelveHours.samples(60), 720);
        assert_eq!(WindowLength::OneDay.samples(60), 1440);
        assert_eq!(WindowLength::OneDay.samples(10), 8640);
        assert_eq!(WindowLength::Custom(7).samples(60), 7);
        assert_eq!(WindowLength::Custom(0).samples(60), 1);
        // Interval longer than the nominal duration still yields >= 1 sample.
        assert_eq!(WindowLength::SixHours.samples(7 * 3600), 1);
    }

    #[test]
    fn labels_are_human_readable() {
        assert_eq!(WindowLength::SixHours.label(), "6 hours");
        assert_eq!(WindowLength::Custom(42).label(), "42 samples");
        assert_eq!(WindowLength::gui_choices().len(), 3);
    }

    #[test]
    fn iterator_yields_complete_windows_only() {
        let ts = day_series();
        let ws: Vec<_> = ts.windows(WindowLength::SixHours).collect();
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0].values()[0], 0.0);
        assert_eq!(ws[1].values()[0], 360.0);
        assert_eq!(ws[3].start(), 3 * 360 * 60);
        // 1440 is not divisible by 1000: one window, remainder dropped.
        let ws: Vec<_> = ts.windows(WindowLength::Custom(1000)).collect();
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn iterator_len_matches_window_count() {
        let ts = day_series();
        let it = ts.windows(WindowLength::TwelveHours);
        assert_eq!(it.len(), window_count(&ts, WindowLength::TwelveHours));
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn subsequences_skip_gaps() {
        let mut ts = day_series();
        // Poison one sample in the second 360-window.
        ts.values_mut()[400] = f32::NAN;
        let subs = subsequences_complete(&ts, 360, 360).unwrap();
        assert_eq!(subs.len(), 3); // window 1 dropped
        assert_eq!(subs[1].start(), 720 * 60);
    }

    #[test]
    fn subsequences_overlapping_stride() {
        let ts = TimeSeries::from_values(0, 60, (0..10).map(|i| i as f32).collect());
        let subs = subsequences_complete(&ts, 4, 2).unwrap();
        assert_eq!(subs.len(), 4); // starts 0,2,4,6
        assert_eq!(subs[3].values(), &[6.0, 7.0, 8.0, 9.0]);
        assert!(subsequences_complete(&ts, 0, 1).is_err());
        assert!(subsequences_complete(&ts, 4, 0).is_err());
        // Series shorter than the window: empty, not an error.
        assert!(subsequences_complete(&ts, 11, 1).unwrap().is_empty());
    }

    #[test]
    fn cursor_navigation_saturates() {
        let ts = day_series();
        let mut c = WindowCursor::new(ts, WindowLength::SixHours).unwrap();
        assert_eq!(c.count(), 4);
        assert_eq!(c.index(), 0);
        assert!(!c.prev());
        assert!(c.next());
        assert!(c.next());
        assert!(c.next());
        assert!(!c.next());
        assert_eq!(c.index(), 3);
        assert_eq!(c.current().values()[0], 3.0 * 360.0);
        assert!(c.prev());
        assert_eq!(c.index(), 2);
        c.seek(0).unwrap();
        assert_eq!(c.index(), 0);
        assert!(c.seek(4).is_err());
    }

    #[test]
    fn cursor_rejects_short_series() {
        let ts = TimeSeries::from_values(0, 60, vec![1.0; 100]);
        assert!(WindowCursor::new(ts, WindowLength::SixHours).is_err());
    }

    #[test]
    fn cursor_status_channels() {
        let ts = day_series();
        let truth = StatusSeries::from_states(0, 60, vec![1; 1440]);
        let mut c = WindowCursor::new(ts, WindowLength::TwelveHours).unwrap();
        c.attach_status("kettle", truth).unwrap();
        assert_eq!(c.status_names(), vec!["kettle"]);
        let w = c.current_status("kettle").unwrap();
        assert_eq!(w.len(), 720);
        assert!(c.current_status("unknown").is_none());
        // Misaligned attachment is rejected.
        let bad = StatusSeries::from_states(60, 60, vec![0; 1440]);
        assert!(c.attach_status("bad", bad).is_err());
    }
}
