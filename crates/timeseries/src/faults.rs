//! Fault injection for the serving path.
//!
//! Real smart-meter feeds degrade in a handful of recurring ways:
//! transmission drop-outs (gap bursts), sensor glitches (scattered NaN),
//! feeds that die mid-day (truncation), electrical transients (value
//! spikes) and stuck meters (flat segments). This module synthesizes those
//! faults deterministically so the chaos suite and the `DS_FAULT` smoke
//! stage can assert the serving contract: no panic, faulted regions
//! surface as [`Status::Unknown`], clean regions keep bit-identical
//! decisions.
//!
//! ## `DS_FAULT` syntax
//!
//! A comma-separated list of `kind:intensity` entries, e.g.
//! `DS_FAULT=gaps:0.05,spikes:0.01`. Kinds:
//!
//! | kind       | intensity means                         | effect            |
//! |------------|------------------------------------------|-------------------|
//! | `gaps`     | fraction of samples removed, in bursts   | readings → NaN    |
//! | `nans`     | per-sample removal probability           | readings → NaN    |
//! | `truncate` | fraction of the tail dropped             | series shortened  |
//! | `spikes`   | per-sample corruption probability        | value × 50 + 3 kW |
//! | `flat`     | fraction of the series stuck at 0 W      | one zero segment  |
//!
//! An optional `seed:<n>` entry reseeds the deterministic RNG (default 7).
//!
//! [`Status::Unknown`]: crate::series::Status::Unknown

use crate::{Result, TimeSeries, TsError};

/// One class of input degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Bursty transmission gaps: contiguous runs of readings become NaN.
    Gaps,
    /// Scattered single-sample drop-outs: readings become NaN i.i.d.
    Nans,
    /// The feed dies early: the trailing fraction of the series is dropped.
    Truncate,
    /// Electrical transients: individual readings jump to absurd values.
    Spikes,
    /// A stuck meter: one contiguous segment reads a constant 0 W.
    Flat,
}

impl FaultKind {
    /// The `DS_FAULT` keyword for this kind.
    pub fn keyword(self) -> &'static str {
        match self {
            FaultKind::Gaps => "gaps",
            FaultKind::Nans => "nans",
            FaultKind::Truncate => "truncate",
            FaultKind::Spikes => "spikes",
            FaultKind::Flat => "flat",
        }
    }

    /// Whether this fault removes readings (vs. corrupting their values).
    /// Removed readings must surface as `Unknown` downstream; corrupted
    /// values are indistinguishable from real (if absurd) power draw, so
    /// the serving contract only demands no-panic + clean-region identity.
    pub fn removes_data(self) -> bool {
        matches!(
            self,
            FaultKind::Gaps | FaultKind::Nans | FaultKind::Truncate
        )
    }
}

/// One fault with its intensity in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Which degradation to apply.
    pub kind: FaultKind,
    /// How much of the series it touches (see the module table).
    pub intensity: f32,
}

/// A deterministic, ordered set of faults to apply to a series.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Faults in application order (truncation always runs first).
    pub specs: Vec<FaultSpec>,
    /// Seed for the deterministic RNG.
    pub seed: u64,
}

/// A faulted series plus the ground truth of where the faults landed.
#[derive(Debug, Clone)]
pub struct FaultedSeries {
    /// The degraded series (shorter than the input iff truncated).
    pub series: TimeSeries,
    /// Per-sample: `true` where a fault removed the reading (now NaN).
    pub missing: Vec<bool>,
    /// Per-sample: `true` where a fault altered the value (still present).
    pub corrupted: Vec<bool>,
    /// Samples dropped from the tail by truncation.
    pub truncated: usize,
}

impl FaultedSeries {
    /// Whether sample `i` of the faulted series was touched by any fault.
    pub fn touched(&self, i: usize) -> bool {
        self.missing[i] || self.corrupted[i]
    }
}

/// Minimal deterministic RNG (splitmix64) so fault placement needs no
/// external dependency and reproduces exactly across runs and platforms.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform index in `[0, n)` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn parse_entry(entry: &str) -> Result<(String, f32)> {
    let (key, value) = entry.split_once(':').ok_or_else(|| TsError::Parse {
        line: 0,
        detail: format!("DS_FAULT entry {entry:?} is not kind:intensity"),
    })?;
    let value: f32 = value.trim().parse().map_err(|_| TsError::Parse {
        line: 0,
        detail: format!("DS_FAULT intensity {value:?} is not a number"),
    })?;
    Ok((key.trim().to_ascii_lowercase(), value))
}

impl FaultPlan {
    /// Parse a `DS_FAULT`-style spec, e.g. `"gaps:0.05,spikes:0.01"`.
    pub fn parse(spec: &str) -> Result<FaultPlan> {
        let mut specs = Vec::new();
        let mut seed = 7u64;
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = parse_entry(entry)?;
            if key == "seed" {
                seed = value as u64;
                continue;
            }
            let kind = match key.as_str() {
                "gaps" => FaultKind::Gaps,
                "nans" => FaultKind::Nans,
                "truncate" => FaultKind::Truncate,
                "spikes" => FaultKind::Spikes,
                "flat" => FaultKind::Flat,
                _ => {
                    return Err(TsError::Parse {
                        line: 0,
                        detail: format!("unknown DS_FAULT kind {key:?}"),
                    })
                }
            };
            if !(0.0..=1.0).contains(&value) {
                return Err(TsError::Parse {
                    line: 0,
                    detail: format!("DS_FAULT intensity for {key} must be in [0, 1], got {value}"),
                });
            }
            specs.push(FaultSpec {
                kind,
                intensity: value,
            });
        }
        if specs.is_empty() {
            return Err(TsError::Parse {
                line: 0,
                detail: format!("DS_FAULT spec {spec:?} names no faults"),
            });
        }
        Ok(FaultPlan { specs, seed })
    }

    /// Read and parse the `DS_FAULT` environment variable. `Ok(None)` when
    /// unset or empty; `Err` when set but malformed (startup configuration
    /// errors should be loud, not silently ignored).
    pub fn from_env() -> Result<Option<FaultPlan>> {
        match std::env::var("DS_FAULT") {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Apply every fault to `series`, deterministically. Truncation runs
    /// first (it changes the length every later fault indexes against);
    /// the rest apply in spec order.
    pub fn apply(&self, series: &TimeSeries) -> FaultedSeries {
        let mut rng = SplitMix64(self.seed ^ 0xD5_CE_5C_0D_E5_C0_9Eu64);
        let mut truncated = 0usize;
        for spec in self.specs.iter().filter(|s| s.kind == FaultKind::Truncate) {
            let drop = ((series.len() as f32 * spec.intensity).ceil() as usize).min(series.len());
            truncated = truncated.max(drop);
        }
        let len = series.len() - truncated;
        let mut values = series.values()[..len].to_vec();
        let mut missing = vec![false; len];
        let mut corrupted = vec![false; len];

        for spec in &self.specs {
            if len == 0 {
                break;
            }
            match spec.kind {
                FaultKind::Truncate => {}
                FaultKind::Gaps => {
                    let target = (len as f32 * spec.intensity) as usize;
                    let mut removed = 0usize;
                    // Bursts of 5–30 samples until the target fraction of
                    // the series is gone; bounded so tiny series terminate.
                    let mut attempts = 0;
                    while removed < target && attempts < 4 * len {
                        attempts += 1;
                        let burst = 5 + rng.below(26);
                        let start = rng.below(len);
                        let end = (start + burst).min(len);
                        for i in start..end {
                            if !missing[i] {
                                missing[i] = true;
                                values[i] = f32::NAN;
                                removed += 1;
                            }
                        }
                    }
                }
                FaultKind::Nans => {
                    for i in 0..len {
                        if rng.next_f32() < spec.intensity && !missing[i] {
                            missing[i] = true;
                            values[i] = f32::NAN;
                        }
                    }
                }
                FaultKind::Spikes => {
                    for i in 0..len {
                        if rng.next_f32() < spec.intensity && !missing[i] {
                            corrupted[i] = true;
                            values[i] = values[i] * 50.0 + 3000.0;
                        }
                    }
                }
                FaultKind::Flat => {
                    let seg = ((len as f32 * spec.intensity) as usize).min(len);
                    if seg > 0 {
                        let start = rng.below(len - seg + 1);
                        for i in start..start + seg {
                            if !missing[i] {
                                corrupted[i] = true;
                                values[i] = 0.0;
                            }
                        }
                    }
                }
            }
        }

        FaultedSeries {
            series: TimeSeries::from_values(series.start(), series.interval_secs(), values),
            missing,
            corrupted,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day() -> TimeSeries {
        TimeSeries::from_values(0, 60, (0..1440).map(|i| (i % 97) as f32).collect())
    }

    #[test]
    fn parse_accepts_the_documented_syntax() {
        let plan = FaultPlan::parse("gaps:0.05,spikes:0.01").unwrap();
        assert_eq!(plan.specs.len(), 2);
        assert_eq!(plan.specs[0].kind, FaultKind::Gaps);
        assert!((plan.specs[0].intensity - 0.05).abs() < 1e-6);
        assert_eq!(plan.specs[1].kind, FaultKind::Spikes);
        assert_eq!(plan.seed, 7);
        let seeded = FaultPlan::parse(" nans:0.1 , seed:42 ").unwrap();
        assert_eq!(seeded.seed, 42);
        assert_eq!(seeded.specs.len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("gaps").is_err());
        assert!(FaultPlan::parse("gaps:lots").is_err());
        assert!(FaultPlan::parse("warp:0.5").is_err());
        assert!(FaultPlan::parse("gaps:1.5").is_err());
        assert!(
            FaultPlan::parse("seed:9").is_err(),
            "seed alone is no fault"
        );
    }

    #[test]
    fn apply_is_deterministic() {
        let plan = FaultPlan::parse("gaps:0.1,nans:0.02,spikes:0.01").unwrap();
        let a = plan.apply(&day());
        let b = plan.apply(&day());
        assert!(a.series.same_as(&b.series, 0.0));
        assert_eq!(a.missing, b.missing);
        assert_eq!(a.corrupted, b.corrupted);
        // A different seed moves the faults.
        let c = plan.clone().with_seed(99).apply(&day());
        assert_ne!(a.missing, c.missing);
    }

    #[test]
    fn gaps_remove_roughly_the_requested_fraction() {
        let plan = FaultPlan::parse("gaps:0.1").unwrap();
        let f = plan.apply(&day());
        let removed = f.missing.iter().filter(|&&m| m).count();
        assert!(removed >= 144, "only {removed} samples removed");
        assert!(removed < 300, "{removed} samples removed for a 10% target");
        for (i, &m) in f.missing.iter().enumerate() {
            assert_eq!(m, f.series.values()[i].is_nan());
        }
        assert_eq!(f.truncated, 0);
    }

    #[test]
    fn truncation_shortens_and_marks_nothing() {
        let plan = FaultPlan::parse("truncate:0.25").unwrap();
        let f = plan.apply(&day());
        assert_eq!(f.truncated, 360);
        assert_eq!(f.series.len(), 1080);
        assert!(f.missing.iter().all(|&m| !m));
        assert_eq!(f.series.values(), &day().values()[..1080]);
    }

    #[test]
    fn spikes_and_flat_corrupt_without_removing() {
        let plan = FaultPlan::parse("spikes:0.05,flat:0.1").unwrap();
        let f = plan.apply(&day());
        assert_eq!(f.series.len(), 1440);
        assert!(!f.series.has_missing());
        let corrupted = f.corrupted.iter().filter(|&&c| c).count();
        assert!(corrupted >= 144, "only {corrupted} corrupted");
        assert!(f.missing.iter().all(|&m| !m));
        // Untouched samples are unmodified.
        for i in 0..1440 {
            if !f.touched(i) {
                assert_eq!(f.series.values()[i], day().values()[i]);
            }
        }
    }

    #[test]
    fn from_env_round_trips() {
        // Avoid cross-test env races: only assert the unset path here; the
        // set path is covered via parse() which from_env delegates to.
        if std::env::var("DS_FAULT").is_err() {
            assert!(FaultPlan::from_env().unwrap().is_none());
        }
    }

    #[test]
    fn empty_series_survives_every_fault() {
        let plan = FaultPlan::parse("gaps:0.5,nans:0.5,truncate:0.5,spikes:0.5,flat:0.5").unwrap();
        let empty = TimeSeries::from_values(0, 60, vec![]);
        let f = plan.apply(&empty);
        assert_eq!(f.series.len(), 0);
        assert_eq!(f.truncated, 0);
    }
}
