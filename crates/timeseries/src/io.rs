//! Dependency-free CSV import/export.
//!
//! DeviceScope notes that *"users could upload other datasets, as well"*.
//! This module provides the upload path: a two-column
//! `timestamp,power` CSV format (header optional, empty field or `nan` for
//! missing readings). The reader validates that timestamps are regular and
//! infers the interval.

use crate::series::TimeSeries;
use crate::{Result, TsError};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Write a series as `timestamp,power` CSV with a header.
pub fn write_csv<W: Write>(series: &TimeSeries, mut w: W) -> Result<()> {
    writeln!(w, "timestamp,power_w")?;
    for (i, &v) in series.values().iter().enumerate() {
        if v.is_nan() {
            writeln!(w, "{},", series.timestamp_at(i))?;
        } else {
            writeln!(w, "{},{}", series.timestamp_at(i), v)?;
        }
    }
    Ok(())
}

/// Write a series to a file path.
pub fn write_csv_file(series: &TimeSeries, path: impl AsRef<Path>) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_csv(series, std::io::BufWriter::new(f))
}

/// Read a `timestamp,power` CSV.
///
/// Rules:
/// - an optional header line (first field not parseable as an integer) is
///   skipped;
/// - blank lines are skipped;
/// - the power field may be empty, `nan` or `NaN` for a missing reading;
/// - timestamps must be strictly increasing and regularly spaced.
pub fn read_csv<R: Read>(r: R) -> Result<TimeSeries> {
    let reader = BufReader::new(r);
    let mut timestamps: Vec<i64> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields = trimmed.splitn(2, ',');
        let ts_field = fields.next().unwrap_or("").trim();
        let val_field = fields.next().unwrap_or("").trim();
        let ts: i64 = match ts_field.parse() {
            Ok(t) => t,
            Err(_) => {
                if timestamps.is_empty() && lineno == 0 {
                    continue; // header
                }
                return Err(TsError::Parse {
                    line: lineno + 1,
                    detail: format!("invalid timestamp {ts_field:?}"),
                });
            }
        };
        let v: f32 = if val_field.is_empty() || val_field.eq_ignore_ascii_case("nan") {
            f32::NAN
        } else {
            val_field.parse().map_err(|_| TsError::Parse {
                line: lineno + 1,
                detail: format!("invalid power value {val_field:?}"),
            })?
        };
        timestamps.push(ts);
        values.push(v);
    }
    if timestamps.is_empty() {
        return Err(TsError::EmptySeries);
    }
    if timestamps.len() == 1 {
        return Ok(TimeSeries::from_values(timestamps[0], 60, values));
    }
    let interval = timestamps[1] - timestamps[0];
    if interval <= 0 || interval > u32::MAX as i64 {
        return Err(TsError::Parse {
            line: 2,
            detail: format!("non-increasing or oversized interval {interval}"),
        });
    }
    for (i, pair) in timestamps.windows(2).enumerate() {
        if pair[1] - pair[0] != interval {
            return Err(TsError::Parse {
                line: i + 2,
                detail: format!(
                    "irregular sampling: expected interval {interval}, found {}",
                    pair[1] - pair[0]
                ),
            });
        }
    }
    Ok(TimeSeries::from_values(
        timestamps[0],
        interval as u32,
        values,
    ))
}

/// Read a series from a file path.
pub fn read_csv_file(path: impl AsRef<Path>) -> Result<TimeSeries> {
    let f = std::fs::File::open(path)?;
    read_csv(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_missing() {
        let ts = TimeSeries::from_values(100, 60, vec![1.5, f32::NAN, 3.0]);
        let mut buf = Vec::new();
        write_csv(&ts, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.start(), 100);
        assert_eq!(back.interval_secs(), 60);
        assert_eq!(back.values()[0], 1.5);
        assert!(back.values()[1].is_nan());
        assert_eq!(back.values()[2], 3.0);
    }

    #[test]
    fn reads_headerless_and_nan_token() {
        let csv = "0,5\n60,nan\n120,7.25\n";
        let ts = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ts.len(), 3);
        assert!(ts.values()[1].is_nan());
        assert_eq!(ts.values()[2], 7.25);
    }

    #[test]
    fn skips_blank_lines() {
        let csv = "timestamp,power_w\n\n0,1\n\n60,2\n";
        let ts = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn rejects_irregular_sampling() {
        let csv = "0,1\n60,2\n180,3\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        // The irregular step is between rows 2 and 3; it is reported at row 3.
        assert!(matches!(err, TsError::Parse { line: 3, .. }));
    }

    #[test]
    fn rejects_decreasing_timestamps() {
        let csv = "60,1\n0,2\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_fields_and_empty_input() {
        assert!(read_csv("0,abc\n".as_bytes()).is_err());
        assert!(read_csv("".as_bytes()).is_err());
        // A non-numeric line after data is an error, not a header.
        assert!(read_csv("0,1\nheader,2\n".as_bytes()).is_err());
    }

    #[test]
    fn single_row_defaults_to_one_minute() {
        let ts = read_csv("0,42\n".as_bytes()).unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.interval_secs(), 60);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ds_ts_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.csv");
        let ts = TimeSeries::from_values(0, 30, vec![1.0, 2.0, 3.0]);
        write_csv_file(&ts, &path).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(back, ts);
        std::fs::remove_file(&path).ok();
    }
}
