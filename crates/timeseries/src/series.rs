//! Core series types: [`TimeSeries`] (power readings) and [`StatusSeries`]
//! (tri-state appliance on/off/unknown states aligned with a power series).

use crate::window::{WindowIter, WindowLength};
use crate::{Result, TsError};
use serde::{Deserialize, Serialize};

/// A regularly sampled univariate time series.
///
/// Values are watts (for power series) or arbitrary units; missing readings
/// are represented by `f32::NAN`. The series is anchored at `start`
/// (seconds since the Unix epoch) and sampled every `interval_secs` seconds.
///
/// The paper's pipeline resamples all datasets to a common 1-minute
/// frequency (`interval_secs == 60`); nothing in this type assumes that,
/// but [`crate::resample`] provides the conversion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    start: i64,
    interval_secs: u32,
    values: Vec<f32>,
}

impl TimeSeries {
    /// Create a series from raw values.
    ///
    /// # Panics
    /// Panics if `interval_secs` is zero — a zero interval is a programming
    /// error, not a data error.
    pub fn from_values(start: i64, interval_secs: u32, values: Vec<f32>) -> Self {
        assert!(interval_secs > 0, "sampling interval must be positive");
        Self {
            start,
            interval_secs,
            values,
        }
    }

    /// Create a series of `len` missing readings.
    pub fn missing(start: i64, interval_secs: u32, len: usize) -> Self {
        Self::from_values(start, interval_secs, vec![f32::NAN; len])
    }

    /// Create a zero-valued series of `len` readings.
    pub fn zeros(start: i64, interval_secs: u32, len: usize) -> Self {
        Self::from_values(start, interval_secs, vec![0.0; len])
    }

    /// Timestamp (seconds since epoch) of the first reading.
    #[inline]
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Sampling interval in seconds.
    #[inline]
    pub fn interval_secs(&self) -> u32 {
        self.interval_secs
    }

    /// Number of readings.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no readings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration in seconds (`len * interval`).
    #[inline]
    pub fn duration_secs(&self) -> i64 {
        self.values.len() as i64 * self.interval_secs as i64
    }

    /// Timestamp of reading `i` (seconds since epoch).
    #[inline]
    pub fn timestamp_at(&self, i: usize) -> i64 {
        self.start + i as i64 * self.interval_secs as i64
    }

    /// Borrow the raw values (missing readings are `NaN`).
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutably borrow the raw values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Consume the series, returning its values.
    pub fn into_values(self) -> Vec<f32> {
        self.values
    }

    /// Reading at index `i`, or `None` past the end. A present-but-missing
    /// reading is returned as `Some(NaN)`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<f32> {
        self.values.get(i).copied()
    }

    /// Index of the reading covering `timestamp`, if within the series.
    pub fn index_of(&self, timestamp: i64) -> Option<usize> {
        if timestamp < self.start {
            return None;
        }
        let idx = ((timestamp - self.start) / self.interval_secs as i64) as usize;
        (idx < self.values.len()).then_some(idx)
    }

    /// Extract the half-open index range `[lo, hi)` as a new series.
    pub fn slice(&self, lo: usize, hi: usize) -> Result<TimeSeries> {
        if lo > hi || hi > self.values.len() {
            return Err(TsError::OutOfRange {
                detail: format!(
                    "slice [{lo}, {hi}) of series of length {}",
                    self.values.len()
                ),
            });
        }
        Ok(TimeSeries {
            start: self.timestamp_at(lo),
            interval_secs: self.interval_secs,
            values: self.values[lo..hi].to_vec(),
        })
    }

    /// Whether two series share start, interval and length.
    pub fn is_aligned_with(&self, other: &TimeSeries) -> bool {
        self.start == other.start
            && self.interval_secs == other.interval_secs
            && self.values.len() == other.values.len()
    }

    /// Require alignment with `other`, with a descriptive error otherwise.
    pub fn check_aligned(&self, other: &TimeSeries) -> Result<()> {
        if self.is_aligned_with(other) {
            Ok(())
        } else {
            Err(TsError::Misaligned {
                detail: format!(
                    "(start {}, interval {}, len {}) vs (start {}, interval {}, len {})",
                    self.start,
                    self.interval_secs,
                    self.values.len(),
                    other.start,
                    other.interval_secs,
                    other.values.len()
                ),
            })
        }
    }

    /// Element-wise sum with an aligned series. Missing + x = missing.
    pub fn add(&self, other: &TimeSeries) -> Result<TimeSeries> {
        self.check_aligned(other)?;
        let values = self
            .values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(TimeSeries {
            start: self.start,
            interval_secs: self.interval_secs,
            values,
        })
    }

    /// Add `other` into `self` in place (aligned series). Missing propagates.
    pub fn add_assign(&mut self, other: &TimeSeries) -> Result<()> {
        self.check_aligned(other)?;
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Integrated energy in watt-hours, skipping missing readings.
    ///
    /// Each present reading contributes `value * interval / 3600`.
    pub fn energy_wh(&self) -> f64 {
        let dt_h = self.interval_secs as f64 / 3600.0;
        self.values
            .iter()
            .filter(|v| !v.is_nan())
            .map(|&v| v as f64 * dt_h)
            .sum()
    }

    /// Count of missing (`NaN`) readings.
    pub fn missing_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_nan()).count()
    }

    /// Fraction of missing readings in `[0, 1]` (0 for an empty series).
    pub fn missing_ratio(&self) -> f32 {
        if self.values.is_empty() {
            0.0
        } else {
            self.missing_count() as f32 / self.values.len() as f32
        }
    }

    /// Whether the series contains any missing reading.
    pub fn has_missing(&self) -> bool {
        self.values.iter().any(|v| v.is_nan())
    }

    /// Iterator over non-overlapping windows of the given length.
    ///
    /// This is the GUI's Prev/Next paging unit: a trailing partial window is
    /// *not* yielded, matching the paper's practice of dropping incomplete
    /// subsequences.
    pub fn windows(&self, length: WindowLength) -> WindowIter<'_> {
        WindowIter::new(self, length)
    }

    /// Timestamps of every reading (allocates; intended for export/plotting).
    pub fn timestamps(&self) -> Vec<i64> {
        (0..self.values.len())
            .map(|i| self.timestamp_at(i))
            .collect()
    }

    /// Map every present value through `f`, leaving missing readings missing.
    pub fn map_values(&self, mut f: impl FnMut(f32) -> f32) -> TimeSeries {
        TimeSeries {
            start: self.start,
            interval_secs: self.interval_secs,
            values: self
                .values
                .iter()
                .map(|&v| if v.is_nan() { v } else { f(v) })
                .collect(),
        }
    }

    /// Clamp all present readings to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> TimeSeries {
        self.map_values(|v| v.clamp(lo, hi))
    }

    /// NaN-aware structural equality within a tolerance: missing readings
    /// compare equal to missing readings (unlike `==`, which follows IEEE
    /// semantics and makes any gappy series unequal to itself).
    pub fn same_as(&self, other: &TimeSeries, tol: f32) -> bool {
        self.is_aligned_with(other)
            && self
                .values
                .iter()
                .zip(other.values.iter())
                .all(|(a, b)| (a.is_nan() && b.is_nan()) || (a - b).abs() <= tol)
    }
}

/// Per-timestep appliance state: the serving path's tri-state decision.
///
/// `Off` and `On` are genuine model (or ground-truth) decisions. `Unknown`
/// means the serving path *declined to decide* — the timestep fell inside a
/// window with missing readings, or outside every inference window. A
/// production consumer must never treat `Unknown` as `Off`: the two carry
/// opposite operational meaning (confident absence vs. no evidence).
///
/// The discriminants are the wire encoding (`Off = 0`, `On = 1`,
/// `Unknown = 2`), chosen so that complete, binary ground truth keeps its
/// historical 0/1 representation byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Status {
    /// The appliance is confidently not running.
    Off,
    /// The appliance is confidently running.
    On,
    /// No decision: missing input data or an uncovered region.
    Unknown,
}

impl Status {
    /// Decode from the wire encoding (0 off, 1 on, 2 unknown).
    #[inline]
    pub fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Off),
            1 => Some(Status::On),
            2 => Some(Status::Unknown),
            _ => None,
        }
    }

    /// Wire encoding (0 off, 1 on, 2 unknown).
    #[inline]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Bit-compatible binary view: 1 for `On`, 0 otherwise. `Unknown`
    /// deliberately folds to 0 here — this view exists for metrics against
    /// *complete* ground truth, where the pre-tri-state pipeline emitted 0.
    #[inline]
    pub fn as_binary(self) -> u8 {
        u8::from(self == Status::On)
    }

    /// Whether this is a confident `On`.
    #[inline]
    pub fn is_on(self) -> bool {
        self == Status::On
    }

    /// Whether this is a confident `Off`.
    #[inline]
    pub fn is_off(self) -> bool {
        self == Status::Off
    }

    /// Whether the serving path declined to decide.
    #[inline]
    pub fn is_unknown(self) -> bool {
        self == Status::Unknown
    }
}

/// A per-timestep appliance status aligned with a power series.
///
/// Each timestep is `Off`, `On`, or `Unknown` (see [`Status`]). This is the
/// output type of CamAL step 6 ("Appliance Status") and the ground-truth
/// type used by localization metrics; ground truth built from complete
/// simulated channels never contains `Unknown`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusSeries {
    start: i64,
    interval_secs: u32,
    states: Vec<Status>,
}

impl StatusSeries {
    /// Create from tri-state statuses.
    ///
    /// # Panics
    /// Panics if `interval_secs` is zero.
    pub fn from_status(start: i64, interval_secs: u32, states: Vec<Status>) -> Self {
        assert!(interval_secs > 0, "sampling interval must be positive");
        Self {
            start,
            interval_secs,
            states,
        }
    }

    /// Create from the wire encoding (0 off, 1 on, 2 unknown).
    ///
    /// # Panics
    /// Panics if `interval_secs` is zero or any state is not 0/1/2.
    pub fn from_states(start: i64, interval_secs: u32, states: Vec<u8>) -> Self {
        let states = states
            .into_iter()
            .map(|s| {
                Status::from_u8(s)
                    .unwrap_or_else(|| panic!("status values must be 0, 1 or 2 (got {s})"))
            })
            .collect();
        Self::from_status(start, interval_secs, states)
    }

    /// All-off status of the given length.
    pub fn all_off(start: i64, interval_secs: u32, len: usize) -> Self {
        Self::from_status(start, interval_secs, vec![Status::Off; len])
    }

    /// All-unknown status of the given length — the starting point of the
    /// serving path before any window produces a decision.
    pub fn all_unknown(start: i64, interval_secs: u32, len: usize) -> Self {
        Self::from_status(start, interval_secs, vec![Status::Unknown; len])
    }

    /// Derive a status from a power series: ON where `power > threshold_w`.
    /// Missing readings map to OFF (the conservative choice used when
    /// building ground truth from simulated appliance channels).
    pub fn from_power(power: &TimeSeries, threshold_w: f32) -> Self {
        let states = power
            .values()
            .iter()
            .map(|&v| {
                if !v.is_nan() && v > threshold_w {
                    Status::On
                } else {
                    Status::Off
                }
            })
            .collect();
        Self {
            start: power.start(),
            interval_secs: power.interval_secs(),
            states,
        }
    }

    /// Timestamp of the first state.
    #[inline]
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Sampling interval in seconds.
    #[inline]
    pub fn interval_secs(&self) -> u32 {
        self.interval_secs
    }

    /// Number of states.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the status holds no states.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Borrow the raw states.
    #[inline]
    pub fn states(&self) -> &[Status] {
        &self.states
    }

    /// Bit-compatible binary view: 1 for `On`, 0 for `Off` *and* `Unknown`.
    /// Use only against complete ground truth (see [`Status::as_binary`]);
    /// for tri-state-aware scoring, mask `Unknown` timesteps out instead.
    pub fn as_binary(&self) -> Vec<u8> {
        self.states.iter().map(|s| s.as_binary()).collect()
    }

    /// State at index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Status> {
        self.states.get(i).copied()
    }

    /// Number of ON timesteps.
    pub fn on_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_on()).count()
    }

    /// Number of `Unknown` timesteps (coverage holes + gap windows).
    pub fn unknown_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_unknown()).count()
    }

    /// Whether any timestep is `Unknown`.
    pub fn has_unknown(&self) -> bool {
        self.states.contains(&Status::Unknown)
    }

    /// Fraction of ON timesteps (0 for an empty status).
    pub fn duty_cycle(&self) -> f32 {
        if self.states.is_empty() {
            0.0
        } else {
            self.on_count() as f32 / self.states.len() as f32
        }
    }

    /// Whether any timestep is ON — the window-level *weak label* the paper
    /// derives from disaggregated channels for UKDALE/REFIT.
    pub fn any_on(&self) -> bool {
        self.states.contains(&Status::On)
    }

    /// Extract the half-open index range `[lo, hi)`.
    pub fn slice(&self, lo: usize, hi: usize) -> Result<StatusSeries> {
        if lo > hi || hi > self.states.len() {
            return Err(TsError::OutOfRange {
                detail: format!(
                    "slice [{lo}, {hi}) of status of length {}",
                    self.states.len()
                ),
            });
        }
        Ok(StatusSeries {
            start: self.start + lo as i64 * self.interval_secs as i64,
            interval_secs: self.interval_secs,
            states: self.states[lo..hi].to_vec(),
        })
    }

    /// Element-wise logical OR with an aligned status.
    ///
    /// Tri-state precedence: `On` beats everything (one confident ON is
    /// enough), `Unknown` beats `Off` (an undecided operand means the
    /// combination cannot confidently claim OFF).
    pub fn or(&self, other: &StatusSeries) -> Result<StatusSeries> {
        if self.start != other.start
            || self.interval_secs != other.interval_secs
            || self.states.len() != other.states.len()
        {
            return Err(TsError::Misaligned {
                detail: "status OR requires aligned operands".into(),
            });
        }
        Ok(StatusSeries {
            start: self.start,
            interval_secs: self.interval_secs,
            states: self
                .states
                .iter()
                .zip(other.states.iter())
                .map(|(&a, &b)| match (a, b) {
                    (Status::On, _) | (_, Status::On) => Status::On,
                    (Status::Unknown, _) | (_, Status::Unknown) => Status::Unknown,
                    (Status::Off, Status::Off) => Status::Off,
                })
                .collect(),
        })
    }

    /// ON segments as half-open index ranges `[start, end)`, in order.
    ///
    /// Used by the app to draw activation strips and by the simulator tests
    /// to check activation durations.
    pub fn on_segments(&self) -> Vec<(usize, usize)> {
        let mut segs = Vec::new();
        let mut seg_start = None;
        for (i, &s) in self.states.iter().enumerate() {
            match (s.is_on(), seg_start) {
                (true, None) => seg_start = Some(i),
                (false, Some(st)) => {
                    segs.push((st, i));
                    seg_start = None;
                }
                _ => {}
            }
        }
        if let Some(st) = seg_start {
            segs.push((st, self.states.len()));
        }
        segs
    }

    /// `Unknown` segments as half-open index ranges `[start, end)`, in
    /// order — the regions the app renders as "no decision".
    pub fn unknown_segments(&self) -> Vec<(usize, usize)> {
        let mut segs = Vec::new();
        let mut seg_start = None;
        for (i, &s) in self.states.iter().enumerate() {
            match (s.is_unknown(), seg_start) {
                (true, None) => seg_start = Some(i),
                (false, Some(st)) => {
                    segs.push((st, i));
                    seg_start = None;
                }
                _ => {}
            }
        }
        if let Some(st) = seg_start {
            segs.push((st, self.states.len()));
        }
        segs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> TimeSeries {
        TimeSeries::from_values(0, 60, (0..n).map(|i| i as f32).collect())
    }

    #[test]
    fn construction_and_accessors() {
        let ts = ramp(10);
        assert_eq!(ts.len(), 10);
        assert!(!ts.is_empty());
        assert_eq!(ts.start(), 0);
        assert_eq!(ts.interval_secs(), 60);
        assert_eq!(ts.duration_secs(), 600);
        assert_eq!(ts.timestamp_at(3), 180);
        assert_eq!(ts.get(9), Some(9.0));
        assert_eq!(ts.get(10), None);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        let _ = TimeSeries::from_values(0, 0, vec![1.0]);
    }

    #[test]
    fn index_of_maps_timestamps() {
        let ts = ramp(10);
        assert_eq!(ts.index_of(0), Some(0));
        assert_eq!(ts.index_of(59), Some(0));
        assert_eq!(ts.index_of(60), Some(1));
        assert_eq!(ts.index_of(599), Some(9));
        assert_eq!(ts.index_of(600), None);
        assert_eq!(ts.index_of(-1), None);
    }

    #[test]
    fn slice_preserves_anchor() {
        let ts = ramp(10);
        let s = ts.slice(2, 5).unwrap();
        assert_eq!(s.start(), 120);
        assert_eq!(s.values(), &[2.0, 3.0, 4.0]);
        assert!(ts.slice(5, 2).is_err());
        assert!(ts.slice(0, 11).is_err());
        // Empty slice at the end is fine.
        assert_eq!(ts.slice(10, 10).unwrap().len(), 0);
    }

    #[test]
    fn add_requires_alignment() {
        let a = ramp(5);
        let b = TimeSeries::from_values(0, 60, vec![1.0; 5]);
        let c = a.add(&b).unwrap();
        assert_eq!(c.values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let shifted = TimeSeries::from_values(60, 60, vec![1.0; 5]);
        assert!(a.add(&shifted).is_err());
        let short = TimeSeries::from_values(0, 60, vec![1.0; 4]);
        assert!(a.add(&short).is_err());
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = ramp(4);
        let b = TimeSeries::from_values(0, 60, vec![10.0; 4]);
        let sum = a.add(&b).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a, sum);
    }

    #[test]
    fn missing_propagates_through_add() {
        let mut a = ramp(3);
        a.values_mut()[1] = f32::NAN;
        let b = TimeSeries::from_values(0, 60, vec![1.0; 3]);
        let c = a.add(&b).unwrap();
        assert!(c.values()[1].is_nan());
        assert_eq!(c.values()[0], 1.0);
    }

    #[test]
    fn energy_skips_missing() {
        // 60 W for one hour of 1-min samples = 60 Wh.
        let ts = TimeSeries::from_values(0, 60, vec![60.0; 60]);
        assert!((ts.energy_wh() - 60.0).abs() < 1e-9);
        let mut gappy = ts.clone();
        gappy.values_mut()[0] = f32::NAN;
        assert!((gappy.energy_wh() - 59.0).abs() < 1e-9);
    }

    #[test]
    fn missing_statistics() {
        let mut ts = ramp(4);
        assert_eq!(ts.missing_count(), 0);
        assert!(!ts.has_missing());
        ts.values_mut()[2] = f32::NAN;
        assert_eq!(ts.missing_count(), 1);
        assert!((ts.missing_ratio() - 0.25).abs() < 1e-6);
        assert!(ts.has_missing());
        let empty = TimeSeries::from_values(0, 60, vec![]);
        assert_eq!(empty.missing_ratio(), 0.0);
    }

    #[test]
    fn map_values_keeps_missing() {
        let mut ts = ramp(3);
        ts.values_mut()[1] = f32::NAN;
        let doubled = ts.map_values(|v| v * 2.0);
        assert_eq!(doubled.values()[0], 0.0);
        assert!(doubled.values()[1].is_nan());
        assert_eq!(doubled.values()[2], 4.0);
    }

    #[test]
    fn clamp_bounds_values() {
        let ts = ramp(5).clamp(1.0, 3.0);
        assert_eq!(ts.values(), &[1.0, 1.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn status_from_power_thresholds() {
        let p = TimeSeries::from_values(0, 60, vec![0.0, 5.0, 2000.0, f32::NAN]);
        let s = StatusSeries::from_power(&p, 10.0);
        assert_eq!(s.as_binary(), vec![0, 0, 1, 0]);
        assert_eq!(s.on_count(), 1);
        assert!(s.any_on());
        assert!(!s.has_unknown());
        assert!((s.duty_cycle() - 0.25).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "0, 1 or 2")]
    fn status_rejects_out_of_range() {
        let _ = StatusSeries::from_states(0, 60, vec![0, 3]);
    }

    #[test]
    fn tri_state_round_trip_and_binary_view() {
        assert_eq!(Status::from_u8(0), Some(Status::Off));
        assert_eq!(Status::from_u8(1), Some(Status::On));
        assert_eq!(Status::from_u8(2), Some(Status::Unknown));
        assert_eq!(Status::from_u8(3), None);
        for s in [Status::Off, Status::On, Status::Unknown] {
            assert_eq!(Status::from_u8(s.as_u8()), Some(s));
        }
        let s = StatusSeries::from_states(0, 60, vec![0, 1, 2, 1]);
        assert_eq!(
            s.states(),
            &[Status::Off, Status::On, Status::Unknown, Status::On]
        );
        // Unknown folds to 0 in the binary view (metrics compatibility).
        assert_eq!(s.as_binary(), vec![0, 1, 0, 1]);
        assert_eq!(s.on_count(), 2);
        assert_eq!(s.unknown_count(), 1);
        assert!(s.has_unknown());
        assert_eq!(s.unknown_segments(), vec![(2, 3)]);
        let u = StatusSeries::all_unknown(0, 60, 3);
        assert_eq!(u.unknown_count(), 3);
        assert_eq!(u.unknown_segments(), vec![(0, 3)]);
        assert_eq!(u.on_count(), 0);
    }

    #[test]
    fn tri_state_or_precedence() {
        // On > Unknown > Off, element-wise and symmetric.
        let a = StatusSeries::from_states(0, 60, vec![1, 2, 0, 2]);
        let b = StatusSeries::from_states(0, 60, vec![2, 0, 0, 1]);
        let c = a.or(&b).unwrap();
        assert_eq!(
            c.states(),
            &[Status::On, Status::Unknown, Status::Off, Status::On]
        );
        let d = b.or(&a).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn on_segments_finds_runs() {
        let s = StatusSeries::from_states(0, 60, vec![0, 1, 1, 0, 1, 0, 0, 1]);
        assert_eq!(s.on_segments(), vec![(1, 3), (4, 5), (7, 8)]);
        let none = StatusSeries::all_off(0, 60, 4);
        assert!(none.on_segments().is_empty());
        assert!(!none.any_on());
        let all = StatusSeries::from_states(0, 60, vec![1, 1]);
        assert_eq!(all.on_segments(), vec![(0, 2)]);
    }

    #[test]
    fn status_or_and_slice() {
        let a = StatusSeries::from_states(0, 60, vec![1, 0, 0, 1]);
        let b = StatusSeries::from_states(0, 60, vec![0, 0, 1, 1]);
        let c = a.or(&b).unwrap();
        assert_eq!(c.as_binary(), vec![1, 0, 1, 1]);
        let s = c.slice(1, 3).unwrap();
        assert_eq!(s.as_binary(), vec![0, 1]);
        assert_eq!(s.start(), 60);
        let misaligned = StatusSeries::from_states(60, 60, vec![0, 0, 1, 1]);
        assert!(a.or(&misaligned).is_err());
    }
}
