//! Minimal civil-time helpers (no external chrono dependency).
//!
//! The occupancy and lighting models in `ds-datasets` need only "what hour
//! of the (local) day is this timestamp" and "which day is it" — both are
//! simple arithmetic on Unix seconds, assuming a fixed UTC-like local zone,
//! which is all the simulator requires.

/// Seconds in a day.
pub const DAY_SECS: i64 = 86_400;

/// Hour of day in `[0, 24)` for a Unix timestamp.
pub fn hour_of_day(timestamp: i64) -> u32 {
    (timestamp.rem_euclid(DAY_SECS) / 3600) as u32
}

/// Minute of day in `[0, 1440)` for a Unix timestamp.
pub fn minute_of_day(timestamp: i64) -> u32 {
    (timestamp.rem_euclid(DAY_SECS) / 60) as u32
}

/// Day index since the epoch (floor division, correct for negatives).
pub fn day_index(timestamp: i64) -> i64 {
    timestamp.div_euclid(DAY_SECS)
}

/// Day of week in `[0, 7)` with 0 = Thursday (1970-01-01 was a Thursday).
/// The simulator only needs a stable weekly phase, not named days.
pub fn day_of_week(timestamp: i64) -> u32 {
    (day_index(timestamp).rem_euclid(7)) as u32
}

/// Whether the day is a weekend under the convention above
/// (Saturday = phase 2, Sunday = phase 3).
pub fn is_weekend(timestamp: i64) -> bool {
    matches!(day_of_week(timestamp), 2 | 3)
}

/// Format a timestamp as `d<day> HH:MM` for app display (epoch-relative).
pub fn format_compact(timestamp: i64) -> String {
    let m = minute_of_day(timestamp);
    format!("d{} {:02}:{:02}", day_index(timestamp), m / 60, m % 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_and_minute_of_day() {
        assert_eq!(hour_of_day(0), 0);
        assert_eq!(hour_of_day(3600), 1);
        assert_eq!(hour_of_day(DAY_SECS + 2 * 3600), 2);
        assert_eq!(minute_of_day(90), 1);
        assert_eq!(minute_of_day(DAY_SECS - 60), 1439);
    }

    #[test]
    fn negative_timestamps_wrap_correctly() {
        assert_eq!(hour_of_day(-3600), 23);
        assert_eq!(day_index(-1), -1);
        assert_eq!(day_index(-DAY_SECS), -1);
        assert_eq!(day_index(-DAY_SECS - 1), -2);
    }

    #[test]
    fn weekly_phase() {
        assert_eq!(day_of_week(0), 0); // Thursday
        assert_eq!(day_of_week(DAY_SECS), 1); // Friday
        assert!(is_weekend(2 * DAY_SECS)); // Saturday
        assert!(is_weekend(3 * DAY_SECS)); // Sunday
        assert!(!is_weekend(4 * DAY_SECS)); // Monday
        assert_eq!(day_of_week(7 * DAY_SECS), 0);
    }

    #[test]
    fn compact_format() {
        assert_eq!(format_compact(0), "d0 00:00");
        assert_eq!(format_compact(DAY_SECS + 61 * 60), "d1 01:01");
    }
}
