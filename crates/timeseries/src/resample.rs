//! Frequency conversion.
//!
//! The paper's training phase begins: *"First, we resample the datasets to a
//! common frequency (1 min)."* Real deployments mix very different native
//! rates (UK-DALE: 6 s, REFIT: 8 s, IDEAL: 1 s for mains), so downsampling by
//! averaging is the workhorse; upsampling exists for completeness (e.g.
//! 30-min billing data).

use crate::series::TimeSeries;
use crate::{Result, TsError};

/// The app's supported display/sampling rates in seconds — 30 s, 1 min and
/// 10 min. Downsampling to any of these preserves NaN gap runs (an
/// all-missing bucket stays NaN, and a `Sum` bucket with *any* missing
/// reading goes NaN rather than under-counting), so streaming invalidation
/// sees the same gap boundaries at every rate.
pub fn frequency_list() -> [u32; 3] {
    [30, 60, 600]
}

/// How to combine readings when downsampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownsampleAgg {
    /// Mean of present readings — the standard for power (preserves energy).
    Mean,
    /// Maximum of present readings — preserves short spikes (kettle-style).
    Max,
    /// Sum of present readings — for per-interval energy counters.
    Sum,
}

/// How to fill new readings when upsampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpsampleFill {
    /// Repeat the most recent reading (step interpolation).
    ForwardFill,
    /// Linear interpolation between neighbouring readings.
    Linear,
}

/// Resample a series to `target_interval_secs`.
///
/// Downsampling requires the target to be an integer multiple of the source
/// interval; upsampling requires the source to be an integer multiple of the
/// target. Identical intervals return a clone.
///
/// Missing readings: when downsampling, a bucket whose readings are *all*
/// missing yields a missing reading; otherwise present readings are
/// aggregated. When upsampling, missing source readings expand to missing
/// target readings (ForwardFill) or poison the interpolated span (Linear).
pub fn resample(
    series: &TimeSeries,
    target_interval_secs: u32,
    agg: DownsampleAgg,
    fill: UpsampleFill,
) -> Result<TimeSeries> {
    if target_interval_secs == 0 {
        return Err(TsError::InvalidInterval);
    }
    let src = series.interval_secs();
    if target_interval_secs == src {
        return Ok(series.clone());
    }
    if target_interval_secs > src {
        if !target_interval_secs.is_multiple_of(src) {
            return Err(TsError::OutOfRange {
                detail: format!(
                    "cannot downsample {src}s -> {target_interval_secs}s: not an integer multiple"
                ),
            });
        }
        Ok(downsample(
            series,
            (target_interval_secs / src) as usize,
            agg,
        ))
    } else {
        if !src.is_multiple_of(target_interval_secs) {
            return Err(TsError::OutOfRange {
                detail: format!(
                    "cannot upsample {src}s -> {target_interval_secs}s: not an integer divisor"
                ),
            });
        }
        Ok(upsample(
            series,
            (src / target_interval_secs) as usize,
            fill,
        ))
    }
}

/// Downsample to an arbitrary coarser interval by time-bucketing: source
/// reading `i` (covering `[i·src, (i+1)·src)`) lands in the bucket of its
/// start time. Handles non-integer ratios — REFIT's native 8 s readings to
/// the paper's 1-minute grid, for instance. Buckets whose readings are all
/// missing stay missing; a trailing partial bucket is dropped.
pub fn downsample_bucketed(
    series: &TimeSeries,
    target_interval_secs: u32,
    agg: DownsampleAgg,
) -> Result<TimeSeries> {
    let src = series.interval_secs();
    if target_interval_secs == 0 {
        return Err(TsError::InvalidInterval);
    }
    if target_interval_secs < src {
        return Err(TsError::OutOfRange {
            detail: format!(
                "bucketed downsampling requires target ({target_interval_secs}s) >= source ({src}s)"
            ),
        });
    }
    if target_interval_secs == src {
        return Ok(series.clone());
    }
    let values = series.values();
    let n_out = (values.len() as u64 * src as u64 / target_interval_secs as u64) as usize;
    let mut sums = vec![0.0f64; n_out];
    let mut maxs = vec![f32::NEG_INFINITY; n_out];
    let mut counts = vec![0u32; n_out];
    let mut occupancy = vec![0u32; n_out];
    for (i, &v) in values.iter().enumerate() {
        let bucket = (i as u64 * src as u64 / target_interval_secs as u64) as usize;
        if bucket >= n_out {
            break; // trailing partial bucket
        }
        occupancy[bucket] += 1;
        if !v.is_nan() {
            sums[bucket] += v as f64;
            if v > maxs[bucket] {
                maxs[bucket] = v;
            }
            counts[bucket] += 1;
        }
    }
    let out: Vec<f32> = (0..n_out)
        .map(|b| {
            if counts[b] == 0 {
                f32::NAN
            } else {
                match agg {
                    DownsampleAgg::Mean => (sums[b] / counts[b] as f64) as f32,
                    DownsampleAgg::Max => maxs[b],
                    // Same contract as the chunked path: a Sum bucket with
                    // missing readings surfaces NaN instead of silently
                    // zero-filling the gap.
                    DownsampleAgg::Sum if counts[b] < occupancy[b] => f32::NAN,
                    DownsampleAgg::Sum => sums[b] as f32,
                }
            }
        })
        .collect();
    Ok(TimeSeries::from_values(
        series.start(),
        target_interval_secs,
        out,
    ))
}

/// Convenience wrapper: resample to the paper's common 1-minute frequency
/// using mean aggregation — the first step of the paper's training phase.
/// Integer ratios use exact chunked averaging; non-integer source rates
/// (e.g. REFIT's 8 s) fall back to time-bucketed averaging; finer targets
/// forward-fill.
pub fn to_one_minute(series: &TimeSeries) -> Result<TimeSeries> {
    let src = series.interval_secs();
    if src <= 60 && 60 % src != 0 {
        downsample_bucketed(series, 60, DownsampleAgg::Mean)
    } else {
        resample(series, 60, DownsampleAgg::Mean, UpsampleFill::ForwardFill)
    }
}

fn downsample(series: &TimeSeries, factor: usize, agg: DownsampleAgg) -> TimeSeries {
    let values = series.values();
    let n_out = values.len() / factor;
    let mut out = Vec::with_capacity(n_out);
    for chunk in values.chunks_exact(factor) {
        let mut acc = 0.0f64;
        let mut max = f32::NEG_INFINITY;
        let mut present = 0usize;
        for &v in chunk {
            if !v.is_nan() {
                acc += v as f64;
                if v > max {
                    max = v;
                }
                present += 1;
            }
        }
        let v = if present == 0 {
            f32::NAN
        } else {
            match agg {
                DownsampleAgg::Mean => (acc / present as f64) as f32,
                DownsampleAgg::Max => max,
                // A partially-missing bucket must not masquerade as a
                // (smaller) energy reading — that would zero-fill the gap
                // and erase its boundary downstream. Only fully-present
                // buckets sum; anything less surfaces as NaN.
                DownsampleAgg::Sum if present < chunk.len() => f32::NAN,
                DownsampleAgg::Sum => acc as f32,
            }
        };
        out.push(v);
    }
    TimeSeries::from_values(series.start(), series.interval_secs() * factor as u32, out)
}

fn upsample(series: &TimeSeries, factor: usize, fill: UpsampleFill) -> TimeSeries {
    let values = series.values();
    let mut out = Vec::with_capacity(values.len() * factor);
    match fill {
        UpsampleFill::ForwardFill => {
            for &v in values {
                out.extend(std::iter::repeat_n(v, factor));
            }
        }
        UpsampleFill::Linear => {
            for (i, &v) in values.iter().enumerate() {
                let next = values.get(i + 1).copied().unwrap_or(v);
                if v.is_nan() || next.is_nan() {
                    // Cannot interpolate across a gap: keep the anchor value
                    // for step 0 and mark the interpolated span missing.
                    out.push(v);
                    out.extend(std::iter::repeat_n(f32::NAN, factor - 1));
                } else {
                    for k in 0..factor {
                        let t = k as f32 / factor as f32;
                        out.push(v + (next - v) * t);
                    }
                }
            }
        }
    }
    TimeSeries::from_values(series.start(), series.interval_secs() / factor as u32, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_resample_is_clone() {
        let ts = TimeSeries::from_values(0, 60, vec![1.0, 2.0]);
        let r = resample(&ts, 60, DownsampleAgg::Mean, UpsampleFill::ForwardFill).unwrap();
        assert_eq!(r, ts);
    }

    #[test]
    fn downsample_mean_preserves_energy() {
        // 6-second readings downsampled to 1 minute.
        let values: Vec<f32> = (0..600).map(|i| (i % 50) as f32).collect();
        let ts = TimeSeries::from_values(0, 6, values);
        let r = to_one_minute(&ts).unwrap();
        assert_eq!(r.interval_secs(), 60);
        assert_eq!(r.len(), 60);
        assert!((r.energy_wh() - ts.energy_wh()).abs() < 1e-3);
    }

    #[test]
    fn downsample_max_keeps_spikes() {
        let mut values = vec![0.0f32; 10];
        values[3] = 3000.0; // 6-second kettle spike
        let ts = TimeSeries::from_values(0, 6, values);
        let mean = resample(&ts, 60, DownsampleAgg::Mean, UpsampleFill::ForwardFill).unwrap();
        let max = resample(&ts, 60, DownsampleAgg::Max, UpsampleFill::ForwardFill).unwrap();
        assert!((mean.values()[0] - 300.0).abs() < 1e-3);
        assert_eq!(max.values()[0], 3000.0);
    }

    #[test]
    fn downsample_sum_accumulates() {
        let ts = TimeSeries::from_values(0, 30, vec![1.0, 2.0, 3.0, 4.0]);
        let r = resample(&ts, 60, DownsampleAgg::Sum, UpsampleFill::ForwardFill).unwrap();
        assert_eq!(r.values(), &[3.0, 7.0]);
    }

    #[test]
    fn downsample_handles_missing_buckets() {
        let ts = TimeSeries::from_values(0, 30, vec![f32::NAN, f32::NAN, 2.0, f32::NAN]);
        let r = resample(&ts, 60, DownsampleAgg::Mean, UpsampleFill::ForwardFill).unwrap();
        assert!(r.values()[0].is_nan());
        assert_eq!(r.values()[1], 2.0); // mean of present readings only
    }

    #[test]
    fn downsample_drops_trailing_partial_bucket() {
        let ts = TimeSeries::from_values(0, 20, vec![1.0, 1.0, 1.0, 9.0]);
        let r = resample(&ts, 60, DownsampleAgg::Mean, UpsampleFill::ForwardFill).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.values()[0], 1.0);
    }

    #[test]
    fn bucketed_downsampling_handles_refit_rate() {
        // 8-second readings to 1 minute: buckets hold 7 or 8 readings.
        let values: Vec<f32> = (0..450).map(|i| (i % 40) as f32).collect();
        let ts = TimeSeries::from_values(0, 8, values);
        let r = to_one_minute(&ts).unwrap();
        assert_eq!(r.interval_secs(), 60);
        assert_eq!(r.len(), 450 * 8 / 60);
        // Mean power is preserved within bucket-boundary jitter.
        let mean_src: f64 = ts.values().iter().map(|&v| v as f64).sum::<f64>() / ts.len() as f64;
        let mean_dst: f64 = r.values().iter().map(|&v| v as f64).sum::<f64>() / r.len() as f64;
        assert!(
            (mean_src - mean_dst).abs() < 1.0,
            "{mean_src} vs {mean_dst}"
        );
    }

    #[test]
    fn bucketed_downsampling_edge_cases() {
        let ts = TimeSeries::from_values(0, 8, vec![1.0, f32::NAN, 3.0]);
        // Identity when intervals match.
        let same = downsample_bucketed(&ts, 8, DownsampleAgg::Mean).unwrap();
        assert_eq!(same.interval_secs(), 8);
        // Finer targets are rejected.
        assert!(downsample_bucketed(&ts, 4, DownsampleAgg::Mean).is_err());
        assert!(downsample_bucketed(&ts, 0, DownsampleAgg::Mean).is_err());
        // All-missing bucket stays missing.
        let gappy = TimeSeries::from_values(0, 30, vec![f32::NAN, f32::NAN, 5.0, 7.0]);
        let r = downsample_bucketed(&gappy, 60, DownsampleAgg::Mean).unwrap();
        assert!(r.values()[0].is_nan());
        assert_eq!(r.values()[1], 6.0);
        // Max and Sum aggregations.
        let ts2 = TimeSeries::from_values(0, 30, vec![1.0, 5.0, 2.0, 2.0]);
        assert_eq!(
            downsample_bucketed(&ts2, 60, DownsampleAgg::Max)
                .unwrap()
                .values(),
            &[5.0, 2.0]
        );
        assert_eq!(
            downsample_bucketed(&ts2, 60, DownsampleAgg::Sum)
                .unwrap()
                .values(),
            &[6.0, 4.0]
        );
    }

    #[test]
    fn sum_refuses_to_zero_fill_partial_buckets() {
        // One missing reading inside the second bucket: Sum must surface
        // NaN there, not a silently smaller total.
        let ts = TimeSeries::from_values(0, 30, vec![1.0, 2.0, 3.0, f32::NAN]);
        let r = resample(&ts, 60, DownsampleAgg::Sum, UpsampleFill::ForwardFill).unwrap();
        assert_eq!(r.values()[0], 3.0);
        assert!(r.values()[1].is_nan());
        // Bucketed path: 8 s readings, one hole in the first minute.
        let mut values = vec![1.0f32; 15];
        values[3] = f32::NAN;
        let b = downsample_bucketed(
            &TimeSeries::from_values(0, 8, values),
            60,
            DownsampleAgg::Sum,
        )
        .unwrap();
        assert!(b.values()[0].is_nan());
        assert_eq!(b.values()[1], 7.0);
        // Mean still aggregates present readings (unchanged policy).
        let m = resample(&ts, 60, DownsampleAgg::Mean, UpsampleFill::ForwardFill).unwrap();
        assert_eq!(m.values()[1], 3.0);
    }

    #[test]
    fn gap_runs_survive_at_every_frequency_list_rate() {
        // A 6 s source with a 20-minute hole: at 30 s, 1 min and 10 min the
        // hole must come through as a NaN run with the same time extent —
        // streaming invalidation keys off these boundaries.
        let n = 60 * 60 / 6; // one hour of 6 s readings
        let mut values: Vec<f32> = (0..n).map(|i| (i % 23) as f32).collect();
        let gap_lo = 10 * 60 / 6; // minute 10
        let gap_hi = 30 * 60 / 6; // minute 30
        for v in &mut values[gap_lo..gap_hi] {
            *v = f32::NAN;
        }
        let ts = TimeSeries::from_values(0, 6, values);
        for (rate, agg) in frequency_list().into_iter().flat_map(|r| {
            [DownsampleAgg::Mean, DownsampleAgg::Max, DownsampleAgg::Sum].map(move |a| (r, a))
        }) {
            let r = resample(&ts, rate, agg, UpsampleFill::ForwardFill).unwrap();
            assert_eq!(r.interval_secs(), rate);
            let per = rate as usize; // seconds per target reading
            for (i, v) in r.values().iter().enumerate() {
                let t = i * per;
                let inside = t >= 10 * 60 && t + per <= 30 * 60;
                if inside {
                    assert!(v.is_nan(), "rate {rate}s {agg:?}: gap leaked at t={t}s");
                } else if t + per <= 10 * 60 || t >= 30 * 60 {
                    assert!(!v.is_nan(), "rate {rate}s {agg:?}: data lost at t={t}s");
                }
            }
        }
    }

    #[test]
    fn non_multiple_intervals_rejected() {
        let ts = TimeSeries::from_values(0, 7, vec![1.0; 10]);
        assert!(resample(&ts, 60, DownsampleAgg::Mean, UpsampleFill::ForwardFill).is_err());
        let ts = TimeSeries::from_values(0, 60, vec![1.0; 10]);
        assert!(resample(&ts, 7, DownsampleAgg::Mean, UpsampleFill::ForwardFill).is_err());
        assert!(resample(&ts, 0, DownsampleAgg::Mean, UpsampleFill::ForwardFill).is_err());
    }

    #[test]
    fn upsample_forward_fill_repeats() {
        let ts = TimeSeries::from_values(0, 60, vec![1.0, 2.0]);
        let r = resample(&ts, 30, DownsampleAgg::Mean, UpsampleFill::ForwardFill).unwrap();
        assert_eq!(r.values(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(r.interval_secs(), 30);
    }

    #[test]
    fn upsample_linear_interpolates() {
        let ts = TimeSeries::from_values(0, 60, vec![0.0, 4.0, 8.0]);
        let r = resample(&ts, 30, DownsampleAgg::Mean, UpsampleFill::Linear).unwrap();
        assert_eq!(r.values(), &[0.0, 2.0, 4.0, 6.0, 8.0, 8.0]);
    }

    #[test]
    fn upsample_linear_respects_gaps() {
        let ts = TimeSeries::from_values(0, 60, vec![0.0, f32::NAN, 8.0]);
        let r = resample(&ts, 30, DownsampleAgg::Mean, UpsampleFill::Linear).unwrap();
        assert_eq!(r.values()[0], 0.0);
        assert!(r.values()[1].is_nan());
        assert!(r.values()[2].is_nan());
        assert!(r.values()[3].is_nan());
        assert_eq!(r.values()[4], 8.0);
    }
}
