//! # ds-timeseries
//!
//! Time-series substrate for the DeviceScope / CamAL reproduction.
//!
//! The DeviceScope paper ([ICDE 2025]) operates on *electricity consumption
//! time series*: regularly sampled, possibly gappy power readings recorded by
//! a household smart meter. This crate provides everything the upper layers
//! (dataset simulation, CamAL, baselines, the application) need to manipulate
//! such series:
//!
//! - [`TimeSeries`]: a regularly sampled univariate series with explicit
//!   missing values (`NaN`), a start timestamp and a sampling interval.
//! - [`StatusSeries`]: a tri-state per-timestep appliance status
//!   (on / off / unknown, see [`Status`]) aligned with a [`TimeSeries`] —
//!   the object CamAL's localization step produces and the ground truth the
//!   evaluation consumes.
//! - [`faults`]: deterministic fault injection (gap bursts, NaN scatter,
//!   truncation, spikes, flat segments) behind the `DS_FAULT` env knob,
//!   backing the chaos suite and the CI fault smoke.
//! - [`resample`]: frequency conversion (the paper resamples every dataset to
//!   a common 1-minute frequency before training).
//! - [`window`]: subsequence extraction and the 6 h / 12 h / 1 day sliding
//!   windows with Prev/Next navigation used by the DeviceScope GUI.
//! - [`missing`]: gap detection, missing-ratio computation and imputation
//!   (the paper omits subsequences containing missing data).
//! - [`normalize`]: min-max / z-score scalers with invertible parameters.
//! - [`stats`]: descriptive statistics used by the simulator and the app.
//! - [`io`]: a dependency-free CSV reader/writer so users can load their own
//!   exported smart-meter data, mirroring the paper's "users could upload
//!   other datasets" note.
//! - [`time`]: minimal civil-time helpers (hour of day, day index) used by
//!   the occupancy model; no external chrono dependency.
//!
//! ## Quick example
//!
//! ```
//! use ds_timeseries::{TimeSeries, window::WindowLength};
//!
//! // A day of 1-minute readings, constant 200 W base load.
//! let ts = TimeSeries::from_values(0, 60, vec![200.0; 1440]);
//! assert_eq!(ts.len(), 1440);
//!
//! // Iterate over non-overlapping 6-hour windows.
//! let windows: Vec<_> = ts.windows(WindowLength::SixHours).collect();
//! assert_eq!(windows.len(), 4);
//! assert_eq!(windows[0].values().len(), 360);
//! ```

pub mod events;
pub mod faults;
pub mod io;
pub mod missing;
pub mod normalize;
pub mod resample;
pub mod series;
pub mod stats;
pub mod stream;
pub mod time;
pub mod window;

pub use series::{Status, StatusSeries, TimeSeries};
pub use stream::{StreamCursor, StreamEvent};
pub use window::{WindowCursor, WindowLength};

/// Errors produced by the time-series substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsError {
    /// The operation needs a non-empty series.
    EmptySeries,
    /// The sampling interval must be a positive number of seconds.
    InvalidInterval,
    /// Two series were expected to be aligned (same start, interval, length).
    Misaligned {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A window length or index was out of range for the series.
    OutOfRange {
        /// Human-readable description of the offending request.
        detail: String,
    },
    /// Failure while parsing external data (CSV import).
    Parse {
        /// Line number (1-based) where the failure occurred.
        line: usize,
        /// Human-readable description.
        detail: String,
    },
    /// Failure reading or writing external data.
    Io(String),
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::EmptySeries => write!(f, "operation requires a non-empty series"),
            TsError::InvalidInterval => write!(f, "sampling interval must be positive"),
            TsError::Misaligned { detail } => write!(f, "series misaligned: {detail}"),
            TsError::OutOfRange { detail } => write!(f, "out of range: {detail}"),
            TsError::Parse { line, detail } => write!(f, "parse error at line {line}: {detail}"),
            TsError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for TsError {}

impl From<std::io::Error> for TsError {
    fn from(e: std::io::Error) -> Self {
        TsError::Io(e.to_string())
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, TsError>;
