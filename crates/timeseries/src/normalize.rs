//! Invertible scalers.
//!
//! Neural models train on scaled inputs; the app displays raw watts; CamAL's
//! attention step multiplies a normalized CAM by the (scaled) input. Each
//! scaler records its fitted parameters so transformations can be inverted
//! exactly, and all scalers skip missing readings when fitting.

use crate::series::TimeSeries;
use crate::{Result, TsError};
use serde::{Deserialize, Serialize};

/// A fitted, invertible scaling transform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scaler {
    /// `y = (x - min) / (max - min)`; constant series map to 0.
    MinMax {
        /// Fitted minimum.
        min: f32,
        /// Fitted maximum.
        max: f32,
    },
    /// `y = (x - mean) / std`; zero-variance series map to 0.
    ZScore {
        /// Fitted mean.
        mean: f32,
        /// Fitted standard deviation.
        std: f32,
    },
    /// `y = x / scale` with `scale = max(|x|)`; all-zero series map to 0.
    ///
    /// This is the scaler NILM work typically uses for aggregate power
    /// (dividing by a dataset-level max power), because it preserves zero.
    MaxAbs {
        /// Fitted scale (maximum absolute value).
        scale: f32,
    },
}

impl Scaler {
    /// Fit a min-max scaler on the present readings of `series`.
    pub fn fit_min_max(series: &TimeSeries) -> Result<Scaler> {
        let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in series.values() {
            if v.is_nan() {
                continue;
            }
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() {
            return Err(TsError::EmptySeries);
        }
        Ok(Scaler::MinMax { min, max })
    }

    /// Fit a z-score scaler on the present readings of `series`.
    pub fn fit_z_score(series: &TimeSeries) -> Result<Scaler> {
        let present: Vec<f32> = series
            .values()
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        if present.is_empty() {
            return Err(TsError::EmptySeries);
        }
        let n = present.len() as f64;
        let mean = present.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = present
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        Ok(Scaler::ZScore {
            mean: mean as f32,
            std: var.sqrt() as f32,
        })
    }

    /// Fit a max-abs scaler on the present readings of `series`.
    pub fn fit_max_abs(series: &TimeSeries) -> Result<Scaler> {
        let mut scale = f32::NEG_INFINITY;
        let mut any = false;
        for &v in series.values() {
            if v.is_nan() {
                continue;
            }
            any = true;
            scale = scale.max(v.abs());
        }
        if !any {
            return Err(TsError::EmptySeries);
        }
        Ok(Scaler::MaxAbs { scale })
    }

    /// A max-abs scaler with an explicit scale, e.g. a dataset-level maximum
    /// power shared across houses (the usual NILM convention).
    pub fn max_abs_with_scale(scale: f32) -> Scaler {
        Scaler::MaxAbs { scale }
    }

    /// Transform a single value (missing stays missing).
    #[inline]
    pub fn transform_value(&self, v: f32) -> f32 {
        if v.is_nan() {
            return v;
        }
        match *self {
            Scaler::MinMax { min, max } => {
                let range = max - min;
                if range > 0.0 {
                    (v - min) / range
                } else {
                    0.0
                }
            }
            Scaler::ZScore { mean, std } => {
                if std > 0.0 {
                    (v - mean) / std
                } else {
                    0.0
                }
            }
            Scaler::MaxAbs { scale } => {
                if scale > 0.0 {
                    v / scale
                } else {
                    0.0
                }
            }
        }
    }

    /// Invert a single transformed value (missing stays missing).
    #[inline]
    pub fn inverse_value(&self, y: f32) -> f32 {
        if y.is_nan() {
            return y;
        }
        match *self {
            Scaler::MinMax { min, max } => y * (max - min) + min,
            Scaler::ZScore { mean, std } => y * std + mean,
            Scaler::MaxAbs { scale } => y * scale,
        }
    }

    /// Transform a whole series.
    pub fn transform(&self, series: &TimeSeries) -> TimeSeries {
        series.map_values(|v| self.transform_value(v))
    }

    /// Invert a whole transformed series.
    pub fn inverse(&self, series: &TimeSeries) -> TimeSeries {
        series.map_values(|v| self.inverse_value(v))
    }

    /// Transform a raw slice in place (used in training hot paths).
    pub fn transform_slice(&self, values: &mut [f32]) {
        for v in values {
            *v = self.transform_value(*v);
        }
    }
}

/// Min-max normalize a raw slice to `[0, 1]` in place, returning `(min, max)`.
///
/// This is the exact operation CamAL step 4 applies to each member's CAM
/// before averaging. Constant slices become all-zero. NaNs are ignored when
/// fitting and preserved in the output.
pub fn min_max_normalize(values: &mut [f32]) -> (f32, f32) {
    let (mut min, mut max) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in values.iter() {
        if !v.is_nan() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if !min.is_finite() {
        return (0.0, 0.0);
    }
    let range = max - min;
    if range > 0.0 {
        for v in values.iter_mut() {
            if !v.is_nan() {
                *v = (*v - min) / range;
            }
        }
    } else {
        for v in values.iter_mut() {
            if !v.is_nan() {
                *v = 0.0;
            }
        }
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::from_values(0, 60, vec![0.0, 10.0, 20.0, 30.0, 40.0])
    }

    #[test]
    fn min_max_round_trip() {
        let ts = series();
        let sc = Scaler::fit_min_max(&ts).unwrap();
        let t = sc.transform(&ts);
        assert_eq!(t.values(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
        let back = sc.inverse(&t);
        for (a, b) in back.values().iter().zip(ts.values()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn z_score_round_trip() {
        let ts = series();
        let sc = Scaler::fit_z_score(&ts).unwrap();
        let t = sc.transform(&ts);
        let mean: f32 = t.values().iter().sum::<f32>() / 5.0;
        assert!(mean.abs() < 1e-6);
        let back = sc.inverse(&t);
        for (a, b) in back.values().iter().zip(ts.values()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn max_abs_preserves_zero() {
        let ts = series();
        let sc = Scaler::fit_max_abs(&ts).unwrap();
        let t = sc.transform(&ts);
        assert_eq!(t.values()[0], 0.0);
        assert_eq!(t.values()[4], 1.0);
        let explicit = Scaler::max_abs_with_scale(80.0);
        assert_eq!(explicit.transform_value(40.0), 0.5);
    }

    #[test]
    fn constant_series_map_to_zero() {
        let ts = TimeSeries::from_values(0, 60, vec![7.0; 3]);
        let mm = Scaler::fit_min_max(&ts).unwrap();
        assert_eq!(mm.transform(&ts).values(), &[0.0; 3]);
        let z = Scaler::fit_z_score(&ts).unwrap();
        assert_eq!(z.transform(&ts).values(), &[0.0; 3]);
        let zero = TimeSeries::zeros(0, 60, 3);
        let ma = Scaler::fit_max_abs(&zero).unwrap();
        assert_eq!(ma.transform(&zero).values(), &[0.0; 3]);
    }

    #[test]
    fn fitting_skips_missing_and_rejects_all_missing() {
        let ts = TimeSeries::from_values(0, 60, vec![f32::NAN, 2.0, 4.0]);
        let sc = Scaler::fit_min_max(&ts).unwrap();
        assert_eq!(sc, Scaler::MinMax { min: 2.0, max: 4.0 });
        let t = sc.transform(&ts);
        assert!(t.values()[0].is_nan());
        let all = TimeSeries::missing(0, 60, 3);
        assert!(Scaler::fit_min_max(&all).is_err());
        assert!(Scaler::fit_z_score(&all).is_err());
        assert!(Scaler::fit_max_abs(&all).is_err());
    }

    #[test]
    fn slice_normalization_matches_cam_step() {
        let mut v = vec![2.0, 4.0, 6.0];
        let (min, max) = min_max_normalize(&mut v);
        assert_eq!((min, max), (2.0, 6.0));
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
        let mut constant = vec![3.0, 3.0];
        min_max_normalize(&mut constant);
        assert_eq!(constant, vec![0.0, 0.0]);
        let mut with_nan = vec![1.0, f32::NAN, 3.0];
        min_max_normalize(&mut with_nan);
        assert_eq!(with_nan[0], 0.0);
        assert!(with_nan[1].is_nan());
        assert_eq!(with_nan[2], 1.0);
        let mut empty: Vec<f32> = vec![];
        assert_eq!(min_max_normalize(&mut empty), (0.0, 0.0));
    }

    #[test]
    fn transform_slice_in_place() {
        let sc = Scaler::max_abs_with_scale(10.0);
        let mut v = vec![5.0, 10.0, f32::NAN];
        sc.transform_slice(&mut v);
        assert_eq!(v[0], 0.5);
        assert_eq!(v[1], 1.0);
        assert!(v[2].is_nan());
    }
}
