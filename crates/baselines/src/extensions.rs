//! Extension methods beyond the paper's 7-method benchmark — reference
//! points the demo's "margins of improvement" discussion (§IV, scenario 3)
//! calls for.
//!
//! [`EdgeHeuristic`] is the classic training-free event-matching detector
//! (Hart 1992): find steep power edges near the appliance's typical draw,
//! pair rises with falls, and call the paired spans activations. It
//! consumes **zero** labels, making it the floor every learned method must
//! beat — and a natural extra row for the benchmark table.

use crate::traits::{Localizer, WindowPrediction};
use ds_datasets::ApplianceKind;
use ds_metrics::labels::Supervision;
use ds_timeseries::events::{detect_edges, pair_events, segments_to_status};
use ds_timeseries::TimeSeries;

/// A training-free edge-matching localizer tuned by appliance metadata
/// only (typical power and plausible duration) — no labels at all.
#[derive(Debug, Clone)]
pub struct EdgeHeuristic {
    /// Target appliance (sets the power band and duration cap).
    pub appliance: ApplianceKind,
    /// Relative tolerance when matching rise and fall magnitudes.
    pub tolerance: f32,
}

impl EdgeHeuristic {
    /// Heuristic for one appliance with the default tolerance.
    pub fn new(appliance: ApplianceKind) -> EdgeHeuristic {
        EdgeHeuristic {
            appliance,
            tolerance: 0.3,
        }
    }

    /// Minimum edge magnitude: half the appliance's typical draw.
    fn min_delta_w(&self) -> f32 {
        self.appliance.typical_peak_w() * 0.5
    }

    /// Longest plausible activation, in samples (at 1-minute resolution).
    fn max_len(&self) -> usize {
        match self.appliance {
            ApplianceKind::Kettle => 8,
            ApplianceKind::Microwave => 12,
            ApplianceKind::Dishwasher => 150,
            ApplianceKind::WashingMachine => 140,
            ApplianceKind::Shower => 20,
        }
    }
}

impl Localizer for EdgeHeuristic {
    fn name(&self) -> &str {
        "EdgeHeuristic"
    }

    fn supervision(&self) -> Supervision {
        // Consumes zero labels; weak is the closest category (label count
        // is reported as 0 by the harness since it never trains).
        Supervision::Weak
    }

    fn predict(&self, window: &[f32]) -> WindowPrediction {
        let series = TimeSeries::from_values(0, 60, window.to_vec());
        let edges = detect_edges(&series, self.min_delta_w());
        let segments = pair_events(&edges, self.min_delta_w(), self.tolerance, self.max_len());
        let status = segments_to_status(&segments, window.len());
        let any = status.contains(&1);
        WindowPrediction {
            probability: if any { 0.9 } else { 0.1 },
            status,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kettle_pulse_is_found() {
        let h = EdgeHeuristic::new(ApplianceKind::Kettle);
        let mut window = vec![150.0f32; 60];
        window[20..24].fill(150.0 + 2800.0);
        let pred = h.predict(&window);
        assert!(pred.probability > 0.5);
        assert_eq!(pred.status[20..24], [1, 1, 1, 1]);
        assert_eq!(pred.status.iter().map(|&s| s as usize).sum::<usize>(), 4);
    }

    #[test]
    fn flat_window_stays_off() {
        let h = EdgeHeuristic::new(ApplianceKind::Shower);
        let pred = h.predict(&vec![200.0; 120]);
        assert!(pred.probability < 0.5);
        assert!(pred.status.iter().all(|&s| s == 0));
    }

    #[test]
    fn wrong_magnitude_is_rejected() {
        // A 500 W event is far below a shower's 8.5 kW signature.
        let h = EdgeHeuristic::new(ApplianceKind::Shower);
        let mut window = vec![100.0f32; 60];
        window[10..15].fill(600.0);
        let pred = h.predict(&window);
        assert!(pred.status.iter().all(|&s| s == 0));
    }

    #[test]
    fn duration_cap_rejects_endless_events() {
        let h = EdgeHeuristic::new(ApplianceKind::Kettle);
        let mut window = vec![100.0f32; 120];
        // "Kettle-magnitude" plateau lasting an hour: not a kettle.
        window[10..80].fill(2900.0);
        let pred = h.predict(&window);
        assert!(
            pred.status.iter().all(|&s| s == 0),
            "70-minute kettle should be rejected"
        );
    }

    #[test]
    fn works_on_simulated_house() {
        use ds_datasets::{Dataset, DatasetConfig, DatasetPreset};
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 2, 2));
        let house = &ds.houses()[0];
        let h = EdgeHeuristic::new(ApplianceKind::Kettle);
        let values: Vec<f32> = house.aggregate().values()[..720]
            .iter()
            .map(|v| if v.is_nan() { 0.0 } else { *v })
            .collect();
        let pred = h.predict(&values);
        assert_eq!(pred.status.len(), 720);
    }
}
