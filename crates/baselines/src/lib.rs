//! # ds-baselines
//!
//! The six baseline methods of the DeviceScope benchmark (paper §II-C and
//! §III: *"6 baselines in total in addition to CamAL"*):
//!
//! **Five strong-label seq2seq NILM networks** — each consumes one label
//! *per timestep* when training and outputs a per-timestep ON probability:
//!
//! | Name        | Architecture (all on `ds-neural`)                           |
//! |-------------|--------------------------------------------------------------|
//! | `FCN`       | classic fully convolutional stack, kernels 9→5→3             |
//! | `DAE`       | channel-bottleneck (denoising-autoencoder style) stack        |
//! | `UNet-MS`   | multi-scale: narrow (k3) and wide (k15) branches, summed      |
//! | `TCN`       | dilated temporal convolutions, dilation 1→2→4→8               |
//! | `Seq2Point` | small-receptive-field pointwise CNN (local decisions)         |
//!
//! These follow the canonical convolutional NILM lineage (Kelly &
//! Knottenbelt's DAE/Seq2Point, FCN seq2seq, UNet-NILM, TCN variants);
//! pooling/unpooling in UNet is replaced by an equivalent-receptive-field
//! multi-scale sum (documented substitution — see `DESIGN.md`).
//!
//! **One weakly supervised baseline** — [`weak_sliding::WeakSliding`]: a
//! window classifier trained exactly like a CamAL ensemble member (weak
//! labels only), but localizing by brute-force *sliding sub-window scoring*
//! instead of CAM explainability. This is the natural "classifier without
//! explainability" counterpart the paper compares against, and its coarse
//! granularity is what CamAL's 2.2× localization-F1 advantage comes from.
//!
//! Every method implements [`traits::Localizer`], the interface the
//! benchmark harness and the app drive. Beyond the paper's seven methods,
//! [`extensions`] adds a zero-label event-matching heuristic
//! ([`extensions::EdgeHeuristic`]) as the training-free floor.

pub mod archs;
pub mod extensions;
pub mod seqnet;
pub mod strong;
pub mod traits;
pub mod weak_sliding;

pub use strong::StrongLocalizer;
pub use traits::{Localizer, WindowPrediction};
pub use weak_sliding::WeakSliding;

/// Display names of the five strong-label baselines, in benchmark order.
pub const STRONG_BASELINES: [&str; 5] = ["FCN", "DAE", "UNet-MS", "TCN", "Seq2Point"];

/// Display name of the weakly supervised baseline.
pub const WEAK_BASELINE: &str = "WeakSliding";
