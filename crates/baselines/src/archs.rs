//! The five strong-label seq2seq architectures of the benchmark.
//!
//! All map `[B, 1, L]` aggregate windows to `[B, 1, L]` status logits and
//! are built from the same substrate layers; they differ in the inductive
//! bias the NILM literature associates with each family.

use crate::seqnet::{SeqLayer, SeqNet};
use ds_neural::activations::ReLU;
use ds_neural::batchnorm::BatchNorm1d;
use ds_neural::conv::Conv1d;

fn conv(i: usize, o: usize, k: usize, seed: u64) -> SeqLayer {
    SeqLayer::Conv(Conv1d::new(i, o, k, seed))
}

fn dconv(i: usize, o: usize, k: usize, d: usize, seed: u64) -> SeqLayer {
    SeqLayer::Conv(Conv1d::dilated(i, o, k, d, seed))
}

fn bn(c: usize) -> SeqLayer {
    SeqLayer::Bn(BatchNorm1d::new(c))
}

fn relu() -> SeqLayer {
    SeqLayer::Relu(ReLU::new())
}

/// Classic fully convolutional seq2seq: kernels 9 → 5 → 3, 1×1 head.
pub fn fcn(seed: u64) -> SeqNet {
    SeqNet::new(vec![
        conv(1, 16, 9, seed),
        bn(16),
        relu(),
        conv(16, 16, 5, seed + 1),
        bn(16),
        relu(),
        conv(16, 8, 3, seed + 2),
        bn(8),
        relu(),
        conv(8, 1, 1, seed + 3),
    ])
}

/// Denoising-autoencoder style: widen → channel bottleneck → widen,
/// following Kelly & Knottenbelt's DAE (pooling replaced by the bottleneck,
/// see `DESIGN.md`).
pub fn dae(seed: u64) -> SeqNet {
    SeqNet::new(vec![
        conv(1, 16, 5, seed),
        bn(16),
        relu(),
        conv(16, 4, 3, seed + 1), // bottleneck
        bn(4),
        relu(),
        conv(4, 16, 3, seed + 2),
        bn(16),
        relu(),
        conv(16, 1, 5, seed + 3),
    ])
}

/// Multi-scale "UNet-style" network: a narrow-kernel deep branch and a
/// wide-kernel shallow branch processed in parallel and summed, then fused.
/// Stands in for UNet-NILM's encoder/decoder skip structure without
/// pooling (equivalent receptive-field coverage).
pub fn unet_ms(seed: u64) -> SeqNet {
    let narrow = SeqNet::new(vec![
        conv(1, 12, 3, seed),
        bn(12),
        relu(),
        conv(12, 12, 3, seed + 1),
        bn(12),
        relu(),
    ]);
    let wide = SeqNet::new(vec![conv(1, 12, 15, seed + 2), bn(12), relu()]);
    SeqNet::new(vec![
        SeqLayer::ParallelSum(vec![narrow, wide]),
        conv(12, 8, 3, seed + 3),
        bn(8),
        relu(),
        conv(8, 1, 1, seed + 4),
    ])
}

/// Dilated temporal convolution network: dilation 1 → 2 → 4 → 8 with k=3,
/// covering a ~31-sample receptive field with few parameters.
pub fn tcn(seed: u64) -> SeqNet {
    SeqNet::new(vec![
        dconv(1, 12, 3, 1, seed),
        bn(12),
        relu(),
        dconv(12, 12, 3, 2, seed + 1),
        bn(12),
        relu(),
        dconv(12, 12, 3, 4, seed + 2),
        bn(12),
        relu(),
        dconv(12, 12, 3, 8, seed + 3),
        bn(12),
        relu(),
        conv(12, 1, 1, seed + 4),
    ])
}

/// Seq2Point-style pointwise CNN: small receptive field, local decisions —
/// the sliding-window point estimator recast as a dense stack.
pub fn seq2point(seed: u64) -> SeqNet {
    SeqNet::new(vec![
        conv(1, 20, 5, seed),
        bn(20),
        relu(),
        conv(20, 16, 3, seed + 1),
        bn(16),
        relu(),
        conv(16, 1, 1, seed + 2),
    ])
}

/// All five architectures with their benchmark display names.
pub fn all_architectures(seed: u64) -> Vec<(&'static str, SeqNet)> {
    vec![
        ("FCN", fcn(seed)),
        ("DAE", dae(seed.wrapping_add(100))),
        ("UNet-MS", unet_ms(seed.wrapping_add(200))),
        ("TCN", tcn(seed.wrapping_add(300))),
        ("Seq2Point", seq2point(seed.wrapping_add(400))),
    ]
}

/// Build one architecture by display name.
pub fn by_name(name: &str, seed: u64) -> Option<SeqNet> {
    match name {
        "FCN" => Some(fcn(seed)),
        "DAE" => Some(dae(seed)),
        "UNet-MS" => Some(unet_ms(seed)),
        "TCN" => Some(tcn(seed)),
        "Seq2Point" => Some(seq2point(seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_neural::VisitParams;

    #[test]
    fn five_architectures_exist() {
        let archs = all_architectures(0);
        assert_eq!(archs.len(), 5);
        let names: Vec<&str> = archs.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, crate::STRONG_BASELINES.to_vec());
    }

    #[test]
    fn by_name_matches_catalog() {
        for name in crate::STRONG_BASELINES {
            assert!(by_name(name, 1).is_some(), "missing {name}");
        }
        assert!(by_name("BiLSTM", 1).is_none());
    }

    #[test]
    fn architectures_have_distinct_parameter_counts() {
        let mut counts = Vec::new();
        for (name, mut net) in all_architectures(0) {
            let n = net.param_count();
            assert!(n > 50, "{name} suspiciously small: {n}");
            counts.push(n);
        }
        counts.sort_unstable();
        counts.dedup();
        assert!(counts.len() >= 4, "architectures too similar: {counts:?}");
    }

    #[test]
    fn deterministic_construction() {
        let mut a = fcn(5);
        let mut b = fcn(5);
        let mut av = Vec::new();
        let mut bv = Vec::new();
        a.visit_params(&mut |p, _| av.extend_from_slice(p));
        b.visit_params(&mut |p, _| bv.extend_from_slice(p));
        assert_eq!(av, bv);
    }
}
