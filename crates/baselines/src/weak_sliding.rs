//! The weakly supervised baseline: a window classifier (trained exactly
//! like a CamAL ensemble member, on weak labels only) that localizes by
//! **sliding sub-window scoring** — re-running the classifier over short
//! overlapping chunks and marking the chunks it fires on.
//!
//! This is the natural "no-explainability" counterpart to CamAL: same
//! supervision, same detector family, but localization granularity is
//! bounded below by the sub-window length, which is what caps its
//! localization F1 well under CamAL's (the paper reports CamAL 2.2× better).

use crate::traits::{Localizer, WindowPrediction};
use ds_camal::z_normalize_window;
use ds_datasets::labels::Corpus;
use ds_metrics::labels::Supervision;
use ds_neural::tensor::Tensor;
use ds_neural::train::{train_classifier, TrainConfig};
use ds_neural::{ResNet, ResNetConfig};

/// A trained weak sliding-window baseline.
#[derive(Debug, Clone)]
pub struct WeakSliding {
    net: ResNet,
    /// Detection threshold on the full-window probability.
    pub detection_threshold: f32,
    /// Sub-window length, in samples.
    pub sub_len: usize,
    /// Sub-window stride, in samples.
    pub stride: usize,
    /// Training windows consumed.
    pub windows_used: usize,
}

impl WeakSliding {
    /// Fit on a weak-label corpus, using at most `max_windows` windows.
    ///
    /// The sub-window length defaults to 1/6 of the training window (stride
    /// half of that): around one hour at the paper's 6-hour windows.
    pub fn fit(corpus: &Corpus, max_windows: Option<usize>, cfg: &TrainConfig) -> WeakSliding {
        let take = max_windows
            .unwrap_or(corpus.train.len())
            .min(corpus.train.len())
            .max(1);
        let windows: Vec<Vec<f32>> = corpus.train[..take]
            .iter()
            .map(|w| z_normalize_window(&w.values))
            .collect();
        let labels: Vec<u8> = corpus.train[..take]
            .iter()
            .map(|w| u8::from(w.weak))
            .collect();
        let mut net = ResNet::new(ResNetConfig {
            in_channels: 1,
            channels: vec![16, 32],
            kernel: 7,
            num_classes: 2,
            seed: cfg.shuffle_seed.wrapping_add(77),
        });
        train_classifier(&mut net, &windows, &labels, cfg);
        let sub_len = (corpus.window_samples / 6).max(4);
        WeakSliding {
            net,
            detection_threshold: 0.5,
            sub_len,
            stride: (sub_len / 2).max(1),
            windows_used: take,
        }
    }

    /// Construct from parts (tests, persistence).
    pub fn from_parts(net: ResNet, sub_len: usize, stride: usize) -> WeakSliding {
        WeakSliding {
            net,
            detection_threshold: 0.5,
            sub_len: sub_len.max(2),
            stride: stride.max(1),
            windows_used: 0,
        }
    }

    /// Labels consumed for training (weak supervision: one per window).
    pub fn labels_used(&self) -> u64 {
        Supervision::Weak.labels_consumed(self.windows_used, 0)
    }

    fn window_probability(&self, normalized: &[f32]) -> f32 {
        let x = Tensor::from_windows(std::slice::from_ref(&normalized.to_vec()));
        let (probs, _) = self.net.infer_with_cam(&x);
        probs[0]
    }
}

impl Localizer for WeakSliding {
    fn name(&self) -> &str {
        crate::WEAK_BASELINE
    }

    fn supervision(&self) -> Supervision {
        Supervision::Weak
    }

    fn predict(&self, window: &[f32]) -> WindowPrediction {
        assert!(!window.is_empty(), "cannot predict on an empty window");
        let normalized = z_normalize_window(window);
        let probability = self.window_probability(&normalized);
        if probability <= self.detection_threshold || window.len() < self.sub_len {
            return WindowPrediction::all_off(window.len(), probability);
        }
        // Score overlapping sub-windows in one batch; mark firing chunks ON.
        let mut starts = Vec::new();
        let mut lo = 0usize;
        while lo + self.sub_len <= window.len() {
            starts.push(lo);
            lo += self.stride;
        }
        // Include a final chunk flush with the window end.
        if let Some(&last) = starts.last() {
            if last + self.sub_len < window.len() {
                starts.push(window.len() - self.sub_len);
            }
        }
        let subs: Vec<Vec<f32>> = starts
            .iter()
            .map(|&s| z_normalize_window(&window[s..s + self.sub_len]))
            .collect();
        let x = Tensor::from_windows(&subs);
        let (probs, _) = self.net.infer_with_cam(&x);
        let mut status = vec![0u8; window.len()];
        for (&s, &p) in starts.iter().zip(&probs) {
            if p > self.detection_threshold {
                status[s..s + self.sub_len].fill(1);
            }
        }
        WindowPrediction {
            probability,
            status,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_datasets::labels::Corpus;
    use ds_datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};

    fn corpus() -> Corpus {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let mut c = Corpus::build(&ds, ApplianceKind::Kettle, 120);
        c.balance_train(2);
        c
    }

    #[test]
    fn fit_and_predict() {
        let c = corpus();
        let model = WeakSliding::fit(&c, None, &TrainConfig::fast());
        assert_eq!(model.name(), "WeakSliding");
        assert_eq!(model.supervision(), Supervision::Weak);
        assert_eq!(model.sub_len, 20);
        let pred = model.predict(&c.test[0].values);
        assert_eq!(pred.status.len(), c.test[0].values.len());
    }

    #[test]
    fn localization_granularity_is_chunked() {
        // A model that always fires produces chunk-aligned runs, showing the
        // coarse granularity that separates this baseline from CamAL.
        let cfg = ds_neural::ResNetConfig::tiny(5, 0);
        let model = WeakSliding::from_parts(ds_neural::ResNet::new(cfg), 10, 5);
        let window: Vec<f32> = (0..40).map(|i| (i as f32).sin() * 100.0 + 300.0).collect();
        let pred = model.predict(&window);
        // Status is built from length-10 chunks: any ON run is at least 10
        // long (or the window end).
        let mut run = 0usize;
        for &s in &pred.status {
            if s == 1 {
                run += 1;
            } else {
                assert!(run == 0 || run >= 10, "run of {run} shorter than a chunk");
                run = 0;
            }
        }
    }

    #[test]
    fn detection_gate_suppresses_localization() {
        let c = corpus();
        let mut model = WeakSliding::fit(&c, Some(4), &TrainConfig::fast());
        model.detection_threshold = 1.1; // nothing can exceed this
        let pred = model.predict(&c.test[0].values);
        assert!(pred.status.iter().all(|&s| s == 0));
    }

    #[test]
    fn label_accounting_is_weak() {
        let c = corpus();
        let model = WeakSliding::fit(&c, Some(3), &TrainConfig::fast());
        assert_eq!(model.windows_used, 3);
        assert_eq!(model.labels_used(), 3);
    }
}
