//! A generic sequence-to-sequence network: an ordered stack of layers
//! mapping `[B, 1, L]` → per-timestep logits `[B, 1, L]`, with a parallel
//! multi-branch combinator for multi-scale architectures.

use ds_neural::activations::{relu_infer, ReLU};
use ds_neural::batchnorm::BatchNorm1d;
use ds_neural::conv::Conv1d;
use ds_neural::loss::bce_with_logits_pos_weight;
use ds_neural::optim::Adam;
use ds_neural::sample::{MaxPool1d, Upsample1d};
use ds_neural::tensor::Tensor;
use ds_neural::VisitParams;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One layer of a [`SeqNet`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SeqLayer {
    /// 1D convolution (possibly dilated).
    Conv(Conv1d),
    /// Batch normalization.
    Bn(BatchNorm1d),
    /// ReLU activation.
    Relu(ReLU),
    /// Parallel branches whose outputs are summed element-wise (the
    /// multi-scale combinator). All branches must produce the same shape.
    ParallelSum(Vec<SeqNet>),
    /// Max pooling (encoder downsampling).
    Pool(MaxPool1d),
    /// Nearest-neighbour upsampling (decoder).
    Up(Upsample1d),
}

/// A sequential per-timestep network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeqNet {
    layers: Vec<SeqLayer>,
}

impl SeqNet {
    /// Build from layers.
    pub fn new(layers: Vec<SeqLayer>) -> SeqNet {
        assert!(!layers.is_empty(), "SeqNet needs at least one layer");
        SeqNet { layers }
    }

    /// Number of layers (branches count as one).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Training-mode forward.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = match layer {
                SeqLayer::Conv(c) => c.forward(&h, train),
                SeqLayer::Bn(b) => b.forward(&h, train),
                SeqLayer::Relu(r) => r.forward(&h, train),
                SeqLayer::ParallelSum(branches) => {
                    let mut acc: Option<Tensor> = None;
                    for b in branches.iter_mut() {
                        let y = b.forward(&h, train);
                        match acc.as_mut() {
                            Some(a) => a.add_assign(&y),
                            None => acc = Some(y),
                        }
                    }
                    acc.expect("ParallelSum has at least one branch")
                }
                SeqLayer::Pool(p) => p.forward(&h, train),
                SeqLayer::Up(u) => u.forward(&h),
            };
        }
        h
    }

    /// Pure inference forward (`&self`).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for layer in &self.layers {
            h = match layer {
                SeqLayer::Conv(c) => c.infer(&h),
                SeqLayer::Bn(b) => b.infer(&h),
                SeqLayer::Relu(_) => relu_infer(&h),
                SeqLayer::ParallelSum(branches) => {
                    let mut acc: Option<Tensor> = None;
                    for b in branches {
                        let y = b.infer(&h);
                        match acc.as_mut() {
                            Some(a) => a.add_assign(&y),
                            None => acc = Some(y),
                        }
                    }
                    acc.expect("ParallelSum has at least one branch")
                }
                SeqLayer::Pool(p) => {
                    // Max pooling is stateless at inference: a throwaway
                    // clone keeps `infer` pure.
                    let mut p = p.clone();
                    p.forward(&h, false)
                }
                SeqLayer::Up(u) => u.forward(&h),
            };
        }
        h
    }

    /// Backward pass from output-logit gradients, returning the input
    /// gradient.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = match layer {
                SeqLayer::Conv(c) => c.backward(&g),
                SeqLayer::Bn(b) => b.backward(&g),
                SeqLayer::Relu(r) => r.backward(&g),
                SeqLayer::ParallelSum(branches) => {
                    let mut acc: Option<Tensor> = None;
                    for b in branches.iter_mut() {
                        let gi = b.backward(&g);
                        match acc.as_mut() {
                            Some(a) => a.add_assign(&gi),
                            None => acc = Some(gi),
                        }
                    }
                    acc.expect("ParallelSum has at least one branch")
                }
                SeqLayer::Pool(p) => p.backward(&g),
                SeqLayer::Up(u) => u.backward(&g),
            };
        }
        g
    }
}

impl VisitParams for SeqNet {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            match layer {
                SeqLayer::Conv(c) => c.visit_params(f),
                SeqLayer::Bn(b) => b.visit_params(f),
                SeqLayer::Relu(_) => {}
                SeqLayer::ParallelSum(branches) => {
                    for b in branches {
                        b.visit_params(f);
                    }
                }
                SeqLayer::Pool(_) | SeqLayer::Up(_) => {}
            }
        }
    }
}

/// Hyper-parameters of seq2seq training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqTrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Positive-class weight; `None` derives it from the target imbalance.
    pub pos_weight: Option<f32>,
    /// Shuffle seed.
    pub shuffle_seed: u64,
}

impl Default for SeqTrainConfig {
    fn default() -> Self {
        SeqTrainConfig {
            epochs: 20,
            batch_size: 16,
            lr: 1e-3,
            pos_weight: None,
            shuffle_seed: 0,
        }
    }
}

impl SeqTrainConfig {
    /// A fast configuration for unit tests.
    pub fn fast() -> SeqTrainConfig {
        SeqTrainConfig {
            epochs: 5,
            batch_size: 8,
            ..SeqTrainConfig::default()
        }
    }
}

/// Train a [`SeqNet`] on `(normalized windows, per-timestep 0/1 targets)`.
/// Returns per-epoch mean losses.
pub fn train_seq2seq(
    net: &mut SeqNet,
    windows: &[Vec<f32>],
    targets: &[Vec<u8>],
    cfg: &SeqTrainConfig,
) -> Vec<f32> {
    assert!(!windows.is_empty(), "seq2seq training requires windows");
    assert_eq!(windows.len(), targets.len(), "window/target count mismatch");
    let pos_weight = cfg.pos_weight.unwrap_or_else(|| {
        let total: usize = targets.iter().map(Vec::len).sum();
        let pos: usize = targets
            .iter()
            .map(|t| t.iter().filter(|&&s| s == 1).count())
            .sum();
        if pos == 0 || pos == total {
            1.0
        } else {
            // Cap the weight: extreme imbalance otherwise destabilizes Adam.
            ((total - pos) as f32 / pos as f32).min(20.0)
        }
    });
    let _span = ds_obs::span!("seqnet.train");
    let mut opt = Adam::with_weight_decay(cfg.lr, 1e-4);
    let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
    let mut order: Vec<usize> = (0..windows.len()).collect();
    let mut losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let epoch_start = ds_obs::enabled().then(std::time::Instant::now);
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(2)) {
            if chunk.len() < 2 && order.len() >= 2 {
                continue; // batch-norm needs batch statistics
            }
            let batch: Vec<Vec<f32>> = chunk.iter().map(|&i| windows[i].clone()).collect();
            let x = Tensor::from_windows(&batch);
            let mut target = Tensor::zeros(x.batch, 1, x.len);
            for (bi, &i) in chunk.iter().enumerate() {
                for (t, &s) in targets[i].iter().enumerate() {
                    *target.get_mut(bi, 0, t) = s as f32;
                }
            }
            net.zero_grad();
            let logits = net.forward(&x, true);
            let (loss, grad) = bce_with_logits_pos_weight(&logits, &target, pos_weight);
            net.backward(&grad);
            opt.step(net);
            loss_sum += loss as f64;
            batches += 1;
        }
        let epoch_loss = (loss_sum / batches.max(1) as f64) as f32;
        losses.push(epoch_loss);
        if let Some(start) = epoch_start {
            ds_obs::counter_add("seqnet.epochs", 1);
            ds_obs::event!(
                "seqnet_epoch",
                epoch = epoch,
                loss = epoch_loss,
                windows_per_sec = windows.len() as f64 / start.elapsed().as_secs_f64().max(1e-9),
            );
        }
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archs;

    fn toy_seq_corpus(n: usize, len: usize) -> (Vec<Vec<f32>>, Vec<Vec<u8>>) {
        let mut windows = Vec::new();
        let mut targets = Vec::new();
        for i in 0..n {
            let mut w = vec![0.0f32; len];
            let mut t = vec![0u8; len];
            let start = (i * 5) % (len / 2);
            for j in start..start + len / 4 {
                w[j] = 1.0;
                t[j] = 1;
            }
            for (j, v) in w.iter_mut().enumerate() {
                *v += ((i + j) % 3) as f32 * 0.02;
            }
            windows.push(w);
            targets.push(t);
        }
        (windows, targets)
    }

    #[test]
    fn forward_preserves_shape_for_all_archs() {
        let x = Tensor::from_windows(&[vec![0.5; 40], vec![0.1; 40]]);
        for (name, mut net) in archs::all_architectures(1) {
            let y = net.forward(&x, false);
            assert_eq!(y.shape(), (2, 1, 40), "arch {name}");
            let y2 = net.infer(&x);
            assert_eq!(y.data, y2.data, "infer mismatch for {name}");
        }
    }

    #[test]
    fn training_learns_identity_like_mapping() {
        // The plateau IS the target: any seq2seq net should learn this fast.
        let (windows, targets) = toy_seq_corpus(16, 32);
        let mut net = archs::fcn(7);
        let losses = train_seq2seq(
            &mut net,
            &windows,
            &targets,
            &SeqTrainConfig {
                epochs: 15,
                ..SeqTrainConfig::fast()
            },
        );
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.7),
            "loss did not drop: {losses:?}"
        );
        // Prediction should mark plateau timesteps hotter than background.
        let x = Tensor::from_windows(&[windows[0].clone()]);
        let logits = net.infer(&x);
        let on_mean: f32 = logits
            .row(0, 0)
            .iter()
            .zip(&targets[0])
            .filter(|(_, &t)| t == 1)
            .map(|(l, _)| *l)
            .sum::<f32>()
            / targets[0].iter().filter(|&&t| t == 1).count() as f32;
        let off_mean: f32 = logits
            .row(0, 0)
            .iter()
            .zip(&targets[0])
            .filter(|(_, &t)| t == 0)
            .map(|(l, _)| *l)
            .sum::<f32>()
            / targets[0].iter().filter(|&&t| t == 0).count() as f32;
        assert!(on_mean > off_mean, "on {on_mean} vs off {off_mean}");
    }

    #[test]
    fn gradient_flow_through_parallel_sum() {
        use ds_neural::VisitParams;
        let mut net = archs::unet_ms(3);
        let x = Tensor::from_windows(&[vec![0.3; 24], vec![0.6; 24]]);
        let target = Tensor::zeros(2, 1, 24);
        net.zero_grad();
        let logits = net.forward(&x, true);
        let (_, grad) = bce_with_logits_pos_weight(&logits, &target, 1.0);
        let _ = net.backward(&grad);
        // Every parameter must have received a gradient (no dead branch).
        let mut saw_nonzero = 0usize;
        let mut groups = 0usize;
        net.visit_params(&mut |_, g| {
            groups += 1;
            if g.iter().any(|v| *v != 0.0) {
                saw_nonzero += 1;
            }
        });
        assert!(groups > 4);
        assert!(
            saw_nonzero * 2 > groups,
            "too many dead parameter groups: {saw_nonzero}/{groups}"
        );
    }

    #[test]
    fn encoder_decoder_stack_trains() {
        // A true UNet-style encoder–decoder using the Pool/Up layers: shape
        // is preserved for even lengths and gradients flow end to end.
        use ds_neural::batchnorm::BatchNorm1d;
        use ds_neural::conv::Conv1d;
        use ds_neural::sample::{MaxPool1d, Upsample1d};
        let mut net = SeqNet::new(vec![
            SeqLayer::Conv(Conv1d::new(1, 8, 3, 1)),
            SeqLayer::Bn(BatchNorm1d::new(8)),
            SeqLayer::Relu(ds_neural::activations::ReLU::new()),
            SeqLayer::Pool(MaxPool1d::new(2)),
            SeqLayer::Conv(Conv1d::new(8, 8, 3, 2)),
            SeqLayer::Bn(BatchNorm1d::new(8)),
            SeqLayer::Relu(ds_neural::activations::ReLU::new()),
            SeqLayer::Up(Upsample1d::new(2)),
            SeqLayer::Conv(Conv1d::new(8, 1, 1, 3)),
        ]);
        let (windows, targets) = toy_seq_corpus(8, 32);
        let x = Tensor::from_windows(&[windows[0].clone()]);
        assert_eq!(net.forward(&x, false).shape(), (1, 1, 32));
        assert_eq!(net.infer(&x).shape(), (1, 1, 32));
        let losses = train_seq2seq(&mut net, &windows, &targets, &SeqTrainConfig::fast());
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(losses.last().unwrap() <= &losses[0]);
    }

    #[test]
    fn auto_pos_weight_handles_degenerate_targets() {
        let (windows, _) = toy_seq_corpus(4, 16);
        let all_zero = vec![vec![0u8; 16]; 4];
        let mut net = archs::seq2point(5);
        let losses = train_seq2seq(&mut net, &windows, &all_zero, &SeqTrainConfig::fast());
        assert!(losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    #[should_panic(expected = "requires windows")]
    fn empty_training_panics() {
        let mut net = archs::fcn(0);
        let _ = train_seq2seq(&mut net, &[], &[], &SeqTrainConfig::fast());
    }
}
