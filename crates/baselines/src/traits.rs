//! The common interface every benchmarked method implements.

use ds_metrics::labels::Supervision;

/// A method's output for one window: a window-level detection probability
/// and a per-timestep binary status.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPrediction {
    /// Probability that the appliance is present in the window.
    pub probability: f32,
    /// Predicted per-timestep status (0/1), same length as the window.
    pub status: Vec<u8>,
}

impl WindowPrediction {
    /// All-off prediction of the given length.
    pub fn all_off(len: usize, probability: f32) -> WindowPrediction {
        WindowPrediction {
            probability,
            status: vec![0; len],
        }
    }
}

/// A trained appliance detector + localizer, as driven by the benchmark
/// harness and the DeviceScope app.
pub trait Localizer: Send + Sync {
    /// Display name (appears in the benchmark frame).
    fn name(&self) -> &str;

    /// Label style the method consumed for training.
    fn supervision(&self) -> Supervision;

    /// Predict detection probability and per-timestep status for one raw
    /// window (watts).
    fn predict(&self, window: &[f32]) -> WindowPrediction;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_off_prediction() {
        let p = WindowPrediction::all_off(4, 0.2);
        assert_eq!(p.status, vec![0; 4]);
        assert_eq!(p.probability, 0.2);
    }

    // Localizer is object-safe: the harness stores Box<dyn Localizer>.
    #[test]
    fn trait_is_object_safe() {
        struct Dummy;
        impl Localizer for Dummy {
            fn name(&self) -> &str {
                "dummy"
            }
            fn supervision(&self) -> Supervision {
                Supervision::Weak
            }
            fn predict(&self, window: &[f32]) -> WindowPrediction {
                WindowPrediction::all_off(window.len(), 0.0)
            }
        }
        let boxed: Box<dyn Localizer> = Box::new(Dummy);
        assert_eq!(boxed.name(), "dummy");
        assert_eq!(boxed.predict(&[1.0, 2.0]).status.len(), 2);
    }
}
