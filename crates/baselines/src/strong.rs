//! The strong-label localizer wrapper: fits a seq2seq architecture on
//! per-timestep labels and serves [`Localizer`] predictions.
//!
//! This is the method family of the paper's Figure 3 whose training cost is
//! measured in *timestep labels*: every training window contributes
//! `window_len` labels to the budget.

use crate::seqnet::{train_seq2seq, SeqNet, SeqTrainConfig};
use crate::traits::{Localizer, WindowPrediction};
use ds_datasets::labels::Corpus;
use ds_metrics::labels::Supervision;
use ds_neural::activations::sigmoid;
use ds_neural::tensor::Tensor;

/// A trained strong-label seq2seq method.
#[derive(Debug, Clone)]
pub struct StrongLocalizer {
    name: String,
    net: SeqNet,
    /// Per-timestep probability threshold for status.
    pub status_threshold: f32,
    /// Number of training windows actually consumed (after the budget cap).
    pub windows_used: usize,
    /// Window length the model was trained on.
    pub window_samples: usize,
}

impl StrongLocalizer {
    /// Fit `net` on a corpus using at most `max_windows` training windows
    /// (the label-budget knob of Figure 3; `None` uses everything).
    pub fn fit(
        name: impl Into<String>,
        mut net: SeqNet,
        corpus: &Corpus,
        max_windows: Option<usize>,
        cfg: &SeqTrainConfig,
    ) -> StrongLocalizer {
        let take = max_windows
            .unwrap_or(corpus.train.len())
            .min(corpus.train.len())
            .max(1);
        let windows: Vec<Vec<f32>> = corpus.train[..take]
            .iter()
            .map(|w| ds_camal::z_normalize_window(&w.values))
            .collect();
        let targets: Vec<Vec<u8>> = corpus.train[..take]
            .iter()
            .map(|w| w.strong.clone())
            .collect();
        train_seq2seq(&mut net, &windows, &targets, cfg);
        StrongLocalizer {
            name: name.into(),
            net,
            status_threshold: 0.5,
            windows_used: take,
            window_samples: corpus.window_samples,
        }
    }

    /// Labels consumed for training (strong supervision: windows × length).
    pub fn labels_used(&self) -> u64 {
        Supervision::Strong.labels_consumed(self.windows_used, self.window_samples)
    }

    /// Per-timestep ON probabilities for one raw window.
    pub fn predict_probs(&self, window: &[f32]) -> Vec<f32> {
        let normalized = ds_camal::z_normalize_window(window);
        let x = Tensor::from_windows(std::slice::from_ref(&normalized));
        let logits = self.net.infer(&x);
        logits.row(0, 0).iter().map(|&z| sigmoid(z)).collect()
    }
}

impl Localizer for StrongLocalizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn supervision(&self) -> Supervision {
        Supervision::Strong
    }

    fn predict(&self, window: &[f32]) -> WindowPrediction {
        let probs = self.predict_probs(window);
        let status: Vec<u8> = probs
            .iter()
            .map(|&p| u8::from(p > self.status_threshold))
            .collect();
        // Window-level detection: the strongest per-timestep evidence.
        let probability = probs.iter().cloned().fold(0.0f32, f32::max);
        WindowPrediction {
            probability,
            status,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archs;
    use ds_datasets::labels::Corpus;
    use ds_datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};

    fn corpus() -> Corpus {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let mut c = Corpus::build(&ds, ApplianceKind::Kettle, 120);
        c.balance_train(2);
        c
    }

    #[test]
    fn fit_and_predict_shapes() {
        let c = corpus();
        let model = StrongLocalizer::fit("FCN", archs::fcn(1), &c, None, &SeqTrainConfig::fast());
        assert_eq!(model.name(), "FCN");
        assert_eq!(model.supervision(), Supervision::Strong);
        let w = &c.test[0];
        let pred = model.predict(&w.values);
        assert_eq!(pred.status.len(), w.values.len());
        assert!((0.0..=1.0).contains(&pred.probability));
        assert!(pred.status.iter().all(|&s| s <= 1));
    }

    #[test]
    fn budget_caps_label_consumption() {
        let c = corpus();
        let full = StrongLocalizer::fit("FCN", archs::fcn(1), &c, None, &SeqTrainConfig::fast());
        let capped =
            StrongLocalizer::fit("FCN", archs::fcn(1), &c, Some(2), &SeqTrainConfig::fast());
        assert_eq!(capped.windows_used, 2);
        assert_eq!(capped.labels_used(), 2 * 120);
        assert!(full.labels_used() > capped.labels_used());
        // Budget larger than the corpus saturates.
        let over = StrongLocalizer::fit(
            "FCN",
            archs::fcn(1),
            &c,
            Some(10_000),
            &SeqTrainConfig::fast(),
        );
        assert_eq!(over.windows_used, c.train.len());
    }

    #[test]
    fn probabilities_are_sigmoid_outputs() {
        let c = corpus();
        let model =
            StrongLocalizer::fit("TCN", archs::tcn(3), &c, Some(4), &SeqTrainConfig::fast());
        let probs = model.predict_probs(&c.test[0].values);
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }
}
