//! Property-based tests of the baseline methods' structural invariants.

use ds_baselines::seqnet::{train_seq2seq, SeqTrainConfig};
use ds_baselines::{archs, Localizer, WeakSliding};
use ds_neural::tensor::Tensor;
use ds_neural::{ResNet, ResNetConfig};
use proptest::prelude::*;

fn window_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.0f32..8_000.0, 24..160)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_architecture_is_shape_preserving(window in window_strategy(), seed in 0u64..50) {
        let x = Tensor::from_windows(std::slice::from_ref(&window));
        for (name, net) in archs::all_architectures(seed) {
            let y = net.infer(&x);
            prop_assert_eq!(y.shape(), (1, 1, window.len()), "{}", name);
            prop_assert!(y.data.iter().all(|v| v.is_finite()), "{} produced NaN", name);
        }
    }

    #[test]
    fn weak_sliding_prediction_invariants(window in window_strategy(), seed in 0u64..50) {
        let net = ResNet::new(ResNetConfig::tiny(5, seed));
        let sub = (window.len() / 4).max(2);
        let model = WeakSliding::from_parts(net, sub, sub / 2 + 1);
        let pred = model.predict(&window);
        prop_assert_eq!(pred.status.len(), window.len());
        prop_assert!((0.0..=1.0).contains(&pred.probability));
        prop_assert!(pred.status.iter().all(|&s| s <= 1));
        // If the window-level detector did not fire, nothing is localized.
        if pred.probability <= model.detection_threshold {
            prop_assert!(pred.status.iter().all(|&s| s == 0));
        }
    }

    #[test]
    fn seq2seq_training_stays_finite(
        seed in 0u64..20,
        n_windows in 4usize..10,
        len in 16usize..48,
    ) {
        // Random-but-seeded corpus: training must never diverge to NaN.
        let windows: Vec<Vec<f32>> = (0..n_windows)
            .map(|i| {
                (0..len)
                    .map(|j| (((i * 31 + j * 7 + seed as usize) % 23) as f32) / 23.0)
                    .collect()
            })
            .collect();
        let targets: Vec<Vec<u8>> = (0..n_windows)
            .map(|i| (0..len).map(|j| u8::from((i + j) % 5 == 0)).collect())
            .collect();
        let mut net = archs::seq2point(seed);
        let losses = train_seq2seq(&mut net, &windows, &targets, &SeqTrainConfig {
            epochs: 3,
            batch_size: 4,
            ..SeqTrainConfig::default()
        });
        prop_assert!(losses.iter().all(|l| l.is_finite()));
    }
}
