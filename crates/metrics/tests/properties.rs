//! Property-based tests for metric invariants.

use ds_metrics::classification::{pr_curve, score_detection};
use ds_metrics::confusion::{ConfusionMatrix, Measures};
use ds_metrics::localization::{event_report, score_status};
use proptest::prelude::*;

fn labels(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..2, 1..max_len)
}

proptest! {
    #[test]
    fn all_measures_bounded(p in labels(200), t in labels(200)) {
        let n = p.len().min(t.len());
        let m = score_status(&p[..n], &t[..n]);
        for v in [m.accuracy, m.balanced_accuracy, m.precision, m.recall, m.f1] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn perfect_prediction_is_perfect(t in labels(200)) {
        let m = score_status(&t, &t);
        prop_assert_eq!(m.accuracy, 1.0);
        if t.contains(&1) {
            prop_assert_eq!(m.f1, 1.0);
            prop_assert_eq!(m.precision, 1.0);
            prop_assert_eq!(m.recall, 1.0);
        }
        prop_assert_eq!(m.balanced_accuracy, 1.0);
    }

    #[test]
    fn confusion_total_matches_input(p in labels(200), t in labels(200)) {
        let n = p.len().min(t.len());
        let m = ConfusionMatrix::from_labels(&p[..n], &t[..n]);
        prop_assert_eq!(m.total() as usize, n);
    }

    #[test]
    fn merge_equals_concatenation(
        p1 in labels(100), t1 in labels(100),
        p2 in labels(100), t2 in labels(100)
    ) {
        let n1 = p1.len().min(t1.len());
        let n2 = p2.len().min(t2.len());
        let mut merged = ConfusionMatrix::from_labels(&p1[..n1], &t1[..n1]);
        merged.merge(&ConfusionMatrix::from_labels(&p2[..n2], &t2[..n2]));
        let cat_p: Vec<u8> = p1[..n1].iter().chain(&p2[..n2]).copied().collect();
        let cat_t: Vec<u8> = t1[..n1].iter().chain(&t2[..n2]).copied().collect();
        prop_assert_eq!(merged, ConfusionMatrix::from_labels(&cat_p, &cat_t));
    }

    #[test]
    fn f1_is_harmonic_mean(p in labels(200), t in labels(200)) {
        let n = p.len().min(t.len());
        let m = score_status(&p[..n], &t[..n]);
        if m.precision + m.recall > 0.0 {
            let expected = 2.0 * m.precision * m.recall / (m.precision + m.recall);
            prop_assert!((m.f1 - expected).abs() < 1e-12);
        } else {
            prop_assert_eq!(m.f1, 0.0);
        }
    }

    #[test]
    fn detection_symmetry_under_label_swap(p in labels(100), t in labels(100)) {
        // Swapping prediction and truth swaps precision and recall.
        let n = p.len().min(t.len());
        let pb: Vec<bool> = p[..n].iter().map(|&x| x == 1).collect();
        let tb: Vec<bool> = t[..n].iter().map(|&x| x == 1).collect();
        let a = score_detection(&pb, &tb);
        let b = score_detection(&tb, &pb);
        prop_assert!((a.precision - b.recall).abs() < 1e-12);
        prop_assert!((a.recall - b.precision).abs() < 1e-12);
        prop_assert!((a.f1 - b.f1).abs() < 1e-12);
        prop_assert!((a.accuracy - b.accuracy).abs() < 1e-12);
    }

    #[test]
    fn event_counts_bounded(p in labels(300), t in labels(300)) {
        let n = p.len().min(t.len());
        let r = event_report(&p[..n], &t[..n]);
        prop_assert!(r.detected_events <= r.true_events);
        prop_assert!((0.0..=1.0).contains(&r.event_recall()));
    }

    #[test]
    fn pr_curve_thresholds_cover_unit_interval(
        probs in prop::collection::vec(0.0f32..1.0, 1..60),
        steps in 2usize..30
    ) {
        let truth: Vec<bool> = probs.iter().map(|&p| p > 0.5).collect();
        let curve = pr_curve(&probs, &truth, steps);
        prop_assert_eq!(curve.len(), steps);
        prop_assert_eq!(curve[0].threshold, 0.0);
        prop_assert_eq!(curve[steps - 1].threshold, 1.0);
    }

    #[test]
    fn measures_mean_is_bounded(f1s in prop::collection::vec(0.0f64..1.0, 1..20)) {
        let set: Vec<Measures> = f1s
            .iter()
            .map(|&f1| Measures { f1, ..Measures::default() })
            .collect();
        let mean = Measures::mean(&set).unwrap();
        let lo = f1s.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = f1s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean.f1 >= lo - 1e-12 && mean.f1 <= hi + 1e-12);
    }
}
