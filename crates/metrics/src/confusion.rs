//! Binary confusion matrix and the five measures of the paper.

use serde::{Deserialize, Serialize};

/// TP/FP/FN/TN counts of a binary classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
    /// True negatives.
    pub tn: u64,
}

impl ConfusionMatrix {
    /// Empty matrix.
    pub fn new() -> ConfusionMatrix {
        ConfusionMatrix::default()
    }

    /// Build from aligned prediction/truth label slices (0/1).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn from_labels(predicted: &[u8], truth: &[u8]) -> ConfusionMatrix {
        assert_eq!(predicted.len(), truth.len(), "label length mismatch");
        let mut m = ConfusionMatrix::new();
        for (&p, &t) in predicted.iter().zip(truth) {
            m.record(p != 0, t != 0);
        }
        m
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, predicted: bool, truth: bool) {
        match (predicted, truth) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merge counts from another matrix (micro-averaging).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Fraction of correct predictions (0 when empty).
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Mean of true-positive rate and true-negative rate.
    ///
    /// When one class is absent, its rate degrades to the other's (the
    /// scikit-learn convention is to warn and use the available classes;
    /// we average over the present classes only).
    pub fn balanced_accuracy(&self) -> f64 {
        let pos = self.tp + self.fn_;
        let neg = self.fp + self.tn;
        match (pos > 0, neg > 0) {
            (true, true) => (ratio(self.tp, pos) + ratio(self.tn, neg)) / 2.0,
            (true, false) => ratio(self.tp, pos),
            (false, true) => ratio(self.tn, neg),
            (false, false) => 0.0,
        }
    }

    /// `TP / (TP + FP)`; 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// `TP / (TP + FN)`; 0 when no positive ground truth.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r > 0.0 {
            2.0 * p * r / (p + r)
        } else {
            0.0
        }
    }

    /// All five measures at once.
    pub fn measures(&self) -> Measures {
        Measures {
            accuracy: self.accuracy(),
            balanced_accuracy: self.balanced_accuracy(),
            precision: self.precision(),
            recall: self.recall(),
            f1: self.f1(),
        }
    }
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The five measures the DeviceScope benchmark frame reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Measures {
    /// Plain accuracy.
    pub accuracy: f64,
    /// Balanced accuracy.
    pub balanced_accuracy: f64,
    /// Precision on the positive class.
    pub precision: f64,
    /// Recall on the positive class.
    pub recall: f64,
    /// F1 score on the positive class.
    pub f1: f64,
}

impl Measures {
    /// Element-wise mean over a set of measure records (macro-averaging).
    /// Returns `None` for an empty set.
    pub fn mean(set: &[Measures]) -> Option<Measures> {
        if set.is_empty() {
            return None;
        }
        let n = set.len() as f64;
        Some(Measures {
            accuracy: set.iter().map(|m| m.accuracy).sum::<f64>() / n,
            balanced_accuracy: set.iter().map(|m| m.balanced_accuracy).sum::<f64>() / n,
            precision: set.iter().map(|m| m.precision).sum::<f64>() / n,
            recall: set.iter().map(|m| m.recall).sum::<f64>() / n,
            f1: set.iter().map(|m| m.f1).sum::<f64>() / n,
        })
    }

    /// Look up a measure by its display name (as the app's select box does).
    pub fn by_name(&self, name: &str) -> Option<f64> {
        match name.to_ascii_lowercase().replace([' ', '-'], "_").as_str() {
            "accuracy" | "acc" => Some(self.accuracy),
            "balanced_accuracy" | "bacc" => Some(self.balanced_accuracy),
            "precision" => Some(self.precision),
            "recall" => Some(self.recall),
            "f1" | "f1_score" => Some(self.f1),
            _ => None,
        }
    }

    /// The measure names in display order.
    pub const NAMES: [&'static str; 5] =
        ["Accuracy", "Balanced Accuracy", "Precision", "Recall", "F1"];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_matrix() {
        // pred: 1 1 0 0 1 ; truth: 1 0 0 1 1
        let m = ConfusionMatrix::from_labels(&[1, 1, 0, 0, 1], &[1, 0, 0, 1, 1]);
        assert_eq!(
            m,
            ConfusionMatrix {
                tp: 2,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
        let bacc = (2.0 / 3.0 + 1.0 / 2.0) / 2.0;
        assert!((m.balanced_accuracy() - bacc).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_inverted_predictions() {
        let perfect = ConfusionMatrix::from_labels(&[1, 0, 1], &[1, 0, 1]);
        assert_eq!(perfect.measures().f1, 1.0);
        assert_eq!(perfect.measures().accuracy, 1.0);
        let inverted = ConfusionMatrix::from_labels(&[0, 1, 0], &[1, 0, 1]);
        assert_eq!(inverted.accuracy(), 0.0);
        assert_eq!(inverted.f1(), 0.0);
    }

    #[test]
    fn degenerate_class_handling() {
        // All-negative truth, all-negative predictions.
        let m = ConfusionMatrix::from_labels(&[0, 0], &[0, 0]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.balanced_accuracy(), 1.0); // only negatives exist
                                                // Empty matrix.
        let empty = ConfusionMatrix::new();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.balanced_accuracy(), 0.0);
        // All-positive truth.
        let m = ConfusionMatrix::from_labels(&[1, 0], &[1, 1]);
        assert_eq!(m.balanced_accuracy(), 0.5);
    }

    #[test]
    fn merge_is_micro_average() {
        let mut a = ConfusionMatrix::from_labels(&[1], &[1]);
        let b = ConfusionMatrix::from_labels(&[0, 1], &[1, 0]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fp, 1);
        assert_eq!(a.fn_, 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = ConfusionMatrix::from_labels(&[1], &[1, 0]);
    }

    #[test]
    fn measures_mean_and_lookup() {
        let a = Measures {
            accuracy: 1.0,
            balanced_accuracy: 1.0,
            precision: 1.0,
            recall: 1.0,
            f1: 1.0,
        };
        let b = Measures::default();
        let mean = Measures::mean(&[a, b]).unwrap();
        assert_eq!(mean.accuracy, 0.5);
        assert_eq!(mean.f1, 0.5);
        assert!(Measures::mean(&[]).is_none());
        assert_eq!(a.by_name("F1"), Some(1.0));
        assert_eq!(a.by_name("Balanced Accuracy"), Some(1.0));
        assert_eq!(a.by_name("precision"), Some(1.0));
        assert_eq!(a.by_name("nope"), None);
        assert_eq!(Measures::NAMES.len(), 5);
    }

    #[test]
    fn bounds_invariant() {
        // A scatter of matrices: every measure must stay in [0, 1].
        for (tp, fp, fn_, tn) in [(0, 0, 0, 0), (5, 3, 2, 10), (1, 0, 0, 0), (0, 7, 3, 0)] {
            let m = ConfusionMatrix { tp, fp, fn_, tn };
            let ms = m.measures();
            for v in [
                ms.accuracy,
                ms.balanced_accuracy,
                ms.precision,
                ms.recall,
                ms.f1,
            ] {
                assert!((0.0..=1.0).contains(&v), "{v} out of range for {m:?}");
            }
        }
    }
}
