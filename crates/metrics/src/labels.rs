//! Label-budget accounting: the x-axis of the paper's Figure 3.
//!
//! The currencies:
//! - a **weakly supervised** method (CamAL, the weak baseline) consumes one
//!   label per training window;
//! - a **strong-label seq2seq** method consumes one label per *timestep* of
//!   every training window.
//!
//! The paper's claim "*to achieve the same performance as CamAL, NILM-based
//! approaches require 5200× more labels*" is the ratio computed by
//! [`labels_to_match`].

use serde::{Deserialize, Serialize};

/// Supervision style of a method, which determines its label consumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Supervision {
    /// One label per training window (weak supervision).
    Weak,
    /// One label per timestep (strong supervision).
    Strong,
}

impl Supervision {
    /// Labels consumed when training on `windows` windows of `window_len`
    /// timesteps each.
    pub fn labels_consumed(self, windows: usize, window_len: usize) -> u64 {
        match self {
            Supervision::Weak => windows as u64,
            Supervision::Strong => windows as u64 * window_len as u64,
        }
    }
}

/// One point of a label-efficiency curve: a method's score at a budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Labels consumed for training.
    pub labels: u64,
    /// Localization F1 achieved.
    pub f1: f64,
}

/// Smallest label count at which `curve` reaches `target_f1`, if it ever
/// does. The curve need not be sorted or monotone (training is noisy);
/// the earliest qualifying budget is returned.
pub fn labels_to_reach(curve: &[EfficiencyPoint], target_f1: f64) -> Option<u64> {
    curve
        .iter()
        .filter(|p| p.f1 >= target_f1)
        .map(|p| p.labels)
        .min()
}

/// The paper's headline ratio: how many times more labels a strong-label
/// curve needs to match the weak method's best score. `None` when the
/// strong curve never reaches it.
pub fn labels_to_match(
    weak_labels: u64,
    weak_f1: f64,
    strong_curve: &[EfficiencyPoint],
) -> Option<f64> {
    let needed = labels_to_reach(strong_curve, weak_f1)?;
    Some(needed as f64 / weak_labels.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumption_by_supervision() {
        assert_eq!(Supervision::Weak.labels_consumed(100, 360), 100);
        assert_eq!(Supervision::Strong.labels_consumed(100, 360), 36_000);
        assert_eq!(Supervision::Weak.labels_consumed(0, 360), 0);
    }

    #[test]
    fn earliest_qualifying_budget() {
        let curve = [
            EfficiencyPoint {
                labels: 10,
                f1: 0.2,
            },
            EfficiencyPoint {
                labels: 100,
                f1: 0.5,
            },
            EfficiencyPoint {
                labels: 1000,
                f1: 0.45,
            }, // noisy dip
            EfficiencyPoint {
                labels: 10_000,
                f1: 0.8,
            },
        ];
        assert_eq!(labels_to_reach(&curve, 0.5), Some(100));
        assert_eq!(labels_to_reach(&curve, 0.79), Some(10_000));
        assert_eq!(labels_to_reach(&curve, 0.9), None);
    }

    #[test]
    fn match_ratio() {
        let strong = [
            EfficiencyPoint {
                labels: 1_000,
                f1: 0.3,
            },
            EfficiencyPoint {
                labels: 520_000,
                f1: 0.75,
            },
        ];
        // Weak method reaches 0.75 with 100 labels -> ratio 5200.
        let ratio = labels_to_match(100, 0.75, &strong).unwrap();
        assert!((ratio - 5200.0).abs() < 1e-9);
        assert!(labels_to_match(100, 0.99, &strong).is_none());
        // Zero weak labels guards division.
        assert!(labels_to_match(0, 0.3, &strong).unwrap().is_finite());
    }
}
