//! Localization scoring: per-timestep status comparison plus event-level
//! diagnostics.
//!
//! The headline measure of the paper's Figure 3 is per-timestep
//! **localization F1**: predicted on/off status against ground-truth status,
//! scored like any binary classification over all timesteps of the test
//! windows. Event-level diagnostics (what fraction of true activation
//! segments were at least partially hit) are additionally useful in the app
//! to explain *why* a score is low.

use crate::confusion::{ConfusionMatrix, Measures};

/// Score one predicted status vector against truth (0/1 per timestep).
pub fn score_status(predicted: &[u8], truth: &[u8]) -> Measures {
    ConfusionMatrix::from_labels(predicted, truth).measures()
}

/// Tri-state-aware scoring of a predicted status (wire encoding: 0 off,
/// 1 on, 2 unknown) against complete binary truth.
///
/// `Unknown` timesteps are *abstentions*, not predictions — folding them
/// to "off" (as [`score_status`] on the binary view would) silently
/// punishes the serving path for refusing to fabricate decisions over
/// missing data. They are excluded from the confusion counts and reported
/// separately so dashboards can track coverage next to quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnownScore {
    /// Measures over the decided (non-`Unknown`) timesteps only.
    pub measures: Measures,
    /// Timesteps the prediction actually decided.
    pub known: usize,
    /// Timesteps the prediction abstained on.
    pub unknown: usize,
}

impl KnownScore {
    /// Fraction of timesteps with a real decision (1.0 when empty —
    /// an empty prediction abstained on nothing).
    pub fn coverage(&self) -> f64 {
        let total = self.known + self.unknown;
        if total == 0 {
            1.0
        } else {
            self.known as f64 / total as f64
        }
    }
}

/// Score only the timesteps the prediction decided (see [`KnownScore`]).
///
/// # Panics
/// Panics when the two vectors differ in length.
pub fn score_status_known(predicted: &[u8], truth: &[u8]) -> KnownScore {
    assert_eq!(predicted.len(), truth.len(), "status length mismatch");
    let mut m = ConfusionMatrix::new();
    let mut unknown = 0usize;
    for (&p, &t) in predicted.iter().zip(truth) {
        if p == 2 {
            unknown += 1;
        } else {
            m.record(p == 1, t == 1);
        }
    }
    KnownScore {
        measures: m.measures(),
        known: predicted.len() - unknown,
        unknown,
    }
}

/// Micro-average localization over many windows: counts pool over all
/// timesteps, so long windows weigh proportionally (the convention used in
/// NILM evaluations).
pub fn score_status_micro<'a>(pairs: impl IntoIterator<Item = (&'a [u8], &'a [u8])>) -> Measures {
    let mut m = ConfusionMatrix::new();
    for (p, t) in pairs {
        m.merge(&ConfusionMatrix::from_labels(p, t));
    }
    m.measures()
}

/// Event-level diagnostics of a localization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventReport {
    /// Number of ground-truth activation segments.
    pub true_events: usize,
    /// True segments overlapped by at least one predicted ON timestep.
    pub detected_events: usize,
    /// Predicted segments with no overlap with any true segment.
    pub spurious_events: usize,
}

impl EventReport {
    /// Fraction of true events detected (1.0 when there are none).
    pub fn event_recall(&self) -> f64 {
        if self.true_events == 0 {
            1.0
        } else {
            self.detected_events as f64 / self.true_events as f64
        }
    }
}

fn segments(states: &[u8]) -> Vec<(usize, usize)> {
    let mut segs = Vec::new();
    let mut start = None;
    for (i, &s) in states.iter().enumerate() {
        match (s, start) {
            (1, None) => start = Some(i),
            (0, Some(st)) => {
                segs.push((st, i));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(st) = start {
        segs.push((st, states.len()));
    }
    segs
}

fn overlaps(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

/// Compute event-level diagnostics for one window.
pub fn event_report(predicted: &[u8], truth: &[u8]) -> EventReport {
    assert_eq!(predicted.len(), truth.len(), "status length mismatch");
    let true_segs = segments(truth);
    let pred_segs = segments(predicted);
    let detected = true_segs
        .iter()
        .filter(|t| pred_segs.iter().any(|p| overlaps(**t, *p)))
        .count();
    let spurious = pred_segs
        .iter()
        .filter(|p| !true_segs.iter().any(|t| overlaps(**p, *t)))
        .count();
    EventReport {
        true_events: true_segs.len(),
        detected_events: detected,
        spurious_events: spurious,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_timestep_scoring() {
        let m = score_status(&[1, 1, 0, 0], &[1, 0, 0, 1]);
        assert!((m.accuracy - 0.5).abs() < 1e-12);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_only_scoring_skips_abstentions() {
        // Same decisions as `per_timestep_scoring`, plus two abstentions
        // that must not move the measures.
        let s = score_status_known(&[1, 1, 0, 0, 2, 2], &[1, 0, 0, 1, 1, 0]);
        assert_eq!(s.known, 4);
        assert_eq!(s.unknown, 2);
        assert!((s.measures.f1 - 0.5).abs() < 1e-12);
        assert!((s.coverage() - 4.0 / 6.0).abs() < 1e-12);
        // Binary scoring of the same vector would fold the unknowns to
        // "off" and see a different picture.
        let folded = score_status(&[1, 1, 0, 0, 0, 0], &[1, 0, 0, 1, 1, 0]);
        assert!(folded.recall < s.measures.recall);
        // Fully known prediction: identical to the binary scorer.
        let all_known = score_status_known(&[1, 0], &[1, 1]);
        assert_eq!(all_known.unknown, 0);
        assert_eq!(all_known.coverage(), 1.0);
        assert_eq!(all_known.measures, score_status(&[1, 0], &[1, 1]));
        // Empty input is fully covered by definition.
        assert_eq!(score_status_known(&[], &[]).coverage(), 1.0);
    }

    #[test]
    fn micro_average_pools_timesteps() {
        let p1: &[u8] = &[1, 0];
        let t1: &[u8] = &[1, 0];
        let p2: &[u8] = &[0, 0, 0, 0];
        let t2: &[u8] = &[1, 1, 1, 1];
        let m = score_status_micro([(p1, t1), (p2, t2)]);
        // tp=1, fn=4, tn=1 -> recall 0.2.
        assert!((m.recall - 0.2).abs() < 1e-12);
        // The long bad window dominates, unlike a macro average.
        assert!(m.accuracy < 0.5);
    }

    #[test]
    fn segments_and_events() {
        let truth = [0, 1, 1, 0, 0, 1, 1, 1, 0];
        let pred = [0, 0, 1, 0, 0, 0, 0, 0, 1];
        let r = event_report(&pred, &truth);
        assert_eq!(r.true_events, 2);
        assert_eq!(r.detected_events, 1); // first event partially hit
        assert_eq!(r.spurious_events, 1); // trailing lone prediction
        assert!((r.event_recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn event_recall_with_no_events() {
        let r = event_report(&[0, 0], &[0, 0]);
        assert_eq!(r.true_events, 0);
        assert_eq!(r.event_recall(), 1.0);
        let r = event_report(&[1, 1], &[0, 0]);
        assert_eq!(r.spurious_events, 1);
    }

    #[test]
    fn touching_segments_do_not_overlap() {
        // pred [0,2), truth [2,4): share a boundary, no overlap.
        let r = event_report(&[1, 1, 0, 0], &[0, 0, 1, 1]);
        assert_eq!(r.detected_events, 0);
        assert_eq!(r.spurious_events, 1);
    }

    #[test]
    fn full_overlap_detected() {
        let r = event_report(&[1, 1, 1, 1], &[0, 1, 1, 0]);
        assert_eq!(r.true_events, 1);
        assert_eq!(r.detected_events, 1);
        assert_eq!(r.spurious_events, 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn event_report_length_mismatch_panics() {
        let _ = event_report(&[1], &[1, 0]);
    }
}
