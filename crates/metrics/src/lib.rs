//! # ds-metrics
//!
//! Evaluation measures for the DeviceScope benchmark.
//!
//! §III of the paper: *"We employ several measures to compare the models'
//! performance regarding detection and localization, including Accuracy,
//! Balanced Accuracy, Precision, Recall, and F1 Score."* Both tasks are
//! binary classifications — over **windows** for detection, over
//! **timesteps** for localization — so one confusion-matrix core serves
//! both:
//!
//! - [`confusion::ConfusionMatrix`]: the TP/FP/FN/TN counts and every
//!   derived measure.
//! - [`classification`]: detection scoring over window labels.
//! - [`localization`]: per-timestep scoring of predicted status series, plus
//!   event-level diagnostics (how many true activations were at least
//!   partially found).
//! - [`labels`]: label-budget accounting — the x-axis of the paper's
//!   Figure 3 and the basis of its "5200× more labels" claim.
//! - [`aggregate`]: averaging measure sets across appliances/houses.

pub mod aggregate;
pub mod classification;
pub mod confusion;
pub mod labels;
pub mod localization;

pub use confusion::{ConfusionMatrix, Measures};
