//! Detection scoring: window-level binary classification.

use crate::confusion::{ConfusionMatrix, Measures};

/// Score window-level detections against window-level truth.
pub fn score_detection(predicted: &[bool], truth: &[bool]) -> Measures {
    let p: Vec<u8> = predicted.iter().map(|&b| b as u8).collect();
    let t: Vec<u8> = truth.iter().map(|&b| b as u8).collect();
    ConfusionMatrix::from_labels(&p, &t).measures()
}

/// Score probabilistic detections at a threshold.
pub fn score_detection_probs(probs: &[f32], truth: &[bool], threshold: f32) -> Measures {
    let predicted: Vec<bool> = probs.iter().map(|&p| p > threshold).collect();
    score_detection(&predicted, truth)
}

/// A point on a precision/recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Decision threshold producing this point.
    pub threshold: f32,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
    /// F1 at the threshold.
    pub f1: f64,
}

/// Sweep thresholds over `[0, 1]` and report the PR curve — used by the
/// app's probability view and by threshold-selection ablations.
pub fn pr_curve(probs: &[f32], truth: &[bool], steps: usize) -> Vec<PrPoint> {
    assert_eq!(
        probs.len(),
        truth.len(),
        "probability/truth length mismatch"
    );
    let steps = steps.max(2);
    (0..steps)
        .map(|i| {
            let threshold = i as f32 / (steps - 1) as f32;
            let m = score_detection_probs(probs, truth, threshold);
            PrPoint {
                threshold,
                precision: m.precision,
                recall: m.recall,
                f1: m.f1,
            }
        })
        .collect()
}

/// The threshold maximizing F1 on a validation set.
pub fn best_f1_threshold(probs: &[f32], truth: &[bool], steps: usize) -> f32 {
    pr_curve(probs, truth, steps)
        .into_iter()
        .max_by(|a, b| a.f1.partial_cmp(&b.f1).expect("f1 is finite"))
        .map(|p| p.threshold)
        .unwrap_or(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_scoring_matches_confusion() {
        let m = score_detection(&[true, false, true], &[true, true, false]);
        assert!((m.accuracy - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_splits_probabilities() {
        let probs = [0.9, 0.2, 0.6, 0.4];
        let truth = [true, false, true, false];
        let m = score_detection_probs(&probs, &truth, 0.5);
        assert_eq!(m.accuracy, 1.0);
        let strict = score_detection_probs(&probs, &truth, 0.95);
        assert_eq!(strict.recall, 0.0);
    }

    #[test]
    fn pr_curve_monotone_recall() {
        let probs = [0.1, 0.3, 0.5, 0.7, 0.9];
        let truth = [false, false, true, true, true];
        let curve = pr_curve(&probs, &truth, 11);
        assert_eq!(curve.len(), 11);
        // Recall is non-increasing as the threshold rises.
        for w in curve.windows(2) {
            assert!(w[1].recall <= w[0].recall + 1e-12);
        }
        // The ideal threshold range recovers perfect F1.
        assert!(curve.iter().any(|p| p.f1 == 1.0));
    }

    #[test]
    fn best_threshold_maximizes_f1() {
        let probs = [0.1, 0.3, 0.5, 0.7, 0.9];
        let truth = [false, false, true, true, true];
        let t = best_f1_threshold(&probs, &truth, 21);
        let m = score_detection_probs(&probs, &truth, t);
        assert_eq!(m.f1, 1.0);
        // Degenerate inputs fall back to 0.5 only on empty curves; with data
        // it must return a threshold in range.
        assert!((0.0..=1.0).contains(&t));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pr_curve_length_mismatch_panics() {
        let _ = pr_curve(&[0.5], &[true, false], 5);
    }
}
