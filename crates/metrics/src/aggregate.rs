//! Aggregation of measure sets across (dataset, appliance, method) cells —
//! the structure behind the app's benchmark frame and the harness reports.

use crate::confusion::Measures;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One benchmark cell: a method evaluated on one dataset/appliance pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkCell {
    /// Dataset display name (e.g. "UKDALE").
    pub dataset: String,
    /// Appliance display name (e.g. "Kettle").
    pub appliance: String,
    /// Method display name (e.g. "CamAL").
    pub method: String,
    /// Window-level detection measures.
    pub detection: Measures,
    /// Per-timestep localization measures.
    pub localization: Measures,
    /// Labels the method consumed for training.
    pub labels_used: u64,
}

/// A collection of benchmark cells with grouped views.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BenchmarkTable {
    /// All cells, in insertion order.
    pub cells: Vec<BenchmarkCell>,
}

impl BenchmarkTable {
    /// Empty table.
    pub fn new() -> BenchmarkTable {
        BenchmarkTable::default()
    }

    /// Add a cell.
    pub fn push(&mut self, cell: BenchmarkCell) {
        self.cells.push(cell);
    }

    /// Cells of one dataset.
    pub fn for_dataset(&self, dataset: &str) -> Vec<&BenchmarkCell> {
        self.cells.iter().filter(|c| c.dataset == dataset).collect()
    }

    /// Cells of one method.
    pub fn for_method(&self, method: &str) -> Vec<&BenchmarkCell> {
        self.cells.iter().filter(|c| c.method == method).collect()
    }

    /// Look up one cell.
    pub fn get(&self, dataset: &str, appliance: &str, method: &str) -> Option<&BenchmarkCell> {
        self.cells
            .iter()
            .find(|c| c.dataset == dataset && c.appliance == appliance && c.method == method)
    }

    /// Mean localization measures per method, macro-averaged over all
    /// (dataset, appliance) cells — the ranking view of the benchmark frame.
    pub fn method_means(&self) -> BTreeMap<String, Measures> {
        let mut groups: BTreeMap<String, Vec<Measures>> = BTreeMap::new();
        for c in &self.cells {
            groups
                .entry(c.method.clone())
                .or_default()
                .push(c.localization);
        }
        groups
            .into_iter()
            .filter_map(|(m, v)| Measures::mean(&v).map(|mean| (m, mean)))
            .collect()
    }

    /// Distinct method names in first-seen order.
    pub fn methods(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for c in &self.cells {
            if !seen.contains(&c.method) {
                seen.push(c.method.clone());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(dataset: &str, appliance: &str, method: &str, f1: f64) -> BenchmarkCell {
        BenchmarkCell {
            dataset: dataset.into(),
            appliance: appliance.into(),
            method: method.into(),
            detection: Measures::default(),
            localization: Measures {
                f1,
                ..Measures::default()
            },
            labels_used: 10,
        }
    }

    #[test]
    fn grouping_views() {
        let mut t = BenchmarkTable::new();
        t.push(cell("UKDALE", "Kettle", "CamAL", 0.9));
        t.push(cell("UKDALE", "Kettle", "Seq2Point", 0.8));
        t.push(cell("REFIT", "Kettle", "CamAL", 0.7));
        assert_eq!(t.for_dataset("UKDALE").len(), 2);
        assert_eq!(t.for_method("CamAL").len(), 2);
        assert!(t.get("UKDALE", "Kettle", "CamAL").is_some());
        assert!(t.get("IDEAL", "Kettle", "CamAL").is_none());
        assert_eq!(
            t.methods(),
            vec!["CamAL".to_string(), "Seq2Point".to_string()]
        );
    }

    #[test]
    fn method_means_macro_average() {
        let mut t = BenchmarkTable::new();
        t.push(cell("UKDALE", "Kettle", "CamAL", 1.0));
        t.push(cell("REFIT", "Kettle", "CamAL", 0.5));
        t.push(cell("UKDALE", "Kettle", "DAE", 0.4));
        let means = t.method_means();
        assert!((means["CamAL"].f1 - 0.75).abs() < 1e-12);
        assert!((means["DAE"].f1 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn serialization_round_trip() {
        let mut t = BenchmarkTable::new();
        t.push(cell("IDEAL", "Dishwasher", "CamAL", 0.66));
        let json = serde_json::to_string(&t).unwrap();
        let back: BenchmarkTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.cells[0].appliance, "Dishwasher");
    }
}
