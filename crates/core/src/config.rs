//! CamAL hyper-parameters, defaulting to the paper's choices.

use ds_neural::train::TrainConfig;
use ds_neural::Backbone;
use serde::{Deserialize, Serialize};

/// Parameters of the localization pipeline (steps 2–6), with one switch per
/// design choice so each can be ablated (see `DESIGN.md` §5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalizerConfig {
    /// Step 2: ensemble-probability threshold for "appliance detected".
    pub detection_threshold: f32,
    /// Step 4: min-max normalize each member CAM before averaging.
    pub normalize_cams: bool,
    /// Step 5: use the attention product `sigmoid(CAM ∘ x)`; when false the
    /// averaged CAM itself is thresholded at 0.5 (ablation).
    pub use_attention: bool,
    /// Gate localization on detection (step 2); when false every window is
    /// localized regardless of the ensemble probability (ablation).
    pub gate_on_detection: bool,
    /// Additional CAM-magnitude gate: timesteps with `CAM_avg(t)` below this
    /// value are forced off. `0.0` reproduces the paper's formula exactly;
    /// positive values are an extension evaluated in the ablation bench.
    pub cam_gate: f32,
}

impl Default for LocalizerConfig {
    fn default() -> Self {
        LocalizerConfig {
            detection_threshold: 0.5,
            normalize_cams: true,
            use_attention: true,
            gate_on_detection: true,
            cam_gate: 0.0,
        }
    }
}

/// Full CamAL configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CamalConfig {
    /// Kernel sizes of the ensemble members — the paper's `k ∈ {5, 7, 9, 15}`.
    pub kernel_sizes: Vec<usize>,
    /// Backbone of each member: member `i` uses `backbones[i % backbones.len()]`,
    /// so one entry makes a homogeneous ensemble and several entries cycle
    /// for a mixed one. Empty (the default, and what pre-backbone configs
    /// deserialize to) means all-ResNet — the paper's setup.
    #[serde(default)]
    pub backbones: Vec<Backbone>,
    /// Residual-block output channels of every member.
    pub channels: Vec<usize>,
    /// Training hyper-parameters shared by the members.
    pub train: TrainConfig,
    /// Localization pipeline parameters.
    pub localizer: LocalizerConfig,
    /// Keep only the `keep_members` best-detecting members after training
    /// (`None` keeps all) — the paper's member-selection step.
    pub keep_members: Option<usize>,
    /// Base seed; member `i` trains with `seed + i`.
    pub seed: u64,
}

impl Default for CamalConfig {
    fn default() -> Self {
        CamalConfig {
            kernel_sizes: vec![5, 7, 9, 15],
            backbones: Vec::new(),
            channels: vec![16, 32],
            train: TrainConfig::default(),
            localizer: LocalizerConfig::default(),
            keep_members: None,
            seed: 7,
        }
    }
}

impl CamalConfig {
    /// A small, fast configuration for unit tests: two tiny members, few
    /// epochs.
    pub fn fast_test() -> CamalConfig {
        CamalConfig {
            kernel_sizes: vec![3, 5],
            channels: vec![4, 8],
            train: TrainConfig {
                epochs: 6,
                batch_size: 8,
                ..TrainConfig::default()
            },
            ..CamalConfig::default()
        }
    }

    /// Number of ensemble members before selection.
    pub fn ensemble_size(&self) -> usize {
        self.kernel_sizes.len()
    }

    /// Backbone of member `i` (the `backbones` list cycles; empty means
    /// ResNet for every member).
    pub fn backbone_for(&self, i: usize) -> Backbone {
        if self.backbones.is_empty() {
            Backbone::ResNet
        } else {
            self.backbones[i % self.backbones.len()]
        }
    }

    /// The backbone identifying this model in caches and registries: the
    /// first member's. Homogeneous ensembles (the common case — selection
    /// UIs build one model per backbone) are fully described by it.
    pub fn lead_backbone(&self) -> Backbone {
        self.backbone_for(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = CamalConfig::default();
        assert_eq!(cfg.kernel_sizes, vec![5, 7, 9, 15]);
        assert_eq!(cfg.ensemble_size(), 4);
        assert_eq!(cfg.localizer.detection_threshold, 0.5);
        assert!(cfg.localizer.normalize_cams);
        assert!(cfg.localizer.use_attention);
        assert!(cfg.localizer.gate_on_detection);
        assert_eq!(cfg.localizer.cam_gate, 0.0);
        assert!(cfg.keep_members.is_none());
    }

    #[test]
    fn fast_test_config_is_smaller() {
        let cfg = CamalConfig::fast_test();
        assert!(cfg.ensemble_size() < CamalConfig::default().ensemble_size());
        assert!(cfg.train.epochs < CamalConfig::default().train.epochs);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = CamalConfig {
            backbones: vec![Backbone::Inception, Backbone::TransApp],
            ..CamalConfig::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: CamalConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn backbones_cycle_and_default_to_resnet() {
        let mut cfg = CamalConfig::default();
        assert_eq!(cfg.backbone_for(3), Backbone::ResNet);
        assert_eq!(cfg.lead_backbone(), Backbone::ResNet);
        cfg.backbones = vec![Backbone::Inception, Backbone::TransApp];
        assert_eq!(cfg.backbone_for(0), Backbone::Inception);
        assert_eq!(cfg.backbone_for(1), Backbone::TransApp);
        assert_eq!(cfg.backbone_for(2), Backbone::Inception);
        assert_eq!(cfg.lead_backbone(), Backbone::Inception);
        // Pre-backbone configs (no `backbones` key at all) deserialize to
        // the all-ResNet default.
        let json = serde_json::to_string(&CamalConfig::default())
            .unwrap()
            .replace("\"backbones\":[],", "")
            .replace(",\"backbones\":[]", "");
        assert!(!json.contains("backbones"), "key not stripped: {json}");
        let legacy: CamalConfig = serde_json::from_str(&json).unwrap();
        assert!(legacy.backbones.is_empty());
        assert_eq!(legacy.lead_backbone(), Backbone::ResNet);
    }
}
