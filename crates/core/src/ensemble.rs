//! The detector ensemble (paper §II-A): one network per kernel size, each
//! trained independently on the same weak labels. *"This approach is based
//! on the premise that varying kernel sizes change the receptive fields of
//! the CNN, offering different levels of explainability."*
//!
//! Since the backbone-zoo change the ensemble is architecture-agnostic:
//! members are [`DetectorNet`]s driven exclusively through the
//! [`Detector`](crate::detector::Detector) trait, so ResNet, Inception and
//! TransApp members mix freely in one model (the `backbones` list in
//! [`CamalConfig`] cycles over members). [`ResNetEnsemble`] remains as an
//! alias for the paper's all-ResNet default.

use crate::config::CamalConfig;
use crate::detector::Detector;
use ds_neural::tensor::Tensor;
use ds_neural::train::TrainReport;
use ds_neural::{Backbone, DetectorNet, FrozenDetector, InferenceArena, QuantizedDetector};
use serde::{Deserialize, Serialize};

/// Numeric precision of a frozen serving plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Precision {
    /// BN-folded f32 plan (the PR4 serving form).
    #[default]
    F32,
    /// Int8 symmetric-quantized plan with calibrated activation scales.
    Int8,
}

impl Precision {
    /// Stable label, used in cache keys, reports and the REPL.
    pub fn label(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }

    /// Parse a REPL/CLI spelling of a precision (the [`Precision::label`]
    /// strings, case-insensitive).
    pub fn parse(s: &str) -> Option<Precision> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Some(Precision::F32),
            "int8" => Some(Precision::Int8),
            _ => None,
        }
    }
}

/// An ensemble of independently trained detectors, possibly of mixed
/// backbones.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorEnsemble {
    members: Vec<DetectorNet>,
}

/// The paper's all-ResNet ensemble is just a [`DetectorEnsemble`] whose
/// every member happens to be a ResNet; pre-zoo call sites keep the name.
pub type ResNetEnsemble = DetectorEnsemble;

/// Per-member output for one window batch: the positive-class probability
/// and the class-1 CAM of each window.
#[derive(Debug, Clone)]
pub struct MemberOutput {
    /// Kernel size of the member that produced this output.
    pub kernel: usize,
    /// Architecture of the member that produced this output.
    pub backbone: Backbone,
    /// Positive-class probability per window.
    pub probs: Vec<f32>,
    /// Class-1 CAM per window.
    pub cams: Vec<Vec<f32>>,
}

impl DetectorEnsemble {
    /// Build untrained members from a configuration. Member `i` gets
    /// kernel `kernel_sizes[i]` and the backbone
    /// [`CamalConfig::backbone_for`]`(i)` (all-ResNet unless configured).
    pub fn untrained(config: &CamalConfig) -> DetectorEnsemble {
        let members = config
            .kernel_sizes
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                DetectorNet::for_backbone(
                    config.backbone_for(i),
                    1,
                    &config.channels,
                    k,
                    2,
                    config.seed.wrapping_add(i as u64),
                )
            })
            .collect();
        DetectorEnsemble { members }
    }

    /// Wrap trained members.
    pub fn from_members(members: Vec<DetectorNet>) -> DetectorEnsemble {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        DetectorEnsemble { members }
    }

    /// Member count `N`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble has no members (never true for a built one).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Borrow the members.
    pub fn members(&self) -> &[DetectorNet] {
        &self.members
    }

    /// Mutably borrow the members (weight inspection in benches/tests).
    pub fn members_mut(&mut self) -> &mut [DetectorNet] {
        &mut self.members
    }

    /// Drop every member except those at `keep` (selection step). Members
    /// are moved out of the old vector, not cloned — a member owns all of
    /// its weight/optimizer buffers, so cloning here used to double the
    /// ensemble's peak memory during selection.
    pub fn retain_indices(&mut self, keep: &[usize]) {
        assert!(!keep.is_empty(), "cannot retain zero members");
        let mut slots: Vec<Option<DetectorNet>> = std::mem::take(&mut self.members)
            .into_iter()
            .map(Some)
            .collect();
        self.members = keep
            .iter()
            .map(|&i| slots[i].take().expect("duplicate index in retain_indices"))
            .collect();
    }

    /// Train every member on the same `(windows, labels)` corpus,
    /// concurrently across the ds-par worker team (one task per member).
    /// Members differ in kernel size and seed (and possibly backbone),
    /// exactly as in the paper; each owns an independent shuffle RNG, so
    /// member-parallel training is deterministic by construction. Inside a
    /// worker, nested ds-par calls (the layer micro-batch fan-outs) run
    /// sequentially, so member parallelism never oversubscribes the team
    /// the way the previous one-OS-thread-per-member scheme did — and
    /// `DS_PAR_THREADS=1` degrades to a plain sequential loop over members.
    ///
    /// Returns one [`TrainReport`] per member.
    pub fn train(
        &mut self,
        windows: &[Vec<f32>],
        labels: &[u8],
        config: &CamalConfig,
    ) -> Vec<TrainReport> {
        let base_cfg = &config.train;
        ds_par::par_chunks_map_mut(&mut self.members, 1, |i, chunk| {
            let member = &mut chunk[0];
            let mut cfg = base_cfg.clone();
            cfg.shuffle_seed = base_cfg.shuffle_seed.wrapping_add(i as u64);
            // Worker threads root their own span stack, so each member's
            // wall time aggregates under this path.
            let _span = ds_obs::span!("train.member");
            let report = member.train_member(windows, labels, &cfg);
            ds_obs::event!(
                "ensemble_member_trained",
                member = i,
                kernel = member.kernel(),
                backbone = member.backbone().label(),
                epochs = report.epoch_losses.len(),
                train_accuracy = report.train_accuracy,
                early_stopped = report.early_stopped,
            );
            report
        })
    }

    /// Steps 1 & 3: run every member over a `[B, 1, L]` batch, collecting
    /// probabilities and class-1 CAMs. Pure (`&self`): a trained ensemble is
    /// shareable across threads at prediction time.
    ///
    /// Members fan out across the ds-par worker team (one task per member);
    /// inference inside each member then runs sequentially, since nested
    /// ds-par calls are suppressed. Outputs come back in member order and
    /// each member's numerics are untouched by the fan-out, so results are
    /// bit-identical to a sequential loop at any `DS_PAR_THREADS`.
    pub fn predict(&self, x: &Tensor) -> Vec<MemberOutput> {
        let _span = ds_obs::span!("ensemble.predict");
        let member_output = |m: &DetectorNet| {
            let (probs, cams) = Detector::infer_with_cam(m, x);
            MemberOutput {
                kernel: m.kernel(),
                backbone: m.backbone(),
                probs,
                cams,
            }
        };
        // Below the fan-out floor (total batch rows across members) the
        // dispatch costs more than it buys — serve sequentially and skip
        // the thread spawns entirely. Identical results either way.
        if !ds_par::should_fanout(x.batch * self.members.len()) {
            return self.members.iter().map(member_output).collect();
        }
        ds_par::par_map_chunked(&self.members, 1, |_, m| member_output(m))
    }

    /// Compile every member into its frozen inference plan (BN folded,
    /// ReLU fused, arena-driven; see [`FrozenDetector`]). The source
    /// ensemble is untouched — it remains the trainable form, and can be
    /// re-frozen after further training.
    pub fn freeze(&self) -> FrozenEnsemble {
        FrozenEnsemble {
            members: self
                .members
                .iter()
                .map(|m| FrozenMember {
                    plan: MemberPlan::F32(Detector::freeze(m)),
                    arena: InferenceArena::new(),
                })
                .collect(),
            ens_probs: Vec::new(),
            batch: 0,
            precision: Precision::F32,
        }
    }

    /// Compile every member into an **int8** frozen plan: freeze (BN
    /// folding as in [`DetectorEnsemble::freeze`]), then quantize with
    /// activation scales calibrated per member on `calib` — a batch of
    /// held-out windows pre-processed exactly like serving inputs
    /// (z-normalized). The f32 frozen plan stays available; decision
    /// parity between the two is gated by the golden tests.
    pub fn freeze_quantized(&self, calib: &Tensor) -> FrozenEnsemble {
        FrozenEnsemble {
            members: self
                .members
                .iter()
                .map(|m| FrozenMember {
                    plan: MemberPlan::Int8(Detector::freeze_quantized(m, calib)),
                    arena: InferenceArena::new(),
                })
                .collect(),
            ens_probs: Vec::new(),
            batch: 0,
            precision: Precision::Int8,
        }
    }

    /// Ensemble probability per window: `Prob_ens = (1/N) Σ Prob_n`.
    pub fn ensemble_probability(outputs: &[MemberOutput]) -> Vec<f32> {
        assert!(!outputs.is_empty(), "no member outputs");
        let n = outputs[0].probs.len();
        let mut probs = vec![0.0f32; n];
        for out in outputs {
            assert_eq!(out.probs.len(), n, "member batch size mismatch");
            for (acc, p) in probs.iter_mut().zip(&out.probs) {
                *acc += p;
            }
        }
        let scale = 1.0 / outputs.len() as f32;
        for p in &mut probs {
            *p *= scale;
        }
        probs
    }
}

/// The compiled serving plan of one member, at either precision. Both
/// variants serve through the same [`InferenceArena`] interface.
#[derive(Debug, Clone)]
enum MemberPlan {
    F32(FrozenDetector),
    Int8(QuantizedDetector),
}

impl MemberPlan {
    fn predict_into(&self, x: &Tensor, arena: &mut InferenceArena) {
        match self {
            MemberPlan::F32(net) => net.predict_into(x, arena),
            MemberPlan::Int8(net) => net.predict_into(x, arena),
        }
    }

    fn kernel(&self) -> usize {
        match self {
            MemberPlan::F32(net) => net.kernel(),
            MemberPlan::Int8(net) => net.kernel(),
        }
    }

    fn backbone(&self) -> Backbone {
        match self {
            MemberPlan::F32(net) => net.backbone(),
            MemberPlan::Int8(net) => net.backbone(),
        }
    }

    fn param_bits(&self) -> Vec<u32> {
        match self {
            MemberPlan::F32(net) => net.param_bits(),
            MemberPlan::Int8(net) => net.param_bits(),
        }
    }
}

/// One frozen member plus its private inference arena. The arena holds
/// the member's most recent outputs (probabilities, CAMs, logits) in
/// place — reading them costs nothing and writing the next batch reuses
/// the same memory.
#[derive(Debug, Clone)]
pub struct FrozenMember {
    plan: MemberPlan,
    arena: InferenceArena,
}

impl FrozenMember {
    /// Kernel size of this member (the ensemble diversity knob).
    pub fn kernel(&self) -> usize {
        self.plan.kernel()
    }

    /// Architecture of this member's plan.
    pub fn backbone(&self) -> Backbone {
        self.plan.backbone()
    }

    /// Positive-class probability per window of the most recent pass.
    pub fn probs(&self) -> &[f32] {
        self.arena.probs()
    }

    /// Class-1 CAM of window `w` from the most recent pass.
    pub fn cam(&self, w: usize) -> &[f32] {
        self.arena.cam(w)
    }

    /// Heap footprint of this member's warm inference arena in bytes.
    pub fn arena_bytes(&self) -> usize {
        self.arena.heap_bytes()
    }
}

/// The serving form of a [`DetectorEnsemble`]: every member compiled to a
/// [`FrozenDetector`] (or [`QuantizedDetector`] at int8), plus reused
/// output buffers. Built once per trained ensemble via
/// [`DetectorEnsemble::freeze`].
///
/// Prediction is `&mut self` (it writes the member arenas), sequential
/// over members, and — after the first call per window shape — performs
/// zero heap allocations. Members are *not* fanned across the ds-par team
/// here: the committed perf results show thread fan-out buys ~1.0× on
/// this workload, and the dispatch itself allocates, which would break
/// the steady-state zero-alloc contract.
#[derive(Debug, Clone)]
pub struct FrozenEnsemble {
    members: Vec<FrozenMember>,
    /// `Prob_ens` per window of the most recent pass.
    ens_probs: Vec<f32>,
    /// Window count of the most recent pass.
    batch: usize,
    /// Numeric precision every member plan was compiled at.
    precision: Precision,
}

impl FrozenEnsemble {
    /// Member count `N`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Numeric precision of the member plans.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Whether the ensemble has no members (never true for a built one).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Borrow the frozen members (and their most recent outputs).
    pub fn members(&self) -> &[FrozenMember] {
        &self.members
    }

    /// Total heap footprint of the warm member arenas plus the ensemble
    /// probability buffer, in bytes. A serving front clones one plan per
    /// worker, so its steady-state memory is roughly `workers ×` this.
    pub fn arena_bytes(&self) -> usize {
        self.members
            .iter()
            .map(FrozenMember::arena_bytes)
            .sum::<usize>()
            + self.ens_probs.capacity() * std::mem::size_of::<f32>()
    }

    /// Steps 1 & 3 on the frozen path: run every member over a `[B, 1, L]`
    /// batch and compute `Prob_ens`. Results live in the member arenas
    /// ([`FrozenMember::probs`]/[`FrozenMember::cam`]) and
    /// [`FrozenEnsemble::ensemble_probs`]. The mean accumulates in member
    /// order, matching [`DetectorEnsemble::ensemble_probability`] exactly.
    pub fn predict_into(&mut self, x: &Tensor) {
        let _span = ds_obs::span!("frozen.predict");
        let b = x.batch;
        for m in &mut self.members {
            m.plan.predict_into(x, &mut m.arena);
        }
        if self.ens_probs.len() < b {
            self.ens_probs.resize(b, 0.0);
        }
        self.ens_probs[..b].fill(0.0);
        for m in &self.members {
            for (acc, &p) in self.ens_probs[..b].iter_mut().zip(m.arena.probs()) {
                *acc += p;
            }
        }
        let scale = 1.0 / self.members.len() as f32;
        for p in &mut self.ens_probs[..b] {
            *p *= scale;
        }
        self.batch = b;
    }

    /// `Prob_ens` per window of the most recent [`predict_into`] pass.
    ///
    /// [`predict_into`]: FrozenEnsemble::predict_into
    pub fn ensemble_probs(&self) -> &[f32] {
        &self.ens_probs[..self.batch]
    }

    /// Every folded parameter of every member as raw `f32` bit patterns,
    /// in a stable (member-major) order. Two freezes of behaviorally
    /// identical ensembles — e.g. before and after a checkpoint round
    /// trip — must produce equal vectors, which the persistence tests
    /// assert bit-for-bit.
    pub fn param_bits(&self) -> Vec<u32> {
        let mut bits = Vec::new();
        for m in &self.members {
            bits.extend(m.plan.param_bits());
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;

    fn toy_corpus(n: usize, len: usize) -> (Vec<Vec<f32>>, Vec<u8>) {
        let mut windows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let mut w = vec![0.1f32; len];
            if i % 2 == 1 {
                for v in &mut w[len / 3..len / 2] {
                    *v = 1.0;
                }
            }
            for (j, v) in w.iter_mut().enumerate() {
                *v += ((i * 5 + j * 3) % 7) as f32 * 0.01;
            }
            windows.push(w);
            labels.push((i % 2) as u8);
        }
        (windows, labels)
    }

    #[test]
    fn untrained_members_match_config() {
        let cfg = CamalConfig::fast_test();
        let ens = DetectorEnsemble::untrained(&cfg);
        assert_eq!(ens.len(), 2);
        assert!(!ens.is_empty());
        assert_eq!(ens.members()[0].kernel(), 3);
        assert_eq!(ens.members()[1].kernel(), 5);
        assert!(ens
            .members()
            .iter()
            .all(|m| m.backbone() == Backbone::ResNet));
    }

    #[test]
    fn mixed_backbones_cycle_over_members() {
        let cfg = CamalConfig {
            backbones: vec![Backbone::Inception, Backbone::TransApp],
            ..CamalConfig::fast_test()
        };
        let ens = DetectorEnsemble::untrained(&cfg);
        assert_eq!(ens.members()[0].backbone(), Backbone::Inception);
        assert_eq!(ens.members()[1].backbone(), Backbone::TransApp);
    }

    #[test]
    fn parallel_training_improves_all_members() {
        let cfg = CamalConfig::fast_test();
        let (windows, labels) = toy_corpus(24, 40);
        let mut ens = DetectorEnsemble::untrained(&cfg);
        let reports = ens.train(&windows, &labels, &cfg);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.epoch_losses.iter().all(|l| l.is_finite()));
            assert!(
                r.epoch_losses.last().unwrap() <= &r.epoch_losses[0],
                "member loss went up: {:?}",
                r.epoch_losses
            );
        }
    }

    #[test]
    fn ensemble_probability_is_mean() {
        let outputs = vec![
            MemberOutput {
                kernel: 5,
                backbone: Backbone::ResNet,
                probs: vec![0.2, 0.8],
                cams: vec![vec![], vec![]],
            },
            MemberOutput {
                kernel: 7,
                backbone: Backbone::Inception,
                probs: vec![0.6, 0.4],
                cams: vec![vec![], vec![]],
            },
        ];
        let p = DetectorEnsemble::ensemble_probability(&outputs);
        assert!((p[0] - 0.4).abs() < 1e-6);
        assert!((p[1] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn predict_returns_member_outputs() {
        let cfg = CamalConfig::fast_test();
        let ens = DetectorEnsemble::untrained(&cfg);
        let x = Tensor::from_windows(&[vec![0.5; 32], vec![0.2; 32]]);
        let outputs = ens.predict(&x);
        assert_eq!(outputs.len(), 2);
        for out in &outputs {
            assert_eq!(out.probs.len(), 2);
            assert_eq!(out.cams.len(), 2);
            assert_eq!(out.cams[0].len(), 32);
            assert_eq!(out.backbone, Backbone::ResNet);
        }
        assert_eq!(outputs[0].kernel, 3);
    }

    #[test]
    fn retain_indices_selects_members() {
        let cfg = CamalConfig::fast_test();
        let mut ens = DetectorEnsemble::untrained(&cfg);
        ens.retain_indices(&[1]);
        assert_eq!(ens.len(), 1);
        assert_eq!(ens.members()[0].kernel(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        let _ = DetectorEnsemble::from_members(vec![]);
    }

    #[test]
    fn frozen_matches_reference_and_allocates_nothing() {
        let cfg = CamalConfig::fast_test();
        let (windows, labels) = toy_corpus(24, 40);
        let mut ens = DetectorEnsemble::untrained(&cfg);
        // Training moves the BN running statistics (folding becomes
        // non-trivial) and pushes probabilities away from the 0.5 decision
        // boundary.
        ens.train(&windows, &labels, &cfg);
        let x = Tensor::from_windows(&windows[..5]);
        let outputs = ens.predict(&x);
        let probs = DetectorEnsemble::ensemble_probability(&outputs);
        let mut frozen = ens.freeze();
        assert_eq!(frozen.len(), ens.len());
        assert!(!frozen.is_empty());
        frozen.predict_into(&x);
        for (i, (&f, &r)) in frozen.ensemble_probs().iter().zip(&probs).enumerate() {
            assert!((f - r).abs() < 1e-4, "window {i}: frozen {f} vs {r}");
            assert_eq!(f > 0.5, r > 0.5, "decision flip at window {i}");
        }
        for (m, out) in frozen.members().iter().zip(&outputs) {
            assert_eq!(m.kernel(), out.kernel);
            assert_eq!(m.backbone(), out.backbone);
            for i in 0..5 {
                assert!((m.probs()[i] - out.probs[i]).abs() < 1e-4);
                for (a, b) in m.cam(i).iter().zip(&out.cams[i]) {
                    assert!((a - b).abs() < 1e-3, "member cam diverged: {a} vs {b}");
                }
            }
        }
        // Steady state: repeated passes on the warmed arenas are
        // allocation-free.
        let before = ds_obs::alloc_count();
        for _ in 0..4 {
            frozen.predict_into(&x);
        }
        assert_eq!(ds_obs::alloc_count(), before, "frozen predict allocated");
    }

    #[test]
    fn mixed_backbone_ensemble_trains_predicts_and_freezes() {
        // One member per backbone — the zoo's core promise: heterogeneous
        // members behind one `Detector` surface, frozen plans included.
        let cfg = CamalConfig {
            kernel_sizes: vec![3, 5, 5],
            backbones: vec![Backbone::ResNet, Backbone::Inception, Backbone::TransApp],
            ..CamalConfig::fast_test()
        };
        let (windows, labels) = toy_corpus(24, 40);
        let mut ens = DetectorEnsemble::untrained(&cfg);
        let reports = ens.train(&windows, &labels, &cfg);
        assert_eq!(reports.len(), 3);
        assert!(reports
            .iter()
            .all(|r| r.epoch_losses.iter().all(|l| l.is_finite())));
        let x = Tensor::from_windows(&windows[..4]);
        let outputs = ens.predict(&x);
        let backbones: Vec<Backbone> = outputs.iter().map(|o| o.backbone).collect();
        assert_eq!(
            backbones,
            vec![Backbone::ResNet, Backbone::Inception, Backbone::TransApp]
        );
        let probs = DetectorEnsemble::ensemble_probability(&outputs);
        let mut frozen = ens.freeze();
        frozen.predict_into(&x);
        for (i, (&f, &r)) in frozen.ensemble_probs().iter().zip(&probs).enumerate() {
            assert!((f - r).abs() < 1e-4, "window {i}: frozen {f} vs {r}");
            assert_eq!(f > 0.5, r > 0.5, "decision flip at window {i}");
        }
        // Int8 plans of every backbone serve through the same arenas.
        let mut quant = ens.freeze_quantized(&x);
        assert_eq!(quant.precision(), Precision::Int8);
        quant.predict_into(&x);
        for (&q, &r) in quant.ensemble_probs().iter().zip(&probs) {
            assert!((q - r).abs() < 0.05, "int8 drifted: {q} vs {r}");
        }
        let before = ds_obs::alloc_count();
        for _ in 0..3 {
            frozen.predict_into(&x);
            quant.predict_into(&x);
        }
        assert_eq!(
            ds_obs::alloc_count(),
            before,
            "mixed frozen predict allocated"
        );
    }

    #[test]
    fn deterministic_parallel_training() {
        // Members train on separate threads but each is seeded; results must
        // be identical across runs.
        let cfg = CamalConfig::fast_test();
        let (windows, labels) = toy_corpus(12, 24);
        let run = || {
            let mut ens = DetectorEnsemble::untrained(&cfg);
            ens.train(&windows, &labels, &cfg);
            let x = Tensor::from_windows(&[windows[0].clone()]);
            let outputs = ens.predict(&x);
            DetectorEnsemble::ensemble_probability(&outputs)
        };
        assert_eq!(run(), run());
    }
}
