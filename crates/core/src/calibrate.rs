//! Detection-threshold calibration.
//!
//! The paper uses a fixed `Prob_ens > 0.5` gate (step 2). In deployment the
//! optimal threshold depends on the appliance and the label regime
//! (possession labels make positives noisy), so this module tunes the
//! threshold on held-out training windows by maximizing balanced accuracy —
//! an extension evaluated in the ablation bench.

use crate::ensemble::ResNetEnsemble;
use crate::z_normalize_window;
use ds_datasets::labels::LabeledWindow;
use ds_metrics::confusion::ConfusionMatrix;
use ds_neural::tensor::Tensor;

/// Result of a threshold sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The threshold maximizing balanced accuracy on the validation set.
    pub threshold: f32,
    /// Balanced accuracy achieved there.
    pub balanced_accuracy: f64,
    /// Balanced accuracy at the paper's fixed 0.5 threshold, for reference.
    pub baseline_balanced_accuracy: f64,
}

/// Sweep `steps` equally spaced thresholds over `(0, 1)` on validation
/// windows and pick the best by balanced accuracy (ties: closest to 0.5,
/// the paper's default).
pub fn calibrate_threshold(
    ensemble: &ResNetEnsemble,
    validation: &[LabeledWindow],
    steps: usize,
) -> Calibration {
    assert!(
        !validation.is_empty(),
        "calibration needs validation windows"
    );
    let steps = steps.max(3);
    let normalized: Vec<Vec<f32>> = validation
        .iter()
        .map(|w| z_normalize_window(&w.values))
        .collect();
    let x = Tensor::from_windows(&normalized);
    let outputs = ensemble.predict(&x);
    let probs = ResNetEnsemble::ensemble_probability(&outputs);
    let truth: Vec<u8> = validation.iter().map(|w| u8::from(w.weak)).collect();

    let bacc_at = |threshold: f32| -> f64 {
        let preds: Vec<u8> = probs.iter().map(|&p| u8::from(p > threshold)).collect();
        ConfusionMatrix::from_labels(&preds, &truth).balanced_accuracy()
    };
    let baseline = bacc_at(0.5);
    let mut best = (0.5f32, baseline);
    for i in 1..steps {
        let t = i as f32 / steps as f32;
        let b = bacc_at(t);
        let better = b > best.1 + 1e-12
            || ((b - best.1).abs() <= 1e-12 && (t - 0.5).abs() < (best.0 - 0.5).abs());
        if better {
            best = (t, b);
        }
    }
    Calibration {
        threshold: best.0,
        balanced_accuracy: best.1,
        baseline_balanced_accuracy: baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;
    use crate::train::train_camal_with_reports;
    use ds_datasets::labels::Corpus;
    use ds_datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};

    fn corpus() -> Corpus {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let mut c = Corpus::build(&ds, ApplianceKind::Kettle, 120);
        c.balance_train(2);
        c
    }

    #[test]
    fn calibration_never_underperforms_the_default() {
        let c = corpus();
        let (model, _) = train_camal_with_reports(&c, &CamalConfig::fast_test());
        let cal = calibrate_threshold(model.ensemble(), &c.train, 20);
        assert!(
            cal.balanced_accuracy >= cal.baseline_balanced_accuracy - 1e-12,
            "calibrated {} < baseline {}",
            cal.balanced_accuracy,
            cal.baseline_balanced_accuracy
        );
        assert!((0.0..1.0).contains(&cal.threshold));
    }

    #[test]
    fn degenerate_probabilities_fall_back_to_half() {
        // An untrained ensemble gives near-constant probabilities; the
        // tie-break must prefer a threshold close to the paper's 0.5.
        let cfg = CamalConfig::fast_test();
        let ensemble = crate::ensemble::ResNetEnsemble::untrained(&cfg);
        let c = corpus();
        let cal = calibrate_threshold(&ensemble, &c.train[..4.min(c.train.len())], 10);
        assert!(cal.threshold > 0.0 && cal.threshold < 1.0);
    }

    #[test]
    #[should_panic(expected = "validation windows")]
    fn empty_validation_panics() {
        let cfg = CamalConfig::fast_test();
        let ensemble = crate::ensemble::ResNetEnsemble::untrained(&cfg);
        let _ = calibrate_threshold(&ensemble, &[], 10);
    }
}
