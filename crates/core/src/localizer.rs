//! Steps 3–6 of the pipeline: CAM extraction, normalization, averaging,
//! the attention mask, and the binary appliance status.
//!
//! With the paper's defaults the chain is, per timestep `t`:
//!
//! ```text
//! ĈAM_n(t)   = minmax(CAM_n)(t)                    (step 4, per member)
//! ĈAM_avg(t) = (1/N) Σ_n ĈAM_n(t)                  (step 4, averaging)
//! s(t)       = sigmoid(ĈAM_avg(t) · x(t))          (step 5, x = z-scored input)
//! status(t)  = 1 ⇔ s(t) > 0.5                      (step 6)
//! ```
//!
//! Note that `sigmoid(p) > 0.5 ⇔ p > 0`, so with a nonnegative normalized
//! CAM the status marks timesteps whose *normalized* consumption is above
//! the window mean inside CAM-supported regions — gated (step 2) on the
//! ensemble detecting the appliance at all. Every design choice carries an
//! ablation switch in [`LocalizerConfig`].

use crate::config::LocalizerConfig;
use crate::detector::Detection;
use crate::ensemble::{FrozenEnsemble, MemberOutput, ResNetEnsemble};
use crate::z_normalize_window;
use ds_neural::activations::sigmoid;
use ds_neural::tensor::Tensor;
use ds_timeseries::normalize::min_max_normalize;

/// Full output of the CamAL pipeline for one window.
#[derive(Debug, Clone, PartialEq)]
pub struct Localization {
    /// The detection step's outcome (steps 1–2).
    pub detection: Detection,
    /// The averaged (and, by default, normalized) CAM (steps 3–4).
    pub cam: Vec<f32>,
    /// The attention signal `s(t)` (step 5).
    pub attention: Vec<f32>,
    /// The binary per-timestep appliance status (step 6).
    pub status: Vec<u8>,
}

/// Run steps 1–6 on one raw window (watts).
pub fn localize(ensemble: &ResNetEnsemble, window: &[f32], cfg: &LocalizerConfig) -> Localization {
    assert!(!window.is_empty(), "cannot localize an empty window");
    let _span = ds_obs::span!("camal.localize");
    let start = ds_obs::enabled().then(std::time::Instant::now);
    let normalized = z_normalize_window(window);
    let x = Tensor::from_windows(std::slice::from_ref(&normalized));
    let outputs = ensemble.predict(&x);
    let probs = ResNetEnsemble::ensemble_probability(&outputs);
    let out = assemble_localization(&outputs, &probs, 0, &normalized, cfg);
    if let Some(start) = start {
        ds_obs::observe(
            "camal.localize.prob",
            out.detection.probability as f64,
            ds_obs::Buckets::Unit,
        );
        ds_obs::observe(
            "camal.localize.latency_s",
            start.elapsed().as_secs_f64(),
            ds_obs::Buckets::DurationSecs,
        );
        ds_obs::counter_add("camal.localize.windows", 1);
        ds_obs::counter_add(
            "camal.localize.active_timesteps",
            out.status.iter().map(|&s| s as u64).sum(),
        );
    }
    out
}

/// Fixed number of windows per batched-localization task. Never derived
/// from the worker count: chunk boundaries — and therefore the batches
/// each network sees — are identical at any `DS_PAR_THREADS` setting.
///
/// Public because the serving front (`ds-serve`) sizes its cross-request
/// micro-batches to exactly one chunk: a full collector batch fills the
/// arena slots one fused `localize_batch_into` call was already shaped
/// for, so batching across requests cannot change any per-window result.
pub const WINDOW_CHUNK: usize = 16;

/// Run steps 1–6 over many raw windows (all sharing one length), chunked
/// [`WINDOW_CHUNK`] windows per task across the ds-par worker team.
///
/// Every layer in the ensemble's inference path (conv, batchnorm in
/// inference mode, GAP, linear) treats batch rows independently, so the
/// outputs are bit-identical to calling [`localize`] per window — the
/// batching only amortizes the per-call overhead and enables the window
/// fan-out. Results come back in window order.
pub fn localize_batch(
    ensemble: &ResNetEnsemble,
    windows: &[&[f32]],
    cfg: &LocalizerConfig,
) -> Vec<Localization> {
    if windows.is_empty() {
        return Vec::new();
    }
    let _span = ds_obs::span!("camal.localize_batch");
    let start = ds_obs::enabled().then(std::time::Instant::now);
    let per_chunk: Vec<Vec<Localization>> =
        ds_par::par_ranges(windows.len(), WINDOW_CHUNK, |_, range| {
            let normalized: Vec<Vec<f32>> = windows[range.clone()]
                .iter()
                .map(|w| {
                    assert!(!w.is_empty(), "cannot localize an empty window");
                    z_normalize_window(w)
                })
                .collect();
            let x = Tensor::from_windows(&normalized);
            let outputs = ensemble.predict(&x);
            let probs = ResNetEnsemble::ensemble_probability(&outputs);
            (0..range.len())
                .map(|i| assemble_localization(&outputs, &probs, i, &normalized[i], cfg))
                .collect()
        });
    let out: Vec<Localization> = per_chunk.into_iter().flatten().collect();
    if let Some(start) = start {
        for loc in &out {
            ds_obs::observe(
                "camal.localize.prob",
                loc.detection.probability as f64,
                ds_obs::Buckets::Unit,
            );
        }
        ds_obs::observe(
            "camal.localize.latency_s",
            start.elapsed().as_secs_f64() / out.len() as f64,
            ds_obs::Buckets::DurationSecs,
        );
        ds_obs::counter_add("camal.localize.windows", out.len() as u64);
        ds_obs::counter_add(
            "camal.localize.active_timesteps",
            out.iter()
                .flat_map(|loc| loc.status.iter())
                .map(|&s| s as u64)
                .sum(),
        );
    }
    out
}

/// Steps 2–6 for window `index` of a predicted batch: detection record,
/// CAM averaging, attention, status.
fn assemble_localization(
    outputs: &[MemberOutput],
    probs: &[f32],
    index: usize,
    normalized: &[f32],
    cfg: &LocalizerConfig,
) -> Localization {
    let prob = probs[index];
    let detection = Detection {
        probability: prob,
        member_probabilities: outputs.iter().map(|o| (o.kernel, o.probs[index])).collect(),
        detected: prob > cfg.detection_threshold,
    };
    let cam = average_cams(outputs, index, cfg);
    let (attention, status) = attention_and_status(&cam, normalized, detection.detected, cfg);
    Localization {
        detection,
        cam,
        attention,
        status,
    }
}

/// Steps 3–4 for window `i` of a batch: per-member CAM normalization and
/// ensemble averaging.
pub(crate) fn average_cams(
    outputs: &[MemberOutput],
    index: usize,
    cfg: &LocalizerConfig,
) -> Vec<f32> {
    assert!(!outputs.is_empty(), "no member outputs");
    let len = outputs[0].cams[index].len();
    let mut avg = vec![0.0f32; len];
    let mut scratch = vec![0.0f32; len];
    average_cams_into(
        outputs.iter().map(|o| o.cams[index].as_slice()),
        outputs.len(),
        cfg,
        &mut scratch,
        &mut avg,
    );
    avg
}

/// Allocation-free core of steps 3–4: normalize each member CAM (copied
/// through `scratch`, since min-max normalization is in place) and
/// average into `out`. Accumulation order — per member: copy, normalize,
/// add; then one final scale — matches [`average_cams`] exactly.
pub(crate) fn average_cams_into<'a>(
    cams: impl Iterator<Item = &'a [f32]>,
    count: usize,
    cfg: &LocalizerConfig,
    scratch: &mut [f32],
    out: &mut [f32],
) {
    assert!(count > 0, "no member outputs");
    out.fill(0.0);
    for cam in cams {
        let scratch = &mut scratch[..cam.len()];
        scratch.copy_from_slice(cam);
        if cfg.normalize_cams {
            min_max_normalize(scratch);
        }
        for (a, c) in out.iter_mut().zip(scratch.iter()) {
            *a += c;
        }
    }
    let scale = 1.0 / count as f32;
    for a in out.iter_mut() {
        *a *= scale;
    }
}

/// Steps 5–6: the attention mask and the binary status.
pub(crate) fn attention_and_status(
    cam: &[f32],
    normalized_input: &[f32],
    detected: bool,
    cfg: &LocalizerConfig,
) -> (Vec<f32>, Vec<u8>) {
    let mut attention = vec![0.0f32; cam.len()];
    let mut status = vec![0u8; cam.len()];
    attention_and_status_into(
        cam,
        normalized_input,
        detected,
        cfg,
        &mut attention,
        &mut status,
    );
    (attention, status)
}

/// Allocation-free core of steps 5–6, writing into caller buffers.
pub(crate) fn attention_and_status_into(
    cam: &[f32],
    normalized_input: &[f32],
    detected: bool,
    cfg: &LocalizerConfig,
    attention: &mut [f32],
    status: &mut [u8],
) {
    if cfg.use_attention {
        for ((a, &c), &x) in attention.iter_mut().zip(cam).zip(normalized_input) {
            *a = sigmoid(c * x);
        }
    } else {
        // Ablation: treat the averaged CAM itself as the activation signal.
        attention.copy_from_slice(cam);
    }
    let gate_ok = detected || !cfg.gate_on_detection;
    for ((st, &s), &c) in status.iter_mut().zip(attention.iter()).zip(cam) {
        *st = u8::from(gate_ok && s > 0.5 && c >= cfg.cam_gate);
    }
}

/// Flat, reusable storage for the localization of a batch of windows.
///
/// The frozen serving path writes every per-window artifact — probability,
/// detection flag, averaged CAM, attention signal, status mask, per-member
/// probabilities — into row-major slabs owned by this struct, so a warm
/// [`LocalizationBatch`] makes repeated batched localization allocation-free.
/// Buffers only ever grow ([`LocalizationBatch::ensure`]); per-window views
/// come back as slices into the slabs, and [`LocalizationBatch::to_localization`]
/// materializes the classic owned [`Localization`] when a caller wants one.
#[derive(Debug, Default, Clone)]
pub struct LocalizationBatch {
    windows: usize,
    len: usize,
    /// Per-window ensemble probability, `[windows]`.
    probability: Vec<f32>,
    /// Per-window detection flag, `[windows]`.
    detected: Vec<bool>,
    /// Averaged (normalized) CAMs, `[windows, len]` row-major.
    cam: Vec<f32>,
    /// Attention signal `s(t)`, `[windows, len]` row-major.
    attention: Vec<f32>,
    /// Binary status, `[windows, len]` row-major.
    status: Vec<u8>,
    /// Per-member probabilities, `[windows, members]` row-major.
    member_probs: Vec<f32>,
    /// Member kernel sizes, `[members]` (shared across windows).
    kernels: Vec<usize>,
    /// CAM normalization scratch, `[len]`.
    scratch: Vec<f32>,
}

impl LocalizationBatch {
    /// An empty batch; buffers are sized lazily by [`LocalizationBatch::ensure`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the slabs for `windows × len` with `members` ensemble members.
    /// Grow-only: shrinking reuses the larger buffers.
    pub(crate) fn ensure(&mut self, windows: usize, len: usize, kernels: &[usize]) {
        fn grow<T: Clone + Default>(buf: &mut Vec<T>, n: usize) {
            if buf.len() < n {
                buf.resize(n, T::default());
            }
        }
        self.windows = windows;
        self.len = len;
        grow(&mut self.probability, windows);
        grow(&mut self.detected, windows);
        grow(&mut self.cam, windows * len);
        grow(&mut self.attention, windows * len);
        grow(&mut self.status, windows * len);
        grow(&mut self.member_probs, windows * kernels.len());
        grow(&mut self.scratch, len);
        self.kernels.clear();
        self.kernels.extend_from_slice(kernels);
    }

    /// Heap footprint of the output slabs in bytes (capacity, not live
    /// length) — the per-plan arena cost a serving process pays to keep
    /// one batch shape warm. Used by ds-serve's stats endpoint for
    /// capacity planning.
    pub fn heap_bytes(&self) -> usize {
        self.probability.capacity() * std::mem::size_of::<f32>()
            + self.detected.capacity() * std::mem::size_of::<bool>()
            + (self.cam.capacity() + self.attention.capacity()) * std::mem::size_of::<f32>()
            + self.status.capacity()
            + self.member_probs.capacity() * std::mem::size_of::<f32>()
            + self.kernels.capacity() * std::mem::size_of::<usize>()
            + self.scratch.capacity() * std::mem::size_of::<f32>()
    }

    /// Number of windows localized into this batch.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Window length shared by all rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no windows have been localized.
    pub fn is_empty(&self) -> bool {
        self.windows == 0
    }

    /// Ensemble probability for window `w`.
    pub fn probability(&self, w: usize) -> f32 {
        assert!(w < self.windows, "window {w} out of {}", self.windows);
        self.probability[w]
    }

    /// Detection flag for window `w`.
    pub fn detected(&self, w: usize) -> bool {
        assert!(w < self.windows, "window {w} out of {}", self.windows);
        self.detected[w]
    }

    /// Averaged CAM row for window `w`.
    pub fn cam(&self, w: usize) -> &[f32] {
        assert!(w < self.windows, "window {w} out of {}", self.windows);
        &self.cam[w * self.len..(w + 1) * self.len]
    }

    /// Attention row `s(t)` for window `w`.
    pub fn attention(&self, w: usize) -> &[f32] {
        assert!(w < self.windows, "window {w} out of {}", self.windows);
        &self.attention[w * self.len..(w + 1) * self.len]
    }

    /// Binary status row for window `w`.
    pub fn status(&self, w: usize) -> &[u8] {
        assert!(w < self.windows, "window {w} out of {}", self.windows);
        &self.status[w * self.len..(w + 1) * self.len]
    }

    /// `(kernel, probability)` pairs for window `w`, in member order.
    pub fn member_probabilities(&self, w: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(w < self.windows, "window {w} out of {}", self.windows);
        let m = self.kernels.len();
        self.kernels
            .iter()
            .copied()
            .zip(self.member_probs[w * m..(w + 1) * m].iter().copied())
    }

    /// Materialize an owned [`Localization`] for window `w` (allocates).
    pub fn to_localization(&self, w: usize) -> Localization {
        Localization {
            detection: Detection {
                probability: self.probability(w),
                member_probabilities: self.member_probabilities(w).collect(),
                detected: self.detected(w),
            },
            cam: self.cam(w).to_vec(),
            attention: self.attention(w).to_vec(),
            status: self.status(w).to_vec(),
        }
    }

    /// Steps 2–6 for a predicted frozen chunk: write windows
    /// `offset..offset + chunk` of this batch from the ensemble's arenas.
    /// `normalized` holds the chunk's z-scored input rows, `[chunk, len]`
    /// row-major. Allocation-free once the slabs are sized.
    pub(crate) fn assemble_frozen_chunk(
        &mut self,
        ensemble: &FrozenEnsemble,
        normalized: &[f32],
        offset: usize,
        cfg: &LocalizerConfig,
    ) {
        let chunk = ensemble.ensemble_probs().len();
        let len = self.len;
        assert_eq!(normalized.len(), chunk * len, "normalized chunk shape");
        assert!(offset + chunk <= self.windows, "chunk exceeds batch");
        let members = ensemble.members();
        let m = members.len();
        assert_eq!(m, self.kernels.len(), "member count changed");
        let Self {
            cam,
            attention,
            status,
            scratch,
            probability,
            detected,
            member_probs,
            ..
        } = self;
        for i in 0..chunk {
            let w = offset + i;
            let prob = ensemble.ensemble_probs()[i];
            probability[w] = prob;
            detected[w] = prob > cfg.detection_threshold;
            for (mi, member) in members.iter().enumerate() {
                member_probs[w * m + mi] = member.probs()[i];
            }
            let cam_row = &mut cam[w * len..(w + 1) * len];
            average_cams_into(
                members.iter().map(|member| member.cam(i)),
                m,
                cfg,
                &mut scratch[..len],
                cam_row,
            );
            attention_and_status_into(
                cam_row,
                &normalized[i * len..(i + 1) * len],
                detected[w],
                cfg,
                &mut attention[w * len..(w + 1) * len],
                &mut status[w * len..(w + 1) * len],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;
    use crate::ensemble::MemberOutput;

    fn member(probs: Vec<f32>, cams: Vec<Vec<f32>>) -> MemberOutput {
        MemberOutput {
            kernel: 5,
            backbone: ds_neural::Backbone::ResNet,
            probs,
            cams,
        }
    }

    #[test]
    fn cam_averaging_normalizes_members() {
        let cfg = LocalizerConfig::default();
        let outputs = vec![
            member(vec![0.9], vec![vec![0.0, 5.0, 10.0]]),
            member(vec![0.9], vec![vec![-2.0, 0.0, 2.0]]),
        ];
        let avg = average_cams(&outputs, 0, &cfg);
        // Both normalize to [0, 0.5, 1]; mean is the same.
        assert_eq!(avg, vec![0.0, 0.5, 1.0]);
        // Without normalization the raw scales dominate.
        let raw_cfg = LocalizerConfig {
            normalize_cams: false,
            ..cfg
        };
        let raw = average_cams(&outputs, 0, &raw_cfg);
        assert_eq!(raw, vec![-1.0, 2.5, 6.0]);
    }

    #[test]
    fn attention_marks_above_mean_supported_regions() {
        let cfg = LocalizerConfig::default();
        let cam = vec![1.0, 1.0, 0.5, 0.0];
        let x = vec![2.0, -1.0, 1.0, 3.0]; // already normalized units
        let (attention, status) = attention_and_status(&cam, &x, true, &cfg);
        // s = sigmoid(cam*x): [s(2)>0.5, s(-1)<0.5, s(0.5)>0.5, s(0)=0.5]
        assert!(attention[0] > 0.5 && attention[1] < 0.5 && attention[2] > 0.5);
        assert!((attention[3] - 0.5).abs() < 1e-6);
        assert_eq!(status, vec![1, 0, 1, 0]); // strict > 0.5 keeps t=3 off
    }

    #[test]
    fn detection_gate_suppresses_status() {
        let cfg = LocalizerConfig::default();
        let cam = vec![1.0; 4];
        let x = vec![1.0; 4];
        let (_, gated) = attention_and_status(&cam, &x, false, &cfg);
        assert_eq!(gated, vec![0; 4]);
        let ungated_cfg = LocalizerConfig {
            gate_on_detection: false,
            ..cfg
        };
        let (_, ungated) = attention_and_status(&cam, &x, false, &ungated_cfg);
        assert_eq!(ungated, vec![1; 4]);
    }

    #[test]
    fn cam_gate_filters_weak_support() {
        let cfg = LocalizerConfig {
            cam_gate: 0.6,
            ..LocalizerConfig::default()
        };
        let cam = vec![0.9, 0.3];
        let x = vec![2.0, 2.0];
        let (_, status) = attention_and_status(&cam, &x, true, &cfg);
        assert_eq!(status, vec![1, 0]);
    }

    #[test]
    fn raw_cam_thresholding_ablation() {
        let cfg = LocalizerConfig {
            use_attention: false,
            ..LocalizerConfig::default()
        };
        let cam = vec![0.9, 0.2];
        let x = vec![-5.0, 5.0]; // ignored in this mode
        let (attention, status) = attention_and_status(&cam, &x, true, &cfg);
        assert_eq!(attention, cam);
        assert_eq!(status, vec![1, 0]);
    }

    #[test]
    fn localize_end_to_end_shapes() {
        let ens = ResNetEnsemble::untrained(&CamalConfig::fast_test());
        let cfg = LocalizerConfig::default();
        let window: Vec<f32> = (0..64)
            .map(|i| if i > 30 && i < 40 { 2000.0 } else { 80.0 })
            .collect();
        let out = localize(&ens, &window, &cfg);
        assert_eq!(out.cam.len(), 64);
        assert_eq!(out.attention.len(), 64);
        assert_eq!(out.status.len(), 64);
        assert!(out.cam.iter().all(|c| (0.0..=1.0).contains(c)));
        assert!(out.status.iter().all(|&s| s <= 1));
        // Status respects the detection gate.
        if !out.detection.detected {
            assert!(out.status.iter().all(|&s| s == 0));
        }
    }

    #[test]
    fn localize_batch_is_bit_identical_to_single() {
        let ens = ResNetEnsemble::untrained(&CamalConfig::fast_test());
        let cfg = LocalizerConfig {
            gate_on_detection: false,
            ..LocalizerConfig::default()
        };
        // More windows than one WINDOW_CHUNK, varied content.
        let windows: Vec<Vec<f32>> = (0..super::WINDOW_CHUNK + 3)
            .map(|w| {
                (0..48)
                    .map(|i| ((w * 7 + i) % 11) as f32 * 40.0 + (i as f32 * 0.4).sin() * 15.0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = windows.iter().map(|w| w.as_slice()).collect();
        let batch = localize_batch(&ens, &refs, &cfg);
        assert_eq!(batch.len(), windows.len());
        for (w, b) in windows.iter().zip(&batch) {
            let single = localize(&ens, w, &cfg);
            assert_eq!(
                single.cam.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                b.cam.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
            );
            assert_eq!(single.status, b.status);
            assert_eq!(
                single.detection.probability.to_bits(),
                b.detection.probability.to_bits()
            );
        }
        assert!(localize_batch(&ens, &[], &cfg).is_empty());
    }

    #[test]
    fn constant_window_yields_all_off() {
        let ens = ResNetEnsemble::untrained(&CamalConfig::fast_test());
        let cfg = LocalizerConfig {
            gate_on_detection: false,
            ..LocalizerConfig::default()
        };
        let out = localize(&ens, &[500.0; 32], &cfg);
        // z-normalized constant window is all zeros -> product 0 -> s = 0.5,
        // strict threshold keeps everything off.
        assert_eq!(out.status, vec![0; 32]);
    }
}
