//! Steps 3–6 of the pipeline: CAM extraction, normalization, averaging,
//! the attention mask, and the binary appliance status.
//!
//! With the paper's defaults the chain is, per timestep `t`:
//!
//! ```text
//! ĈAM_n(t)   = minmax(CAM_n)(t)                    (step 4, per member)
//! ĈAM_avg(t) = (1/N) Σ_n ĈAM_n(t)                  (step 4, averaging)
//! s(t)       = sigmoid(ĈAM_avg(t) · x(t))          (step 5, x = z-scored input)
//! status(t)  = 1 ⇔ s(t) > 0.5                      (step 6)
//! ```
//!
//! Note that `sigmoid(p) > 0.5 ⇔ p > 0`, so with a nonnegative normalized
//! CAM the status marks timesteps whose *normalized* consumption is above
//! the window mean inside CAM-supported regions — gated (step 2) on the
//! ensemble detecting the appliance at all. Every design choice carries an
//! ablation switch in [`LocalizerConfig`].

use crate::config::LocalizerConfig;
use crate::detector::Detection;
use crate::ensemble::{MemberOutput, ResNetEnsemble};
use crate::z_normalize_window;
use ds_neural::activations::sigmoid;
use ds_neural::tensor::Tensor;
use ds_timeseries::normalize::min_max_normalize;

/// Full output of the CamAL pipeline for one window.
#[derive(Debug, Clone, PartialEq)]
pub struct Localization {
    /// The detection step's outcome (steps 1–2).
    pub detection: Detection,
    /// The averaged (and, by default, normalized) CAM (steps 3–4).
    pub cam: Vec<f32>,
    /// The attention signal `s(t)` (step 5).
    pub attention: Vec<f32>,
    /// The binary per-timestep appliance status (step 6).
    pub status: Vec<u8>,
}

/// Run steps 1–6 on one raw window (watts).
pub fn localize(ensemble: &ResNetEnsemble, window: &[f32], cfg: &LocalizerConfig) -> Localization {
    assert!(!window.is_empty(), "cannot localize an empty window");
    let _span = ds_obs::span!("camal.localize");
    let start = ds_obs::enabled().then(std::time::Instant::now);
    let normalized = z_normalize_window(window);
    let x = Tensor::from_windows(std::slice::from_ref(&normalized));
    let outputs = ensemble.predict(&x);
    let probs = ResNetEnsemble::ensemble_probability(&outputs);
    let out = assemble_localization(&outputs, &probs, 0, &normalized, cfg);
    if let Some(start) = start {
        ds_obs::observe(
            "camal.localize.prob",
            out.detection.probability as f64,
            ds_obs::Buckets::Unit,
        );
        ds_obs::observe(
            "camal.localize.latency_s",
            start.elapsed().as_secs_f64(),
            ds_obs::Buckets::DurationSecs,
        );
        ds_obs::counter_add("camal.localize.windows", 1);
        ds_obs::counter_add(
            "camal.localize.active_timesteps",
            out.status.iter().map(|&s| s as u64).sum(),
        );
    }
    out
}

/// Fixed number of windows per batched-localization task. Never derived
/// from the worker count: chunk boundaries — and therefore the batches
/// each network sees — are identical at any `DS_PAR_THREADS` setting.
pub(crate) const WINDOW_CHUNK: usize = 16;

/// Run steps 1–6 over many raw windows (all sharing one length), chunked
/// [`WINDOW_CHUNK`] windows per task across the ds-par worker team.
///
/// Every layer in the ensemble's inference path (conv, batchnorm in
/// inference mode, GAP, linear) treats batch rows independently, so the
/// outputs are bit-identical to calling [`localize`] per window — the
/// batching only amortizes the per-call overhead and enables the window
/// fan-out. Results come back in window order.
pub fn localize_batch(
    ensemble: &ResNetEnsemble,
    windows: &[&[f32]],
    cfg: &LocalizerConfig,
) -> Vec<Localization> {
    if windows.is_empty() {
        return Vec::new();
    }
    let _span = ds_obs::span!("camal.localize_batch");
    let start = ds_obs::enabled().then(std::time::Instant::now);
    let per_chunk: Vec<Vec<Localization>> =
        ds_par::par_ranges(windows.len(), WINDOW_CHUNK, |_, range| {
            let normalized: Vec<Vec<f32>> = windows[range.clone()]
                .iter()
                .map(|w| {
                    assert!(!w.is_empty(), "cannot localize an empty window");
                    z_normalize_window(w)
                })
                .collect();
            let x = Tensor::from_windows(&normalized);
            let outputs = ensemble.predict(&x);
            let probs = ResNetEnsemble::ensemble_probability(&outputs);
            (0..range.len())
                .map(|i| assemble_localization(&outputs, &probs, i, &normalized[i], cfg))
                .collect()
        });
    let out: Vec<Localization> = per_chunk.into_iter().flatten().collect();
    if let Some(start) = start {
        for loc in &out {
            ds_obs::observe(
                "camal.localize.prob",
                loc.detection.probability as f64,
                ds_obs::Buckets::Unit,
            );
        }
        ds_obs::observe(
            "camal.localize.latency_s",
            start.elapsed().as_secs_f64() / out.len() as f64,
            ds_obs::Buckets::DurationSecs,
        );
        ds_obs::counter_add("camal.localize.windows", out.len() as u64);
        ds_obs::counter_add(
            "camal.localize.active_timesteps",
            out.iter()
                .flat_map(|loc| loc.status.iter())
                .map(|&s| s as u64)
                .sum(),
        );
    }
    out
}

/// Steps 2–6 for window `index` of a predicted batch: detection record,
/// CAM averaging, attention, status.
fn assemble_localization(
    outputs: &[MemberOutput],
    probs: &[f32],
    index: usize,
    normalized: &[f32],
    cfg: &LocalizerConfig,
) -> Localization {
    let prob = probs[index];
    let detection = Detection {
        probability: prob,
        member_probabilities: outputs.iter().map(|o| (o.kernel, o.probs[index])).collect(),
        detected: prob > cfg.detection_threshold,
    };
    let cam = average_cams(outputs, index, cfg);
    let (attention, status) = attention_and_status(&cam, normalized, detection.detected, cfg);
    Localization {
        detection,
        cam,
        attention,
        status,
    }
}

/// Steps 3–4 for window `i` of a batch: per-member CAM normalization and
/// ensemble averaging.
pub(crate) fn average_cams(
    outputs: &[MemberOutput],
    index: usize,
    cfg: &LocalizerConfig,
) -> Vec<f32> {
    assert!(!outputs.is_empty(), "no member outputs");
    let len = outputs[0].cams[index].len();
    let mut avg = vec![0.0f32; len];
    for out in outputs {
        let mut cam = out.cams[index].clone();
        if cfg.normalize_cams {
            min_max_normalize(&mut cam);
        }
        for (a, c) in avg.iter_mut().zip(&cam) {
            *a += c;
        }
    }
    let scale = 1.0 / outputs.len() as f32;
    for a in &mut avg {
        *a *= scale;
    }
    avg
}

/// Steps 5–6: the attention mask and the binary status.
pub(crate) fn attention_and_status(
    cam: &[f32],
    normalized_input: &[f32],
    detected: bool,
    cfg: &LocalizerConfig,
) -> (Vec<f32>, Vec<u8>) {
    let attention: Vec<f32> = if cfg.use_attention {
        cam.iter()
            .zip(normalized_input)
            .map(|(&c, &x)| sigmoid(c * x))
            .collect()
    } else {
        // Ablation: treat the averaged CAM itself as the activation signal.
        cam.to_vec()
    };
    let gate_ok = detected || !cfg.gate_on_detection;
    let status: Vec<u8> = attention
        .iter()
        .zip(cam)
        .map(|(&s, &c)| u8::from(gate_ok && s > 0.5 && c >= cfg.cam_gate))
        .collect();
    (attention, status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;
    use crate::ensemble::MemberOutput;

    fn member(probs: Vec<f32>, cams: Vec<Vec<f32>>) -> MemberOutput {
        MemberOutput {
            kernel: 5,
            probs,
            cams,
        }
    }

    #[test]
    fn cam_averaging_normalizes_members() {
        let cfg = LocalizerConfig::default();
        let outputs = vec![
            member(vec![0.9], vec![vec![0.0, 5.0, 10.0]]),
            member(vec![0.9], vec![vec![-2.0, 0.0, 2.0]]),
        ];
        let avg = average_cams(&outputs, 0, &cfg);
        // Both normalize to [0, 0.5, 1]; mean is the same.
        assert_eq!(avg, vec![0.0, 0.5, 1.0]);
        // Without normalization the raw scales dominate.
        let raw_cfg = LocalizerConfig {
            normalize_cams: false,
            ..cfg
        };
        let raw = average_cams(&outputs, 0, &raw_cfg);
        assert_eq!(raw, vec![-1.0, 2.5, 6.0]);
    }

    #[test]
    fn attention_marks_above_mean_supported_regions() {
        let cfg = LocalizerConfig::default();
        let cam = vec![1.0, 1.0, 0.5, 0.0];
        let x = vec![2.0, -1.0, 1.0, 3.0]; // already normalized units
        let (attention, status) = attention_and_status(&cam, &x, true, &cfg);
        // s = sigmoid(cam*x): [s(2)>0.5, s(-1)<0.5, s(0.5)>0.5, s(0)=0.5]
        assert!(attention[0] > 0.5 && attention[1] < 0.5 && attention[2] > 0.5);
        assert!((attention[3] - 0.5).abs() < 1e-6);
        assert_eq!(status, vec![1, 0, 1, 0]); // strict > 0.5 keeps t=3 off
    }

    #[test]
    fn detection_gate_suppresses_status() {
        let cfg = LocalizerConfig::default();
        let cam = vec![1.0; 4];
        let x = vec![1.0; 4];
        let (_, gated) = attention_and_status(&cam, &x, false, &cfg);
        assert_eq!(gated, vec![0; 4]);
        let ungated_cfg = LocalizerConfig {
            gate_on_detection: false,
            ..cfg
        };
        let (_, ungated) = attention_and_status(&cam, &x, false, &ungated_cfg);
        assert_eq!(ungated, vec![1; 4]);
    }

    #[test]
    fn cam_gate_filters_weak_support() {
        let cfg = LocalizerConfig {
            cam_gate: 0.6,
            ..LocalizerConfig::default()
        };
        let cam = vec![0.9, 0.3];
        let x = vec![2.0, 2.0];
        let (_, status) = attention_and_status(&cam, &x, true, &cfg);
        assert_eq!(status, vec![1, 0]);
    }

    #[test]
    fn raw_cam_thresholding_ablation() {
        let cfg = LocalizerConfig {
            use_attention: false,
            ..LocalizerConfig::default()
        };
        let cam = vec![0.9, 0.2];
        let x = vec![-5.0, 5.0]; // ignored in this mode
        let (attention, status) = attention_and_status(&cam, &x, true, &cfg);
        assert_eq!(attention, cam);
        assert_eq!(status, vec![1, 0]);
    }

    #[test]
    fn localize_end_to_end_shapes() {
        let ens = ResNetEnsemble::untrained(&CamalConfig::fast_test());
        let cfg = LocalizerConfig::default();
        let window: Vec<f32> = (0..64)
            .map(|i| if i > 30 && i < 40 { 2000.0 } else { 80.0 })
            .collect();
        let out = localize(&ens, &window, &cfg);
        assert_eq!(out.cam.len(), 64);
        assert_eq!(out.attention.len(), 64);
        assert_eq!(out.status.len(), 64);
        assert!(out.cam.iter().all(|c| (0.0..=1.0).contains(c)));
        assert!(out.status.iter().all(|&s| s <= 1));
        // Status respects the detection gate.
        if !out.detection.detected {
            assert!(out.status.iter().all(|&s| s == 0));
        }
    }

    #[test]
    fn localize_batch_is_bit_identical_to_single() {
        let ens = ResNetEnsemble::untrained(&CamalConfig::fast_test());
        let cfg = LocalizerConfig {
            gate_on_detection: false,
            ..LocalizerConfig::default()
        };
        // More windows than one WINDOW_CHUNK, varied content.
        let windows: Vec<Vec<f32>> = (0..super::WINDOW_CHUNK + 3)
            .map(|w| {
                (0..48)
                    .map(|i| ((w * 7 + i) % 11) as f32 * 40.0 + (i as f32 * 0.4).sin() * 15.0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f32]> = windows.iter().map(|w| w.as_slice()).collect();
        let batch = localize_batch(&ens, &refs, &cfg);
        assert_eq!(batch.len(), windows.len());
        for (w, b) in windows.iter().zip(&batch) {
            let single = localize(&ens, w, &cfg);
            assert_eq!(
                single.cam.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                b.cam.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
            );
            assert_eq!(single.status, b.status);
            assert_eq!(
                single.detection.probability.to_bits(),
                b.detection.probability.to_bits()
            );
        }
        assert!(localize_batch(&ens, &[], &cfg).is_empty());
    }

    #[test]
    fn constant_window_yields_all_off() {
        let ens = ResNetEnsemble::untrained(&CamalConfig::fast_test());
        let cfg = LocalizerConfig {
            gate_on_detection: false,
            ..LocalizerConfig::default()
        };
        let out = localize(&ens, &[500.0; 32], &cfg);
        // z-normalized constant window is all zeros -> product 0 -> s = 0.5,
        // strict threshold keeps everything off.
        assert_eq!(out.status, vec![0; 32]);
    }
}
