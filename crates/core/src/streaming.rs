//! Streaming serving twin of the frozen series path: absorb a meter
//! stream push-by-push, localize each completed window exactly once, and
//! re-emit the tri-state status series incrementally.
//!
//! [`StreamingCamal`] wraps a [`FrozenCamal`] plus per-window artifact
//! slabs sized at construction. The batch entry point
//! [`FrozenCamal::predict_status_into`] evaluates **every** window of the
//! series on **every** call — Prev/Next navigation and per-day views over
//! overlapping ranges therefore pay the full conv stack per step. The
//! streaming twin exploits the same window policy ("non-overlapping
//! complete windows plus one end-aligned tail, earlier window wins"):
//! aligned windows are immutable once complete, so their probability,
//! CAM, attention and status mask are computed once at absorption and
//! replayed from the slabs on every later emit. Only the end-aligned
//! tail window — the one region whose content still changes as samples
//! arrive — is recomputed per emit, bounding per-push model work to at
//! most `(new samples)/window + 1` window evaluations regardless of how
//! much history has accumulated.
//!
//! The contract, asserted bit-for-bit by this module's tests and the
//! `streaming_parity` suite:
//!
//! - **Push-stride invariance.** After any sequence of in-order pushes
//!   accumulating a prefix, [`StreamingCamal::status_into`] equals
//!   `predict_status_into` on that prefix bit-for-bit — states, window
//!   CAMs, probabilities — including NaN-degraded windows surfacing
//!   [`Status::Unknown`] and the earlier-window-wins tail merge. Window
//!   grouping is identity-neutral: the frozen path evaluates batch rows
//!   independently (no cross-row reduction, no `ds-par` in the frozen
//!   chunk loop), so absorbing windows one at a time reproduces the batch
//!   chunk-of-16 results exactly.
//! - **Gap awareness.** A push whose start timestamp jumps forward on the
//!   sample grid NaN-fills the hole; the affected windows degrade to
//!   `Unknown` exactly as the batch path scores them. Out-of-order and
//!   off-grid pushes are typed [`CamalError::OutOfOrderPush`]; capacity
//!   overflow is [`CamalError::OverCapacity`]; both reject atomically.
//! - **Zero steady-state allocations.** All slabs are preallocated for
//!   `max_windows`; a warm push + emit cycle performs no heap allocation
//!   (asserted via the ds-obs counter).

use crate::error::CamalError;
use crate::FrozenCamal;
use ds_timeseries::{Status, StatusSeries, TimeSeries};

/// Streaming serving engine over a [`FrozenCamal`]: per-window artifact
/// slabs plus an append-only sample ring. See the module docs for the
/// contract.
#[derive(Debug)]
pub struct StreamingCamal {
    model: FrozenCamal,
    window_samples: usize,
    /// Sample capacity (`max_windows × window_samples`).
    capacity: usize,
    /// Member kernel sizes, cached for the member-probability accessor.
    kernels: Vec<usize>,
    /// Stream origin timestamp, captured on the first timestamped push.
    start: i64,
    /// Sampling interval, captured on the first timestamped push.
    interval_secs: u32,
    opened: bool,
    /// Accumulated samples (watts), NaN where the meter was silent.
    values: Vec<f32>,
    len: usize,
    /// Number of completed aligned windows absorbed into the slabs.
    absorbed: usize,
    win_clean: Vec<bool>,
    win_prob: Vec<f32>,
    win_detected: Vec<bool>,
    win_members: Vec<f32>,
    /// `[max_windows × window_samples]` slabs of per-timestep artifacts.
    win_status: Vec<u8>,
    win_cam: Vec<f32>,
    win_attention: Vec<f32>,
}

impl StreamingCamal {
    /// Wrap a frozen model for streaming over windows of `window_samples`
    /// samples, retaining up to `max_windows` completed windows.
    pub fn new(model: FrozenCamal, window_samples: usize, max_windows: usize) -> StreamingCamal {
        assert!(
            window_samples > 0,
            "series prediction requires a positive window length"
        );
        assert!(max_windows > 0, "streaming capacity must be positive");
        let kernels: Vec<usize> = model
            .ensemble()
            .members()
            .iter()
            .map(|m| m.kernel())
            .collect();
        let members = kernels.len();
        let capacity = max_windows * window_samples;
        StreamingCamal {
            model,
            window_samples,
            capacity,
            kernels,
            start: 0,
            interval_secs: 1,
            opened: false,
            values: vec![0.0; capacity],
            len: 0,
            absorbed: 0,
            win_clean: vec![false; max_windows],
            win_prob: vec![f32::NAN; max_windows],
            win_detected: vec![false; max_windows],
            win_members: vec![f32::NAN; max_windows * members],
            win_status: vec![0; capacity],
            win_cam: vec![0.0; capacity],
            win_attention: vec![0.0; capacity],
        }
    }

    /// Current stream length in samples (including NaN gap fill).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before any samples arrive.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sample capacity of the stream.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Window length in samples.
    pub fn window_samples(&self) -> usize {
        self.window_samples
    }

    /// Stream origin timestamp (0 until a timestamped push opens it).
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Sampling interval in seconds (1 until a timestamped push opens it).
    pub fn interval_secs(&self) -> u32 {
        self.interval_secs
    }

    /// Number of completed aligned windows absorbed so far.
    pub fn windows_completed(&self) -> usize {
        self.absorbed
    }

    /// The wrapped frozen model.
    pub fn model(&self) -> &FrozenCamal {
        &self.model
    }

    /// Mutable access to the wrapped model (for ad-hoc batch calls; the
    /// slabs are untouched by them).
    pub fn model_mut(&mut self) -> &mut FrozenCamal {
        &mut self.model
    }

    /// Was absorbed window `i` free of missing samples?
    pub fn window_clean(&self, i: usize) -> bool {
        assert!(i < self.absorbed, "window {i} not absorbed yet");
        self.win_clean[i]
    }

    /// Ensemble probability of absorbed window `i` (NaN when degraded).
    pub fn window_probability(&self, i: usize) -> f32 {
        assert!(i < self.absorbed, "window {i} not absorbed yet");
        self.win_prob[i]
    }

    /// Detection flag of absorbed window `i` (false when degraded).
    pub fn window_detected(&self, i: usize) -> bool {
        assert!(i < self.absorbed, "window {i} not absorbed yet");
        self.win_detected[i]
    }

    /// Averaged, min-max-normalized CAM of absorbed clean window `i`.
    pub fn window_cam(&self, i: usize) -> &[f32] {
        assert!(i < self.absorbed, "window {i} not absorbed yet");
        let w = self.window_samples;
        &self.win_cam[i * w..(i + 1) * w]
    }

    /// Attention scores of absorbed clean window `i`.
    pub fn window_attention(&self, i: usize) -> &[f32] {
        assert!(i < self.absorbed, "window {i} not absorbed yet");
        let w = self.window_samples;
        &self.win_attention[i * w..(i + 1) * w]
    }

    /// Per-timestep status mask of absorbed clean window `i`.
    pub fn window_status(&self, i: usize) -> &[u8] {
        assert!(i < self.absorbed, "window {i} not absorbed yet");
        let w = self.window_samples;
        &self.win_status[i * w..(i + 1) * w]
    }

    /// Per-member `(kernel, probability)` pairs of absorbed window `i`.
    pub fn window_member_probabilities(&self, i: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        assert!(i < self.absorbed, "window {i} not absorbed yet");
        let m = self.kernels.len();
        self.kernels
            .iter()
            .copied()
            .zip(self.win_members[i * m..(i + 1) * m].iter().copied())
    }

    /// Materialize an owned [`Localization`](crate::Localization) of
    /// absorbed clean window `i` from the slabs (allocates; panics on a
    /// degraded window — check [`StreamingCamal::window_clean`] first).
    pub fn window_localization(&self, i: usize) -> crate::Localization {
        assert!(
            self.window_clean(i),
            "window {i} is degraded; it has no localization"
        );
        crate::Localization {
            detection: crate::Detection {
                probability: self.window_probability(i),
                member_probabilities: self.window_member_probabilities(i).collect(),
                detected: self.window_detected(i),
            },
            cam: self.window_cam(i).to_vec(),
            attention: self.window_attention(i).to_vec(),
            status: self.window_status(i).to_vec(),
        }
    }

    /// Raw accumulated samples (NaN where the meter was silent).
    pub fn values(&self) -> &[f32] {
        &self.values[..self.len]
    }

    /// Append a timestamped slice of the meter stream. The first push
    /// opens the stream (origin + interval); later pushes must continue
    /// it in order on the sample grid — a forward jump NaN-fills the gap,
    /// a backward or off-grid start is [`CamalError::OutOfOrderPush`], a
    /// mismatched interval is [`CamalError::IntervalMismatch`], overflow
    /// is [`CamalError::OverCapacity`]. All rejections are atomic.
    /// Returns the total number of completed windows absorbed so far.
    pub fn try_push(&mut self, series: &TimeSeries) -> Result<usize, CamalError> {
        if series.is_empty() {
            return Ok(self.absorbed);
        }
        if !self.opened {
            self.start = series.start();
            self.interval_secs = series.interval_secs();
            self.opened = true;
        }
        if series.interval_secs() != self.interval_secs {
            return Err(CamalError::IntervalMismatch {
                expected: self.interval_secs,
                got: series.interval_secs(),
            });
        }
        let interval = self.interval_secs as i64;
        let expected = self.start + self.len as i64 * interval;
        let got = series.start();
        if got < expected || (got - expected) % interval != 0 {
            return Err(CamalError::OutOfOrderPush { expected, got });
        }
        let gap = ((got - expected) / interval) as usize;
        let requested = self.len + gap + series.len();
        if requested > self.capacity {
            return Err(CamalError::OverCapacity {
                capacity: self.capacity,
                requested,
            });
        }
        self.values[self.len..self.len + gap].fill(f32::NAN);
        self.values[self.len + gap..requested].copy_from_slice(series.values());
        self.len = requested;
        self.absorb();
        Ok(self.absorbed)
    }

    /// Append raw contiguous samples (no timestamps — the stream's grid
    /// advances by `samples.len()` intervals). Same capacity contract as
    /// [`StreamingCamal::try_push`].
    pub fn push_values(&mut self, samples: &[f32]) -> Result<usize, CamalError> {
        let requested = self.len + samples.len();
        if requested > self.capacity {
            return Err(CamalError::OverCapacity {
                capacity: self.capacity,
                requested,
            });
        }
        self.values[self.len..requested].copy_from_slice(samples);
        self.len = requested;
        self.absorb();
        Ok(self.absorbed)
    }

    /// Forget the stream (origin included); keep every slab allocation.
    pub fn reset(&mut self) {
        self.len = 0;
        self.absorbed = 0;
        self.opened = false;
        self.start = 0;
        self.interval_secs = 1;
    }

    /// Localize every newly completed aligned window, exactly once.
    fn absorb(&mut self) {
        let w = self.window_samples;
        let m = self.kernels.len();
        while (self.absorbed + 1) * w <= self.len {
            let i = self.absorbed;
            let lo = i * w;
            let clean = self.values[lo..lo + w].iter().all(|v| !v.is_nan());
            self.win_clean[i] = clean;
            if clean {
                let batch = self.model.localize_batch_into(&[&self.values[lo..lo + w]]);
                self.win_prob[i] = batch.probability(0);
                self.win_detected[i] = batch.detected(0);
                self.win_status[lo..lo + w].copy_from_slice(batch.status(0));
                self.win_cam[lo..lo + w].copy_from_slice(batch.cam(0));
                self.win_attention[lo..lo + w].copy_from_slice(batch.attention(0));
                for (slot, (_, p)) in self.win_members[i * m..(i + 1) * m]
                    .iter_mut()
                    .zip(batch.member_probabilities(0))
                {
                    *slot = p;
                }
            } else {
                // Degraded window: the batch path never evaluates it, its
                // samples stay Unknown. Keep NaN/false sentinels.
                self.win_prob[i] = f32::NAN;
                self.win_detected[i] = false;
            }
            self.absorbed += 1;
        }
    }

    /// Streaming twin of [`FrozenCamal::predict_status_into`]: write the
    /// tri-state status of the accumulated prefix into `states`,
    /// bit-identical to the batch call on the same samples. Absorbed
    /// windows replay from the slabs; only the end-aligned tail window is
    /// evaluated here ("earlier window wins" on the overlap, exactly the
    /// batch merge). Ticks the same `serve.degraded_windows` /
    /// `serve.unknown_samples` counters a batch call would.
    pub fn status_into(&mut self, states: &mut Vec<Status>) {
        let _span = ds_obs::span!("camal.streaming.status");
        let w = self.window_samples;
        let len = self.len;
        states.clear();
        states.resize(len, Status::Unknown);
        let aligned_end = if len >= w { (len / w) * w } else { 0 };
        let has_tail = len >= w && len > aligned_end;
        let mut degraded = 0u64;
        for i in 0..aligned_end / w {
            if !self.win_clean[i] {
                degraded += 1;
                continue;
            }
            let lo = i * w;
            for (state, &mask) in states[lo..lo + w]
                .iter_mut()
                .zip(&self.win_status[lo..lo + w])
            {
                *state = if mask == 1 { Status::On } else { Status::Off };
            }
        }
        if has_tail {
            let lo = len - w;
            if self.values[lo..len].iter().all(|v| !v.is_nan()) {
                let batch = self.model.localize_batch_into(&[&self.values[lo..len]]);
                let status = batch.status(0);
                for idx in aligned_end..len {
                    states[idx] = if status[idx - lo] == 1 {
                        Status::On
                    } else {
                        Status::Off
                    };
                }
            } else {
                degraded += 1;
            }
        }
        let unknown = states.iter().filter(|s| s.is_unknown()).count();
        ds_obs::counter_add("serve.degraded_windows", degraded);
        ds_obs::counter_add("serve.unknown_samples", unknown as u64);
    }

    /// Streaming twin of [`FrozenCamal::predict_status_series`], returning
    /// an owned [`StatusSeries`] anchored at the stream origin.
    pub fn status_series(&mut self) -> StatusSeries {
        let mut states = Vec::new();
        self.status_into(&mut states);
        StatusSeries::from_status(self.start, self.interval_secs, states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localizer;
    use crate::{Camal, CamalConfig, ResNetEnsemble};

    fn toy_corpus(n: usize, len: usize) -> (Vec<Vec<f32>>, Vec<u8>) {
        let mut windows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let mut w = vec![0.1f32; len];
            if i % 2 == 1 {
                for v in &mut w[len / 3..len / 2] {
                    *v = 1.0;
                }
            }
            for (j, v) in w.iter_mut().enumerate() {
                *v += ((i * 5 + j * 3) % 7) as f32 * 0.01;
            }
            windows.push(w);
            labels.push((i % 2) as u8);
        }
        (windows, labels)
    }

    fn trained_toy_camal(len: usize) -> (Camal, Vec<Vec<f32>>) {
        let cfg = CamalConfig::fast_test();
        let (windows, labels) = toy_corpus(24, len);
        let mut ens = ResNetEnsemble::untrained(&cfg);
        ens.train(&windows, &labels, &cfg);
        (Camal::from_parts(ens, cfg), windows)
    }

    fn toy_series(windows: &[Vec<f32>]) -> TimeSeries {
        // Several clean windows, one NaN-degraded window, a partial tail.
        let mut values: Vec<f32> = windows.iter().take(4).flatten().copied().collect();
        let mut gap = windows[1].clone();
        gap[7] = f32::NAN;
        values.extend(gap);
        values.extend(&windows[2][..17]);
        TimeSeries::from_values(0, 60, values)
    }

    #[test]
    fn status_matches_batch_at_every_push_stride() {
        let w = 40;
        let (camal, windows) = trained_toy_camal(w);
        let mut frozen = camal.freeze();
        let series = toy_series(&windows);
        let mut expected = Vec::new();
        let mut got = Vec::new();
        for stride in [7usize, w / 4, w / 2, w, w + 13, series.len()] {
            let mut stream = StreamingCamal::new(camal.freeze(), w, 8);
            let mut lo = 0;
            while lo < series.len() {
                let hi = (lo + stride).min(series.len());
                stream.try_push(&series.slice(lo, hi).unwrap()).unwrap();
                lo = hi;
                // Every intermediate emit matches the batch call on the
                // accumulated prefix — push-stride invariance.
                stream.status_into(&mut got);
                frozen.predict_status_into(&series.slice(0, lo).unwrap(), w, &mut expected);
                assert_eq!(got, expected, "stride {stride}, prefix {lo}");
            }
            let full = stream.status_series();
            assert_eq!(full.start(), series.start());
            assert_eq!(full.interval_secs(), series.interval_secs());
        }
    }

    #[test]
    fn absorbed_window_artifacts_match_grouped_batch_bitwise() {
        let w = 40;
        let (camal, windows) = trained_toy_camal(w);
        let mut frozen = camal.freeze();
        let series = toy_series(&windows);
        let mut stream = StreamingCamal::new(camal.freeze(), w, 8);
        stream.try_push(&series).unwrap();
        assert_eq!(stream.windows_completed(), 5);
        assert!(!stream.window_clean(4), "the NaN window must degrade");
        assert!(stream.window_probability(4).is_nan());
        // The batch path groups clean windows into one chunk; grouping is
        // identity-neutral, so one-at-a-time absorption matches bit-wise.
        let values = series.values();
        let clean: Vec<usize> = (0..4).collect();
        let refs: Vec<&[f32]> = clean.iter().map(|&i| &values[i * w..(i + 1) * w]).collect();
        let batch = frozen.localize_batch_into(&refs);
        for (j, &i) in clean.iter().enumerate() {
            assert_eq!(
                stream.window_probability(i).to_bits(),
                batch.probability(j).to_bits(),
                "window {i} probability"
            );
            assert_eq!(stream.window_detected(i), batch.detected(j));
            assert_eq!(stream.window_status(i), batch.status(j));
            for (t, (a, b)) in stream.window_cam(i).iter().zip(batch.cam(j)).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "window {i} cam[{t}]");
            }
            for (t, (a, b)) in stream
                .window_attention(i)
                .iter()
                .zip(batch.attention(j))
                .enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "window {i} attention[{t}]");
            }
            let got: Vec<(usize, f32)> = stream.window_member_probabilities(i).collect();
            let want: Vec<(usize, f32)> = batch.member_probabilities(j).collect();
            assert_eq!(got.len(), want.len());
            for ((gk, gp), (wk, wp)) in got.iter().zip(&want) {
                assert_eq!(gk, wk);
                assert_eq!(gp.to_bits(), wp.to_bits());
            }
        }
        let _ = localizer::WINDOW_CHUNK; // grouping constant under test
    }

    #[test]
    fn gap_pushes_nan_fill_and_match_batch_on_the_filled_series() {
        let w = 40;
        let (camal, windows) = trained_toy_camal(w);
        let mut frozen = camal.freeze();
        let mut stream = StreamingCamal::new(camal.freeze(), w, 8);
        // 70 samples, then a 25-sample hole, then 65 more.
        let all: Vec<f32> = windows.iter().take(4).flatten().copied().collect();
        let a = TimeSeries::from_values(1000, 30, all[..70].to_vec());
        let b = TimeSeries::from_values(1000 + 95 * 30, 30, all[95..160].to_vec());
        stream.try_push(&a).unwrap();
        stream.try_push(&b).unwrap();
        assert_eq!(stream.len(), 160);
        let mut filled = all[..160].to_vec();
        for v in &mut filled[70..95] {
            *v = f32::NAN;
        }
        let reference = TimeSeries::from_values(1000, 30, filled);
        let mut expected = Vec::new();
        frozen.predict_status_into(&reference, w, &mut expected);
        let mut got = Vec::new();
        stream.status_into(&mut got);
        assert_eq!(got, expected);
    }

    #[test]
    fn out_of_order_interval_and_capacity_errors_are_typed_and_atomic() {
        let w = 40;
        let (camal, _) = trained_toy_camal(w);
        let mut stream = StreamingCamal::new(camal.freeze(), w, 2);
        let a = TimeSeries::from_values(0, 60, vec![0.5; 50]);
        stream.try_push(&a).unwrap();
        assert_eq!(stream.len(), 50);
        // Backward start.
        let stale = TimeSeries::from_values(0, 60, vec![0.5; 10]);
        assert_eq!(
            stream.try_push(&stale).unwrap_err(),
            CamalError::OutOfOrderPush {
                expected: 3000,
                got: 0
            }
        );
        // Off-grid start.
        let skew = TimeSeries::from_values(3030, 60, vec![0.5; 10]);
        assert_eq!(
            stream.try_push(&skew).unwrap_err(),
            CamalError::OutOfOrderPush {
                expected: 3000,
                got: 3030
            }
        );
        // Interval flip.
        let fast = TimeSeries::from_values(3000, 30, vec![0.5; 10]);
        assert_eq!(
            stream.try_push(&fast).unwrap_err(),
            CamalError::IntervalMismatch {
                expected: 60,
                got: 30
            }
        );
        // Capacity overflow (capacity = 2 × 40 = 80 samples).
        let big = TimeSeries::from_values(3000, 60, vec![0.5; 40]);
        assert_eq!(
            stream.try_push(&big).unwrap_err(),
            CamalError::OverCapacity {
                capacity: 80,
                requested: 90
            }
        );
        // Every rejection left the stream untouched.
        assert_eq!(stream.len(), 50);
        assert_eq!(stream.windows_completed(), 1);
    }

    #[test]
    fn steady_state_push_and_emit_allocate_nothing() {
        let w = 40;
        let (camal, windows) = trained_toy_camal(w);
        let mut stream = StreamingCamal::new(camal.freeze(), w, 8);
        let all: Vec<f32> = windows.iter().take(8).flatten().copied().collect();
        let mut states = Vec::with_capacity(all.len());
        // Warm-up: absorb one full window and emit once (sizes the arenas
        // and the tail shape).
        stream.push_values(&all[..48]).unwrap();
        stream.status_into(&mut states);
        let before = ds_obs::alloc_count();
        let mut off = 48;
        while off < all.len() {
            let end = (off + 13).min(all.len());
            stream.push_values(&all[off..end]).unwrap();
            stream.status_into(&mut states);
            off = end;
        }
        assert_eq!(
            ds_obs::alloc_count(),
            before,
            "steady-state streaming push/emit must not allocate"
        );
        assert_eq!(stream.windows_completed(), 8);
    }
}
