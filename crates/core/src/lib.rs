//! # ds-camal
//!
//! **CamAL — Class Activation Map-based Appliance Localization**, the core
//! contribution of the DeviceScope paper (ICDE 2025), reproduced in Rust.
//!
//! CamAL answers two questions about a household's aggregate smart-meter
//! series using only *weak* training labels (one bit per window or per
//! household — never per-timestep supervision):
//!
//! 1. **Detection** — was appliance A used inside this window?
//! 2. **Localization** — at which timesteps was it on?
//!
//! The pipeline (paper §II, Figure 2):
//!
//! ```text
//!            ┌───────────────────────────── ensemble ─────────────────────────────┐
//! window ───►│ ResNet(k=5) ─► prob₁, CAM₁ ┐                                       │
//!            │ ResNet(k=7) ─► prob₂, CAM₂ ├─► prob_ens = mean(probᵢ)              │
//!            │ ResNet(k=9) ─► prob₃, CAM₃ │   ĈAMᵢ = minmax(CAMᵢ)                 │
//!            │ ResNet(k=15)─► prob₄, CAM₄ ┘   ĈAM_avg = mean(ĈAMᵢ)                │
//!            └─────────────────────────────────────────────────────────────────────┘
//!   step 2: detected ⇔ prob_ens > 0.5
//!   step 5: s(t) = sigmoid(ĈAM_avg(t) ∘ x(t))      (x = the normalized input)
//!   step 6: status(t) = 1 ⇔ s(t) > 0.5             (all-off when not detected)
//! ```
//!
//! Modules:
//! - [`config`]: hyper-parameters ([`CamalConfig`]) with the paper defaults
//!   (kernel set `{5, 7, 9, 15}`, detection threshold 0.5).
//! - [`ensemble`]: the ResNet ensemble, trainable in parallel across members.
//! - [`detector`]: step 1–2 (ensemble probability, thresholded detection).
//! - [`localizer`]: steps 3–6 (CAM extraction, normalization, averaging,
//!   attention, status) with ablation switches for every design choice.
//! - [`selection`]: per-appliance member selection ("we then selected the
//!   networks that best detected specific appliances").
//! - [`train`]: the weak-label training pipeline from a dataset corpus.
//! - [`model_io`]: persistence of trained CamAL models.
//! - [`calibrate`]: detection-threshold tuning (extension; the paper fixes
//!   the gate at 0.5).
//!
//! The top-level [`Camal`] type ties everything together:
//!
//! ```no_run
//! use ds_camal::{Camal, CamalConfig};
//! use ds_datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};
//! use ds_datasets::labels::Corpus;
//!
//! let dataset = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 3));
//! let corpus = Corpus::build(&dataset, ApplianceKind::Kettle, 360);
//! let camal = Camal::train(&corpus, &CamalConfig::default());
//! let window = &corpus.test[0];
//! let outcome = camal.localize(&window.values);
//! println!("detected: {} status: {:?}", outcome.detection.detected, outcome.status);
//! ```

pub mod calibrate;
pub mod config;
pub mod detector;
pub mod ensemble;
pub mod localizer;
pub mod model_io;
pub mod selection;
pub mod train;

pub use config::{CamalConfig, LocalizerConfig};
pub use detector::Detection;
pub use ensemble::ResNetEnsemble;
pub use localizer::Localization;

use ds_datasets::labels::Corpus;
use ds_timeseries::{StatusSeries, TimeSeries};

/// Per-window z-normalization (instance normalization) — the input scaling
/// applied before every model sees a window, at training and prediction
/// alike. Constant windows map to all-zero. The same normalized values `x`
/// feed CamAL's attention product `sigmoid(ĈAM_avg(t) ∘ x(t))`, which is
/// why localization marks timesteps whose consumption sits *above* the
/// window mean within CAM-supported regions.
pub fn z_normalize_window(values: &[f32]) -> Vec<f32> {
    let n = values.len().max(1) as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std > 0.0 {
        values.iter().map(|v| (v - mean) / std).collect()
    } else {
        vec![0.0; values.len()]
    }
}

/// A trained CamAL model for one appliance.
#[derive(Debug, Clone)]
pub struct Camal {
    ensemble: ResNetEnsemble,
    config: CamalConfig,
}

impl Camal {
    /// Train CamAL on a weak-label corpus (see [`train::train_camal`]).
    pub fn train(corpus: &Corpus, config: &CamalConfig) -> Camal {
        train::train_camal(corpus, config)
    }

    /// Assemble from parts (used by persistence and tests).
    pub fn from_parts(ensemble: ResNetEnsemble, config: CamalConfig) -> Camal {
        Camal { ensemble, config }
    }

    /// The trained ensemble.
    pub fn ensemble(&self) -> &ResNetEnsemble {
        &self.ensemble
    }

    /// The hyper-parameters the model was trained with.
    pub fn config(&self) -> &CamalConfig {
        &self.config
    }

    /// Steps 1–2: detect the appliance in a raw window (watts).
    pub fn detect(&self, window: &[f32]) -> Detection {
        detector::detect(&self.ensemble, window, &self.config.localizer)
    }

    /// The full pipeline (steps 1–6) on a raw window (watts).
    pub fn localize(&self, window: &[f32]) -> Localization {
        localizer::localize(&self.ensemble, window, &self.config.localizer)
    }

    /// The full pipeline over many same-length raw windows, batched and
    /// fanned across the ds-par worker team (see
    /// [`localizer::localize_batch`]); bit-identical to per-window
    /// [`Camal::localize`] calls.
    pub fn localize_batch(&self, windows: &[&[f32]]) -> Vec<Localization> {
        localizer::localize_batch(&self.ensemble, windows, &self.config.localizer)
    }

    /// Predict a full status series by sliding non-overlapping windows of
    /// `window_samples` over `series`. Windows with missing data and the
    /// trailing partial window are conservatively all-off (the GUI shows
    /// them as gaps anyway). Complete windows are gathered up front and
    /// localized as one batch, so the whole series benefits from the
    /// batched/parallel inference path.
    pub fn predict_status_series(
        &self,
        series: &TimeSeries,
        window_samples: usize,
    ) -> StatusSeries {
        let mut states = vec![0u8; series.len()];
        let values = series.values();
        let starts: Vec<usize> = (0..)
            .map(|i| i * window_samples)
            .take_while(|lo| lo + window_samples <= values.len())
            .filter(|&lo| values[lo..lo + window_samples].iter().all(|v| !v.is_nan()))
            .collect();
        let windows: Vec<&[f32]> = starts
            .iter()
            .map(|&lo| &values[lo..lo + window_samples])
            .collect();
        let outcomes = self.localize_batch(&windows);
        for (&lo, out) in starts.iter().zip(&outcomes) {
            states[lo..lo + window_samples].copy_from_slice(&out.status);
        }
        StatusSeries::from_states(series.start(), series.interval_secs(), states)
    }
}
