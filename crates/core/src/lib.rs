//! # ds-camal
//!
//! **CamAL — Class Activation Map-based Appliance Localization**, the core
//! contribution of the DeviceScope paper (ICDE 2025), reproduced in Rust.
//!
//! CamAL answers two questions about a household's aggregate smart-meter
//! series using only *weak* training labels (one bit per window or per
//! household — never per-timestep supervision):
//!
//! 1. **Detection** — was appliance A used inside this window?
//! 2. **Localization** — at which timesteps was it on?
//!
//! The pipeline (paper §II, Figure 2):
//!
//! ```text
//!            ┌───────────────────────────── ensemble ─────────────────────────────┐
//! window ───►│ ResNet(k=5) ─► prob₁, CAM₁ ┐                                       │
//!            │ ResNet(k=7) ─► prob₂, CAM₂ ├─► prob_ens = mean(probᵢ)              │
//!            │ ResNet(k=9) ─► prob₃, CAM₃ │   ĈAMᵢ = minmax(CAMᵢ)                 │
//!            │ ResNet(k=15)─► prob₄, CAM₄ ┘   ĈAM_avg = mean(ĈAMᵢ)                │
//!            └─────────────────────────────────────────────────────────────────────┘
//!   step 2: detected ⇔ prob_ens > 0.5
//!   step 5: s(t) = sigmoid(ĈAM_avg(t) ∘ x(t))      (x = the normalized input)
//!   step 6: status(t) = 1 ⇔ s(t) > 0.5             (all-off when not detected)
//! ```
//!
//! Modules:
//! - [`config`]: hyper-parameters ([`CamalConfig`]) with the paper defaults
//!   (kernel set `{5, 7, 9, 15}`, detection threshold 0.5).
//! - [`ensemble`]: the ResNet ensemble, trainable in parallel across members.
//! - [`detector`]: step 1–2 (ensemble probability, thresholded detection).
//! - [`localizer`]: steps 3–6 (CAM extraction, normalization, averaging,
//!   attention, status) with ablation switches for every design choice.
//! - [`selection`]: per-appliance member selection ("we then selected the
//!   networks that best detected specific appliances").
//! - [`train`]: the weak-label training pipeline from a dataset corpus.
//! - [`model_io`]: persistence of trained CamAL models.
//! - [`calibrate`]: detection-threshold tuning (extension; the paper fixes
//!   the gate at 0.5).
//!
//! The top-level [`Camal`] type ties everything together:
//!
//! ```no_run
//! use ds_camal::{Camal, CamalConfig};
//! use ds_datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};
//! use ds_datasets::labels::Corpus;
//!
//! let dataset = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 3));
//! let corpus = Corpus::build(&dataset, ApplianceKind::Kettle, 360);
//! let camal = Camal::train(&corpus, &CamalConfig::default());
//! let window = &corpus.test[0];
//! let outcome = camal.localize(&window.values);
//! println!("detected: {} status: {:?}", outcome.detection.detected, outcome.status);
//! ```

pub mod calibrate;
pub mod config;
pub mod detector;
pub mod ensemble;
pub mod error;
pub mod localizer;
pub mod model_io;
pub mod selection;
pub mod streaming;
pub mod train;

pub use config::{CamalConfig, LocalizerConfig};
pub use detector::{Detection, Detector};
pub use ds_neural::{Backbone, DetectorNet, FrozenDetector, QuantizedDetector};
pub use ensemble::{DetectorEnsemble, FrozenEnsemble, MemberOutput, Precision, ResNetEnsemble};
pub use error::CamalError;
pub use localizer::{Localization, LocalizationBatch, WINDOW_CHUNK};
pub use streaming::StreamingCamal;

use ds_datasets::labels::Corpus;
use ds_neural::tensor::Tensor;
use ds_timeseries::{Status, StatusSeries, TimeSeries};

/// Validate a batch of raw windows for the fallible inference paths:
/// every window must be non-empty and share one length.
fn validate_windows(windows: &[&[f32]]) -> Result<(), CamalError> {
    let Some(first) = windows.first() else {
        return Ok(());
    };
    if first.is_empty() {
        return Err(CamalError::EmptyWindow);
    }
    let expected = first.len();
    for w in windows {
        if w.len() != expected {
            return Err(CamalError::WindowLengthMismatch {
                expected,
                got: w.len(),
            });
        }
    }
    Ok(())
}

/// Per-window z-normalization (instance normalization) — the input scaling
/// applied before every model sees a window, at training and prediction
/// alike. Constant windows map to all-zero. The same normalized values `x`
/// feed CamAL's attention product `sigmoid(ĈAM_avg(t) ∘ x(t))`, which is
/// why localization marks timesteps whose consumption sits *above* the
/// window mean within CAM-supported regions.
pub fn z_normalize_window(values: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; values.len()];
    z_normalize_into(values, &mut out);
    out
}

/// Allocation-free form of [`z_normalize_window`]: write the z-scored
/// window into `out` (same length). Identical arithmetic — single-pass
/// mean, biased variance, divide-by-std — so the results are bit-equal.
pub fn z_normalize_into(values: &[f32], out: &mut [f32]) {
    assert_eq!(values.len(), out.len(), "z-normalize shape mismatch");
    let n = values.len().max(1) as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let std = var.sqrt();
    if std > 0.0 {
        for (o, v) in out.iter_mut().zip(values) {
            *o = (v - mean) / std;
        }
    } else {
        out.fill(0.0);
    }
}

/// A trained CamAL model for one appliance.
#[derive(Debug, Clone)]
pub struct Camal {
    ensemble: ResNetEnsemble,
    config: CamalConfig,
}

impl Camal {
    /// Train CamAL on a weak-label corpus (see [`train::train_camal`]).
    ///
    /// # Panics
    /// Panics on an empty corpus; serving paths use [`Camal::try_train`].
    pub fn train(corpus: &Corpus, config: &CamalConfig) -> Camal {
        train::train_camal(corpus, config)
    }

    /// Fallible form of [`Camal::train`]: `Err(CamalError::EmptyCorpus)`
    /// instead of a panic when no labeled windows survive corpus building.
    pub fn try_train(corpus: &Corpus, config: &CamalConfig) -> Result<Camal, CamalError> {
        train::try_train_camal(corpus, config)
    }

    /// Assemble from parts (used by persistence and tests).
    pub fn from_parts(ensemble: ResNetEnsemble, config: CamalConfig) -> Camal {
        Camal { ensemble, config }
    }

    /// The trained ensemble.
    pub fn ensemble(&self) -> &ResNetEnsemble {
        &self.ensemble
    }

    /// The hyper-parameters the model was trained with.
    pub fn config(&self) -> &CamalConfig {
        &self.config
    }

    /// Steps 1–2: detect the appliance in a raw window (watts).
    pub fn detect(&self, window: &[f32]) -> Detection {
        detector::detect(&self.ensemble, window, &self.config.localizer)
    }

    /// Fallible form of [`Camal::detect`]: typed error on an empty window.
    pub fn try_detect(&self, window: &[f32]) -> Result<Detection, CamalError> {
        validate_windows(std::slice::from_ref(&window))?;
        Ok(self.detect(window))
    }

    /// The full pipeline (steps 1–6) on a raw window (watts).
    pub fn localize(&self, window: &[f32]) -> Localization {
        localizer::localize(&self.ensemble, window, &self.config.localizer)
    }

    /// Fallible form of [`Camal::localize`]: typed error on an empty window.
    pub fn try_localize(&self, window: &[f32]) -> Result<Localization, CamalError> {
        validate_windows(std::slice::from_ref(&window))?;
        Ok(self.localize(window))
    }

    /// The full pipeline over many same-length raw windows, batched and
    /// fanned across the ds-par worker team (see
    /// [`localizer::localize_batch`]); bit-identical to per-window
    /// [`Camal::localize`] calls.
    pub fn localize_batch(&self, windows: &[&[f32]]) -> Vec<Localization> {
        localizer::localize_batch(&self.ensemble, windows, &self.config.localizer)
    }

    /// Fallible form of [`Camal::localize_batch`]: typed errors on empty
    /// or length-mismatched windows instead of the internal asserts.
    pub fn try_localize_batch(&self, windows: &[&[f32]]) -> Result<Vec<Localization>, CamalError> {
        validate_windows(windows)?;
        Ok(self.localize_batch(windows))
    }

    /// Predict a full status series by sliding non-overlapping windows of
    /// `window_samples` over `series`, plus one end-aligned window when
    /// the length is not a multiple, so a complete series has **zero
    /// coverage holes**. Overlap between the tail window and the last
    /// aligned window resolves as "earlier window wins", keeping
    /// aligned-window outputs identical to the aligned-only policy.
    ///
    /// Timesteps inside windows with missing readings — and any region no
    /// window could decide — come back [`Status::Unknown`], never `Off`:
    /// a dropout is absence of evidence, not evidence of absence. The
    /// `serve.degraded_windows` / `serve.unknown_samples` counters record
    /// how much of the series degraded. Complete windows are gathered up
    /// front and localized as one batch, so the whole series benefits from
    /// the batched/parallel inference path.
    pub fn predict_status_series(
        &self,
        series: &TimeSeries,
        window_samples: usize,
    ) -> StatusSeries {
        let w = window_samples;
        assert!(w > 0, "series prediction requires a positive window length");
        let values = series.values();
        let len = values.len();
        let mut states = vec![Status::Unknown; len];
        let aligned_end = if len >= w { (len / w) * w } else { 0 };
        let has_tail = len >= w && len > aligned_end;
        let clean = |lo: usize| values[lo..lo + w].iter().all(|v| !v.is_nan());
        // Coverage plan: (window start, first timestep this window owns).
        let mut plan: Vec<(usize, usize)> = (0..aligned_end / w).map(|i| (i * w, i * w)).collect();
        if has_tail {
            plan.push((len - w, aligned_end));
        }
        let mut degraded = 0u64;
        let starts: Vec<usize> = plan
            .iter()
            .map(|&(lo, _)| lo)
            .filter(|&lo| {
                let ok = clean(lo);
                degraded += u64::from(!ok);
                ok
            })
            .collect();
        let windows: Vec<&[f32]> = starts.iter().map(|&lo| &values[lo..lo + w]).collect();
        let outcomes = self.localize_batch(&windows);
        let mut next = outcomes.iter();
        for &(lo, write_from) in &plan {
            if !clean(lo) {
                continue;
            }
            let out = next.next().expect("one outcome per clean window");
            for (s, &on) in states[write_from..lo + w]
                .iter_mut()
                .zip(&out.status[write_from - lo..])
            {
                *s = if on == 1 { Status::On } else { Status::Off };
            }
        }
        let unknown = states.iter().filter(|s| s.is_unknown()).count();
        ds_obs::counter_add("serve.degraded_windows", degraded);
        ds_obs::counter_add("serve.unknown_samples", unknown as u64);
        StatusSeries::from_status(series.start(), series.interval_secs(), states)
    }

    /// Compile the trained model into its frozen serving form: BatchNorm
    /// folded into conv weights, ReLU fused into the conv epilogue, and
    /// all inference scratch pre-sized so steady-state prediction is
    /// allocation-free. See [`FrozenCamal`] for the contract.
    pub fn freeze(&self) -> FrozenCamal {
        FrozenCamal::new(self.ensemble.freeze(), self.config.clone())
    }

    /// Compile the trained model into an **int8-quantized** frozen serving
    /// form. `calib` is a held-out set of raw windows (training windows
    /// work well); they are z-normalized here exactly as serving inputs
    /// are, then replayed through the f32 frozen plan to calibrate each
    /// conv's activation scale. Decision parity with the f32 plan on the
    /// calibration corpus is gated by the golden tests and CI.
    pub fn freeze_quantized(&self, calib: &[Vec<f32>]) -> FrozenCamal {
        assert!(!calib.is_empty(), "quantization needs calibration windows");
        let len = calib[0].len();
        let normalized: Vec<Vec<f32>> = calib
            .iter()
            .map(|w| {
                assert_eq!(w.len(), len, "calibration windows must share one length");
                z_normalize_window(w)
            })
            .collect();
        let x = Tensor::from_windows(&normalized);
        FrozenCamal::new(self.ensemble.freeze_quantized(&x), self.config.clone())
    }
}

/// The frozen serving form of a [`Camal`] model.
///
/// Built once by [`Camal::freeze`]; afterwards every prediction runs the
/// BN-folded, ReLU-fused kernels through reused arenas. The contract with
/// the mutable reference path is *tolerance plus decision identity*:
/// ensemble probabilities agree within `1e-4` max-abs (BN folding
/// reassociates float products), and the thresholded artifacts — the
/// detection flag and the per-timestep status mask — are identical on any
/// input where the reference probability is not within tolerance of the
/// 0.5 threshold. Steady-state calls (after the first, which sizes the
/// arenas) perform **zero heap allocations**, which `ds-bench` asserts via
/// the ds-obs allocation counter.
///
/// Methods take `&mut self` because the arenas are written in place; wrap
/// in a lock if shared across threads.
#[derive(Debug, Clone)]
pub struct FrozenCamal {
    ensemble: FrozenEnsemble,
    config: CamalConfig,
    /// Member kernel sizes, cached for sizing the batch without a borrow
    /// of `ensemble` while `batch` is borrowed mutably.
    kernels: Vec<usize>,
    /// Reused `[chunk, 1, len]` input tensor (z-scored windows).
    input: Tensor,
    /// Reused flat localization output slabs.
    batch: LocalizationBatch,
    /// Reused window-start index buffer for series prediction.
    starts: Vec<usize>,
}

impl FrozenCamal {
    /// Numeric precision of the underlying member plans.
    pub fn precision(&self) -> Precision {
        self.ensemble.precision()
    }

    /// Assemble from a frozen ensemble and the model's config.
    pub fn new(ensemble: FrozenEnsemble, config: CamalConfig) -> FrozenCamal {
        let kernels = ensemble.members().iter().map(|m| m.kernel()).collect();
        FrozenCamal {
            ensemble,
            config,
            kernels,
            input: Tensor::zeros(0, 1, 0),
            batch: LocalizationBatch::new(),
            starts: Vec::new(),
        }
    }

    /// The frozen ensemble.
    pub fn ensemble(&self) -> &FrozenEnsemble {
        &self.ensemble
    }

    /// The hyper-parameters the source model was trained with.
    pub fn config(&self) -> &CamalConfig {
        &self.config
    }

    /// Heap footprint of every reused inference buffer this plan owns —
    /// member arenas, the z-scored input tensor, the localization output
    /// slabs, and the series index buffer — in bytes. One serving worker
    /// keeping this plan warm pays exactly this in steady state.
    pub fn arena_bytes(&self) -> usize {
        self.ensemble.arena_bytes()
            + self.input.data.capacity() * std::mem::size_of::<f32>()
            + self.batch.heap_bytes()
            + self.starts.capacity() * std::mem::size_of::<usize>()
    }

    /// Steps 1–2 on a raw window (watts). Allocates only the detection
    /// record's member list (the serving path underneath is arena-backed).
    pub fn detect(&mut self, window: &[f32]) -> Detection {
        let batch = self.localize_batch_into(std::slice::from_ref(&window));
        Detection {
            probability: batch.probability(0),
            member_probabilities: batch.member_probabilities(0).collect(),
            detected: batch.detected(0),
        }
    }

    /// Fallible form of [`FrozenCamal::detect`]: typed error on an empty
    /// window instead of the internal assert.
    pub fn try_detect(&mut self, window: &[f32]) -> Result<Detection, CamalError> {
        validate_windows(std::slice::from_ref(&window))?;
        Ok(self.detect(window))
    }

    /// The full pipeline (steps 1–6) on a raw window (watts), materialized
    /// as an owned [`Localization`].
    pub fn localize(&mut self, window: &[f32]) -> Localization {
        self.localize_batch_into(std::slice::from_ref(&window))
            .to_localization(0)
    }

    /// Fallible form of [`FrozenCamal::localize`]: typed error on an empty
    /// window instead of the internal assert.
    pub fn try_localize(&mut self, window: &[f32]) -> Result<Localization, CamalError> {
        validate_windows(std::slice::from_ref(&window))?;
        Ok(self.localize(window))
    }

    /// Fallible form of [`FrozenCamal::localize_batch_into`]: typed errors
    /// on empty or length-mismatched windows instead of the internal
    /// asserts. Validation runs before any arena is touched.
    pub fn try_localize_batch_into(
        &mut self,
        windows: &[&[f32]],
    ) -> Result<&LocalizationBatch, CamalError> {
        validate_windows(windows)?;
        Ok(self.localize_batch_into(windows))
    }

    /// The full pipeline over many same-length raw windows, written into
    /// the reused [`LocalizationBatch`] slabs. Windows are processed in
    /// fixed chunks of the same size the reference batch path uses, so the
    /// arena shapes stay constant and steady-state calls with a previously
    /// seen `(chunk, len)` shape allocate nothing.
    pub fn localize_batch_into(&mut self, windows: &[&[f32]]) -> &LocalizationBatch {
        let _span = ds_obs::span!("camal.frozen.localize_batch");
        let count = windows.len();
        if count == 0 {
            self.batch.ensure(0, 0, &self.kernels);
            return &self.batch;
        }
        let len = windows[0].len();
        assert!(len > 0, "cannot localize an empty window");
        self.batch.ensure(count, len, &self.kernels);
        let mut offset = 0;
        while offset < count {
            let chunk = (count - offset).min(localizer::WINDOW_CHUNK);
            let elems = chunk * len;
            if self.input.data.len() < elems {
                self.input.data.resize(elems, 0.0);
            }
            self.input.batch = chunk;
            self.input.channels = 1;
            self.input.len = len;
            for i in 0..chunk {
                let window = windows[offset + i];
                assert_eq!(window.len(), len, "windows must share one length");
                z_normalize_into(window, &mut self.input.data[i * len..(i + 1) * len]);
            }
            self.ensemble.predict_into(&self.input);
            self.batch.assemble_frozen_chunk(
                &self.ensemble,
                &self.input.data[..elems],
                offset,
                &self.config.localizer,
            );
            offset += chunk;
        }
        &self.batch
    }

    /// Frozen counterpart of [`Camal::predict_status_series`], writing the
    /// per-timestep states into a caller-owned buffer. Identical window
    /// policy: non-overlapping complete windows plus one end-aligned tail
    /// window ("earlier window wins" on the overlap); NaN-bearing windows
    /// and undecidable regions come back [`Status::Unknown`]. Steady-state
    /// calls over a same-shaped series allocate nothing.
    pub fn predict_status_into(
        &mut self,
        series: &TimeSeries,
        window_samples: usize,
        states: &mut Vec<Status>,
    ) {
        let w = window_samples;
        assert!(w > 0, "series prediction requires a positive window length");
        states.clear();
        states.resize(series.len(), Status::Unknown);
        let values = series.values();
        let len = values.len();
        let aligned_end = if len >= w { (len / w) * w } else { 0 };
        let has_tail = len >= w && len > aligned_end;
        let mut degraded = 0u64;
        // Take the index buffer so `self` stays free for localization.
        let mut starts = std::mem::take(&mut self.starts);
        starts.clear();
        for lo in (0..aligned_end).step_by(w).chain(has_tail.then(|| len - w)) {
            if values[lo..lo + w].iter().all(|v| !v.is_nan()) {
                starts.push(lo);
            } else {
                degraded += 1;
            }
        }
        // A stack array of window refs keeps the chunk loop allocation-free.
        let mut refs: [&[f32]; localizer::WINDOW_CHUNK] = [&[]; localizer::WINDOW_CHUNK];
        for chunk in starts.chunks(localizer::WINDOW_CHUNK) {
            for (slot, &lo) in refs.iter_mut().zip(chunk) {
                *slot = &values[lo..lo + w];
            }
            let batch = self.localize_batch_into(&refs[..chunk.len()]);
            for (i, &lo) in chunk.iter().enumerate() {
                // The tail window only owns the suffix past the aligned
                // region; every aligned window owns its full range.
                let write_from = if has_tail && lo == len - w {
                    aligned_end
                } else {
                    lo
                };
                let status = batch.status(i);
                for idx in write_from..lo + w {
                    states[idx] = if status[idx - lo] == 1 {
                        Status::On
                    } else {
                        Status::Off
                    };
                }
            }
        }
        self.starts = starts;
        let unknown = states.iter().filter(|s| s.is_unknown()).count();
        ds_obs::counter_add("serve.degraded_windows", degraded);
        ds_obs::counter_add("serve.unknown_samples", unknown as u64);
    }

    /// Frozen counterpart of [`Camal::predict_status_series`] returning an
    /// owned [`StatusSeries`].
    pub fn predict_status_series(
        &mut self,
        series: &TimeSeries,
        window_samples: usize,
    ) -> StatusSeries {
        let mut states = Vec::new();
        self.predict_status_into(series, window_samples, &mut states);
        StatusSeries::from_status(series.start(), series.interval_secs(), states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_corpus(n: usize, len: usize) -> (Vec<Vec<f32>>, Vec<u8>) {
        let mut windows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let mut w = vec![0.1f32; len];
            if i % 2 == 1 {
                for v in &mut w[len / 3..len / 2] {
                    *v = 1.0;
                }
            }
            for (j, v) in w.iter_mut().enumerate() {
                *v += ((i * 5 + j * 3) % 7) as f32 * 0.01;
            }
            windows.push(w);
            labels.push((i % 2) as u8);
        }
        (windows, labels)
    }

    fn trained_toy_camal(len: usize) -> (Camal, Vec<Vec<f32>>) {
        let cfg = CamalConfig::fast_test();
        let (windows, labels) = toy_corpus(24, len);
        let mut ens = ResNetEnsemble::untrained(&cfg);
        ens.train(&windows, &labels, &cfg);
        (Camal::from_parts(ens, cfg), windows)
    }

    #[test]
    fn z_normalize_into_matches_owned_form() {
        let w = [3.0f32, -1.0, 7.5, 0.25, 3.0];
        let owned = z_normalize_window(&w);
        let mut out = vec![9.0f32; w.len()];
        z_normalize_into(&w, &mut out);
        for (a, b) in owned.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let mut flat = vec![9.0f32; 3];
        z_normalize_into(&[4.0; 3], &mut flat);
        assert_eq!(flat, vec![0.0; 3]);
    }

    #[test]
    fn frozen_localization_matches_reference_decisions() {
        let (camal, windows) = trained_toy_camal(40);
        let mut frozen = camal.freeze();
        // More windows than one internal chunk, to cross a chunk boundary.
        let refs: Vec<&[f32]> = windows
            .iter()
            .cycle()
            .take(localizer::WINDOW_CHUNK + 3)
            .map(|w| w.as_slice())
            .collect();
        let reference = camal.localize_batch(&refs);
        let batch = frozen.localize_batch_into(&refs);
        assert_eq!(batch.windows(), refs.len());
        assert_eq!(batch.len(), 40);
        for (w, loc) in reference.iter().enumerate() {
            assert!(
                (batch.probability(w) - loc.detection.probability).abs() <= 1e-4,
                "window {w} prob drifted: frozen {} vs {}",
                batch.probability(w),
                loc.detection.probability
            );
            assert_eq!(batch.detected(w), loc.detection.detected, "window {w} flip");
            assert_eq!(batch.status(w), loc.status.as_slice(), "window {w} mask");
            for (f, r) in batch.cam(w).iter().zip(&loc.cam) {
                assert!((f - r).abs() <= 1e-3, "window {w} CAM drifted");
            }
            let members: Vec<(usize, f32)> = batch.member_probabilities(w).collect();
            assert_eq!(members.len(), loc.detection.member_probabilities.len());
            for ((fk, fp), (rk, rp)) in members.iter().zip(&loc.detection.member_probabilities) {
                assert_eq!(fk, rk);
                assert!((fp - rp).abs() <= 1e-4);
            }
            // The owned view agrees with the slab accessors.
            let owned = batch.to_localization(w);
            assert_eq!(owned.status, loc.status);
            assert_eq!(owned.detection.detected, loc.detection.detected);
        }
        // Single-window forms ride the same path.
        let single_ref = camal.localize(&windows[1]);
        let single = frozen.localize(&windows[1]);
        assert_eq!(single.status, single_ref.status);
        let det_ref = camal.detect(&windows[1]);
        let det = frozen.detect(&windows[1]);
        assert_eq!(det.detected, det_ref.detected);
        assert!((det.probability - det_ref.probability).abs() <= 1e-4);
    }

    #[test]
    fn frozen_status_series_matches_and_allocates_nothing() {
        let (camal, windows) = trained_toy_camal(40);
        let mut frozen = camal.freeze();
        // Series = several complete windows + a NaN-bearing window + a
        // partial tail, exercising the Unknown policy and tail coverage.
        let mut values: Vec<f32> = windows.iter().take(4).flatten().copied().collect();
        let mut gap = windows[1].clone();
        gap[7] = f32::NAN;
        values.extend(gap);
        values.extend(&windows[2][..17]);
        let series = TimeSeries::from_values(0, 60, values);
        let reference = camal.predict_status_series(&series, 40);
        let frozen_series = frozen.predict_status_series(&series, 40);
        assert_eq!(frozen_series.states(), reference.states());
        assert_eq!(frozen_series.start(), reference.start());
        // Steady state: repeat predictions into a warm buffer allocate
        // nothing on this thread.
        let mut states = Vec::with_capacity(series.len());
        frozen.predict_status_into(&series, 40, &mut states);
        let before = ds_obs::alloc_count();
        for _ in 0..3 {
            frozen.predict_status_into(&series, 40, &mut states);
        }
        assert_eq!(
            ds_obs::alloc_count() - before,
            0,
            "steady-state series prediction must not allocate"
        );
        assert_eq!(states.as_slice(), reference.states());
    }

    #[test]
    fn gap_windows_surface_unknown_on_both_paths() {
        let (camal, windows) = trained_toy_camal(40);
        let mut frozen = camal.freeze();
        // Two clean windows, then a window with one missing reading.
        let mut values: Vec<f32> = windows.iter().take(2).flatten().copied().collect();
        let mut gap = windows[1].clone();
        gap[3] = f32::NAN;
        values.extend(gap);
        let series = TimeSeries::from_values(0, 60, values);
        let reference = camal.predict_status_series(&series, 40);
        // One missing sample poisons its whole window — the serving path
        // declines to decide rather than feeding fabricated data.
        assert!(reference.states()[80..].iter().all(|s| s.is_unknown()));
        assert_eq!(reference.unknown_count(), 40);
        // The clean windows carry real decisions, never Unknown.
        assert!(reference.states()[..80].iter().all(|s| !s.is_unknown()));
        let frozen_series = frozen.predict_status_series(&series, 40);
        assert_eq!(frozen_series.states(), reference.states());
        // A series shorter than one window is entirely Unknown: no window
        // fits, so nothing can be decided.
        let short = TimeSeries::from_values(0, 60, vec![1.0; 10]);
        assert_eq!(camal.predict_status_series(&short, 40).unknown_count(), 10);
        assert_eq!(frozen.predict_status_series(&short, 40).unknown_count(), 10);
    }

    #[test]
    fn try_paths_surface_typed_errors() {
        let (camal, windows) = trained_toy_camal(24);
        let mut frozen = camal.freeze();
        assert_eq!(
            camal.try_localize(&[]).unwrap_err(),
            CamalError::EmptyWindow
        );
        assert_eq!(camal.try_detect(&[]).unwrap_err(), CamalError::EmptyWindow);
        assert_eq!(frozen.try_detect(&[]).unwrap_err(), CamalError::EmptyWindow);
        assert_eq!(
            frozen.try_localize(&[]).unwrap_err(),
            CamalError::EmptyWindow
        );
        let refs: Vec<&[f32]> = vec![&windows[0], &windows[1][..10]];
        assert_eq!(
            camal.try_localize_batch(&refs).unwrap_err(),
            CamalError::WindowLengthMismatch {
                expected: 24,
                got: 10
            }
        );
        assert_eq!(
            frozen.try_localize_batch_into(&refs).unwrap_err(),
            CamalError::WindowLengthMismatch {
                expected: 24,
                got: 10
            }
        );
        // Valid input rides the same path as the panicking form.
        let ok = camal.try_localize(&windows[0]).unwrap();
        assert_eq!(ok.status, camal.localize(&windows[0]).status);
        let det = frozen.try_detect(&windows[0]).unwrap();
        assert_eq!(det.detected, camal.detect(&windows[0]).detected);
        // An empty batch is a valid no-op, not an error.
        assert!(camal.try_localize_batch(&[]).unwrap().is_empty());
    }
}
