//! Member selection (paper §II-A): *"We trained multiple networks with
//! kernel sizes k ∈ {5, 7, 9, 15}. We then selected the networks that best
//! detected specific appliances."*
//!
//! Selection scores each member's detection quality (balanced accuracy, the
//! right measure under class imbalance) on a held-out slice of the training
//! windows, then keeps the best `keep` members.

use crate::ensemble::ResNetEnsemble;
use crate::z_normalize_window;
use ds_metrics::confusion::ConfusionMatrix;
use ds_neural::tensor::Tensor;

/// Detection quality of each member on a validation set, as
/// `(member index, kernel size, balanced accuracy)`.
pub fn score_members(
    ensemble: &ResNetEnsemble,
    windows: &[Vec<f32>],
    labels: &[u8],
) -> Vec<(usize, usize, f64)> {
    assert_eq!(windows.len(), labels.len(), "window/label mismatch");
    assert!(!windows.is_empty(), "validation set is empty");
    let normalized: Vec<Vec<f32>> = windows.iter().map(|w| z_normalize_window(w)).collect();
    let x = Tensor::from_windows(&normalized);
    ensemble
        .predict(&x)
        .iter()
        .enumerate()
        .map(|(i, out)| {
            let preds: Vec<u8> = out.probs.iter().map(|&p| u8::from(p > 0.5)).collect();
            let bacc = ConfusionMatrix::from_labels(&preds, labels).balanced_accuracy();
            (i, out.kernel, bacc)
        })
        .collect()
}

/// Keep the `keep` members with the highest validation balanced accuracy.
/// Keeps the original member order among the survivors (ties resolve to
/// lower kernel sizes, which are cheaper).
pub fn select_best_members(
    ensemble: &mut ResNetEnsemble,
    windows: &[Vec<f32>],
    labels: &[u8],
    keep: usize,
) -> Vec<(usize, usize, f64)> {
    let keep = keep.clamp(1, ensemble.len());
    let mut scored = score_members(ensemble, windows, labels);
    let full_report = scored.clone();
    scored.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .expect("bacc is finite")
            .then(a.1.cmp(&b.1))
    });
    let mut keep_idx: Vec<usize> = scored.iter().take(keep).map(|(i, _, _)| *i).collect();
    keep_idx.sort_unstable();
    ensemble.retain_indices(&keep_idx);
    full_report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;

    fn toy_corpus(n: usize, len: usize) -> (Vec<Vec<f32>>, Vec<u8>) {
        let mut windows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let mut w = vec![0.1f32; len];
            if i % 2 == 1 {
                for v in &mut w[len / 4..len / 2] {
                    *v = 1.0;
                }
            }
            for (j, v) in w.iter_mut().enumerate() {
                *v += ((i * 3 + j) % 5) as f32 * 0.01;
            }
            windows.push(w);
            labels.push((i % 2) as u8);
        }
        (windows, labels)
    }

    #[test]
    fn scoring_reports_every_member() {
        let ens = ResNetEnsemble::untrained(&CamalConfig::fast_test());
        let (windows, labels) = toy_corpus(10, 32);
        let scores = score_members(&ens, &windows, &labels);
        assert_eq!(scores.len(), 2);
        for (i, kernel, bacc) in scores {
            assert!(i < 2);
            assert!(kernel == 3 || kernel == 5);
            assert!((0.0..=1.0).contains(&bacc));
        }
    }

    #[test]
    fn selection_keeps_best_member() {
        let cfg = CamalConfig::fast_test();
        let (windows, labels) = toy_corpus(24, 40);
        let mut ens = ResNetEnsemble::untrained(&cfg);
        ens.train(&windows, &labels, &cfg);
        let report = select_best_members(&mut ens, &windows, &labels, 1);
        assert_eq!(ens.len(), 1);
        // The kept member is the argmax of the reported scores.
        let best = report
            .iter()
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap().then(b.1.cmp(&a.1)))
            .unwrap();
        assert_eq!(ens.members()[0].kernel(), best.1);
    }

    #[test]
    fn keep_clamps_to_ensemble_size() {
        let cfg = CamalConfig::fast_test();
        let (windows, labels) = toy_corpus(8, 24);
        let mut ens = ResNetEnsemble::untrained(&cfg);
        select_best_members(&mut ens, &windows, &labels, 99);
        assert_eq!(ens.len(), 2);
        select_best_members(&mut ens, &windows, &labels, 0);
        assert_eq!(ens.len(), 1);
    }
}
