//! Persistence of trained CamAL models (ensemble weights + configuration)
//! as versioned JSON, matching the substrate's checkpoint conventions.

use crate::config::CamalConfig;
use crate::ensemble::ResNetEnsemble;
use crate::Camal;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current CamAL checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct CamalCheckpoint {
    format_version: u32,
    config: CamalConfig,
    ensemble: ResNetEnsemble,
}

/// Errors from CamAL model persistence.
#[derive(Debug)]
pub enum CamalIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(String),
    /// Incompatible checkpoint version.
    Version {
        /// Version found in the file.
        found: u32,
    },
}

impl std::fmt::Display for CamalIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CamalIoError::Io(e) => write!(f, "camal io: {e}"),
            CamalIoError::Format(e) => write!(f, "camal format: {e}"),
            CamalIoError::Version { found } => {
                write!(
                    f,
                    "camal checkpoint version {found}, expected {FORMAT_VERSION}"
                )
            }
        }
    }
}

impl std::error::Error for CamalIoError {}

impl From<std::io::Error> for CamalIoError {
    fn from(e: std::io::Error) -> Self {
        CamalIoError::Io(e)
    }
}

/// Serialize a trained model to JSON.
pub fn to_json(model: &Camal) -> String {
    serde_json::to_string(&CamalCheckpoint {
        format_version: FORMAT_VERSION,
        config: model.config().clone(),
        ensemble: model.ensemble().clone(),
    })
    .expect("CamAL serialization is infallible")
}

/// Deserialize a model from JSON.
pub fn from_json(json: &str) -> Result<Camal, CamalIoError> {
    let ckpt: CamalCheckpoint =
        serde_json::from_str(json).map_err(|e| CamalIoError::Format(e.to_string()))?;
    if ckpt.format_version != FORMAT_VERSION {
        return Err(CamalIoError::Version {
            found: ckpt.format_version,
        });
    }
    Ok(Camal::from_parts(ckpt.ensemble, ckpt.config))
}

/// Save a trained model to a file.
pub fn save(model: &Camal, path: impl AsRef<Path>) -> Result<(), CamalIoError> {
    std::fs::write(path, to_json(model))?;
    Ok(())
}

/// Load a trained model from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Camal, CamalIoError> {
    let json = std::fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;

    fn untrained_model() -> Camal {
        let cfg = CamalConfig::fast_test();
        Camal::from_parts(ResNetEnsemble::untrained(&cfg), cfg)
    }

    #[test]
    fn round_trip_preserves_behavior() {
        let model = untrained_model();
        let window: Vec<f32> = (0..48)
            .map(|i| (i as f32 * 0.7).cos() * 100.0 + 200.0)
            .collect();
        let before = model.localize(&window);
        let back = from_json(&to_json(&model)).unwrap();
        let after = back.localize(&window);
        assert_eq!(before.status, after.status);
        assert_eq!(before.detection.probability, after.detection.probability);
        assert_eq!(back.config(), model.config());
    }

    #[test]
    fn freeze_after_round_trip_is_bit_identical() {
        // BN folding consumes gamma/beta/running stats and conv weights;
        // if the checkpoint preserves those exactly (it serializes f32s
        // losslessly), the frozen plan must come out bit-for-bit equal.
        let model = untrained_model();
        let back = from_json(&to_json(&model)).unwrap();
        assert_eq!(
            model.freeze().ensemble().param_bits(),
            back.freeze().ensemble().param_bits(),
            "frozen plan drifted across a save/load round trip"
        );
    }

    #[test]
    fn version_and_format_guards() {
        let json =
            to_json(&untrained_model()).replace("\"format_version\":1", "\"format_version\":2");
        assert!(matches!(
            from_json(&json),
            Err(CamalIoError::Version { found: 2 })
        ));
        assert!(matches!(
            from_json("not json"),
            Err(CamalIoError::Format(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ds_camal_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("camal.json");
        let model = untrained_model();
        save(&model, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.ensemble().len(), model.ensemble().len());
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load(dir.join("nope.json")),
            Err(CamalIoError::Io(_))
        ));
    }
}
