//! Persistence of trained CamAL models (ensemble weights + configuration)
//! as versioned JSON, matching the substrate's checkpoint conventions.
//!
//! Two on-disk formats exist:
//!
//! - **v1** (pre-backbone-zoo): members are bare ResNets — the format
//!   carried no backbone information because there was only one.
//! - **v2** (current): members are externally tagged [`DetectorNet`]s, so
//!   every member records its backbone (`{"ResNet": {...}}`,
//!   `{"Inception": {...}}`, ...) and heterogeneous ensembles round-trip.
//!
//! [`from_json`] probes `format_version` before committing to a schema, so
//! v1 files keep loading forever (mapped to all-ResNet ensembles,
//! bit-identically — the fixture test freezes both sides and compares raw
//! parameter bits). Unknown future versions are rejected with
//! [`CamalIoError::Version`] instead of a confusing schema error.

use crate::config::CamalConfig;
use crate::ensemble::DetectorEnsemble;
use crate::Camal;
use ds_neural::{DetectorNet, ResNet};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current CamAL checkpoint format version.
pub const FORMAT_VERSION: u32 = 2;

#[derive(Debug, Serialize, Deserialize)]
struct CamalCheckpoint {
    format_version: u32,
    config: CamalConfig,
    ensemble: DetectorEnsemble,
}

/// The v1 schema: an ensemble of untagged ResNet members. `Serialize` is
/// kept so the compatibility tests can author genuine v1 files.
#[derive(Debug, Serialize, Deserialize)]
struct CamalCheckpointV1 {
    format_version: u32,
    config: CamalConfig,
    ensemble: EnsembleV1,
}

#[derive(Debug, Serialize, Deserialize)]
struct EnsembleV1 {
    members: Vec<ResNet>,
}

/// Errors from CamAL model persistence.
#[derive(Debug)]
pub enum CamalIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(String),
    /// Incompatible checkpoint version.
    Version {
        /// Version found in the file.
        found: u32,
    },
}

impl std::fmt::Display for CamalIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CamalIoError::Io(e) => write!(f, "camal io: {e}"),
            CamalIoError::Format(e) => write!(f, "camal format: {e}"),
            CamalIoError::Version { found } => {
                write!(
                    f,
                    "camal checkpoint version {found}, expected 1..={FORMAT_VERSION}"
                )
            }
        }
    }
}

impl std::error::Error for CamalIoError {}

impl From<std::io::Error> for CamalIoError {
    fn from(e: std::io::Error) -> Self {
        CamalIoError::Io(e)
    }
}

/// Serialize a trained model to JSON (always the current format version).
pub fn to_json(model: &Camal) -> String {
    serde_json::to_string(&CamalCheckpoint {
        format_version: FORMAT_VERSION,
        config: model.config().clone(),
        ensemble: model.ensemble().clone(),
    })
    .expect("CamAL serialization is infallible")
}

/// Deserialize a model from JSON, accepting both the current format and
/// the pre-backbone v1 format.
pub fn from_json(json: &str) -> Result<Camal, CamalIoError> {
    let value =
        serde_json::parse_value_complete(json).map_err(|e| CamalIoError::Format(e.to_string()))?;
    let version = value
        .get("format_version")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| CamalIoError::Format("missing format_version".into()))?;
    match version {
        1 => {
            let ckpt: CamalCheckpointV1 =
                serde_json::from_value(&value).map_err(|e| CamalIoError::Format(e.to_string()))?;
            let members = ckpt
                .ensemble
                .members
                .into_iter()
                .map(DetectorNet::ResNet)
                .collect();
            Ok(Camal::from_parts(
                DetectorEnsemble::from_members(members),
                ckpt.config,
            ))
        }
        2 => {
            let ckpt: CamalCheckpoint =
                serde_json::from_value(&value).map_err(|e| CamalIoError::Format(e.to_string()))?;
            Ok(Camal::from_parts(ckpt.ensemble, ckpt.config))
        }
        other => Err(CamalIoError::Version {
            found: other as u32,
        }),
    }
}

/// Save a trained model to a file.
pub fn save(model: &Camal, path: impl AsRef<Path>) -> Result<(), CamalIoError> {
    std::fs::write(path, to_json(model))?;
    Ok(())
}

/// Load a trained model from a file.
pub fn load(path: impl AsRef<Path>) -> Result<Camal, CamalIoError> {
    let json = std::fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;
    use ds_neural::Backbone;

    fn untrained_model() -> Camal {
        let cfg = CamalConfig::fast_test();
        Camal::from_parts(DetectorEnsemble::untrained(&cfg), cfg)
    }

    /// Author a genuine v1 checkpoint for `model` (all members must be
    /// ResNets): untagged members, no `backbones` config key.
    fn v1_json(model: &Camal) -> String {
        let members: Vec<ResNet> = model
            .ensemble()
            .members()
            .iter()
            .map(|m| match m {
                DetectorNet::ResNet(n) => n.clone(),
                other => panic!("v1 cannot hold a {} member", other.backbone()),
            })
            .collect();
        serde_json::to_string(&CamalCheckpointV1 {
            format_version: 1,
            config: model.config().clone(),
            ensemble: EnsembleV1 { members },
        })
        .unwrap()
        .replace("\"backbones\":[],", "")
        .replace(",\"backbones\":[]", "")
    }

    #[test]
    fn round_trip_preserves_behavior() {
        let model = untrained_model();
        let window: Vec<f32> = (0..48)
            .map(|i| (i as f32 * 0.7).cos() * 100.0 + 200.0)
            .collect();
        let before = model.localize(&window);
        let back = from_json(&to_json(&model)).unwrap();
        let after = back.localize(&window);
        assert_eq!(before.status, after.status);
        assert_eq!(before.detection.probability, after.detection.probability);
        assert_eq!(back.config(), model.config());
    }

    #[test]
    fn round_trip_preserves_mixed_backbones() {
        let cfg = CamalConfig {
            backbones: vec![Backbone::Inception, Backbone::TransApp],
            ..CamalConfig::fast_test()
        };
        let model = Camal::from_parts(DetectorEnsemble::untrained(&cfg), cfg);
        let json = to_json(&model);
        // The externally tagged member form *is* the per-member backbone tag.
        assert!(json.contains("\"Inception\""));
        assert!(json.contains("\"TransApp\""));
        let back = from_json(&json).unwrap();
        let tags: Vec<Backbone> = back
            .ensemble()
            .members()
            .iter()
            .map(|m| m.backbone())
            .collect();
        assert_eq!(tags, vec![Backbone::Inception, Backbone::TransApp]);
        assert_eq!(
            model.freeze().ensemble().param_bits(),
            back.freeze().ensemble().param_bits(),
            "mixed-backbone frozen plan drifted across a round trip"
        );
    }

    #[test]
    fn freeze_after_round_trip_is_bit_identical() {
        // BN folding consumes gamma/beta/running stats and conv weights;
        // if the checkpoint preserves those exactly (it serializes f32s
        // losslessly), the frozen plan must come out bit-for-bit equal.
        let model = untrained_model();
        let back = from_json(&to_json(&model)).unwrap();
        assert_eq!(
            model.freeze().ensemble().param_bits(),
            back.freeze().ensemble().param_bits(),
            "frozen plan drifted across a save/load round trip"
        );
    }

    #[test]
    fn v1_checkpoint_still_loads() {
        // A file written by the pre-backbone format: untagged ResNet
        // members, no `backbones` key anywhere.
        let model = untrained_model();
        let json = v1_json(&model);
        assert!(json.contains("\"format_version\":1"));
        assert!(!json.contains("backbones"));
        let back = from_json(&json).unwrap();
        assert_eq!(back.ensemble().len(), model.ensemble().len());
        assert!(back
            .ensemble()
            .members()
            .iter()
            .all(|m| m.backbone() == Backbone::ResNet));
        // Bit-identical serving plans: v1 loading is lossless, not merely
        // approximate.
        assert_eq!(
            model.freeze().ensemble().param_bits(),
            back.freeze().ensemble().param_bits(),
            "v1-loaded frozen plan drifted from the source model"
        );
        // And the loaded model re-saves as v2, round-tripping from there.
        let rewritten = to_json(&back);
        assert!(rewritten.contains("\"format_version\":2"));
        let again = from_json(&rewritten).unwrap();
        assert_eq!(
            back.freeze().ensemble().param_bits(),
            again.freeze().ensemble().param_bits()
        );
    }

    #[test]
    fn version_and_format_guards() {
        // Future versions are rejected by number, not by schema accident.
        let json =
            to_json(&untrained_model()).replace("\"format_version\":2", "\"format_version\":3");
        assert!(matches!(
            from_json(&json),
            Err(CamalIoError::Version { found: 3 })
        ));
        assert!(matches!(
            from_json("not json"),
            Err(CamalIoError::Format(_))
        ));
        assert!(matches!(
            from_json("{\"config\":{}}"),
            Err(CamalIoError::Format(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ds_camal_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("camal.json");
        let model = untrained_model();
        save(&model, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.ensemble().len(), model.ensemble().len());
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load(dir.join("nope.json")),
            Err(CamalIoError::Io(_))
        ));
    }
}
