//! Steps 1–2 of the pipeline: ensemble prediction and thresholded
//! detection — plus the [`Detector`] trait, the surface every ensemble
//! member presents regardless of backbone.

use crate::config::LocalizerConfig;
use crate::ensemble::ResNetEnsemble;
use crate::z_normalize_window;
use ds_neural::tensor::Tensor;
use ds_neural::train::{train_classifier, TrainConfig, TrainReport};
use ds_neural::{Backbone, DetectorNet, FrozenDetector, QuantizedDetector, ResNet};

/// The lifecycle surface of one ensemble member, independent of its
/// architecture: train on weak labels, predict probability + class-1 CAM,
/// and compile into the frozen / int8 serving plans. The ensemble drives
/// its members exclusively through this trait, which is what lets
/// ResNet, Inception and TransApp members coexist in one model.
///
/// Implementors: [`DetectorNet`] (the backbone-tagged member every
/// checkpoint stores) and plain [`ResNet`] (retrofitted, so pre-zoo code
/// and tests keep compiling against the same surface).
pub trait Detector {
    /// Architecture tag (plan caches key on it).
    fn backbone(&self) -> Backbone;

    /// Receptive-field knob — the paper's ensemble-diversity parameter.
    fn kernel(&self) -> usize;

    /// Train on z-normalized windows with weak labels.
    fn train_member(
        &mut self,
        windows: &[Vec<f32>],
        labels: &[u8],
        cfg: &TrainConfig,
    ) -> TrainReport;

    /// Positive-class probability and class-1 CAM per window of a
    /// `[B, 1, L]` batch (pure — shareable at prediction time).
    fn infer_with_cam(&self, x: &Tensor) -> (Vec<f32>, Vec<Vec<f32>>);

    /// Compile into the frozen f32 serving plan.
    fn freeze(&self) -> FrozenDetector;

    /// Compile into the int8 serving plan, calibrating on `calib`.
    fn freeze_quantized(&self, calib: &Tensor) -> QuantizedDetector;
}

impl Detector for DetectorNet {
    fn backbone(&self) -> Backbone {
        DetectorNet::backbone(self)
    }

    fn kernel(&self) -> usize {
        DetectorNet::kernel(self)
    }

    fn train_member(
        &mut self,
        windows: &[Vec<f32>],
        labels: &[u8],
        cfg: &TrainConfig,
    ) -> TrainReport {
        train_classifier(self, windows, labels, cfg)
    }

    fn infer_with_cam(&self, x: &Tensor) -> (Vec<f32>, Vec<Vec<f32>>) {
        DetectorNet::infer_with_cam(self, x)
    }

    fn freeze(&self) -> FrozenDetector {
        DetectorNet::freeze(self)
    }

    fn freeze_quantized(&self, calib: &Tensor) -> QuantizedDetector {
        DetectorNet::freeze_quantized(self, calib)
    }
}

impl Detector for ResNet {
    fn backbone(&self) -> Backbone {
        Backbone::ResNet
    }

    fn kernel(&self) -> usize {
        ResNet::kernel(self)
    }

    fn train_member(
        &mut self,
        windows: &[Vec<f32>],
        labels: &[u8],
        cfg: &TrainConfig,
    ) -> TrainReport {
        train_classifier(self, windows, labels, cfg)
    }

    fn infer_with_cam(&self, x: &Tensor) -> (Vec<f32>, Vec<Vec<f32>>) {
        ResNet::infer_with_cam(self, x)
    }

    fn freeze(&self) -> FrozenDetector {
        FrozenDetector::ResNet(ds_neural::FrozenResNet::freeze(self))
    }

    fn freeze_quantized(&self, calib: &Tensor) -> QuantizedDetector {
        QuantizedDetector::ResNet(ds_neural::QuantizedResNet::quantize(
            &ds_neural::FrozenResNet::freeze(self),
            calib,
        ))
    }
}

/// Outcome of the detection step for one window.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Ensemble probability `Prob_ens` (mean of member probabilities).
    pub probability: f32,
    /// Each member's `(kernel size, probability)` — the app's "Model
    /// detection probabilities" view.
    pub member_probabilities: Vec<(usize, f32)>,
    /// Whether `Prob_ens` exceeded the detection threshold.
    pub detected: bool,
}

/// Detect the appliance in one raw window (watts).
pub fn detect(ensemble: &ResNetEnsemble, window: &[f32], cfg: &LocalizerConfig) -> Detection {
    assert!(!window.is_empty(), "cannot detect on an empty window");
    let _span = ds_obs::span!("camal.detect");
    let start = ds_obs::enabled().then(std::time::Instant::now);
    let normalized = z_normalize_window(window);
    let x = Tensor::from_windows(std::slice::from_ref(&normalized));
    let outputs = ensemble.predict(&x);
    let prob = ResNetEnsemble::ensemble_probability(&outputs)[0];
    let detected = prob > cfg.detection_threshold;
    if let Some(start) = start {
        record_detections(&[prob], detected as u64, start.elapsed(), 1);
    }
    Detection {
        probability: prob,
        member_probabilities: outputs.iter().map(|o| (o.kernel, o.probs[0])).collect(),
        detected,
    }
}

/// Shared observability for single and batched detection: per-window
/// latency and probability histograms plus decision counters.
fn record_detections(probs: &[f32], detected: u64, elapsed: std::time::Duration, windows: u64) {
    let per_window = elapsed.as_secs_f64() / windows.max(1) as f64;
    for &p in probs {
        ds_obs::observe("camal.detect.prob", p as f64, ds_obs::Buckets::Unit);
        ds_obs::observe(
            "camal.detect.latency_s",
            per_window,
            ds_obs::Buckets::DurationSecs,
        );
    }
    ds_obs::counter_add("camal.detect.windows", windows);
    ds_obs::counter_add("camal.detect.positive", detected);
    ds_obs::event!(
        "detect",
        windows = windows,
        positive = detected,
        latency_per_window_s = per_window,
    );
}

/// Batched detection over many raw windows, chunked
/// [`crate::localizer::WINDOW_CHUNK`] windows per task across the ds-par
/// worker team. Batch rows flow through the ensemble independently, so
/// the chunking (fixed, never thread-count-derived) and the fan-out leave
/// the probabilities bit-identical to one sequential pass.
pub fn detect_batch(
    ensemble: &ResNetEnsemble,
    windows: &[Vec<f32>],
    cfg: &LocalizerConfig,
) -> Vec<Detection> {
    assert!(!windows.is_empty(), "cannot detect on an empty batch");
    let _span = ds_obs::span!("camal.detect_batch");
    let start = ds_obs::enabled().then(std::time::Instant::now);
    let per_chunk: Vec<Vec<Detection>> =
        ds_par::par_ranges(windows.len(), crate::localizer::WINDOW_CHUNK, |_, range| {
            let normalized: Vec<Vec<f32>> = windows[range]
                .iter()
                .map(|w| z_normalize_window(w))
                .collect();
            let x = Tensor::from_windows(&normalized);
            let outputs = ensemble.predict(&x);
            let probs = ResNetEnsemble::ensemble_probability(&outputs);
            probs
                .iter()
                .enumerate()
                .map(|(i, &p)| Detection {
                    probability: p,
                    member_probabilities: outputs.iter().map(|o| (o.kernel, o.probs[i])).collect(),
                    detected: p > cfg.detection_threshold,
                })
                .collect()
        });
    let detections: Vec<Detection> = per_chunk.into_iter().flatten().collect();
    if let Some(start) = start {
        let probs: Vec<f32> = detections.iter().map(|d| d.probability).collect();
        let positive = detections.iter().filter(|d| d.detected).count() as u64;
        record_detections(&probs, positive, start.elapsed(), windows.len() as u64);
    }
    detections
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CamalConfig;

    fn ensemble() -> ResNetEnsemble {
        ResNetEnsemble::untrained(&CamalConfig::fast_test())
    }

    #[test]
    fn detection_reports_all_members() {
        let ens = ensemble();
        let cfg = LocalizerConfig::default();
        let window = vec![100.0; 48];
        let d = detect(&ens, &window, &cfg);
        assert_eq!(d.member_probabilities.len(), 2);
        assert!((0.0..=1.0).contains(&d.probability));
        let mean: f32 = d.member_probabilities.iter().map(|(_, p)| p).sum::<f32>() / 2.0;
        assert!((d.probability - mean).abs() < 1e-6);
        assert_eq!(d.detected, d.probability > 0.5);
    }

    #[test]
    fn batch_matches_single() {
        let ens = ensemble();
        let cfg = LocalizerConfig::default();
        let w1: Vec<f32> = (0..48)
            .map(|i| (i as f32 * 0.3).sin() * 50.0 + 100.0)
            .collect();
        let w2: Vec<f32> = (0..48).map(|i| (i % 7) as f32 * 30.0).collect();
        let batch = detect_batch(&ens, &[w1.clone(), w2.clone()], &cfg);
        let s1 = detect(&ens, &w1, &cfg);
        let s2 = detect(&ens, &w2, &cfg);
        assert!((batch[0].probability - s1.probability).abs() < 1e-5);
        assert!((batch[1].probability - s2.probability).abs() < 1e-5);
    }

    #[test]
    fn frozen_detect_tracks_reference_probabilities() {
        // Probability tolerance only: an untrained ensemble sits near the
        // 0.5 threshold, where decision identity is exercised by the
        // trained-model tests in `lib.rs` and `ensemble.rs` instead.
        let ens = ensemble();
        let cfg = CamalConfig::fast_test();
        let mut frozen = crate::Camal::from_parts(ens.clone(), cfg.clone()).freeze();
        let window: Vec<f32> = (0..48)
            .map(|i| (i as f32 * 0.3).sin() * 50.0 + 100.0)
            .collect();
        let reference = detect(&ens, &window, &cfg.localizer);
        let d = frozen.detect(&window);
        assert!((d.probability - reference.probability).abs() <= 1e-4);
        assert_eq!(
            d.member_probabilities.len(),
            reference.member_probabilities.len()
        );
        for ((fk, fp), (rk, rp)) in d
            .member_probabilities
            .iter()
            .zip(&reference.member_probabilities)
        {
            assert_eq!(fk, rk);
            assert!((fp - rp).abs() <= 1e-4);
        }
    }

    #[test]
    fn threshold_controls_detection() {
        let ens = ensemble();
        let window = vec![1.0; 32];
        let lenient = LocalizerConfig {
            detection_threshold: 0.0,
            ..LocalizerConfig::default()
        };
        assert!(detect(&ens, &window, &lenient).detected);
        let strict = LocalizerConfig {
            detection_threshold: 1.0,
            ..LocalizerConfig::default()
        };
        assert!(!detect(&ens, &window, &strict).detected);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_panics() {
        let ens = ensemble();
        let _ = detect(&ens, &[], &LocalizerConfig::default());
    }
}
