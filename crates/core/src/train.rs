//! The CamAL training pipeline: from a weak-label corpus to a trained
//! model. Mirrors §II-A's training phase:
//!
//! 1. windows are taken from the corpus (already resampled to the common
//!    frequency and purged of missing data by `ds-datasets`);
//! 2. each window is z-normalized (instance normalization);
//! 3. every ensemble member trains on the same windows and weak labels,
//!    in parallel, differing only in kernel size and seed;
//! 4. optionally, the members that best detect the appliance are kept.

use crate::config::CamalConfig;
use crate::ensemble::ResNetEnsemble;
use crate::error::CamalError;
use crate::selection::select_best_members;
use crate::{z_normalize_window, Camal};
use ds_datasets::labels::Corpus;
use ds_neural::train::TrainReport;

/// Train CamAL on a corpus, returning the trained model.
///
/// # Panics
/// Panics on an empty training corpus; serving paths use
/// [`try_train_camal`] instead.
pub fn train_camal(corpus: &Corpus, config: &CamalConfig) -> Camal {
    let (model, _) = train_camal_with_reports(corpus, config);
    model
}

/// Fallible form of [`train_camal`]: `Err(CamalError::EmptyCorpus)` when
/// the corpus has no labeled windows (e.g. every subsequence was dropped
/// for missing data), instead of aborting the caller.
pub fn try_train_camal(corpus: &Corpus, config: &CamalConfig) -> Result<Camal, CamalError> {
    if corpus.train.is_empty() {
        return Err(CamalError::EmptyCorpus);
    }
    Ok(train_camal(corpus, config))
}

/// Train CamAL and also return the per-member training reports (used by the
/// benchmark harness to record convergence).
pub fn train_camal_with_reports(
    corpus: &Corpus,
    config: &CamalConfig,
) -> (Camal, Vec<TrainReport>) {
    assert!(
        !corpus.train.is_empty(),
        "CamAL training requires at least one labeled window"
    );
    let _span = ds_obs::span!("camal.train");
    ds_obs::counter_add("camal.train_windows", corpus.train.len() as u64);
    let windows: Vec<Vec<f32>> = corpus
        .train
        .iter()
        .map(|w| z_normalize_window(&w.values))
        .collect();
    let labels: Vec<u8> = corpus.train.iter().map(|w| u8::from(w.weak)).collect();
    let mut ensemble = ResNetEnsemble::untrained(config);
    let reports = ensemble.train(&windows, &labels, config);
    if let Some(keep) = config.keep_members {
        // Selection scores on the training windows (already normalized; the
        // selection helper normalizes again, which is a no-op on z-scored
        // data up to floating-point jitter).
        let raw: Vec<Vec<f32>> = corpus.train.iter().map(|w| w.values.clone()).collect();
        let _select_span = ds_obs::span!("select_members");
        select_best_members(&mut ensemble, &raw, &labels, keep);
    }
    ds_obs::event!(
        "camal_trained",
        members = ensemble.len(),
        train_windows = corpus.train.len(),
        early_stopped = reports.iter().filter(|r| r.early_stopped).count(),
    );
    (Camal::from_parts(ensemble, config.clone()), reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_datasets::labels::Corpus;
    use ds_datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};

    fn tiny_corpus() -> Corpus {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let mut corpus = Corpus::build(&ds, ApplianceKind::Kettle, 120);
        corpus.balance_train(2);
        corpus
    }

    #[test]
    fn pipeline_trains_and_localizes() {
        let corpus = tiny_corpus();
        let cfg = CamalConfig::fast_test();
        let (camal, reports) = train_camal_with_reports(&corpus, &cfg);
        assert_eq!(reports.len(), cfg.ensemble_size());
        assert_eq!(camal.ensemble().len(), cfg.ensemble_size());
        // Run the full pipeline on a test window; shapes must line up.
        let w = &corpus.test[0];
        let out = camal.localize(&w.values);
        assert_eq!(out.status.len(), w.values.len());
        assert!(out.detection.probability.is_finite());
    }

    #[test]
    fn member_selection_shrinks_ensemble() {
        let corpus = tiny_corpus();
        let cfg = CamalConfig {
            keep_members: Some(1),
            ..CamalConfig::fast_test()
        };
        let camal = train_camal(&corpus, &cfg);
        assert_eq!(camal.ensemble().len(), 1);
    }

    #[test]
    fn predict_status_series_covers_complete_windows() {
        use ds_timeseries::Status;
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let corpus = Corpus::build(&ds, ApplianceKind::Kettle, 120);
        let camal = train_camal(&corpus, &CamalConfig::fast_test());
        // A non-multiple length built from gap-free corpus windows: the
        // trailing 50 samples used to be a silent all-off coverage hole;
        // now an end-aligned window decides them, so a complete series has
        // zero `Unknown` timesteps.
        let mut values: Vec<f32> = corpus.train[..3]
            .iter()
            .flat_map(|w| w.values.iter().copied())
            .collect();
        values.extend(&corpus.train[3].values[..50]);
        let series = ds_timeseries::TimeSeries::from_values(0, 60, values);
        assert!(!series.has_missing(), "test needs a complete series");
        let status = camal.predict_status_series(&series, 120);
        assert_eq!(status.len(), series.len());
        assert_eq!(
            status.unknown_count(),
            0,
            "complete series must have no coverage holes"
        );
        // Aligned-window outputs are unchanged by the tail window
        // ("earlier window wins"): recompute on the aligned prefix alone.
        let prefix = series.slice(0, 3 * 120).unwrap();
        let aligned = camal.predict_status_series(&prefix, 120);
        assert_eq!(&status.states()[..3 * 120], aligned.states());
        // The tail decisions match localizing the end-aligned window.
        let tail_window = &series.values()[series.len() - 120..];
        let tail_out = camal.localize(tail_window);
        let suffix = &status.states()[3 * 120..];
        let expect: Vec<Status> = tail_out.status[120 - 50..]
            .iter()
            .map(|&s| if s == 1 { Status::On } else { Status::Off })
            .collect();
        assert_eq!(suffix, expect.as_slice());
    }

    #[test]
    #[should_panic(expected = "at least one labeled window")]
    fn empty_corpus_panics() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let mut corpus = Corpus::build(&ds, ApplianceKind::Kettle, 120);
        corpus.train.clear();
        let _ = train_camal(&corpus, &CamalConfig::fast_test());
    }

    #[test]
    fn empty_corpus_try_path_errors_instead() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let mut corpus = Corpus::build(&ds, ApplianceKind::Kettle, 120);
        corpus.train.clear();
        let err = try_train_camal(&corpus, &CamalConfig::fast_test()).unwrap_err();
        assert_eq!(err, CamalError::EmptyCorpus);
        assert!(err.to_string().contains("at least one labeled window"));
    }
}
