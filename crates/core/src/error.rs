//! Typed errors for the CamAL serving path.
//!
//! The historical entry points panic on misuse ("at least one labeled
//! window", "cannot localize an empty window", …). Panics are the right
//! call for programming errors in offline experiments, but a serving
//! process (the REPL, a future HTTP front end) must degrade, not abort —
//! a malformed request or an empty upload is routine traffic, not a bug.
//! Every panicking entry point therefore has a `try_` twin returning
//! [`CamalError`], and the panicking form delegates to it so the two can
//! never drift.

use std::fmt;

/// Why a CamAL training or inference call could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CamalError {
    /// Training was asked to run on a corpus with no labeled windows —
    /// e.g. every subsequence was dropped for missing data.
    EmptyCorpus,
    /// An inference call received a zero-length window.
    EmptyWindow,
    /// A batched inference call received windows of differing lengths.
    WindowLengthMismatch {
        /// Length of the first window (the batch's agreed length).
        expected: usize,
        /// The offending window's length.
        got: usize,
    },
    /// A series-level prediction was asked for with `window_samples == 0`.
    ZeroWindow,
    /// CAM extraction was requested before any forward pass ran.
    NoForwardPass,
    /// A streaming push started before the stream's write head — samples
    /// must arrive in timestamp order, on the stream's sample grid.
    OutOfOrderPush {
        /// Next timestamp the stream expects (its write head).
        expected: i64,
        /// The offending push's start timestamp.
        got: i64,
    },
    /// A streaming push arrived with a sampling interval different from
    /// the one the stream was opened with.
    IntervalMismatch {
        /// Sampling interval the stream was opened with, in seconds.
        expected: u32,
        /// The offending push's sampling interval, in seconds.
        got: u32,
    },
    /// A streaming push would grow the stream past its ring capacity.
    /// The stream is unchanged; retire completed windows or reset first.
    OverCapacity {
        /// Stream capacity in samples.
        capacity: usize,
        /// Stream length the rejected push would have produced.
        requested: usize,
    },
}

impl fmt::Display for CamalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CamalError::EmptyCorpus => {
                write!(f, "CamAL training requires at least one labeled window")
            }
            CamalError::EmptyWindow => write!(f, "cannot localize an empty window"),
            CamalError::WindowLengthMismatch { expected, got } => {
                write!(
                    f,
                    "windows must share one length (expected {expected}, got {got})"
                )
            }
            CamalError::ZeroWindow => {
                write!(f, "series prediction requires a positive window length")
            }
            CamalError::NoForwardPass => {
                write!(f, "CAM extraction requires a forward pass first")
            }
            CamalError::OutOfOrderPush { expected, got } => {
                write!(
                    f,
                    "streaming pushes must be timestamp-ordered on the sample grid \
                     (expected {expected}, got {got})"
                )
            }
            CamalError::IntervalMismatch { expected, got } => {
                write!(
                    f,
                    "streaming push interval mismatch (stream at {expected}s, push at {got}s)"
                )
            }
            CamalError::OverCapacity {
                capacity,
                requested,
            } => {
                write!(
                    f,
                    "streaming push overflows stream capacity: {requested} samples requested, \
                     capacity {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for CamalError {}

impl From<ds_neural::cam::NoForwardPass> for CamalError {
    fn from(_: ds_neural::cam::NoForwardPass) -> Self {
        CamalError::NoForwardPass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_match_the_historical_panics() {
        // The `try_` twins surface the same wording the panics used, so
        // log scrapers keyed on the old messages keep working.
        assert_eq!(
            CamalError::EmptyCorpus.to_string(),
            "CamAL training requires at least one labeled window"
        );
        assert_eq!(
            CamalError::EmptyWindow.to_string(),
            "cannot localize an empty window"
        );
        assert!(CamalError::WindowLengthMismatch {
            expected: 360,
            got: 17
        }
        .to_string()
        .contains("windows must share one length"));
    }

    #[test]
    fn neural_error_converts() {
        let e: CamalError = ds_neural::cam::NoForwardPass.into();
        assert_eq!(e, CamalError::NoForwardPass);
    }
}
