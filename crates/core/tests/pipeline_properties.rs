//! Property-based tests of the CamAL pipeline's structural invariants,
//! exercised through the public API with untrained (but deterministic)
//! ensembles — the invariants must hold for *any* weights.

use ds_camal::{Camal, CamalConfig, LocalizerConfig, ResNetEnsemble};
use proptest::prelude::*;

fn model(localizer: LocalizerConfig) -> Camal {
    let cfg = CamalConfig {
        localizer,
        ..CamalConfig::fast_test()
    };
    Camal::from_parts(ResNetEnsemble::untrained(&cfg), cfg)
}

fn window_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.0f32..10_000.0, 16..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn localization_shapes_and_bounds(window in window_strategy()) {
        let m = model(LocalizerConfig::default());
        let out = m.localize(&window);
        prop_assert_eq!(out.status.len(), window.len());
        prop_assert_eq!(out.cam.len(), window.len());
        prop_assert_eq!(out.attention.len(), window.len());
        // Normalized + averaged CAM stays in [0, 1].
        prop_assert!(out.cam.iter().all(|c| (0.0..=1.0).contains(c)));
        // Attention is a sigmoid output.
        prop_assert!(out.attention.iter().all(|s| (0.0..=1.0).contains(s)));
        prop_assert!(out.status.iter().all(|&s| s <= 1));
        prop_assert!((0.0..=1.0).contains(&out.detection.probability));
    }

    #[test]
    fn detection_gate_forces_all_off(window in window_strategy()) {
        let strict = model(LocalizerConfig {
            detection_threshold: 1.0, // nothing exceeds 1.0
            ..LocalizerConfig::default()
        });
        let out = strict.localize(&window);
        prop_assert!(!out.detection.detected);
        prop_assert!(out.status.iter().all(|&s| s == 0));
    }

    #[test]
    fn ungated_status_is_superset_of_gated(window in window_strategy()) {
        let gated = model(LocalizerConfig::default());
        let ungated = model(LocalizerConfig {
            gate_on_detection: false,
            ..LocalizerConfig::default()
        });
        let g = gated.localize(&window);
        let u = ungated.localize(&window);
        for (a, b) in g.status.iter().zip(&u.status) {
            prop_assert!(a <= b, "gating must only remove ON timesteps");
        }
    }

    #[test]
    fn cam_gate_only_removes_on_timesteps(window in window_strategy()) {
        let base = model(LocalizerConfig {
            gate_on_detection: false,
            ..LocalizerConfig::default()
        });
        let gated = model(LocalizerConfig {
            gate_on_detection: false,
            cam_gate: 0.5,
            ..LocalizerConfig::default()
        });
        let b = base.localize(&window);
        let g = gated.localize(&window);
        for (a, c) in g.status.iter().zip(&b.status) {
            prop_assert!(a <= c);
        }
    }

    #[test]
    fn detection_probability_is_member_mean(window in window_strategy()) {
        let m = model(LocalizerConfig::default());
        let d = m.detect(&window);
        let mean: f32 = d.member_probabilities.iter().map(|(_, p)| p).sum::<f32>()
            / d.member_probabilities.len() as f32;
        prop_assert!((d.probability - mean).abs() < 1e-5);
        prop_assert_eq!(d.member_probabilities.len(), m.ensemble().len());
    }

    #[test]
    fn scaling_input_changes_nothing(window in window_strategy(), scale in 0.5f32..20.0) {
        // z-normalization makes the pipeline scale-invariant.
        let m = model(LocalizerConfig::default());
        let scaled: Vec<f32> = window.iter().map(|v| v * scale).collect();
        let a = m.localize(&window);
        let b = m.localize(&scaled);
        prop_assert_eq!(a.status, b.status);
        prop_assert!((a.detection.probability - b.detection.probability).abs() < 1e-3);
    }
}
