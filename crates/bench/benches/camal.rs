//! Criterion benchmarks of the CamAL pipeline itself: ensemble inference,
//! CAM extraction, and full localization per window — the costs behind the
//! app's interactivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ds_camal::{Camal, CamalConfig, ResNetEnsemble};
use ds_neural::tensor::Tensor;
use std::hint::black_box;

fn pipeline_config(members: usize) -> CamalConfig {
    CamalConfig {
        kernel_sizes: [5usize, 7, 9, 15][..members].to_vec(),
        channels: vec![16, 32],
        ..CamalConfig::default()
    }
}

fn window(len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let base = 120.0 + 30.0 * ((i as f32) / 40.0).sin();
            if i % 97 < 4 {
                base + 2400.0
            } else {
                base
            }
        })
        .collect()
}

fn detection_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("camal_detect_6h_window");
    for members in [1usize, 2, 4] {
        let model = Camal::from_parts(
            ResNetEnsemble::untrained(&pipeline_config(members)),
            pipeline_config(members),
        );
        let w = window(360);
        group.bench_with_input(BenchmarkId::from_parameter(members), &members, |b, _| {
            b.iter(|| black_box(model.detect(black_box(&w))));
        });
    }
    group.finish();
}

fn localization_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("camal_localize");
    for len in [360usize, 720, 1440] {
        let cfg = pipeline_config(4);
        let model = Camal::from_parts(ResNetEnsemble::untrained(&cfg), cfg);
        let w = window(len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(model.localize(black_box(&w))));
        });
    }
    group.finish();
}

fn ensemble_batch_bench(c: &mut Criterion) {
    let cfg = pipeline_config(4);
    let ensemble = ResNetEnsemble::untrained(&cfg);
    let windows: Vec<Vec<f32>> = (0..8)
        .map(|i| {
            window(360)
                .into_iter()
                .map(|v| v + i as f32)
                .collect::<Vec<f32>>()
                .iter()
                .map(|v| (v - 150.0) / 400.0)
                .collect()
        })
        .collect();
    let x = Tensor::from_windows(&windows);
    c.bench_function("ensemble_predict_batch8_6h", |b| {
        b.iter(|| black_box(ensemble.predict(black_box(&x))));
    });
}

criterion_group!(
    benches,
    detection_bench,
    localization_bench,
    ensemble_batch_bench
);
criterion_main!(benches);
