//! Criterion microbenchmarks of the substrates: convolution (the hot path
//! of every model), batch-norm, windowing, resampling, and the household
//! simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ds_datasets::noise::NoiseModel;
use ds_datasets::{ApplianceKind, House, HouseConfig};
use ds_neural::batchnorm::BatchNorm1d;
use ds_neural::conv::Conv1d;
use ds_neural::tensor::Tensor;
use ds_timeseries::resample::{resample, DownsampleAgg, UpsampleFill};
use ds_timeseries::window::{subsequences_complete, WindowLength};
use ds_timeseries::TimeSeries;
use std::hint::black_box;

fn conv1d_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv1d_forward");
    // One paper-scale layer: 16->32 channels over a 6 h window.
    for &kernel in &[5usize, 9, 15] {
        let conv = Conv1d::new(16, 32, kernel, 1);
        let x = Tensor::from_data(
            1,
            16,
            360,
            (0..16 * 360).map(|i| (i % 97) as f32 * 0.01).collect(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(kernel), &kernel, |b, _| {
            b.iter(|| black_box(conv.infer(black_box(&x))));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("conv1d_backward");
    let mut conv = Conv1d::new(16, 16, 9, 1);
    let x = Tensor::from_data(
        4,
        16,
        360,
        (0..4 * 16 * 360).map(|i| (i % 89) as f32 * 0.01).collect(),
    );
    let y = conv.forward(&x, true);
    group.bench_function("k9_b4", |b| {
        b.iter(|| black_box(conv.backward(black_box(&y))));
    });
    group.finish();
}

fn batchnorm_bench(c: &mut Criterion) {
    let mut bn = BatchNorm1d::new(32);
    let x = Tensor::from_data(
        8,
        32,
        360,
        (0..8 * 32 * 360).map(|i| (i % 61) as f32 * 0.02).collect(),
    );
    c.bench_function("batchnorm_train_forward", |b| {
        b.iter(|| black_box(bn.forward(black_box(&x), true)));
    });
}

fn windowing_bench(c: &mut Criterion) {
    // 30 days of 1-minute readings with sparse gaps.
    let mut values: Vec<f32> = (0..30 * 1440).map(|i| (i % 500) as f32).collect();
    for i in (0..values.len()).step_by(977) {
        values[i] = f32::NAN;
    }
    let ts = TimeSeries::from_values(0, 60, values);
    c.bench_function("subsequences_complete_30d", |b| {
        b.iter(|| black_box(subsequences_complete(black_box(&ts), 360, 360).unwrap()));
    });
    c.bench_function("window_iter_30d", |b| {
        b.iter(|| {
            let n = ts.windows(WindowLength::SixHours).count();
            black_box(n)
        });
    });
}

fn resample_bench(c: &mut Criterion) {
    // One day at UK-DALE's native 6 s rate, to the paper's 1-minute rate.
    let values: Vec<f32> = (0..14_400).map(|i| (i % 300) as f32).collect();
    let ts = TimeSeries::from_values(0, 6, values);
    c.bench_function("resample_6s_to_1min_day", |b| {
        b.iter(|| {
            black_box(
                resample(
                    black_box(&ts),
                    60,
                    DownsampleAgg::Mean,
                    UpsampleFill::ForwardFill,
                )
                .unwrap(),
            )
        });
    });
}

fn simulator_bench(c: &mut Criterion) {
    c.bench_function("simulate_house_week", |b| {
        b.iter(|| {
            let config = HouseConfig {
                house_id: 1,
                start: 0,
                days: 7,
                interval_secs: 60,
                appliances: ApplianceKind::ALL.to_vec(),
                usage_scale: 1.0,
                noise: NoiseModel {
                    sigma_w: 8.0,
                    dropout_start_prob: 0.0005,
                    dropout_mean_len: 8.0,
                    quantize_w: 1.0,
                },
            };
            black_box(House::simulate(config, 42))
        });
    });
}

criterion_group!(
    benches,
    conv1d_bench,
    batchnorm_bench,
    windowing_bench,
    resample_bench,
    simulator_bench
);
criterion_main!(benches);
