//! Criterion wrappers around the ds-par perf workloads (`conv_throughput`,
//! `ensemble_predict`, `e2e_localize`), each measured on one worker and on
//! the configured team so the listing shows the parallel trend next to the
//! sequential baseline, plus `frozen_predict` comparing the mutable
//! ensemble path against the BN-folded frozen plan. The structured report
//! (throughput, speedup, bit-identity, decision flips, allocations per
//! window) comes from the `perf` binary; this harness exists for
//! iteration-level trend tracking.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ds_camal::localizer::localize_batch;
use ds_camal::{CamalConfig, LocalizerConfig, ResNetEnsemble};
use ds_neural::conv::Conv1d;
use ds_neural::tensor::Tensor;

/// Runs `f` once sequentially and once on the worker team, registering a
/// `<name>/seq` and `<name>/par` criterion entry.
fn seq_and_par(c: &mut Criterion, name: &str, mut f: impl FnMut()) {
    c.bench_function(&format!("{name}/seq"), |b| {
        ds_par::set_threads(Some(1));
        b.iter(&mut f);
        ds_par::set_threads(None);
    });
    c.bench_function(&format!("{name}/par"), |b| {
        b.iter(&mut f);
    });
}

fn conv_throughput(c: &mut Criterion) {
    let conv = Conv1d::new(8, 16, 9, 1);
    let x = Tensor::from_data(
        16,
        8,
        720,
        (0..16 * 8 * 720)
            .map(|i| ((i % 97) as f32 - 48.0) * 0.021)
            .collect(),
    );
    seq_and_par(c, "conv_throughput", || {
        black_box(conv.infer(black_box(&x)));
    });
}

fn ensemble_predict(c: &mut Criterion) {
    let cfg = CamalConfig {
        channels: vec![8, 16],
        ..CamalConfig::default()
    };
    let ensemble = ResNetEnsemble::untrained(&cfg);
    let x = Tensor::from_data(
        8,
        1,
        720,
        (0..8 * 720).map(|i| ((i % 131) as f32) * 13.7).collect(),
    );
    seq_and_par(c, "ensemble_predict", || {
        black_box(ensemble.predict(black_box(&x)));
    });
}

fn e2e_localize(c: &mut Criterion) {
    let cfg = CamalConfig {
        channels: vec![8, 16],
        ..CamalConfig::default()
    };
    let ensemble = ResNetEnsemble::untrained(&cfg);
    let loc_cfg = LocalizerConfig {
        gate_on_detection: false,
        ..LocalizerConfig::default()
    };
    let windows: Vec<Vec<f32>> = (0..24)
        .map(|w| {
            (0..360)
                .map(|i| ((w * 13 + i) % 29) as f32 * 55.0 + (i as f32 * 0.11).sin() * 20.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = windows.iter().map(|w| w.as_slice()).collect();
    seq_and_par(c, "e2e_localize", || {
        black_box(localize_batch(
            black_box(&ensemble),
            black_box(&refs),
            &loc_cfg,
        ));
    });
}

fn frozen_predict(c: &mut Criterion) {
    let cfg = CamalConfig {
        channels: vec![8, 16],
        ..CamalConfig::default()
    };
    let ensemble = ResNetEnsemble::untrained(&cfg);
    let x = Tensor::from_data(
        8,
        1,
        720,
        (0..8 * 720).map(|i| ((i % 131) as f32) * 13.7).collect(),
    );
    c.bench_function("frozen_predict/mutable", |b| {
        b.iter(|| black_box(ensemble.predict(black_box(&x))));
    });
    let mut frozen = ensemble.freeze();
    frozen.predict_into(&x); // size the arenas outside the timed region
    c.bench_function("frozen_predict/frozen", |b| {
        b.iter(|| frozen.predict_into(black_box(&x)));
    });
}

criterion_group!(
    benches,
    conv_throughput,
    ensemble_predict,
    e2e_localize,
    frozen_predict
);
criterion_main!(benches);
