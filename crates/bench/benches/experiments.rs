//! Criterion entries that exercise each paper experiment end-to-end at
//! test fidelity — one bench per figure/table, so `cargo bench` touches
//! every artifact of the reproduction (FIG3, TAB-BENCH, CLAIMS, ablations).

use criterion::{criterion_group, criterion_main, Criterion};
use ds_bench::experiments::{ablations, claims, fig3, table};
use ds_bench::methods::MethodName;
use ds_bench::SpeedPreset;
use ds_datasets::{ApplianceKind, DatasetPreset};
use std::hint::black_box;

fn fig3_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig3_label_efficiency_test_fidelity", |b| {
        b.iter(|| {
            let cfg = fig3::Fig3Config {
                preset: DatasetPreset::IdealLike,
                appliance: ApplianceKind::Dishwasher,
                budgets: vec![2],
                speed: SpeedPreset::Test,
            };
            black_box(fig3::run(&cfg))
        });
    });
    group.finish();
}

fn table_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("benchmark_table_cell_camal", |b| {
        b.iter(|| {
            let cfg = table::TableConfig {
                presets: vec![DatasetPreset::UkdaleLike],
                appliances: vec![ApplianceKind::Kettle],
                methods: vec![MethodName::Camal],
                speed: SpeedPreset::Test,
            };
            black_box(table::run(&cfg))
        });
    });
    group.finish();
}

fn claims_bench(c: &mut Criterion) {
    // Claims computation itself is pure arithmetic over a Fig3 result.
    let cfg = fig3::Fig3Config {
        preset: DatasetPreset::UkdaleLike,
        appliance: ApplianceKind::Kettle,
        budgets: vec![2],
        speed: SpeedPreset::Test,
    };
    let result = fig3::run(&cfg);
    c.bench_function("claims_compute", |b| {
        b.iter(|| black_box(claims::compute(black_box(&result))));
    });
}

fn ablations_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("ablation_variant_list", |b| {
        b.iter(|| black_box(ablations::variants(SpeedPreset::Test)));
    });
    group.finish();
}

criterion_group!(
    benches,
    fig3_bench,
    table_bench,
    claims_bench,
    ablations_bench
);
criterion_main!(benches);
