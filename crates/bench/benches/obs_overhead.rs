//! Measures the cost of ds-obs instrumentation around a conv1d forward
//! pass — the workspace's hot path — in three configurations:
//!
//! * `bare`: the uninstrumented loop;
//! * `instrumented_off`: span + counter + histogram call sites present
//!   but `DS_OBS=off`, i.e. the price every production call site pays;
//! * `instrumented_summary`: the same call sites fully recording.
//!
//! Besides the criterion listing, the harness asserts the disabled-mode
//! overhead stays under 2% (median over interleaved trials, with a small
//! absolute floor so sub-microsecond jitter cannot fail the build), and
//! that full event tracing (`DS_OBS=trace`: span begin/end into the
//! per-thread trace buffers plus allocation attribution) costs under 5%
//! on the frozen predict path — the latency-budgeted serving loop that
//! tracing exists to diagnose.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ds_neural::conv::Conv1d;
use ds_neural::tensor::Tensor;
use std::time::Instant;

fn workload() -> (Conv1d, Tensor) {
    let conv = Conv1d::new(8, 16, 9, 1);
    let windows: Vec<Vec<f32>> = (0..4)
        .map(|w| {
            (0..256)
                .map(|i| ((w * 31 + i * 7) % 97) as f32 * 0.01)
                .collect()
        })
        .collect();
    let x = Tensor::from_windows(&windows);
    // Widen to 8 input channels by stacking the window onto itself.
    let mut wide = Tensor::zeros(x.batch, 8, x.len);
    for b in 0..x.batch {
        for c in 0..8 {
            for t in 0..x.len {
                *wide.get_mut(b, c, t) = x.get(b, 0, t) * (c as f32 * 0.1 + 1.0);
            }
        }
    }
    (conv, wide)
}

fn bare_pass(conv: &Conv1d, x: &Tensor) -> f32 {
    let y = conv.infer(x);
    y.data[0]
}

fn instrumented_pass(conv: &Conv1d, x: &Tensor) -> f32 {
    let _span = ds_obs::span!("conv1d_fwd");
    ds_obs::counter_add("bench.conv_calls", 1);
    let y = conv.infer(x);
    ds_obs::observe(
        "bench.conv_out",
        y.data[0].clamp(0.0, 1.0) as f64,
        ds_obs::Buckets::Unit,
    );
    y.data[0]
}

/// Fastest observed ns/iteration of `f`, over `trials` batches of
/// `iters` calls. The minimum estimator matches the perf harness
/// (`crates/bench/src/perf.rs`): on a shared host every noise source
/// only *adds* time, so the fastest batch is the one closest to the
/// workload's intrinsic cost — medians made both overhead gates flaky
/// whenever a neighbour spiked mid-run.
fn best_ns(trials: usize, iters: usize, mut f: impl FnMut() -> f32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn overhead_bench(c: &mut Criterion) {
    let (conv, x) = workload();

    ds_obs::set_level(ds_obs::Level::Off);
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.bench_function("bare", |b| b.iter(|| bare_pass(&conv, black_box(&x))));
    group.bench_function("instrumented_off", |b| {
        b.iter(|| instrumented_pass(&conv, black_box(&x)))
    });
    ds_obs::set_level(ds_obs::Level::Summary);
    group.bench_function("instrumented_summary", |b| {
        b.iter(|| instrumented_pass(&conv, black_box(&x)))
    });
    group.finish();
    ds_obs::reset();
    ds_obs::set_level(ds_obs::Level::Off);
}

/// The acceptance gate: disabled-mode instrumentation must cost < 2%.
fn disabled_overhead_assertion(_c: &mut Criterion) {
    let (conv, x) = workload();
    ds_obs::set_level(ds_obs::Level::Off);
    // Pin to one worker: `conv.infer` otherwise spawns a scoped ds-par
    // team per call, and spawn-cost variance (~10% run to run) swamps
    // the 2% resolution this gate needs. The instrumentation being
    // measured is identical either way.
    ds_par::set_threads(Some(1));

    // Interleave the two measurements so frequency scaling and cache
    // state hit both sides equally; warm up once first.
    let _ = best_ns(3, 50, || bare_pass(&conv, &x));
    let mut bare_ns = f64::INFINITY;
    let mut inst_ns = f64::INFINITY;
    for _ in 0..5 {
        bare_ns = bare_ns.min(best_ns(3, 100, || bare_pass(&conv, &x)));
        inst_ns = inst_ns.min(best_ns(3, 100, || instrumented_pass(&conv, &x)));
    }
    ds_par::set_threads(None);
    let overhead = (inst_ns - bare_ns) / bare_ns;
    println!(
        "obs_overhead/disabled-gate: bare {bare_ns:.0} ns, instrumented-off {inst_ns:.0} ns, \
         overhead {:+.3}%",
        overhead * 100.0
    );
    // < 2% relative, with a 200 ns absolute floor so timer jitter on a
    // sub-microsecond kernel cannot produce a spurious failure.
    assert!(
        overhead < 0.02 || inst_ns - bare_ns < 200.0,
        "disabled-mode ds-obs overhead too high: bare {bare_ns:.0} ns vs instrumented {inst_ns:.0} ns"
    );
}

/// The trace-mode gate: full event tracing must cost < 5% on the frozen
/// predict path.
fn trace_overhead_assertion(_c: &mut Criterion) {
    use ds_camal::{CamalConfig, ResNetEnsemble};

    let cfg = CamalConfig {
        channels: vec![8, 16],
        ..CamalConfig::default()
    };
    let ensemble = ResNetEnsemble::untrained(&cfg);
    let windows: Vec<Vec<f32>> = (0..4)
        .map(|w| {
            (0..256)
                .map(|i| ((w * 13 + i) % 29) as f32 * 55.0)
                .collect()
        })
        .collect();
    let x = Tensor::from_windows(&windows);
    let mut frozen = ensemble.freeze();
    // The frozen path is sequential by design, but pin anyway so no
    // stray dispatch adds spawn noise (see the disabled gate).
    ds_par::set_threads(Some(1));

    let mut pass = move |level: ds_obs::Level| -> f64 {
        ds_obs::set_level(level);
        let _ = best_ns(3, 20, || {
            frozen.predict_into(&x);
            frozen.ensemble_probs()[0]
        });
        let ns = best_ns(5, 40, || {
            frozen.predict_into(&x);
            frozen.ensemble_probs()[0]
        });
        ds_obs::set_level(ds_obs::Level::Off);
        ns
    };

    // Interleave off/trace trials like the disabled gate. The trace
    // buffers absorb begin/end pairs each pass; reset between rounds so
    // a filling buffer (then drop-counting) doesn't change the code path
    // mid-measurement.
    let mut off_ns = f64::INFINITY;
    let mut trace_ns = f64::INFINITY;
    for _ in 0..5 {
        off_ns = off_ns.min(pass(ds_obs::Level::Off));
        trace_ns = trace_ns.min(pass(ds_obs::Level::Trace));
        ds_obs::reset();
    }
    ds_par::set_threads(None);
    let overhead = (trace_ns - off_ns) / off_ns;
    println!(
        "obs_overhead/trace-gate: off {off_ns:.0} ns, trace {trace_ns:.0} ns, \
         overhead {:+.3}%",
        overhead * 100.0
    );
    ds_obs::reset();
    ds_obs::set_level(ds_obs::Level::Off);
    // < 5% relative, with a 2 µs absolute floor: the frozen pass is tens
    // of microseconds, so clock jitter alone can fake a few percent.
    assert!(
        overhead < 0.05 || trace_ns - off_ns < 2_000.0,
        "trace-mode ds-obs overhead too high: off {off_ns:.0} ns vs trace {trace_ns:.0} ns"
    );
}

criterion_group!(
    benches,
    overhead_bench,
    disabled_overhead_assertion,
    trace_overhead_assertion
);
criterion_main!(benches);
