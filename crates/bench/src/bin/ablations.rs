//! Runs the CamAL design-choice ablations (`DESIGN.md` §5).
//!
//! ```text
//! ablations [--speed test|default|full] [--dataset <name>]
//!           [--appliance <name>] [--out ablations.json]
//! ```

use ds_bench::experiments::ablations;
use ds_bench::SpeedPreset;
use ds_datasets::{ApplianceKind, DatasetPreset};

fn main() {
    let mut speed = SpeedPreset::Default;
    let mut dataset = DatasetPreset::UkdaleLike;
    let mut appliance = ApplianceKind::Dishwasher;
    let mut out_path = String::from("ablations.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--speed" => {
                speed = args
                    .next()
                    .and_then(|s| SpeedPreset::parse(&s))
                    .unwrap_or(SpeedPreset::Default)
            }
            "--dataset" => {
                if let Some(d) = args.next().and_then(|s| DatasetPreset::parse(&s)) {
                    dataset = d;
                }
            }
            "--appliance" => {
                if let Some(a) = args.next().and_then(|s| ApplianceKind::parse(&s)) {
                    appliance = a;
                }
            }
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    if let Err(e) = ds_obs::init_sink("results/ablations_obs.jsonl") {
        eprintln!("cannot open event sink: {e}");
    }
    ds_obs::event!(
        "stage",
        name = "ablations",
        appliance = appliance.name(),
        dataset = dataset.name(),
        speed = format!("{speed:?}"),
    );
    let report = ablations::run(dataset, appliance, speed);
    print!("{}", ablations::render(&report));
    if let Err(e) = ds_bench::report::write_json(&report, &out_path) {
        eprintln!("failed to write {out_path}: {e}");
    } else {
        ds_obs::event!("report_written", path = out_path.as_str());
    }
    ds_obs::flush_sink();
    if ds_obs::enabled() {
        eprintln!("{}", ds_obs::render_summary());
    }
}
