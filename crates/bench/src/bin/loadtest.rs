//! Load harness for the ds-serve micro-batching server: simulates a
//! fleet of meters reporting at 30 s / 1 min / 10 min cadences over
//! closed-loop keep-alive connections, diffs every response against a
//! direct-call oracle, and probes the admission bound.
//!
//! ```text
//! loadtest [--smoke] [--out target/serve_load.json]
//!          [--requests N] [--meters N] [--window N] [--connections N]
//! ```
//!
//! Under `--smoke` the run enforces the CI gates and prints a
//! `serve smoke: PASS (...)` line for ci.sh to grep:
//!
//! - throughput ≥ 1000 req/s and p99 ≤ 50 ms on the smoke shape,
//! - zero decision flips against the direct-call oracle,
//! - zero non-200s in the main phase (admission never trips when the
//!   server is provisioned for the schedule),
//! - the overload probe sees both 503s (the queue bound works) and 200s
//!   (it only sheds the excess), then recovers,
//! - zero steady-state allocations inside batched kernels (asserted
//!   whenever ds-obs recording is off).

use ds_bench::perf::{trained_serving_model, PerfScale};
use ds_bench::serveload::{self, LoadConfig};

fn main() {
    ds_obs::install_panic_hook();
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut requests: Option<usize> = None;
    let mut meters: Option<usize> = None;
    let mut window: Option<usize> = None;
    let mut connections: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut usize_arg = |name: &str| match args.next().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("{name} wants a positive integer");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next(),
            "--requests" => requests = Some(usize_arg("--requests")),
            "--meters" => meters = Some(usize_arg("--meters")),
            "--window" => window = Some(usize_arg("--window")),
            "--connections" => connections = Some(usize_arg("--connections")),
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }

    let scale = if smoke {
        PerfScale::smoke()
    } else {
        PerfScale::full()
    };
    let mut config = LoadConfig::from_scale(scale);
    if let Some(n) = requests {
        config.requests = n;
    }
    if let Some(n) = meters {
        config.meters = n;
    }
    if let Some(n) = window {
        config.window = n;
    }
    if let Some(n) = connections {
        config.connections = n;
    }

    println!(
        "training serving model, then loading {} requests / {} meters / window {} over {} connection(s), {} worker(s)",
        config.requests, config.meters, config.window, config.connections, config.workers
    );
    let model = trained_serving_model(scale);
    let report = serveload::run(&config, &model);
    print!("{}", serveload::render(&report));

    if let Some(path) = &out_path {
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).ok();
        }
        ds_bench::report::write_json(&report, path)
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }

    if smoke {
        let mut failures: Vec<String> = Vec::new();
        let mut gate = |pass: bool, what: String| {
            if !pass {
                failures.push(what);
            }
        };
        gate(
            report.req_per_sec >= 1000.0,
            format!(
                "throughput {:.0} req/s below the 1000 req/s floor",
                report.req_per_sec
            ),
        );
        gate(
            report.p99_ms <= 50.0,
            format!("p99 {:.2} ms over the 50 ms SLO", report.p99_ms),
        );
        gate(
            report.flips == 0,
            format!("{} decision flips vs the direct-call oracle", report.flips),
        );
        gate(
            report.errors == 0,
            format!("{} non-200s in the main phase", report.errors),
        );
        gate(
            report.push_oks > 0,
            "streaming push smoke got no 200s".to_string(),
        );
        gate(
            report.overload_rejected > 0,
            "overload probe never tripped the queue bound".to_string(),
        );
        gate(
            report.overload_ok > 0,
            "overload probe starved every request".to_string(),
        );
        gate(
            report.recovered,
            "server did not recover after the overload burst".to_string(),
        );
        if !ds_obs::enabled() {
            gate(
                report.steady_allocs == 0,
                format!(
                    "{} steady-state allocations in batched kernels",
                    report.steady_allocs
                ),
            );
        }
        if failures.is_empty() {
            println!(
                "serve smoke: PASS ({:.0} req/s, p50 {:.2} ms, p99 {:.2} ms, {} flips, fill {:.2}, {} overload 503s)",
                report.req_per_sec,
                report.p50_ms,
                report.p99_ms,
                report.flips,
                report.mean_batch_fill,
                report.overload_rejected,
            );
        } else {
            for failure in &failures {
                eprintln!("serve smoke: FAIL — {failure}");
            }
            std::process::exit(1);
        }
    }
}
