//! Regenerates **Figure 3**: localization F1 vs number of training labels
//! (Dishwasher / IDEAL-like by default).
//!
//! ```text
//! fig3_label_efficiency [--speed test|default|full] [--appliance <name>]
//!                       [--dataset <name>] [--out fig3.json]
//! ```

use ds_bench::experiments::fig3::{self, Fig3Config};
use ds_bench::SpeedPreset;
use ds_datasets::{ApplianceKind, DatasetPreset};

fn main() {
    let mut speed = SpeedPreset::Default;
    let mut appliance = ApplianceKind::Dishwasher;
    let mut dataset = DatasetPreset::IdealLike;
    let mut out_path = String::from("fig3.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--speed" => {
                speed = args
                    .next()
                    .and_then(|s| SpeedPreset::parse(&s))
                    .unwrap_or(SpeedPreset::Default)
            }
            "--appliance" => {
                if let Some(a) = args.next().and_then(|s| ApplianceKind::parse(&s)) {
                    appliance = a;
                }
            }
            "--dataset" => {
                if let Some(d) = args.next().and_then(|s| DatasetPreset::parse(&s)) {
                    dataset = d;
                }
            }
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let cfg = Fig3Config {
        preset: dataset,
        appliance,
        ..Fig3Config::paper(speed)
    };
    if let Err(e) = ds_obs::init_sink("results/fig3_obs.jsonl") {
        eprintln!("cannot open event sink: {e}");
    }
    ds_obs::event!(
        "stage",
        name = "fig3_sweep",
        appliance = cfg.appliance.name(),
        dataset = cfg.preset.name(),
        speed = format!("{speed:?}"),
        budgets = format!("{:?}", cfg.budgets),
    );
    let result = fig3::run(&cfg);
    print!("{}", fig3::render(&result));
    if let Err(e) = ds_bench::report::write_json(&result, &out_path) {
        eprintln!("failed to write {out_path}: {e}");
    } else {
        ds_obs::event!("report_written", path = out_path.as_str());
    }
    ds_obs::flush_sink();
    if ds_obs::enabled() {
        eprintln!("{}", ds_obs::render_summary());
    }
}
