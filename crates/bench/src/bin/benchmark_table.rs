//! Regenerates the **benchmark frame grid** (§III / Figure 5-B.1):
//! detection + localization measures per dataset × appliance × method.
//! The JSON output feeds the DeviceScope app (`devicescope --bench`).
//!
//! ```text
//! benchmark_table [--speed test|default|full] [--dataset <name>]
//!                 [--full-grid] [--out benchmark_table.json]
//! ```
//!
//! By default one dataset (UKDALE-like) is run; `--full-grid` runs all
//! three presets (slower).

use ds_bench::experiments::table::{self, TableConfig};
use ds_bench::methods::MethodName;
use ds_bench::SpeedPreset;
use ds_datasets::{ApplianceKind, DatasetPreset};

fn main() {
    let mut speed = SpeedPreset::Default;
    let mut dataset = DatasetPreset::UkdaleLike;
    let mut full_grid = false;
    let mut appliances: Vec<ApplianceKind> = Vec::new();
    let mut methods: Vec<MethodName> = Vec::new();
    let mut out_path = String::from("benchmark_table.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--speed" => {
                speed = args
                    .next()
                    .and_then(|s| SpeedPreset::parse(&s))
                    .unwrap_or(SpeedPreset::Default)
            }
            "--dataset" => {
                if let Some(d) = args.next().and_then(|s| DatasetPreset::parse(&s)) {
                    dataset = d;
                }
            }
            "--appliance" => {
                if let Some(a) = args.next().and_then(|s| ApplianceKind::parse(&s)) {
                    appliances.push(a);
                }
            }
            "--method" => {
                if let Some(m) = args.next().and_then(|s| MethodName::parse(&s)) {
                    methods.push(m);
                }
            }
            "--full-grid" => full_grid = true,
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let mut cfg = if full_grid {
        TableConfig::paper(speed)
    } else {
        TableConfig::one_dataset(dataset, speed)
    };
    if !appliances.is_empty() {
        cfg.appliances = appliances;
    }
    if !methods.is_empty() {
        cfg.methods = methods;
    }
    if let Err(e) = ds_obs::init_sink("results/benchmark_table_obs.jsonl") {
        eprintln!("cannot open event sink: {e}");
    }
    ds_obs::event!(
        "stage",
        name = "benchmark_table",
        datasets = cfg.presets.len(),
        appliances = cfg.appliances.len(),
        methods = cfg.methods.len(),
        speed = format!("{speed:?}"),
    );
    let result = table::run(&cfg);
    print!("{}", table::render(&result));
    if let Err(e) = ds_bench::report::write_json(&result, &out_path) {
        eprintln!("failed to write {out_path}: {e}");
    } else {
        ds_obs::event!("report_written", path = out_path.as_str());
    }
    ds_obs::flush_sink();
    if ds_obs::enabled() {
        eprintln!("{}", ds_obs::render_summary());
    }
}
