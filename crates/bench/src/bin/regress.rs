//! Perf-regression sentinel CLI.
//!
//! ```text
//! regress --fresh target/ci_perf_smoke.json \
//!         [--baseline results/BENCH_perf.json] \
//!         [--out target/regress.json]
//! ```
//!
//! Judges a fresh perf report against the committed baseline with the
//! thresholds in [`ds_bench::regress`], prints the check table, writes
//! the machine-readable verdict JSON, and exits nonzero on regression —
//! so a plain `set -e` CI stage fails on any degraded case.

use ds_bench::perf::PerfReport;
use ds_bench::{regress, report};

fn load(path: &str, what: &str) -> PerfReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {what} report {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {what} report {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut baseline_path = String::from("results/BENCH_perf.json");
    let mut fresh_path: Option<String> = None;
    let mut out_path = String::from("target/regress.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next().unwrap_or(baseline_path),
            "--fresh" => fresh_path = args.next(),
            "--out" => out_path = args.next().unwrap_or(out_path),
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: regress --fresh <report.json> [--baseline <report.json>] [--out <verdict.json>]");
                std::process::exit(2);
            }
        }
    }
    let Some(fresh_path) = fresh_path else {
        eprintln!("regress needs --fresh <report.json> (a just-produced perf report)");
        std::process::exit(2);
    };

    let baseline = load(&baseline_path, "baseline");
    let fresh = load(&fresh_path, "fresh");
    let verdict = regress::judge(&baseline, &fresh);
    print!("{}", regress::render(&verdict));

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    report::write_json(&verdict, &out_path)
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
    if !verdict.pass {
        std::process::exit(1);
    }
}
