//! Checks the paper's §II-C headline claims (2.2× weak-baseline F1 ratio,
//! 5200× label ratio) against this reproduction's measurements.
//!
//! ```text
//! claims [--speed test|default|full] [--from fig3.json] [--out claims.json]
//! ```
//!
//! With `--from`, reuses a saved Figure 3 result instead of re-running the
//! sweep.

use ds_bench::experiments::{claims, fig3};
use ds_bench::SpeedPreset;

fn main() {
    let mut speed = SpeedPreset::Default;
    let mut from: Option<String> = None;
    let mut out_path = String::from("claims.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--speed" => {
                speed = args
                    .next()
                    .and_then(|s| SpeedPreset::parse(&s))
                    .unwrap_or(SpeedPreset::Default)
            }
            "--from" => from = args.next(),
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    if let Err(e) = ds_obs::init_sink("results/claims_obs.jsonl") {
        eprintln!("cannot open event sink: {e}");
    }
    {
        let _run = ds_obs::span!("claims");
        let result = match from {
            Some(path) => {
                let _stage = ds_obs::span!("load_fig3");
                ds_obs::event!("stage", name = "load_fig3", from = path.as_str());
                let json = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                serde_json::from_str(&json).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
            }
            None => {
                let cfg = fig3::Fig3Config::paper(speed);
                let _stage = ds_obs::span!("fig3_sweep");
                ds_obs::event!(
                    "stage",
                    name = "fig3_sweep",
                    appliance = cfg.appliance.name(),
                    dataset = cfg.preset.name(),
                );
                fig3::run(&cfg)
            }
        };
        let report = {
            let _stage = ds_obs::span!("compute");
            claims::compute(&result)
        };
        print!("{}", claims::render(&report));
        if let Err(e) = ds_bench::report::write_json(&report, &out_path) {
            eprintln!("failed to write {out_path}: {e}");
        } else {
            ds_obs::event!("report_written", path = out_path.as_str());
        }
    }
    ds_obs::flush_sink();
    if ds_obs::enabled() {
        eprintln!("{}", ds_obs::render_summary());
    }
}
