//! Performance baseline for the serving substrate: ds-par
//! sequential-vs-parallel cases plus frozen-vs-mutable inference cases.
//!
//! ```text
//! perf [--smoke] [--threads N[,N...]] [--out results/BENCH_perf.json]
//! ```
//!
//! Runs each workload (conv forward, ensemble prediction, end-to-end
//! localization, ensemble training, frozen predict, frozen localize,
//! streaming predict) once per requested worker-team size, asserts the
//! numeric contracts (bit-identity for parallel paths, 1e-4 probability
//! tolerance and zero decision flips for frozen paths, bitwise
//! streaming-vs-batch parity), and writes one sweep entry per
//! thread count. `--threads` defaults to the ambient `DS_PAR_THREADS`
//! resolution; `--smoke` shrinks the workloads for CI; `--trace-smoke`
//! shrinks them much further (numbers are meaningless) so a
//! `DS_OBS=trace` + `DS_TRACE=path.json` run finishes in seconds while
//! still exercising every span across the worker team. When `DS_TRACE`
//! is set the exported trace is re-parsed and structurally validated,
//! and a `trace ok: ...` line is printed for CI to grep.

use ds_bench::perf::{render, run_sweep, PerfScale};
use ds_bench::{faultsmoke, report};
use ds_timeseries::faults::FaultPlan;

fn main() {
    ds_obs::install_panic_hook();
    let mut smoke = false;
    let mut trace_smoke = false;
    let mut out_path = String::from("results/BENCH_perf.json");
    let mut thread_counts: Vec<usize> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--trace-smoke" => {
                smoke = true;
                trace_smoke = true;
            }
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            "--threads" => {
                let spec = args.next().unwrap_or_default();
                for part in spec.split(',').filter(|p| !p.is_empty()) {
                    match part.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => thread_counts.push(n),
                        _ => {
                            eprintln!("invalid --threads entry {part:?} (want N[,N...])");
                            std::process::exit(2);
                        }
                    }
                }
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    if thread_counts.is_empty() {
        thread_counts.push(ds_par::threads());
    }
    let scale = if trace_smoke {
        // Tiny: this configuration exists to produce a trace quickly,
        // not to publish numbers.
        PerfScale {
            batch: 8,
            window: 96,
            iters: 1,
        }
    } else if smoke {
        PerfScale::smoke()
    } else {
        PerfScale::full()
    };
    if let Err(e) = ds_obs::init_sink("results/perf_obs.jsonl") {
        eprintln!("cannot open event sink: {e}");
    }
    // Fault-injection smoke: when DS_FAULT is set, assert the degradation
    // contract (no panic, missing → Unknown, clean windows bit-identical)
    // before timing anything. A malformed spec is a loud startup error.
    match FaultPlan::from_env() {
        Ok(Some(plan)) => println!("{}", faultsmoke::run(&plan).render()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("invalid DS_FAULT: {e}");
            std::process::exit(2);
        }
    }
    // The SIMD dispatch decision, for the report header and for ci.sh to
    // grep (the frozen speedup floor is precision- and host-aware).
    println!("simd: {}", ds_neural::simd::label());
    let report = {
        let _run = ds_obs::span!("perf");
        run_sweep(scale, smoke, &thread_counts)
    };
    print!("{}", render(&report));
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    report::write_json(&report, &out_path)
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
    ds_obs::flush_sink();
    if ds_obs::enabled() {
        eprintln!("{}", ds_obs::render_summary());
    }
    if let Some((path, result)) = ds_obs::export_trace_from_env() {
        let stats = result.unwrap_or_else(|e| panic!("cannot write trace {}: {e}", path.display()));
        match ds_obs::validate_chrome_trace(&path) {
            Ok(check) => println!(
                "trace ok: {} events across {} threads (max depth {}, {} dropped) -> {}",
                check.events,
                check.threads,
                check.max_depth,
                stats.dropped_spans,
                path.display()
            ),
            Err(e) => {
                eprintln!("trace INVALID at {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
