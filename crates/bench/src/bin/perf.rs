//! Performance baseline for the serving substrate: ds-par
//! sequential-vs-parallel cases plus frozen-vs-mutable inference cases.
//!
//! ```text
//! perf [--smoke] [--threads N[,N...]] [--out results/BENCH_perf.json]
//! ```
//!
//! Runs each workload (conv forward, ensemble prediction, end-to-end
//! localization, ensemble training, frozen predict, frozen localize)
//! once per requested worker-team size, asserts the numeric contracts
//! (bit-identity for parallel paths, 1e-4 probability tolerance and zero
//! decision flips for frozen paths), and writes one sweep entry per
//! thread count. `--threads` defaults to the ambient `DS_PAR_THREADS`
//! resolution; `--smoke` shrinks the workloads for CI.

use ds_bench::perf::{render, run_sweep, PerfScale};
use ds_bench::{faultsmoke, report};
use ds_timeseries::faults::FaultPlan;

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("results/BENCH_perf.json");
    let mut thread_counts: Vec<usize> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            "--threads" => {
                let spec = args.next().unwrap_or_default();
                for part in spec.split(',').filter(|p| !p.is_empty()) {
                    match part.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => thread_counts.push(n),
                        _ => {
                            eprintln!("invalid --threads entry {part:?} (want N[,N...])");
                            std::process::exit(2);
                        }
                    }
                }
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    if thread_counts.is_empty() {
        thread_counts.push(ds_par::threads());
    }
    let scale = if smoke {
        PerfScale::smoke()
    } else {
        PerfScale::full()
    };
    if let Err(e) = ds_obs::init_sink("results/perf_obs.jsonl") {
        eprintln!("cannot open event sink: {e}");
    }
    // Fault-injection smoke: when DS_FAULT is set, assert the degradation
    // contract (no panic, missing → Unknown, clean windows bit-identical)
    // before timing anything. A malformed spec is a loud startup error.
    match FaultPlan::from_env() {
        Ok(Some(plan)) => println!("{}", faultsmoke::run(&plan).render()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("invalid DS_FAULT: {e}");
            std::process::exit(2);
        }
    }
    let report = {
        let _run = ds_obs::span!("perf");
        run_sweep(scale, smoke, &thread_counts)
    };
    print!("{}", render(&report));
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    report::write_json(&report, &out_path)
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
    ds_obs::flush_sink();
    if ds_obs::enabled() {
        eprintln!("{}", ds_obs::render_summary());
    }
}
