//! Sequential-vs-parallel performance baseline for the ds-par substrate.
//!
//! ```text
//! perf [--smoke] [--out results/BENCH_perf.json]
//! ```
//!
//! Runs each workload (conv forward, ensemble prediction, end-to-end
//! localization) on one worker and on the configured team
//! (`DS_PAR_THREADS`), asserts the outputs are bit-identical, and writes
//! throughput + speedup numbers. `--smoke` shrinks the workloads for CI.

use ds_bench::perf::{render, run_suite, PerfScale};
use ds_bench::report;

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("results/BENCH_perf.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let scale = if smoke {
        PerfScale::smoke()
    } else {
        PerfScale::full()
    };
    if let Err(e) = ds_obs::init_sink("results/perf_obs.jsonl") {
        eprintln!("cannot open event sink: {e}");
    }
    let report = {
        let _run = ds_obs::span!("perf");
        run_suite(scale, smoke)
    };
    print!("{}", render(&report));
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    report::write_json(&report, &out_path)
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");
    ds_obs::flush_sink();
    if ds_obs::enabled() {
        eprintln!("{}", ds_obs::render_summary());
    }
}
