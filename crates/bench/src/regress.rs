//! Perf-regression sentinel: diffs a fresh perf run against the
//! committed `results/BENCH_perf.json` baseline and renders a
//! machine-readable verdict.
//!
//! The perf suite's numbers gate real guarantees — the frozen plan's
//! speedup over the mutable path, its zero-alloc steady state, and
//! decision identity — but a one-shot CI grep only catches the cases it
//! names. The sentinel instead walks every `(thread count, case)` pair
//! present in **both** reports and applies per-case thresholds:
//!
//! - **Correctness is absolute**: `bit_identical` must hold and
//!   `decision_flips` must be zero in the fresh run, full stop.
//! - **Frozen cases** (`frozen_conv`, `frozen_predict`,
//!   `frozen_localize`) carry an *absolute* speedup floor — the frozen
//!   plan being meaningfully faster than the mutable path is a published
//!   claim, not a relative trend — plus a relative floor against the
//!   baseline, and an absolute allocs-per-window ceiling
//!   ([`FROZEN_ALLOCS_CEILING`]) backing the zero-alloc contract. The
//!   absolute floor is **host-aware**: [`FROZEN_SPEEDUP_FLOOR_SIMD`] on
//!   hosts whose fresh run dispatched the AVX2 kernels, the pre-SIMD
//!   [`FROZEN_SPEEDUP_FLOOR_SCALAR`] otherwise (scalar hosts and
//!   `DS_SIMD=off` twin runs), keyed on the report's `simd` label.
//! - **Quantized cases** (`quantized_predict`) are judged separately
//!   from the f32 frozen cases: int8 trades raw speed for footprint and
//!   integer determinism, so its floors ([`QUANT_SPEEDUP_FLOOR_SIMD`] /
//!   [`QUANT_SPEEDUP_FLOOR_SCALAR`]) sit below the f32 ones while its
//!   zero-alloc and zero-flip contracts stay just as absolute.
//! - **Streaming cases** (`streaming_predict`) gate the incremental
//!   inference contract: the ring-buffer engine's amortized cost per
//!   push must sit well below a full prefix recompute, so they carry
//!   their own absolute floors ([`STREAMING_SPEEDUP_FLOOR_SIMD`] /
//!   [`STREAMING_SPEEDUP_FLOOR_SCALAR`] — the speedup is mostly
//!   work-proportional, so the scalar floor stays high) plus the frozen
//!   relative floor and the frozen allocation ceiling. A fresh report
//!   with **no** `streaming_predict` case at all fails outright, even
//!   against a pre-streaming baseline — the streaming path losing its
//!   perf coverage must never read as a pass.
//! - **Serving cases** (`serve_throughput`) compare the micro-batching
//!   HTTP server against direct in-process calls over the same request
//!   sequence, so parity-ish speedups are the expected shape: the
//!   absolute floor ([`SERVE_SPEEDUP_FLOOR`]) only rejects a collapse,
//!   the zero-alloc ceiling applies to the server's in-kernel
//!   allocation counter, and a fifth check holds the recorded p99
//!   against the published 50 ms SLO ([`SERVE_P99_SLO_MS`]). Like the
//!   streaming case, a fresh run missing `serve_throughput` fails
//!   outright.
//! - **Backbone-zoo cases** (`backbone_inception`, `backbone_transapp`)
//!   run the frozen-vs-mutable localization contract on the non-ResNet
//!   architectures. Their absolute floor ([`BACKBONE_SPEEDUP_FLOOR`]) is
//!   dispatch-independent — the frozen win they gate is folding and
//!   arena reuse, not the ResNet conv stack's SIMD margin — and, like
//!   the streaming and serving cases, a fresh run missing either zoo
//!   case fails outright.
//! - Relative floors only apply when the fresh run and the baseline were
//!   measured under the same SIMD dispatch — comparing a scalar twin run
//!   against a vectorized baseline ratio would fail every case for the
//!   wrong reason.
//! - **Flat cases** (conv/ensemble/e2e/train, whose parallel speedups
//!   hover near 1.0×) get a relative floor only
//!   ([`RELATIVE_SPEEDUP_FLOOR`] × baseline): they may drift with the
//!   host, but a collapse against the committed numbers is a regression.
//!   Their allocation ceiling is relative with an absolute grace
//!   ([`ALLOCS_RELATIVE_CEILING`], [`ALLOCS_ABSOLUTE_GRACE`]) since
//!   small counts are noisy.
//!
//! A case present in the baseline but missing from the fresh run fails
//! (silent coverage loss reads as a pass otherwise); thread counts only
//! in one report are skipped with a note (the CI smoke runs one sweep
//! against a two-sweep baseline by design). The thresholds are loose
//! enough that re-judging the committed baseline against itself passes —
//! that self-check is a unit test below.

use serde::Serialize;

use crate::perf::{PerfCase, PerfReport};

/// Absolute f32 frozen speedup floor on hosts where the fresh run
/// dispatched the AVX2 kernels. The committed vectorized baseline
/// measures 5.3–6.4× across the frozen cases; 3.0× is the published
/// serving-path claim with room for slower AVX2 hosts.
pub const FROZEN_SPEEDUP_FLOOR_SIMD: f64 = 3.0;

/// Absolute f32 frozen speedup floor on scalar dispatch (no AVX2, or a
/// `DS_SIMD=off` determinism-twin run): the pre-SIMD contract — the
/// frozen plan's fold/fuse/arena advantage alone must not collapse
/// toward parity.
pub const FROZEN_SPEEDUP_FLOOR_SCALAR: f64 = 1.10;

/// Absolute int8 quantized speedup floor under AVX2 dispatch. The int8
/// path re-quantizes activations per conv and AVX2 lacks VNNI-class
/// integer-dot throughput, so it trails the f32 SIMD kernels (baseline
/// ~2.5×); its value is footprint and integer determinism, and the
/// floor only demands it stays clearly ahead of the mutable path.
pub const QUANT_SPEEDUP_FLOOR_SIMD: f64 = 1.5;

/// Absolute int8 quantized floor on scalar dispatch: scalar i32
/// multiply-accumulate has no hardware advantage over scalar f32 FMA
/// and still pays per-conv activation re-quantization (measured ~0.32×
/// on the reference container), so only a collapse well below that
/// fails.
pub const QUANT_SPEEDUP_FLOOR_SCALAR: f64 = 0.2;

/// Frozen cases must also hold this fraction of their baseline speedup
/// (only when baseline and fresh ran under the same SIMD dispatch).
/// Looser than the pre-SIMD 0.85: at 5–6× the absolute floor carries
/// the contract and run-to-run variance is proportionally larger.
pub const FROZEN_RELATIVE_FLOOR: f64 = 0.70;

/// Quantized analogue of [`FROZEN_RELATIVE_FLOOR`].
pub const QUANT_RELATIVE_FLOOR: f64 = 0.70;

/// Absolute allocs-per-window ceiling for frozen and quantized cases
/// (baseline is 0.0; the margin absorbs one-off warmup traffic landing
/// inside a short timed region).
pub const FROZEN_ALLOCS_CEILING: f64 = 0.5;

/// Flat cases must hold this fraction of their baseline speedup.
pub const RELATIVE_SPEEDUP_FLOOR: f64 = 0.70;

/// Flat-case allocation ceiling: `baseline × this`, …
pub const ALLOCS_RELATIVE_CEILING: f64 = 1.5;

/// … but never tighter than `baseline + this` (small counts are noisy).
pub const ALLOCS_ABSOLUTE_GRACE: f64 = 4.0;

fn is_frozen_case(name: &str) -> bool {
    name.starts_with("frozen_")
}

/// `frozen_conv` compares the scalar twin against the *dispatched*
/// kernel on the same folded conv — under scalar dispatch both sides
/// run identical code, so its speedup is parity by construction and the
/// plan-vs-mutable frozen floors don't apply.
fn is_kernel_dispatch_case(name: &str) -> bool {
    name == "frozen_conv"
}

/// Scalar floor for [`is_kernel_dispatch_case`] cases: twin-vs-twin must
/// sit at parity; anything far below means the dispatch override leaked.
pub const KERNEL_DISPATCH_FLOOR_SCALAR: f64 = 0.8;

fn is_quant_case(name: &str) -> bool {
    name.starts_with("quantized_")
}

fn is_streaming_case(name: &str) -> bool {
    name.starts_with("streaming_")
}

/// Backbone-zoo cases (`backbone_inception`, `backbone_transapp`):
/// frozen-vs-mutable localization like `frozen_localize`, but on
/// non-ResNet architectures. They deliberately do NOT ride the
/// `frozen_*` floors: [`FROZEN_SPEEDUP_FLOOR_SIMD`] calibrates to the
/// ResNet conv stack, and an attention-heavy backbone's frozen win is
/// dominated by fold/arena savings, not vectorized convs.
fn is_backbone_case(name: &str) -> bool {
    name.starts_with("backbone_")
}

/// Absolute speedup floor for backbone-zoo cases under either dispatch:
/// the frozen plan must not fall materially behind the mutable path.
/// No conv-specific SIMD margin is assumed, and the floor sits below
/// parity because the TransApp frozen win is thin (attention dominates
/// and is not conv-folded; measured ~1.07x) — the gate exists to catch a
/// frozen path that regresses to *slower* than mutable, with the
/// relative-to-baseline floor tightening it when history is better.
pub const BACKBONE_SPEEDUP_FLOOR: f64 = 0.90;

fn is_serve_case(name: &str) -> bool {
    name.starts_with("serve_")
}

/// Absolute floor for the `serve_throughput` speedup (direct sequential
/// in-process calls vs the full micro-batching HTTP server over the same
/// request sequence). Parity-ish values are the expected shape — the
/// served path pays HTTP framing and JSON on every request and wins some
/// back through cross-request batching — so the floor only rejects a
/// collapse where serving costs several times the bare compute. Both
/// sides run the same kernels, so no SIMD split.
pub const SERVE_SPEEDUP_FLOOR: f64 = 0.4;

/// Published serving latency SLO: p99 at or under 50 ms on the smoke
/// shape. Enforced whenever the fresh run recorded serving stats.
pub const SERVE_P99_SLO_MS: f64 = 50.0;

/// Absolute streaming speedup floor under AVX2 dispatch: the published
/// claim is ≥ 5× amortized vs per-push full recompute at ≥ 75 % overlap
/// (the committed baseline measures well above this — the advantage is
/// work-proportional, roughly the ratio of recomputed to reused window
/// evaluations).
pub const STREAMING_SPEEDUP_FLOOR_SIMD: f64 = 5.0;

/// Scalar-dispatch streaming floor. Unlike the frozen plan's SIMD
/// margin, the streaming advantage is *work avoided*, not instructions
/// vectorized, so it survives `DS_SIMD=off` nearly intact.
pub const STREAMING_SPEEDUP_FLOOR_SCALAR: f64 = 3.0;

/// Threshold policy resolved once per `judge` call from the two reports'
/// SIMD labels.
struct FloorPolicy {
    /// Fresh run dispatched the vectorized kernels.
    fresh_simd: bool,
    /// Baseline and fresh ran under the same dispatch, so baseline
    /// ratios are comparable and relative floors apply.
    relative_comparable: bool,
}

impl FloorPolicy {
    fn frozen_floor(&self) -> f64 {
        if self.fresh_simd {
            FROZEN_SPEEDUP_FLOOR_SIMD
        } else {
            FROZEN_SPEEDUP_FLOOR_SCALAR
        }
    }

    fn quant_floor(&self) -> f64 {
        if self.fresh_simd {
            QUANT_SPEEDUP_FLOOR_SIMD
        } else {
            QUANT_SPEEDUP_FLOOR_SCALAR
        }
    }

    fn streaming_floor(&self) -> f64 {
        if self.fresh_simd {
            STREAMING_SPEEDUP_FLOOR_SIMD
        } else {
            STREAMING_SPEEDUP_FLOOR_SCALAR
        }
    }
}

/// One threshold evaluation on one `(threads, case)` pair.
#[derive(Debug, Clone, Serialize)]
pub struct RegressCheck {
    /// Worker-team size of the compared sweeps.
    pub threads: usize,
    /// Case name.
    pub case: String,
    /// Which threshold this row applied.
    pub check: String,
    /// Baseline value the threshold was derived from.
    pub baseline: f64,
    /// Fresh-run value under test.
    pub fresh: f64,
    /// The derived limit the fresh value was held to.
    pub limit: f64,
    pub pass: bool,
}

/// The sentinel's full verdict, serialized for CI and humans alike.
#[derive(Debug, Clone, Serialize)]
pub struct RegressVerdict {
    /// True iff every check passed.
    pub pass: bool,
    /// `(threads, case)` pairs compared.
    pub compared: usize,
    /// Every threshold evaluation, failures included.
    pub checks: Vec<RegressCheck>,
    /// Coverage notes: skipped thread counts, missing cases.
    pub notes: Vec<String>,
}

/// Accumulates checks for one `(threads, case)` pair.
struct CaseChecks<'a> {
    checks: &'a mut Vec<RegressCheck>,
    threads: usize,
    case: &'a str,
}

impl CaseChecks<'_> {
    fn push(&mut self, check: &str, baseline: f64, fresh: f64, limit: f64, pass: bool) {
        self.checks.push(RegressCheck {
            threads: self.threads,
            case: self.case.to_string(),
            check: check.to_string(),
            baseline,
            fresh,
            limit,
            pass,
        });
    }
}

fn judge_case(
    threads: usize,
    base: &PerfCase,
    fresh: &PerfCase,
    policy: &FloorPolicy,
    checks: &mut Vec<RegressCheck>,
) {
    let name = &base.name;
    let mut out = CaseChecks {
        checks,
        threads,
        case: name,
    };

    // Correctness: absolute, regardless of baseline.
    out.push(
        "bit_identical",
        1.0,
        if fresh.bit_identical { 1.0 } else { 0.0 },
        1.0,
        fresh.bit_identical,
    );
    out.push(
        "decision_flips == 0",
        base.decision_flips as f64,
        fresh.decision_flips as f64,
        0.0,
        fresh.decision_flips == 0,
    );

    // Speedup floor: absolute component keyed on the fresh run's SIMD
    // dispatch, relative component only when the baseline ratio is
    // comparable (same dispatch on both sides).
    let relative = |fraction: f64| {
        if policy.relative_comparable {
            base.speedup * fraction
        } else {
            0.0
        }
    };
    let floor = if is_quant_case(name) {
        policy.quant_floor().max(relative(QUANT_RELATIVE_FLOOR))
    } else if is_kernel_dispatch_case(name) {
        if policy.fresh_simd {
            FROZEN_SPEEDUP_FLOOR_SIMD.max(relative(FROZEN_RELATIVE_FLOOR))
        } else {
            KERNEL_DISPATCH_FLOOR_SCALAR
        }
    } else if is_streaming_case(name) {
        policy
            .streaming_floor()
            .max(relative(FROZEN_RELATIVE_FLOOR))
    } else if is_serve_case(name) {
        SERVE_SPEEDUP_FLOOR.max(relative(RELATIVE_SPEEDUP_FLOOR))
    } else if is_backbone_case(name) {
        BACKBONE_SPEEDUP_FLOOR.max(relative(FROZEN_RELATIVE_FLOOR))
    } else if is_frozen_case(name) {
        policy.frozen_floor().max(relative(FROZEN_RELATIVE_FLOOR))
    } else {
        relative(RELATIVE_SPEEDUP_FLOOR)
    };
    out.push(
        "speedup floor",
        base.speedup,
        fresh.speedup,
        floor,
        fresh.speedup >= floor,
    );

    // Allocation ceiling. Quantized serving shares the frozen plan's
    // zero-alloc contract: the arena (qbuf included) is preallocated.
    // The HTTP serving case reports allocations *inside batched kernel
    // calls* per request, so it inherits the same contract.
    let ceiling = if is_frozen_case(name)
        || is_quant_case(name)
        || is_streaming_case(name)
        || is_serve_case(name)
        || is_backbone_case(name)
    {
        FROZEN_ALLOCS_CEILING
    } else {
        (base.allocs_per_window * ALLOCS_RELATIVE_CEILING)
            .max(base.allocs_per_window + ALLOCS_ABSOLUTE_GRACE)
    };
    out.push(
        "allocs ceiling",
        base.allocs_per_window,
        fresh.allocs_per_window,
        ceiling,
        fresh.allocs_per_window <= ceiling,
    );

    // Serving cases additionally carry the latency SLO whenever the
    // fresh run recorded serving stats (older reports have none).
    if is_serve_case(name) {
        if let Some(serve) = &fresh.serve {
            out.push(
                "p99 within SLO",
                base.serve.as_ref().map_or(0.0, |s| s.p99_ms),
                serve.p99_ms,
                SERVE_P99_SLO_MS,
                serve.p99_ms <= SERVE_P99_SLO_MS,
            );
        }
    }
}

/// Judge `fresh` against `baseline`. Sweeps pair by thread count; cases
/// pair by name within a paired sweep. See the module docs for the
/// threshold policy.
pub fn judge(baseline: &PerfReport, fresh: &PerfReport) -> RegressVerdict {
    let mut checks = Vec::new();
    let mut notes = Vec::new();
    let mut compared = 0usize;

    let policy = FloorPolicy {
        fresh_simd: fresh.simd == "avx2",
        relative_comparable: fresh.simd == baseline.simd,
    };
    if !policy.relative_comparable {
        notes.push(format!(
            "simd dispatch differs (baseline {:?}, fresh {:?}); absolute floors only",
            baseline.simd, fresh.simd
        ));
    }
    if fresh.host_cores > 0 {
        notes.push(format!(
            "fresh run host: {} core(s), ds-par team {}, simd {:?}",
            fresh.host_cores, fresh.par_threads, fresh.simd
        ));
    }

    for base_sweep in &baseline.sweeps {
        let Some(fresh_sweep) = fresh
            .sweeps
            .iter()
            .find(|s| s.threads == base_sweep.threads)
        else {
            notes.push(format!(
                "baseline sweep at {} thread(s) not present in fresh run; skipped",
                base_sweep.threads
            ));
            continue;
        };
        for base_case in &base_sweep.cases {
            match fresh_sweep.cases.iter().find(|c| c.name == base_case.name) {
                Some(fresh_case) => {
                    compared += 1;
                    judge_case(
                        base_sweep.threads,
                        base_case,
                        fresh_case,
                        &policy,
                        &mut checks,
                    );
                }
                None => {
                    // Coverage loss is a failure, not a note: a vanished
                    // case must not read as "no regression".
                    CaseChecks {
                        checks: &mut checks,
                        threads: base_sweep.threads,
                        case: &base_case.name,
                    }
                    .push("case present in fresh run", 1.0, 0.0, 1.0, false);
                }
            }
        }
    }
    for fresh_sweep in &fresh.sweeps {
        if !baseline
            .sweeps
            .iter()
            .any(|s| s.threads == fresh_sweep.threads)
        {
            notes.push(format!(
                "fresh sweep at {} thread(s) has no baseline; skipped",
                fresh_sweep.threads
            ));
        }
    }
    if compared == 0 {
        notes.push("no (threads, case) pair present in both reports".to_string());
    }
    // The streaming perf case is load-bearing coverage: its absence from
    // the fresh run fails even when the baseline predates it (the
    // missing-case rule above only catches cases the baseline names).
    if !fresh
        .sweeps
        .iter()
        .any(|s| s.cases.iter().any(|c| c.name == "streaming_predict"))
    {
        CaseChecks {
            checks: &mut checks,
            threads: fresh.sweeps.first().map_or(0, |s| s.threads),
            case: "streaming_predict",
        }
        .push("streaming case present in fresh run", 1.0, 0.0, 1.0, false);
    }
    // Same for the HTTP serving case: losing the serve_throughput
    // measurement (and with it the flip-oracle and SLO gates) must never
    // read as a pass.
    if !fresh
        .sweeps
        .iter()
        .any(|s| s.cases.iter().any(|c| c.name == "serve_throughput"))
    {
        CaseChecks {
            checks: &mut checks,
            threads: fresh.sweeps.first().map_or(0, |s| s.threads),
            case: "serve_throughput",
        }
        .push("serve case present in fresh run", 1.0, 0.0, 1.0, false);
    }
    // And the backbone zoo: every non-ResNet backbone keeps its
    // frozen-parity perf coverage even against a pre-zoo baseline.
    for required in ["backbone_inception", "backbone_transapp"] {
        if !fresh
            .sweeps
            .iter()
            .any(|s| s.cases.iter().any(|c| c.name == required))
        {
            CaseChecks {
                checks: &mut checks,
                threads: fresh.sweeps.first().map_or(0, |s| s.threads),
                case: required,
            }
            .push("backbone case present in fresh run", 1.0, 0.0, 1.0, false);
        }
    }

    RegressVerdict {
        // Zero overlap is a failure: an incomparable run proves nothing.
        pass: compared > 0 && checks.iter().all(|c| c.pass),
        compared,
        checks,
        notes,
    }
}

/// Render a verdict as an aligned text table (failures and passes).
pub fn render(verdict: &RegressVerdict) -> String {
    let mut out = String::new();
    let rows: Vec<Vec<String>> = verdict
        .checks
        .iter()
        .map(|c| {
            vec![
                if c.pass { "ok" } else { "FAIL" }.to_string(),
                format!("{}", c.threads),
                c.case.clone(),
                c.check.clone(),
                format!("{:.3}", c.baseline),
                format!("{:.3}", c.fresh),
                format!("{:.3}", c.limit),
            ]
        })
        .collect();
    out.push_str(&crate::report::text_table(
        &[
            "status", "threads", "case", "check", "baseline", "fresh", "limit",
        ],
        &rows,
    ));
    for note in &verdict.notes {
        out.push_str(&format!("note: {note}\n"));
    }
    out.push_str(&format!(
        "regress verdict: {} ({} case pairings, {} checks)\n",
        if verdict.pass { "PASS" } else { "FAIL" },
        verdict.compared,
        verdict.checks.len(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> PerfReport {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_perf.json"
        ))
        .expect("committed baseline exists");
        serde_json::from_str(&text).expect("committed baseline parses")
    }

    #[test]
    fn committed_baseline_self_passes() {
        let report = baseline();
        assert!(!report.sweeps.is_empty());
        let verdict = judge(&report, &report);
        assert!(
            verdict.pass,
            "baseline must pass against itself:\n{}",
            render(&verdict)
        );
        // Every sweep × case compared, 4 checks each, plus the p99 SLO
        // check on every serve case that recorded stats.
        let cases: usize = report.sweeps.iter().map(|s| s.cases.len()).sum();
        let serve_stats: usize = report
            .sweeps
            .iter()
            .flat_map(|s| &s.cases)
            .filter(|c| c.serve.is_some())
            .count();
        assert!(serve_stats > 0, "committed baseline must carry serve stats");
        assert_eq!(verdict.compared, cases);
        assert_eq!(verdict.checks.len(), cases * 4 + serve_stats);
    }

    #[test]
    fn degraded_frozen_speedup_fails() {
        let report = baseline();
        let mut fresh = report.clone();
        for sweep in &mut fresh.sweeps {
            for case in &mut sweep.cases {
                if case.name == "frozen_predict" {
                    case.speedup = 1.0; // advantage collapsed to parity
                }
            }
        }
        let verdict = judge(&report, &fresh);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.case == "frozen_predict" && c.check == "speedup floor"));
        // Unrelated cases stay green.
        assert!(verdict
            .checks
            .iter()
            .filter(|c| c.case == "conv_forward")
            .all(|c| c.pass));
        assert!(render(&verdict).contains("FAIL"));
    }

    #[test]
    fn frozen_allocations_fail_the_zero_alloc_contract() {
        let report = baseline();
        let mut fresh = report.clone();
        for sweep in &mut fresh.sweeps {
            for case in &mut sweep.cases {
                if case.name == "frozen_localize" {
                    case.allocs_per_window = 3.0;
                }
            }
        }
        let verdict = judge(&report, &fresh);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.case == "frozen_localize" && c.check == "allocs ceiling"));
    }

    #[test]
    fn decision_flips_fail_absolutely() {
        let report = baseline();
        let mut fresh = report.clone();
        fresh.sweeps[0].cases[0].decision_flips = 1;
        fresh.sweeps[0].cases[0].bit_identical = false;
        let verdict = judge(&report, &fresh);
        assert!(!verdict.pass);
    }

    fn synthetic_case(name: &str, speedup: f64) -> PerfCase {
        PerfCase {
            name: name.to_string(),
            elements_per_iter: 1000,
            iters: 5,
            seq_secs: 1.0,
            par_secs: 1.0 / speedup,
            seq_elements_per_sec: 1000.0,
            par_elements_per_sec: 1000.0 * speedup,
            speedup,
            bit_identical: true,
            decision_flips: 0,
            allocs_per_window: 0.0,
            serve: None,
        }
    }

    fn synthetic_serve_case(speedup: f64, p99_ms: f64) -> PerfCase {
        let mut case = synthetic_case("serve_throughput", speedup);
        case.serve = Some(crate::perf::ServeStats {
            req_per_sec: 2000.0,
            p50_ms: 4.0,
            p99_ms,
            mean_batch_fill: 0.5,
            errors: 0,
        });
        case
    }

    fn synthetic_report(simd: &str, mut cases: Vec<PerfCase>) -> PerfReport {
        // Every synthetic report carries healthy backbone-zoo cases unless
        // the test supplies (or strips) its own — the presence gate has a
        // dedicated test below.
        for name in ["backbone_inception", "backbone_transapp"] {
            if !cases.iter().any(|c| c.name == name) {
                cases.push(synthetic_case(name, 2.0));
            }
        }
        PerfReport {
            smoke: true,
            simd: simd.to_string(),
            host_cores: 1,
            par_threads: 1,
            sweeps: vec![crate::perf::PerfSweep { threads: 1, cases }],
        }
    }

    #[test]
    fn quantized_floor_is_separate_from_frozen_floor() {
        // 2.0× clears the int8 floor under AVX2 but would fail the f32
        // frozen floor — the precision split is the point.
        let base = synthetic_report(
            "avx2",
            vec![
                synthetic_case("frozen_predict", 5.5),
                synthetic_case("quantized_predict", 2.4),
                synthetic_case("streaming_predict", 8.0),
                synthetic_serve_case(0.9, 6.0),
            ],
        );
        let good = synthetic_report(
            "avx2",
            vec![
                synthetic_case("frozen_predict", 5.0),
                synthetic_case("quantized_predict", 2.0),
                synthetic_case("streaming_predict", 7.0),
                synthetic_serve_case(0.8, 8.0),
            ],
        );
        let verdict = judge(&base, &good);
        assert!(verdict.pass, "{}", render(&verdict));

        // A quantized collapse below its own floor fails even though the
        // same number would be unreachable luxury for a flat case.
        let collapsed = synthetic_report(
            "avx2",
            vec![
                synthetic_case("frozen_predict", 5.0),
                synthetic_case("quantized_predict", 1.2),
                synthetic_case("streaming_predict", 7.0),
                synthetic_serve_case(0.8, 8.0),
            ],
        );
        let verdict = judge(&base, &collapsed);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.case == "quantized_predict" && c.check == "speedup floor"));
    }

    #[test]
    fn scalar_twin_is_judged_on_scalar_floors_only() {
        // A DS_SIMD=off twin run against a vectorized baseline: absolute
        // scalar floors apply, relative ratios are skipped (a 1.2× scalar
        // frozen number would fail 0.70 × 5.5 for the wrong reason).
        let base = synthetic_report(
            "avx2",
            vec![
                synthetic_case("frozen_predict", 5.5),
                synthetic_case("frozen_conv", 5.3),
                synthetic_case("quantized_predict", 2.4),
                synthetic_case("streaming_predict", 8.0),
                synthetic_case("conv_forward", 1.1),
                synthetic_serve_case(0.9, 6.0),
            ],
        );
        // frozen_conv at 1.0×: twin-vs-twin is parity by construction
        // under scalar dispatch, so the 1.10× frozen floor must not
        // apply to it; quantized at 0.32× matches the measured scalar
        // int8 cost and must clear its own floor.
        let twin = synthetic_report(
            "scalar",
            vec![
                synthetic_case("frozen_predict", 1.2),
                synthetic_case("frozen_conv", 1.0),
                synthetic_case("quantized_predict", 0.32),
                synthetic_case("streaming_predict", 5.8),
                synthetic_case("conv_forward", 0.5),
                // Serve has no SIMD split and the relative floor is
                // skipped on the dispatch mismatch, so 0.5 only has to
                // clear the absolute 0.4 collapse floor.
                synthetic_serve_case(0.5, 10.0),
            ],
        );
        let verdict = judge(&base, &twin);
        assert!(verdict.pass, "{}", render(&verdict));
        assert!(verdict.notes.iter().any(|n| n.contains("simd dispatch")));

        // The scalar contract still has teeth: frozen parity fails.
        let mut broken = twin.clone();
        broken.sweeps[0].cases[0].speedup = 1.0;
        let verdict = judge(&base, &broken);
        assert!(!verdict.pass);
    }

    #[test]
    fn streaming_floor_and_presence_have_teeth() {
        let base = synthetic_report(
            "avx2",
            vec![
                synthetic_case("streaming_predict", 8.0),
                synthetic_serve_case(0.9, 6.0),
            ],
        );
        // 6.0× clears both the 5× AVX2 floor and the relative floor
        // (0.70 × 8.0 = 5.6).
        let good = synthetic_report(
            "avx2",
            vec![
                synthetic_case("streaming_predict", 6.0),
                synthetic_serve_case(0.8, 8.0),
            ],
        );
        assert!(judge(&base, &good).pass);

        // Collapsing toward the full-recompute cost fails absolutely.
        let collapsed = synthetic_report(
            "avx2",
            vec![
                synthetic_case("streaming_predict", 3.0),
                synthetic_serve_case(0.8, 8.0),
            ],
        );
        let verdict = judge(&base, &collapsed);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.case == "streaming_predict" && c.check == "speedup floor"));

        // The scalar floor is lower but still real: work avoided, not
        // instructions vectorized.
        let scalar = synthetic_report(
            "scalar",
            vec![
                synthetic_case("streaming_predict", 3.5),
                synthetic_serve_case(0.5, 10.0),
            ],
        );
        assert!(judge(&base, &scalar).pass);
        let scalar_bad = synthetic_report(
            "scalar",
            vec![
                synthetic_case("streaming_predict", 2.0),
                synthetic_serve_case(0.5, 10.0),
            ],
        );
        assert!(!judge(&base, &scalar_bad).pass);

        // A fresh run with no streaming case fails even against a
        // baseline that never had one.
        let pre_streaming = synthetic_report("avx2", vec![synthetic_case("frozen_predict", 5.5)]);
        let fresh_without = synthetic_report("avx2", vec![synthetic_case("frozen_predict", 5.5)]);
        let verdict = judge(&pre_streaming, &fresh_without);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.check == "streaming case present in fresh run"));
    }

    #[test]
    fn serve_floor_slo_and_presence_have_teeth() {
        let base = synthetic_report(
            "avx2",
            vec![
                synthetic_case("streaming_predict", 8.0),
                synthetic_serve_case(0.9, 6.0),
            ],
        );
        // Parity-ish serving clears both the collapse floor and the
        // relative floor (0.70 × 0.9 = 0.63), and sits inside the SLO.
        let good = synthetic_report(
            "avx2",
            vec![
                synthetic_case("streaming_predict", 7.0),
                synthetic_serve_case(0.8, 12.0),
            ],
        );
        assert!(judge(&base, &good).pass);

        // Serving collapsing to several times the bare compute fails the
        // absolute floor.
        let collapsed = synthetic_report(
            "avx2",
            vec![
                synthetic_case("streaming_predict", 7.0),
                synthetic_serve_case(0.3, 12.0),
            ],
        );
        let verdict = judge(&base, &collapsed);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.case == "serve_throughput" && c.check == "speedup floor"));

        // A healthy throughput ratio with a blown tail still fails: the
        // p99 SLO is its own check.
        let slow_tail = synthetic_report(
            "avx2",
            vec![
                synthetic_case("streaming_predict", 7.0),
                synthetic_serve_case(0.8, 80.0),
            ],
        );
        let verdict = judge(&base, &slow_tail);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.case == "serve_throughput" && c.check == "p99 within SLO"));

        // A fresh run with no serve case fails even against a baseline
        // that never had one.
        let pre_serve = synthetic_report("avx2", vec![synthetic_case("streaming_predict", 8.0)]);
        let fresh_without =
            synthetic_report("avx2", vec![synthetic_case("streaming_predict", 7.0)]);
        let verdict = judge(&pre_serve, &fresh_without);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.check == "serve case present in fresh run"));
    }

    #[test]
    fn backbone_zoo_floor_and_presence_have_teeth() {
        let base = synthetic_report(
            "avx2",
            vec![
                synthetic_case("streaming_predict", 8.0),
                synthetic_serve_case(0.9, 6.0),
            ],
        );
        assert!(judge(&base, &base.clone()).pass);

        // A backbone plan falling materially behind its mutable path
        // fails the absolute zoo floor.
        let mut collapsed = base.clone();
        for case in &mut collapsed.sweeps[0].cases {
            if case.name == "backbone_transapp" {
                case.speedup = 0.8;
            }
        }
        let verdict = judge(&base, &collapsed);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.case == "backbone_transapp" && c.check == "speedup floor"));

        // A fresh run with no backbone cases fails even against a
        // baseline that never had them (pre-zoo baseline).
        let strip = |report: &PerfReport| {
            let mut r = report.clone();
            r.sweeps[0]
                .cases
                .retain(|c| !c.name.starts_with("backbone_"));
            r
        };
        let verdict = judge(&strip(&base), &strip(&base));
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.check == "backbone case present in fresh run"));
    }

    #[test]
    fn missing_case_fails_and_missing_sweep_skips() {
        let report = baseline();
        let mut fresh = report.clone();
        // Drop a case from the first sweep: coverage loss must fail.
        fresh.sweeps[0].cases.retain(|c| c.name != "train_epoch");
        let verdict = judge(&report, &fresh);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.check == "case present in fresh run"));

        // A fresh run covering only one of the baseline's thread counts
        // still passes — CI's smoke sweeps one team size by design.
        let mut partial = report.clone();
        partial.sweeps.truncate(1);
        let verdict = judge(&report, &partial);
        assert!(verdict.pass, "{}", render(&verdict));
        assert!(verdict.notes.iter().any(|n| n.contains("skipped")));
    }

    #[test]
    fn zero_overlap_is_a_failure() {
        let report = baseline();
        let empty = PerfReport {
            smoke: true,
            simd: "scalar".to_string(),
            host_cores: 1,
            par_threads: 1,
            sweeps: Vec::new(),
        };
        let verdict = judge(&report, &empty);
        assert!(!verdict.pass);
        assert_eq!(verdict.compared, 0);
    }
}
