//! Perf-regression sentinel: diffs a fresh perf run against the
//! committed `results/BENCH_perf.json` baseline and renders a
//! machine-readable verdict.
//!
//! The perf suite's numbers gate real guarantees — the frozen plan's
//! speedup over the mutable path, its zero-alloc steady state, and
//! decision identity — but a one-shot CI grep only catches the cases it
//! names. The sentinel instead walks every `(thread count, case)` pair
//! present in **both** reports and applies per-case thresholds:
//!
//! - **Correctness is absolute**: `bit_identical` must hold and
//!   `decision_flips` must be zero in the fresh run, full stop.
//! - **Frozen cases** (`frozen_predict`, `frozen_localize`) carry an
//!   *absolute* speedup floor ([`FROZEN_SPEEDUP_FLOOR`]) — the frozen
//!   plan being meaningfully faster than the mutable path is a published
//!   claim, not a relative trend — plus a relative floor against the
//!   baseline, and an absolute allocs-per-window ceiling
//!   ([`FROZEN_ALLOCS_CEILING`]) backing the zero-alloc contract.
//! - **Flat cases** (conv/ensemble/e2e/train, whose parallel speedups
//!   hover near 1.0×) get a relative floor only
//!   ([`RELATIVE_SPEEDUP_FLOOR`] × baseline): they may drift with the
//!   host, but a collapse against the committed numbers is a regression.
//!   Their allocation ceiling is relative with an absolute grace
//!   ([`ALLOCS_RELATIVE_CEILING`], [`ALLOCS_ABSOLUTE_GRACE`]) since
//!   small counts are noisy.
//!
//! A case present in the baseline but missing from the fresh run fails
//! (silent coverage loss reads as a pass otherwise); thread counts only
//! in one report are skipped with a note (the CI smoke runs one sweep
//! against a two-sweep baseline by design). The thresholds are loose
//! enough that re-judging the committed baseline against itself passes —
//! that self-check is a unit test below.

use serde::Serialize;

use crate::perf::{PerfCase, PerfReport};

/// Absolute speedup floor for the frozen serving cases. Kept below the
/// baseline's weakest frozen number (frozen_localize 1.147× at two
/// workers) so the committed report self-passes, while still failing any
/// run where the frozen plan's advantage collapses toward parity.
pub const FROZEN_SPEEDUP_FLOOR: f64 = 1.10;

/// Frozen cases must also hold this fraction of their baseline speedup.
pub const FROZEN_RELATIVE_FLOOR: f64 = 0.85;

/// Absolute allocs-per-window ceiling for frozen cases (baseline is 0.0;
/// the margin absorbs one-off warmup traffic landing inside a short
/// timed region).
pub const FROZEN_ALLOCS_CEILING: f64 = 0.5;

/// Flat cases must hold this fraction of their baseline speedup.
pub const RELATIVE_SPEEDUP_FLOOR: f64 = 0.70;

/// Flat-case allocation ceiling: `baseline × this`, …
pub const ALLOCS_RELATIVE_CEILING: f64 = 1.5;

/// … but never tighter than `baseline + this` (small counts are noisy).
pub const ALLOCS_ABSOLUTE_GRACE: f64 = 4.0;

fn is_frozen_case(name: &str) -> bool {
    name.starts_with("frozen_")
}

/// One threshold evaluation on one `(threads, case)` pair.
#[derive(Debug, Clone, Serialize)]
pub struct RegressCheck {
    /// Worker-team size of the compared sweeps.
    pub threads: usize,
    /// Case name.
    pub case: String,
    /// Which threshold this row applied.
    pub check: String,
    /// Baseline value the threshold was derived from.
    pub baseline: f64,
    /// Fresh-run value under test.
    pub fresh: f64,
    /// The derived limit the fresh value was held to.
    pub limit: f64,
    pub pass: bool,
}

/// The sentinel's full verdict, serialized for CI and humans alike.
#[derive(Debug, Clone, Serialize)]
pub struct RegressVerdict {
    /// True iff every check passed.
    pub pass: bool,
    /// `(threads, case)` pairs compared.
    pub compared: usize,
    /// Every threshold evaluation, failures included.
    pub checks: Vec<RegressCheck>,
    /// Coverage notes: skipped thread counts, missing cases.
    pub notes: Vec<String>,
}

/// Accumulates checks for one `(threads, case)` pair.
struct CaseChecks<'a> {
    checks: &'a mut Vec<RegressCheck>,
    threads: usize,
    case: &'a str,
}

impl CaseChecks<'_> {
    fn push(&mut self, check: &str, baseline: f64, fresh: f64, limit: f64, pass: bool) {
        self.checks.push(RegressCheck {
            threads: self.threads,
            case: self.case.to_string(),
            check: check.to_string(),
            baseline,
            fresh,
            limit,
            pass,
        });
    }
}

fn judge_case(threads: usize, base: &PerfCase, fresh: &PerfCase, checks: &mut Vec<RegressCheck>) {
    let name = &base.name;
    let mut out = CaseChecks {
        checks,
        threads,
        case: name,
    };

    // Correctness: absolute, regardless of baseline.
    out.push(
        "bit_identical",
        1.0,
        if fresh.bit_identical { 1.0 } else { 0.0 },
        1.0,
        fresh.bit_identical,
    );
    out.push(
        "decision_flips == 0",
        base.decision_flips as f64,
        fresh.decision_flips as f64,
        0.0,
        fresh.decision_flips == 0,
    );

    // Speedup floor.
    let floor = if is_frozen_case(name) {
        FROZEN_SPEEDUP_FLOOR.max(base.speedup * FROZEN_RELATIVE_FLOOR)
    } else {
        base.speedup * RELATIVE_SPEEDUP_FLOOR
    };
    out.push(
        "speedup floor",
        base.speedup,
        fresh.speedup,
        floor,
        fresh.speedup >= floor,
    );

    // Allocation ceiling.
    let ceiling = if is_frozen_case(name) {
        FROZEN_ALLOCS_CEILING
    } else {
        (base.allocs_per_window * ALLOCS_RELATIVE_CEILING)
            .max(base.allocs_per_window + ALLOCS_ABSOLUTE_GRACE)
    };
    out.push(
        "allocs ceiling",
        base.allocs_per_window,
        fresh.allocs_per_window,
        ceiling,
        fresh.allocs_per_window <= ceiling,
    );
}

/// Judge `fresh` against `baseline`. Sweeps pair by thread count; cases
/// pair by name within a paired sweep. See the module docs for the
/// threshold policy.
pub fn judge(baseline: &PerfReport, fresh: &PerfReport) -> RegressVerdict {
    let mut checks = Vec::new();
    let mut notes = Vec::new();
    let mut compared = 0usize;

    for base_sweep in &baseline.sweeps {
        let Some(fresh_sweep) = fresh
            .sweeps
            .iter()
            .find(|s| s.threads == base_sweep.threads)
        else {
            notes.push(format!(
                "baseline sweep at {} thread(s) not present in fresh run; skipped",
                base_sweep.threads
            ));
            continue;
        };
        for base_case in &base_sweep.cases {
            match fresh_sweep.cases.iter().find(|c| c.name == base_case.name) {
                Some(fresh_case) => {
                    compared += 1;
                    judge_case(base_sweep.threads, base_case, fresh_case, &mut checks);
                }
                None => {
                    // Coverage loss is a failure, not a note: a vanished
                    // case must not read as "no regression".
                    CaseChecks {
                        checks: &mut checks,
                        threads: base_sweep.threads,
                        case: &base_case.name,
                    }
                    .push("case present in fresh run", 1.0, 0.0, 1.0, false);
                }
            }
        }
    }
    for fresh_sweep in &fresh.sweeps {
        if !baseline
            .sweeps
            .iter()
            .any(|s| s.threads == fresh_sweep.threads)
        {
            notes.push(format!(
                "fresh sweep at {} thread(s) has no baseline; skipped",
                fresh_sweep.threads
            ));
        }
    }
    if compared == 0 {
        notes.push("no (threads, case) pair present in both reports".to_string());
    }

    RegressVerdict {
        // Zero overlap is a failure: an incomparable run proves nothing.
        pass: compared > 0 && checks.iter().all(|c| c.pass),
        compared,
        checks,
        notes,
    }
}

/// Render a verdict as an aligned text table (failures and passes).
pub fn render(verdict: &RegressVerdict) -> String {
    let mut out = String::new();
    let rows: Vec<Vec<String>> = verdict
        .checks
        .iter()
        .map(|c| {
            vec![
                if c.pass { "ok" } else { "FAIL" }.to_string(),
                format!("{}", c.threads),
                c.case.clone(),
                c.check.clone(),
                format!("{:.3}", c.baseline),
                format!("{:.3}", c.fresh),
                format!("{:.3}", c.limit),
            ]
        })
        .collect();
    out.push_str(&crate::report::text_table(
        &[
            "status", "threads", "case", "check", "baseline", "fresh", "limit",
        ],
        &rows,
    ));
    for note in &verdict.notes {
        out.push_str(&format!("note: {note}\n"));
    }
    out.push_str(&format!(
        "regress verdict: {} ({} case pairings, {} checks)\n",
        if verdict.pass { "PASS" } else { "FAIL" },
        verdict.compared,
        verdict.checks.len(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> PerfReport {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_perf.json"
        ))
        .expect("committed baseline exists");
        serde_json::from_str(&text).expect("committed baseline parses")
    }

    #[test]
    fn committed_baseline_self_passes() {
        let report = baseline();
        assert!(!report.sweeps.is_empty());
        let verdict = judge(&report, &report);
        assert!(
            verdict.pass,
            "baseline must pass against itself:\n{}",
            render(&verdict)
        );
        // Every sweep × case compared, 4 checks each.
        let cases: usize = report.sweeps.iter().map(|s| s.cases.len()).sum();
        assert_eq!(verdict.compared, cases);
        assert_eq!(verdict.checks.len(), cases * 4);
    }

    #[test]
    fn degraded_frozen_speedup_fails() {
        let report = baseline();
        let mut fresh = report.clone();
        for sweep in &mut fresh.sweeps {
            for case in &mut sweep.cases {
                if case.name == "frozen_predict" {
                    case.speedup = 1.0; // advantage collapsed to parity
                }
            }
        }
        let verdict = judge(&report, &fresh);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.case == "frozen_predict" && c.check == "speedup floor"));
        // Unrelated cases stay green.
        assert!(verdict
            .checks
            .iter()
            .filter(|c| c.case == "conv_forward")
            .all(|c| c.pass));
        assert!(render(&verdict).contains("FAIL"));
    }

    #[test]
    fn frozen_allocations_fail_the_zero_alloc_contract() {
        let report = baseline();
        let mut fresh = report.clone();
        for sweep in &mut fresh.sweeps {
            for case in &mut sweep.cases {
                if case.name == "frozen_localize" {
                    case.allocs_per_window = 3.0;
                }
            }
        }
        let verdict = judge(&report, &fresh);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.case == "frozen_localize" && c.check == "allocs ceiling"));
    }

    #[test]
    fn decision_flips_fail_absolutely() {
        let report = baseline();
        let mut fresh = report.clone();
        fresh.sweeps[0].cases[0].decision_flips = 1;
        fresh.sweeps[0].cases[0].bit_identical = false;
        let verdict = judge(&report, &fresh);
        assert!(!verdict.pass);
    }

    #[test]
    fn missing_case_fails_and_missing_sweep_skips() {
        let report = baseline();
        let mut fresh = report.clone();
        // Drop a case from the first sweep: coverage loss must fail.
        fresh.sweeps[0].cases.retain(|c| c.name != "train_epoch");
        let verdict = judge(&report, &fresh);
        assert!(!verdict.pass);
        assert!(verdict
            .checks
            .iter()
            .any(|c| !c.pass && c.check == "case present in fresh run"));

        // A fresh run covering only one of the baseline's thread counts
        // still passes — CI's smoke sweeps one team size by design.
        let mut partial = report.clone();
        partial.sweeps.truncate(1);
        let verdict = judge(&report, &partial);
        assert!(verdict.pass, "{}", render(&verdict));
        assert!(verdict.notes.iter().any(|n| n.contains("skipped")));
    }

    #[test]
    fn zero_overlap_is_a_failure() {
        let report = baseline();
        let empty = PerfReport {
            smoke: true,
            sweeps: Vec::new(),
        };
        let verdict = judge(&report, &empty);
        assert!(!verdict.pass);
        assert_eq!(verdict.compared, 0);
    }
}
