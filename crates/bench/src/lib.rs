//! # ds-bench
//!
//! The experiment harness that regenerates every quantitative artifact of
//! the DeviceScope paper (see `DESIGN.md` §4 for the experiment index):
//!
//! - **Figure 3** — localization F1 vs number of training labels, CamAL vs
//!   5 strong-label seq2seq baselines and the weakly supervised baseline
//!   ([`experiments::fig3`], binary `fig3_label_efficiency`).
//! - **§II-C claims** — "2.2× better F1 than the weakly supervised
//!   baseline" and "5200× more labels for NILM approaches"
//!   ([`experiments::claims`], binary `claims`).
//! - **Benchmark frame grid** — Accuracy / Balanced Accuracy / Precision /
//!   Recall / F1 for detection and localization per dataset × appliance ×
//!   method ([`experiments::table`], binary `benchmark_table`; its JSON
//!   output feeds the app's benchmark frame).
//! - **Ablations** — ensemble size, CAM normalization, attention mask,
//!   detection gating, kernel sets ([`experiments::ablations`], binary
//!   `ablations`).
//!
//! Criterion microbenchmarks of the substrate and the CamAL pipeline live
//! in `benches/`.

pub mod experiments;
pub mod faultsmoke;
pub mod methods;
pub mod perf;
pub mod regress;
pub mod report;
pub mod serveload;
pub mod speed;

pub use methods::{fit_method, CamalMethod, MethodName, ALL_METHODS};
pub use speed::SpeedPreset;
